/**
 * @file
 * Transformation explorer: walks one machine description (default K5,
 * the most complex) through every optimization stage in the paper's
 * order, printing the representation size and the measured scheduling
 * cost after each stage, for both representations - a miniature of
 * Tables 14 and 15 with all the intermediate points visible.
 *
 * Run: ./build/examples/explore_transforms [machine-name]
 */

#include <cstdio>
#include <cstring>

#include "exp/runner.h"
#include "support/text_table.h"

using namespace mdes;

namespace {

struct StageSpec
{
    const char *label;
    bool cse, redundant, bitvec, timeshift, hoist_sort;
};

const StageSpec kStages[] = {
    {"original (Section 4)", false, false, false, false, false},
    {"+ CSE / dead code / redundant options (Section 5)", true, true,
     false, false, false},
    {"+ bit-vector packing (Section 6)", true, true, true, false, false},
    {"+ usage-time shift & sort (Section 7)", true, true, true, true,
     false},
    {"+ hoisting & OR-subtree sort (Section 8)", true, true, true, true,
     true},
};

} // namespace

int
main(int argc, char **argv)
{
    const machines::MachineInfo *machine = &machines::k5();
    if (argc > 1) {
        machine = machines::byName(argv[1]);
        if (!machine) {
            std::fprintf(stderr,
                         "unknown machine '%s' (try PA7100, Pentium, "
                         "SuperSPARC, K5)\n",
                         argv[1]);
            return 1;
        }
    }
    std::printf("Transformation walk for the %s description\n"
                "(workload: %zu synthetic operations)\n\n",
                machine->name.c_str(), machine->workload.num_ops);

    for (auto rep : {exp::Rep::OrTree, exp::Rep::AndOrTree}) {
        std::printf("--- %s representation ---\n", exp::repName(rep));
        TextTable table;
        table.setHeader({"Stage", "Bytes", "Options/Attempt",
                         "Checks/Attempt"});
        for (const auto &stage : kStages) {
            exp::RunConfig config;
            config.machine = machine;
            config.rep = rep;
            config.transforms.cse = stage.cse;
            config.transforms.redundant_options = stage.redundant;
            config.bit_vector = stage.bitvec;
            config.transforms.time_shift = stage.timeshift;
            config.transforms.sort_usages = stage.timeshift;
            config.transforms.hoist = stage.hoist_sort;
            config.transforms.sort_or_trees = stage.hoist_sort;
            config.num_ops_override = 50000;
            exp::RunResult result = exp::run(config);
            table.addRow({
                stage.label,
                std::to_string(result.memory.total()),
                TextTable::num(
                    result.stats.checks.avgOptionsPerAttempt(), 2),
                TextTable::num(result.stats.checks.avgChecksPerAttempt(),
                               2),
            });
        }
        std::printf("%s\n", table.toString().c_str());
    }
    std::printf("Every row produced the *identical schedule* - the\n"
                "transformations change only how cheaply the execution\n"
                "constraints are represented and checked.\n");
    return 0;
}
