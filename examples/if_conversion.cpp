/**
 * @file
 * Predication / if-conversion decision demo.
 *
 * The paper's introduction motivates MDES access beyond the scheduler:
 * "transformations such as predication and height reduction also need
 * to use execution constraints to avoid over-subscription of processor
 * resources." This example plays that client: it considers if-converting
 * a hammock (merging the then- and else-sides into one predicated
 * block) on the SuperSPARC, consults the resource-pressure analysis to
 * predict over-subscription, and checks the prediction by scheduling
 * both shapes.
 *
 * Run: ./build/examples/if_conversion
 */

#include <cstdio>

#include "core/transforms.h"
#include "hmdes/compile.h"
#include "lmdes/low_mdes.h"
#include "machines/machines.h"
#include "sched/list_scheduler.h"
#include "sched/pressure.h"

using namespace mdes;

namespace {

sched::Instr
op(const lmdes::LowMdes &low, const char *opcode,
   std::vector<int32_t> srcs, std::vector<int32_t> dsts)
{
    sched::Instr in;
    in.op_class = low.findOpClass(opcode);
    in.srcs = std::move(srcs);
    in.dsts = std::move(dsts);
    return in;
}

int32_t
lengthOf(const lmdes::LowMdes &low, const sched::Block &block)
{
    sched::ListScheduler scheduler(low);
    sched::SchedStats stats;
    return scheduler.scheduleBlock(block, stats).length;
}

void
report(const lmdes::LowMdes &low, const char *label,
       const sched::Block &block)
{
    auto p = sched::analyzePressure(block, low);
    std::printf("%-28s %2zu ops, resource bound %d cycles "
                "(bottleneck: instance %u, %.0f busy cycles), "
                "scheduled length %d\n",
                label, block.instrs.size(), p.resource_bound,
                p.bottleneck, p.demand[p.bottleneck],
                lengthOf(low, block));
}

} // namespace

int
main()
{
    Mdes model = hmdes::compileOrThrow(machines::superSparc().source);
    runPipeline(model, PipelineConfig::all());
    lmdes::LowerOptions lopts;
    lopts.pack_bit_vector = true;
    lmdes::LowMdes low = lmdes::LowMdes::lower(model, lopts);

    // A memory-heavy hammock: both sides load, combine, and store.
    sched::Block then_side;
    then_side.instrs = {
        op(low, "LD", {1}, {10}),
        op(low, "ADD_I", {10}, {11}),
        op(low, "ST", {11, 3}, {}),
    };
    sched::Block else_side;
    else_side.instrs = {
        op(low, "LD", {2}, {12}),
        op(low, "SUB_I", {12}, {13}),
        op(low, "ST", {13, 3}, {}),
    };

    // The if-converted body executes both sides predicated.
    sched::Block merged;
    merged.instrs = then_side.instrs;
    for (const auto &in : else_side.instrs)
        merged.instrs.push_back(in);

    std::printf("If-conversion analysis on the %s (1 memory unit):\n\n",
                low.machineName().c_str());
    report(low, "then-side alone:", then_side);
    report(low, "else-side alone:", else_side);
    report(low, "if-converted body:", merged);

    auto merged_p = sched::analyzePressure(merged, low);
    auto then_p = sched::analyzePressure(then_side, low);
    std::printf(
        "\nThe merged body quadruples traffic on the single memory "
        "unit\n(%0.f busy cycles vs %.0f): the pressure analysis flags "
        "the\nover-subscription *before* any scheduling happens, which "
        "is what a\npredication pass needs to reject the transformation "
        "when the\nbranch is well-predicted.\n",
        merged_p.demand[merged_p.bottleneck],
        then_p.demand[then_p.bottleneck]);

    // The same query, phrased as the client API's predicate: would
    // speculating two more loads into the then-side blow a 3-cycle
    // budget?
    uint32_t ld = low.findOpClass("LD");
    bool blows = sched::wouldOversubscribe(then_side, low, ld, 2, 3);
    std::printf("\nwouldOversubscribe(then-side, +2 loads, budget 3) = "
                "%s\n",
                blows ? "yes - reject the speculation"
                      : "no - safe to speculate");
    return 0;
}
