/**
 * @file
 * Retargeting walkthrough: the paper's core pitch is that a generic,
 * high-quality scheduler driven by an MDES can be "quickly targeted to a
 * new processor". This example writes a brand-new dual-cluster VLIW
 * description in the high-level language from scratch, compiles it
 * through the full pipeline, and immediately schedules code for it -
 * no compiler changes required.
 *
 * Run: ./build/examples/retarget
 */

#include <cstdio>

#include "core/print.h"
#include "core/transforms.h"
#include "hmdes/compile.h"
#include "lmdes/low_mdes.h"
#include "sched/list_scheduler.h"
#include "sched/verify.h"

using namespace mdes;

namespace {

/** A little dual-cluster VLIW nobody has ever built. */
const char *const kVliwSource = R"MDES(
machine "Blackbird-VLIW" {
    // Two clusters, each with 2 issue slots, an ALU pair, and a shared
    // multiplier; one inter-cluster copy bus; a lone memory port.
    resource Slot[4];        // slots 0-1 = cluster A, 2-3 = cluster B
    resource ALU[4];
    resource MUL[2];         // one multiplier per cluster, busy 2 cycles
    resource XBUS;           // inter-cluster copy bus
    resource MEM;

    let FETCH = -1;

    ortree SlotA { for s in 0 .. 1 { option { use Slot[s] at FETCH; } } }
    ortree SlotB { for s in 2 .. 3 { option { use Slot[s] at FETCH; } } }
    ortree AnySlot { for s in 0 .. 3 { option { use Slot[s] at FETCH; } } }
    ortree AluA { for a in 0 .. 1 { option { use ALU[a] at 0; } } }
    ortree AluB { for a in 2 .. 3 { option { use ALU[a] at 0; } } }
    ortree MulA { option { use MUL[0] at 0; use MUL[0] at 1; } }
    ortree MulB { option { use MUL[1] at 0; use MUL[1] at 1; } }
    ortree CopyBus { option { use XBUS at 0; } }
    ortree MemPort { option { use MEM at 0; } }

    table AddA = and(AluA, SlotA);
    table AddB = and(AluB, SlotB);
    table MulTblA = and(MulA, SlotA);
    table MulTblB = and(MulB, SlotB);
    table Copy = and(CopyBus, AnySlot);
    table Mem = and(MemPort, AnySlot);

    operation ADD_A { table AddA; latency 1; note "cluster A add"; }
    operation ADD_B { table AddB; latency 1; note "cluster B add"; }
    operation MUL_A { table MulTblA; latency 3; note "cluster A multiply"; }
    operation MUL_B { table MulTblB; latency 3; note "cluster B multiply"; }
    operation XCOPY { table Copy; latency 1; note "inter-cluster copy"; }
    operation LOAD  { table Mem; latency 2; note "memory load"; }
    operation STORE { table Mem; latency 1; note "memory store"; }
}
)MDES";

sched::Instr
op(const lmdes::LowMdes &low, const char *opcode,
   std::vector<int32_t> srcs, std::vector<int32_t> dsts)
{
    sched::Instr in;
    in.op_class = low.findOpClass(opcode);
    in.srcs = std::move(srcs);
    in.dsts = std::move(dsts);
    return in;
}

} // namespace

int
main()
{
    // Compile the fresh description - the only machine-specific input.
    Mdes model = hmdes::compileOrThrow(kVliwSource);
    std::printf("New target '%s' compiled: %u resources, %zu operation "
                "classes, %zu tables.\n",
                model.name().c_str(), model.numResources(),
                model.opClasses().size(), model.trees().size());

    runPipeline(model, PipelineConfig::all());
    lmdes::LowerOptions lopts;
    lopts.pack_bit_vector = true;
    lmdes::LowMdes low = lmdes::LowMdes::lower(model, lopts);
    std::printf("Optimized constraint image: %zu bytes.\n\n",
                low.memory().total());

    // Show the scheduler-facing view of a multiply (2-cycle multiplier).
    std::printf("Cluster-A multiply reservation table:\n%s\n",
                printTree(model,
                          model.opClass(model.findOpClass("MUL_A")).tree)
                    .c_str());

    // Schedule a block that exercises both clusters and the copy bus.
    sched::Block block;
    block.instrs = {
        op(low, "LOAD", {1}, {10}),
        op(low, "MUL_A", {10, 2}, {11}),
        op(low, "ADD_A", {11, 3}, {12}),
        op(low, "XCOPY", {12}, {20}),
        op(low, "MUL_B", {20, 4}, {21}),
        op(low, "ADD_B", {21, 5}, {22}),
        op(low, "MUL_A", {2, 3}, {13}),  // independent work for cluster A
        op(low, "ADD_B", {6, 7}, {23}),  // independent work for cluster B
        op(low, "STORE", {22, 8}, {}),
    };
    sched::ListScheduler scheduler(low);
    sched::SchedStats stats;
    sched::BlockSchedule sched = scheduler.scheduleBlock(block, stats);
    std::string problem = sched::verifySchedule(block, sched, low);
    if (!problem.empty()) {
        std::fprintf(stderr, "schedule invalid: %s\n", problem.c_str());
        return 1;
    }

    std::printf("Cycle | Ops\n------+----------------------------\n");
    for (int32_t cycle = 0; cycle < sched.length; ++cycle) {
        std::printf("%5d |", cycle);
        for (size_t i = 0; i < block.instrs.size(); ++i) {
            if (sched.cycles[i] == cycle)
                std::printf(" %s",
                            low.opClasses()[block.instrs[i].op_class]
                                .name.c_str());
        }
        std::printf("\n");
    }
    std::printf("\nNote how the back-to-back multiplies on cluster A are\n"
                "separated by the 2-cycle multiplier busy time encoded in\n"
                "the reservation table, with no scheduler changes.\n");
    return 0;
}
