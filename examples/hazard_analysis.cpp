/**
 * @file
 * Pipeline-hazard analysis with collision vectors (paper Section 7 /
 * Davidson et al.): computes forbidden latencies between reservation
 * table options of a deeply pipelined divide unit, shows the collision
 * vectors, and demonstrates - exhaustively - that the usage-time
 * transformation leaves every collision vector (and therefore every
 * legal schedule) unchanged.
 *
 * Run: ./build/examples/hazard_analysis
 */

#include <cstdio>

#include "core/collision.h"
#include "core/print.h"
#include "core/transforms.h"
#include "hmdes/compile.h"

using namespace mdes;

namespace {

/** A classic multi-function pipelined unit exercise. */
const char *const kPipeSource = R"MDES(
machine "pipelined-divider" {
    resource FETCH;
    resource STAGE[3];       // shared pipeline stages
    resource DIV;            // iterative divide core

    // A divide occupies the front stages once, then the divide core for
    // four cycles, then revisits stage 2 to round the result.
    ortree DivideShape {
        option {
            use FETCH at -1;
            use STAGE[0] at 0;
            use STAGE[1] at 1;
            use DIV at 2; use DIV at 3; use DIV at 4; use DIV at 5;
            use STAGE[2] at 6;
        }
    }
    // A multiply uses the same front stages and the final stage, but
    // skips the divide core.
    ortree MultiplyShape {
        option {
            use FETCH at -1;
            use STAGE[0] at 0;
            use STAGE[1] at 1;
            use STAGE[2] at 3;
        }
    }
    table Div = DivideShape;
    table Mul = MultiplyShape;
    operation DIVIDE { table Div; latency 7; }
    operation MULTIPLY { table Mul; latency 4; }
}
)MDES";

void
showCollisions(const Mdes &m, const char *a_name, const char *b_name,
               OptionId a, OptionId b, int bound)
{
    auto forbidden = forbiddenLatencies(m, a, b);
    BitVector cv = collisionVector(m, a, b, bound);
    std::printf("(%s, %s): forbidden latencies {", a_name, b_name);
    bool first = true;
    for (int32_t t : forbidden) {
        std::printf("%s%d", first ? "" : ", ", t);
        first = false;
    }
    std::printf("}  collision vector %s\n", cv.toString().c_str());
}

} // namespace

int
main()
{
    Mdes m = hmdes::compileOrThrow(kPipeSource);

    OptionId div_opt =
        m.orTree(m.tree(m.opClass(m.findOpClass("DIVIDE")).tree)
                     .or_trees[0])
            .options[0];
    OptionId mul_opt =
        m.orTree(m.tree(m.opClass(m.findOpClass("MULTIPLY")).tree)
                     .or_trees[0])
            .options[0];

    std::printf("Divide reservation table:\n%s\n",
                printOption(m, div_opt).c_str());
    std::printf("Multiply reservation table:\n%s\n",
                printOption(m, mul_opt).c_str());

    int bound = maxUsageSpan(m);
    std::printf("Forbidden latencies (bit t set = an op using the second "
                "table cannot start\nt cycles after one using the "
                "first):\n\n");
    showCollisions(m, "DIV", "DIV", div_opt, div_opt, bound);
    showCollisions(m, "DIV", "MUL", div_opt, mul_opt, bound);
    showCollisions(m, "MUL", "DIV", mul_opt, div_opt, bound);
    showCollisions(m, "MUL", "MUL", mul_opt, mul_opt, bound);

    // Now apply the Section 7 usage-time transformation and verify the
    // collision vectors are bit-for-bit identical.
    Mdes shifted = m;
    auto shifts = shiftUsageTimes(shifted);
    std::printf("\nAfter the usage-time transformation (per-resource "
                "shifts:");
    for (ResourceId r = 0; r < m.numResources(); ++r) {
        if (shifts[r] != 0)
            std::printf(" %s%+d", m.resourceName(r).c_str(), -shifts[r]);
    }
    std::printf("):\n\n");

    bool all_equal = true;
    for (OptionId a = 0; a < m.options().size(); ++a) {
        for (OptionId b = 0; b < m.options().size(); ++b) {
            all_equal &= collisionVector(m, a, b, bound) ==
                         collisionVector(shifted, a, b, bound);
        }
    }
    showCollisions(shifted, "DIV", "DIV", div_opt, div_opt, bound);
    showCollisions(shifted, "MUL", "MUL", mul_opt, mul_opt, bound);
    std::printf("\nAll %zu x %zu collision vectors identical: %s\n",
                m.options().size(), m.options().size(),
                all_equal ? "yes" : "NO (bug!)");
    std::printf(
        "\nThis is exactly why the transformation is sound: a schedule\n"
        "has no resource conflicts iff no operation pair violates its\n"
        "collision vector, and collision vectors depend only on\n"
        "usage-time differences *within* each resource.\n");
    return all_equal ? 0 : 1;
}
