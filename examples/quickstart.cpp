/**
 * @file
 * Quickstart: load a shipped machine description (SuperSPARC), translate
 * it to the optimized low-level representation, build a small basic
 * block by hand, schedule it with the MDES-driven list scheduler, and
 * print the annotated schedule - including a cascaded IALU pair landing
 * in the same cycle.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/transforms.h"
#include "hmdes/compile.h"
#include "lmdes/low_mdes.h"
#include "machines/machines.h"
#include "sched/list_scheduler.h"
#include "sched/verify.h"

using namespace mdes;

namespace {

sched::Instr
op(const lmdes::LowMdes &low, const char *opcode,
   std::vector<int32_t> srcs, std::vector<int32_t> dsts,
   bool cascadable = false, bool is_branch = false)
{
    sched::Instr in;
    in.op_class = low.findOpClass(opcode);
    if (in.op_class == kInvalidId)
        throw MdesError(std::string("unknown opcode ") + opcode);
    in.srcs = std::move(srcs);
    in.dsts = std::move(dsts);
    in.cascadable = cascadable;
    in.is_branch = is_branch;
    return in;
}

} // namespace

int
main()
{
    // 1. Compile the high-level description into the structured model.
    Mdes model = hmdes::compileOrThrow(machines::superSparc().source);
    std::printf("Compiled machine '%s': %u resource instances, %zu "
                "operation classes.\n",
                model.name().c_str(), model.numResources(),
                model.opClasses().size());

    // 2. Run the full transformation pipeline (Sections 5, 7, 8).
    runPipeline(model, PipelineConfig::all());

    // 3. Lower to the packed low-level representation the compiler uses.
    lmdes::LowerOptions lopts;
    lopts.pack_bit_vector = true;
    lmdes::LowMdes low = lmdes::LowMdes::lower(model, lopts);
    std::printf("Low-level representation: %zu bytes of resource "
                "constraints.\n\n",
                low.memory().total());

    // 4. A small basic block:
    //      r3 = load [r1]        (LD)
    //      r4 = r3 + 8           (ADD_I, flow-dependent on the load)
    //      r5 = r4 + 1           (ADD_I, cascadable: may pair with prev)
    //      r6 = r2 << 3          (SLL_I, independent)
    //      store r5 -> [r2]      (ST)
    //      branch                (BPCC)
    sched::Block block;
    block.instrs = {
        op(low, "LD", {1}, {3}),
        op(low, "ADD_I", {3}, {4}, true),
        op(low, "ADD_I", {4}, {5}, true),
        op(low, "SLL_I", {2}, {6}),
        op(low, "ST", {5, 2}, {}),
        op(low, "BPCC", {5}, {}, false, true),
    };

    // 5. Schedule and validate.
    sched::ListScheduler scheduler(low);
    sched::SchedStats stats;
    sched::BlockSchedule sched = scheduler.scheduleBlock(block, stats);
    std::string problem = sched::verifySchedule(block, sched, low);
    if (!problem.empty()) {
        std::fprintf(stderr, "schedule invalid: %s\n", problem.c_str());
        return 1;
    }

    std::printf("Cycle | Operation\n");
    std::printf("------+--------------------------------\n");
    for (int32_t cycle = 0; cycle < sched.length; ++cycle) {
        for (size_t i = 0; i < block.instrs.size(); ++i) {
            if (sched.cycles[i] != cycle)
                continue;
            std::printf("%5d | %-8s%s\n", cycle,
                        low.opClasses()[block.instrs[i].op_class]
                            .name.c_str(),
                        sched.used_cascade[i]
                            ? "  (cascaded: same cycle as its producer)"
                            : "");
        }
    }
    std::printf("\nSchedule length: %d cycles; %llu scheduling attempts; "
                "%.2f resource checks per attempt.\n",
                sched.length,
                (unsigned long long)stats.checks.attempts,
                stats.checks.avgChecksPerAttempt());
    return 0;
}
