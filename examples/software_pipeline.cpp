/**
 * @file
 * Software pipelining walkthrough: modulo-schedule an inner loop on the
 * SuperSPARC with the MDES-driven iterative modulo scheduler (the
 * paper's reference [12]), print the MII analysis and the modulo
 * reservation table, and contrast the attempt counts with plain list
 * scheduling - the paper's argument for why efficient constraint
 * checking matters even more for advanced scheduling techniques.
 *
 * Run: ./build/examples/software_pipeline
 */

#include <cstdio>

#include "core/transforms.h"
#include "hmdes/compile.h"
#include "lmdes/low_mdes.h"
#include "machines/machines.h"
#include "sched/list_scheduler.h"
#include "sched/modulo_scheduler.h"

using namespace mdes;

namespace {

sched::Instr
op(const lmdes::LowMdes &low, const char *opcode,
   std::vector<int32_t> srcs, std::vector<int32_t> dsts)
{
    sched::Instr in;
    in.op_class = low.findOpClass(opcode);
    in.srcs = std::move(srcs);
    in.dsts = std::move(dsts);
    return in;
}

} // namespace

int
main()
{
    Mdes model = hmdes::compileOrThrow(machines::superSparc().source);
    runPipeline(model, PipelineConfig::all());
    lmdes::LowerOptions lopts;
    lopts.pack_bit_vector = true;
    lmdes::LowMdes low = lmdes::LowMdes::lower(model, lopts);

    // A latency-bound streaming loop (a[i] = b[i] * c for FP data):
    //   loop:  r10 = load [r1]       ; stream element (1-cycle latency)
    //          f12 = f10 * f5        ; 3-cycle FP multiply
    //          f13 = f12 + f6        ; 3-cycle FP add, chained
    //          store f13 -> [r4]
    //          r1  = r1 + 8          ; induction variables (recurrences)
    //          r4  = r4 + 8
    // List scheduling must ride the 7-cycle dependence chain every
    // iteration; modulo scheduling overlaps iterations down to the
    // memory unit's resource bound.
    sched::Block body;
    body.instrs = {
        op(low, "LD", {1}, {10}),
        op(low, "FMUL", {10, 5}, {12}),
        op(low, "FADD", {12, 6}, {13}),
        op(low, "ST", {13, 4}, {}),
        op(low, "ADD_I", {1}, {1}),
        op(low, "ADD_I", {4}, {4}),
    };

    sched::ModuloScheduler ms(low);
    sched::SchedStats modulo_stats;
    sched::ModuloSchedule sched = ms.schedule(body, modulo_stats);
    if (!sched.success) {
        std::fprintf(stderr, "modulo scheduling failed\n");
        return 1;
    }

    auto graph = sched::LoopDepGraph::build(body, low);
    std::string problem =
        sched::verifyModuloSchedule(body, graph, sched);
    if (!problem.empty()) {
        std::fprintf(stderr, "invalid modulo schedule: %s\n",
                     problem.c_str());
        return 1;
    }

    std::printf("Loop of %zu operations on the %s:\n", body.instrs.size(),
                low.machineName().c_str());
    std::printf("  ResMII (resource bound):    %d\n", sched.res_mii);
    std::printf("  RecMII (recurrence bound):  %d\n", sched.rec_mii);
    std::printf("  achieved II:                %d cycles/iteration\n",
                sched.ii);
    std::printf("  operations displaced:       %llu\n\n",
                (unsigned long long)sched.evictions);

    const char *names[] = {"LD",    "FMUL", "FADD",
                           "ST",    "ADD_I", "ADD_I"};
    std::printf("Flat schedule (issue time, stage = time / II):\n");
    for (size_t i = 0; i < body.instrs.size(); ++i) {
        std::printf("  op %zu %-6s time %2d  -> modulo slot %d, stage %d\n",
                    i, names[i], sched.times[i],
                    sched.times[i] % sched.ii,
                    sched.times[i] / sched.ii);
    }

    // Contrast with list scheduling of the same body (no overlap across
    // iterations): the loop takes schedule-length cycles per iteration.
    sched::ListScheduler ls(low);
    sched::SchedStats list_stats;
    sched::BlockSchedule flat = ls.scheduleBlock(body, list_stats);

    std::printf("\nList-scheduled loop body: %d cycles/iteration;\n",
                flat.length);
    std::printf("software pipelining sustains one iteration every %d "
                "cycles (%.2fx).\n",
                sched.ii, double(flat.length) / double(sched.ii));
    std::printf("\nScheduling effort (the paper's Section 4 point):\n");
    std::printf("  list scheduler:   %.2f attempts per operation\n",
                list_stats.avgAttemptsPerOp());
    std::printf("  modulo scheduler: %.2f attempts per operation\n",
                modulo_stats.avgAttemptsPerOp());
    std::printf("Every attempt is a resource-constraint query - exactly "
                "the cost the\nAND/OR-tree representation and the MDES "
                "transformations minimize.\n");
    return 0;
}
