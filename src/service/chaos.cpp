#include "service/chaos.h"

#include <filesystem>
#include <sstream>

#include "service/service.h"
#include "support/faultsim.h"
#include "support/json.h"

namespace mdes::service::chaos {

namespace fs = std::filesystem;

namespace {

/**
 * The request mix: one request per transform-bit pattern. Distinct
 * patterns mean distinct artifact keys (no cross-request single-flight
 * coupling, so per-request fault tokens fully determine each request's
 * fate), while the Section 4 invariant demands identical schedules
 * from every pattern.
 */
std::vector<ScheduleRequest>
requestMix(const ChaosConfig &config)
{
    std::vector<ScheduleRequest> mix;
    mix.reserve(config.requests);
    for (unsigned i = 0; i < config.requests; ++i) {
        ScheduleRequest req;
        req.machine = config.machine;
        req.synth_ops = config.synth_ops;
        PipelineConfig t;
        t.cse = i & 1;
        t.redundant_options = i & 2;
        t.time_shift = i & 4;
        t.sort_usages = i & 8;
        t.hoist = i & 16;
        t.sort_or_trees = i & 32;
        req.transforms = t;
        req.bit_vector = true;
        mix.push_back(std::move(req));
    }
    return mix;
}

/** Run the mix once in-process against a fresh service backed by
 * @p store_dir (the ground-truth driver; see RunDriver). */
RunStats
runOnce(const ChaosConfig &config, const std::string &store_dir)
{
    ServiceConfig sc;
    sc.num_workers = config.workers;
    sc.cache_capacity = config.requests + 4;
    sc.store_dir = store_dir;
    RunStats result;
    {
        MdesService service(sc);
        auto responses = service.runBatch(requestMix(config));
        for (const auto &resp : responses) {
            Outcome o;
            o.error_code = int(resp.error.code);
            o.degraded = resp.degraded;
            o.fingerprint = resp.ok() ? scheduleFingerprint(resp) : 0;
            result.outcomes.push_back(o);
            if (!resp.ok())
                ++result.failed;
            if (resp.degraded)
                ++result.degraded;
        }
        result.compiles = service.cache().stats().compiles;
    }
    return result;
}

/** Per-seed fault runs go through the configured driver; everything
 * else (baseline, recovery) stays in-process. */
RunStats
runSeed(const ChaosConfig &config, const std::string &store_dir)
{
    if (config.driver)
        return config.driver(config, store_dir, requestMix(config));
    return runOnce(config, store_dir);
}

std::string
describeOutcome(const Outcome &o)
{
    std::ostringstream out;
    out << "code=" << o.error_code << " degraded=" << o.degraded
        << " fingerprint=" << o.fingerprint;
    return out.str();
}

} // namespace

bool
SweepReport::ok() const
{
    if (!recovery_violations.empty())
        return false;
    for (const auto &s : seeds)
        if (!s.ok())
            return false;
    return true;
}

SweepReport
runSweep(const ChaosConfig &config)
{
    SweepReport report;
    report.config = config;
    fs::create_directories(config.store_base_dir);

    // Fault-free baseline: the one fingerprint every Ok response of
    // every seed must reproduce.
    faultsim::uninstall();
    {
        RunStats baseline = runOnce(
            config, (fs::path(config.store_base_dir) / "baseline").string());
        report.baseline_fingerprint =
            baseline.outcomes.empty() ? 0
                                      : baseline.outcomes[0].fingerprint;
        for (size_t i = 0; i < baseline.outcomes.size(); ++i) {
            if (baseline.outcomes[i].error_code != 0 ||
                baseline.outcomes[i].fingerprint !=
                    report.baseline_fingerprint) {
                report.recovery_violations.push_back(
                    "baseline request " + std::to_string(i) +
                    " unexpected: " + describeOutcome(baseline.outcomes[i]));
            }
        }
    }

    std::string last_store;
    for (unsigned s = 0; s < config.num_seeds; ++s) {
        uint64_t seed = config.first_seed + s;
        SeedResult sr;
        sr.seed = seed;
        faultsim::Plan plan = faultsim::Plan::fuzz(seed);
        sr.plan = plan.toString();

        std::string dir_a =
            (fs::path(config.store_base_dir) /
             ("seed" + std::to_string(seed) + "-a"))
                .string();
        std::string dir_b =
            (fs::path(config.store_base_dir) /
             ("seed" + std::to_string(seed) + "-b"))
                .string();

        faultsim::install(plan);
        RunStats a = runSeed(config, dir_a);
        auto counters = faultsim::counters();
        for (const auto &c : counters)
            sr.faults_fired += c.fires;
        faultsim::install(plan); // reset per-token hit state for replay
        RunStats b = runSeed(config, dir_b);
        faultsim::uninstall();

        sr.outcomes = a.outcomes;
        sr.degraded_responses = a.degraded;
        sr.failed_requests = a.failed;

        // Invariant 2 + 3: Ok responses carry the baseline fingerprint;
        // failures are only the injectable kinds.
        for (size_t i = 0; i < a.outcomes.size(); ++i) {
            const Outcome &o = a.outcomes[i];
            if (o.error_code == int(ErrorCode::Ok)) {
                if (o.fingerprint != report.baseline_fingerprint)
                    sr.violations.push_back(
                        "request " + std::to_string(i) +
                        " served a wrong schedule: " + describeOutcome(o));
            } else if (o.error_code != int(ErrorCode::CompileFailed)) {
                sr.violations.push_back(
                    "request " + std::to_string(i) +
                    " failed with an unexplainable code: " +
                    describeOutcome(o));
            }
        }
        // Invariant 4: bit-identical replay.
        if (a.outcomes.size() != b.outcomes.size()) {
            sr.violations.push_back("replay returned a different "
                                    "response count");
        } else {
            for (size_t i = 0; i < a.outcomes.size(); ++i) {
                if (!(a.outcomes[i] == b.outcomes[i]))
                    sr.violations.push_back(
                        "request " + std::to_string(i) +
                        " replayed differently: run A " +
                        describeOutcome(a.outcomes[i]) + " vs run B " +
                        describeOutcome(b.outcomes[i]));
            }
        }

        last_store = dir_a;
        report.seeds.push_back(std::move(sr));
        std::error_code ec;
        fs::remove_all(dir_b, ec);
        if (s + 1 < config.num_seeds)
            fs::remove_all(dir_a, ec);
    }

    // Invariant 5: recovery. Faults are off; the store that lived
    // through the last seed's faults must serve an all-Ok mix, heal
    // completely (second pass compiles nothing), and hold no
    // quarantined artifacts.
    if (!last_store.empty()) {
        RunStats heal = runOnce(config, last_store);
        for (size_t i = 0; i < heal.outcomes.size(); ++i) {
            const Outcome &o = heal.outcomes[i];
            if (o.error_code != 0 ||
                o.fingerprint != report.baseline_fingerprint)
                report.recovery_violations.push_back(
                    "recovery request " + std::to_string(i) +
                    " unexpected: " + describeOutcome(o));
            if (o.degraded)
                report.recovery_violations.push_back(
                    "recovery request " + std::to_string(i) +
                    " still degraded after faults stopped");
        }
        RunStats warm = runOnce(config, last_store);
        if (warm.compiles != 0)
            report.recovery_violations.push_back(
                "store did not heal: warm recovery run compiled " +
                std::to_string(warm.compiles) + " descriptions");
        store::StoreConfig sc;
        sc.dir = last_store;
        store::ArtifactStore store(sc);
        for (const auto &info : store.list()) {
            if (info.quarantined)
                report.recovery_violations.push_back(
                    "quarantined artifact survived recovery: " +
                    store::quarantineFileName(info.key));
        }
        std::error_code ec;
        fs::remove_all(last_store, ec);
    }
    {
        std::error_code ec;
        fs::remove_all(
            (fs::path(config.store_base_dir) / "baseline").string(), ec);
    }
    return report;
}

std::string
SweepReport::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.key("ok").value(ok());
    w.key("config").beginObject();
    w.key("workers").value(uint64_t(config.workers));
    w.key("requests").value(uint64_t(config.requests));
    w.key("first_seed").value(config.first_seed);
    w.key("num_seeds").value(uint64_t(config.num_seeds));
    w.key("machine").value(config.machine);
    w.key("synth_ops").value(uint64_t(config.synth_ops));
    w.key("driver").value(config.driver_name);
    w.endObject();
    w.key("baseline_fingerprint").value(baseline_fingerprint);
    w.key("seeds").beginArray();
    for (const auto &s : seeds) {
        w.beginObject();
        w.key("seed").value(s.seed);
        w.key("plan").value(s.plan);
        w.key("ok").value(s.ok());
        w.key("faults_fired").value(s.faults_fired);
        w.key("degraded_responses").value(s.degraded_responses);
        w.key("failed_requests").value(s.failed_requests);
        w.key("violations").beginArray();
        for (const auto &v : s.violations)
            w.value(v);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.key("recovery_violations").beginArray();
    for (const auto &v : recovery_violations)
        w.value(v);
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
SweepReport::toText() const
{
    std::ostringstream out;
    for (const auto &s : seeds) {
        out << "seed " << s.seed << ": "
            << (s.ok() ? "ok" : "FAILED") << "  (fired "
            << s.faults_fired << ", degraded " << s.degraded_responses
            << ", failed " << s.failed_requests << ")\n";
        for (const auto &v : s.violations)
            out << "    " << v << "\n";
        if (!s.ok())
            out << "    plan: " << s.plan << "\n";
    }
    for (const auto &v : recovery_violations)
        out << "recovery: " << v << "\n";
    out << (ok() ? "chaos sweep passed" : "chaos sweep FAILED") << " ("
        << seeds.size() << " seeds, " << config.driver_name
        << " driver)\n";
    return out.str();
}

} // namespace mdes::service::chaos
