#include "service/stats.h"

#include <algorithm>

#include "support/diagnostics.h"
#include "support/json.h"
#include "support/text_table.h"

namespace mdes::service {

namespace {

/** Serialize one StageLatency as count/total_us/max_us/buckets keys
 * into the currently open object. */
void
writeSeries(JsonWriter &w, const StageLatency &s)
{
    w.key("count").value(s.count);
    w.key("total_us").value(s.total_us);
    w.key("max_us").value(s.max_us);
    w.key("buckets").beginArray();
    for (uint64_t b = 0; b <= s.log2_us.maxValue(); ++b)
        w.value(s.log2_us.countAt(b));
    w.endArray();
}

void
writeView(JsonWriter &w, const char *name, const WindowView &v)
{
    w.key(name).beginObject();
    w.key("horizon_s").value(v.horizon_s);
    w.key("requests").value(v.requests);
    w.key("ok").value(v.ok);
    w.key("errors").value(v.errors);
    w.key("shed").value(v.shed);
    w.key("rate_per_s").value(v.ratePerS());
    w.key("p50_us").value(v.total.approxPercentileUs(0.50));
    w.key("p95_us").value(v.total.approxPercentileUs(0.95));
    w.key("p99_us").value(v.total.approxPercentileUs(0.99));
    w.key("mean_us").value(v.total.meanUs());
    w.key("max_us").value(v.total.max_us);
    w.endObject();
}

uint64_t
u64Field(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    return v != nullptr && v->kind == JsonValue::Kind::Number
               ? jsonU64(*v)
               : 0;
}

/** Reconstruct a StageLatency from count/total_us/max_us/buckets. */
StageLatency
parseSeries(const JsonValue &obj)
{
    StageLatency s;
    s.count = u64Field(obj, "count");
    s.total_us = u64Field(obj, "total_us");
    s.max_us = u64Field(obj, "max_us");
    if (const JsonValue *buckets = obj.find("buckets");
        buckets != nullptr && buckets->kind == JsonValue::Kind::Array) {
        for (size_t b = 0; b < buckets->array.size(); ++b) {
            if (buckets->array[b].kind == JsonValue::Kind::Number)
                s.log2_us.addCount(b, jsonU64(buckets->array[b]));
        }
    }
    return s;
}

const JsonValue &
requireObject(const JsonValue *v, const char *what)
{
    if (v == nullptr || v->kind != JsonValue::Kind::Object)
        throw MdesError(std::string("stats document: missing object ") +
                        what);
    return *v;
}

} // namespace

StatSnapshot
makeStatSnapshot(const ServiceMetrics &metrics, uint64_t now_s)
{
    StatSnapshot snap;
    snap.now_s = now_s;
    snap.shards = 1;
    snap.requests = metrics.requests;
    snap.ok = metrics.ok;
    uint64_t errors = 0;
    for (size_t i = 1; i < size_t(ErrorCode::kNumCodes); ++i)
        errors += metrics.errors[i];
    snap.errors = errors;
    snap.shed = metrics.requests_shed;
    snap.lifetime_total = metrics.total;
    snap.windows = metrics.windows;
    snap.net.enabled = metrics.net.enabled;
    snap.net.active = metrics.net.active;
    snap.net.accepted = metrics.net.accepted;
    snap.net.frames_in = metrics.net.frames_in;
    snap.net.frames_out = metrics.net.frames_out;
    snap.net.stats_requests = metrics.net.stats_requests;
    snap.net.stats_coalesced = metrics.net.stats_coalesced;
    return snap;
}

std::string
statsToJson(const StatSnapshot &snap)
{
    JsonWriter w;
    w.beginObject();
    w.key("now_s").value(snap.now_s);
    w.key("shards").value(snap.shards);
    w.key("stale_shards").value(snap.stale_shards);

    w.key("lifetime").beginObject();
    w.key("requests").value(snap.requests);
    w.key("ok").value(snap.ok);
    w.key("errors").value(snap.errors);
    w.key("shed").value(snap.shed);
    writeSeries(w, snap.lifetime_total);
    w.key("p50_us").value(snap.lifetime_total.approxPercentileUs(0.50));
    w.key("p95_us").value(snap.lifetime_total.approxPercentileUs(0.95));
    w.key("p99_us").value(snap.lifetime_total.approxPercentileUs(0.99));
    w.endObject();

    w.key("windows").beginObject();
    w.key("slots").beginArray();
    for (size_t i = 0; i < kWindowSlots; ++i) {
        const MetricsWindow &slot = snap.windows.slot(i);
        if (slot.epoch == 0)
            continue;
        w.beginObject();
        w.key("epoch").value(slot.epoch);
        w.key("requests").value(slot.requests);
        w.key("ok").value(slot.ok);
        w.key("errors").value(slot.errors);
        w.key("shed").value(slot.shed);
        writeSeries(w, slot.total);
        w.endObject();
    }
    w.endArray();
    writeView(w, "w10", snap.windows.over(snap.now_s, 10));
    writeView(w, "w60", snap.windows.over(snap.now_s, 60));
    w.endObject();

    w.key("net").beginObject();
    w.key("enabled").value(snap.net.enabled);
    w.key("active").value(snap.net.active);
    w.key("accepted").value(snap.net.accepted);
    w.key("frames_in").value(snap.net.frames_in);
    w.key("frames_out").value(snap.net.frames_out);
    w.key("stats_requests").value(snap.net.stats_requests);
    w.key("stats_coalesced").value(snap.net.stats_coalesced);
    w.endObject();

    if (!snap.per_shard.empty()) {
        w.key("per_shard").beginArray();
        for (const StatSnapshot::ShardRow &row : snap.per_shard) {
            w.beginObject();
            w.key("shard").value(row.shard);
            w.key("stale").value(row.stale);
            w.key("requests").value(row.requests);
            w.key("w60_requests").value(row.w60_requests);
            w.key("w60_rate_per_s").value(row.w60_rate_per_s);
            w.key("w60_p99_us").value(row.w60_p99_us);
            if (snap.supervision.enabled) {
                w.key("pid").value(int64_t(row.pid));
                w.key("restarts").value(row.restarts);
                w.key("state").value(
                    !row.state.empty() ? row.state
                    : row.stale        ? "stale"
                                       : "live");
            }
            w.endObject();
        }
        w.endArray();
    }

    if (snap.supervision.enabled) {
        w.key("supervision").beginObject();
        w.key("health").value(snap.supervision.health);
        w.key("restarts").value(snap.supervision.restarts);
        w.key("crashes").value(snap.supervision.crashes);
        w.key("wedged_shards").value(snap.supervision.wedged_shards);
        w.key("quarantined").value(snap.supervision.quarantined);
        w.endObject();
    }
    w.endObject();
    return w.str();
}

std::string
statsToJson(const ServiceMetrics &metrics, uint64_t now_s)
{
    return statsToJson(makeStatSnapshot(metrics, now_s));
}

StatSnapshot
parseStats(const std::string &json)
{
    const JsonValue doc = parseJson(json);
    if (doc.kind != JsonValue::Kind::Object)
        throw MdesError("stats document: not a JSON object");

    StatSnapshot snap;
    snap.now_s = u64Field(doc, "now_s");
    snap.shards = u64Field(doc, "shards");
    if (snap.shards == 0)
        snap.shards = 1;
    snap.stale_shards = u64Field(doc, "stale_shards");

    const JsonValue &lifetime =
        requireObject(doc.find("lifetime"), "lifetime");
    snap.requests = u64Field(lifetime, "requests");
    snap.ok = u64Field(lifetime, "ok");
    snap.errors = u64Field(lifetime, "errors");
    snap.shed = u64Field(lifetime, "shed");
    snap.lifetime_total = parseSeries(lifetime);

    const JsonValue &windows =
        requireObject(doc.find("windows"), "windows");
    if (const JsonValue *slots = windows.find("slots");
        slots != nullptr && slots->kind == JsonValue::Kind::Array) {
        for (const JsonValue &sv : slots->array) {
            if (sv.kind != JsonValue::Kind::Object)
                continue;
            const uint64_t epoch = u64Field(sv, "epoch");
            if (epoch == 0)
                continue;
            MetricsWindow parsed;
            parsed.epoch = epoch;
            parsed.requests = u64Field(sv, "requests");
            parsed.ok = u64Field(sv, "ok");
            parsed.errors = u64Field(sv, "errors");
            parsed.shed = u64Field(sv, "shed");
            parsed.total = parseSeries(sv);
            // Same placement rule as live recording: epoch % slots.
            MetricsWindow &slot =
                snap.windows.slot(size_t(epoch % kWindowSlots));
            if (slot.epoch == epoch) {
                slot.requests += parsed.requests;
                slot.ok += parsed.ok;
                slot.errors += parsed.errors;
                slot.shed += parsed.shed;
                slot.total.merge(parsed.total);
            } else if (epoch > slot.epoch) {
                slot = std::move(parsed);
            }
        }
    }

    if (const JsonValue *net = doc.find("net");
        net != nullptr && net->kind == JsonValue::Kind::Object) {
        const JsonValue *enabled = net->find("enabled");
        snap.net.enabled = enabled != nullptr &&
                           enabled->kind == JsonValue::Kind::Bool &&
                           enabled->boolean;
        snap.net.active = u64Field(*net, "active");
        snap.net.accepted = u64Field(*net, "accepted");
        snap.net.frames_in = u64Field(*net, "frames_in");
        snap.net.frames_out = u64Field(*net, "frames_out");
        snap.net.stats_requests = u64Field(*net, "stats_requests");
        snap.net.stats_coalesced = u64Field(*net, "stats_coalesced");
    }

    if (const JsonValue *rows = doc.find("per_shard");
        rows != nullptr && rows->kind == JsonValue::Kind::Array) {
        for (const JsonValue &rv : rows->array) {
            if (rv.kind != JsonValue::Kind::Object)
                continue;
            StatSnapshot::ShardRow row;
            row.shard = u64Field(rv, "shard");
            const JsonValue *stale = rv.find("stale");
            row.stale = stale != nullptr &&
                        stale->kind == JsonValue::Kind::Bool &&
                        stale->boolean;
            row.requests = u64Field(rv, "requests");
            row.w60_requests = u64Field(rv, "w60_requests");
            if (const JsonValue *rate = rv.find("w60_rate_per_s");
                rate != nullptr &&
                rate->kind == JsonValue::Kind::Number)
                row.w60_rate_per_s = rate->number;
            row.w60_p99_us = u64Field(rv, "w60_p99_us");
            if (const JsonValue *pid = rv.find("pid");
                pid != nullptr && pid->kind == JsonValue::Kind::Number)
                row.pid = int64_t(pid->number);
            row.restarts = u64Field(rv, "restarts");
            if (const JsonValue *state = rv.find("state");
                state != nullptr &&
                state->kind == JsonValue::Kind::String)
                row.state = state->string;
            snap.per_shard.push_back(row);
        }
    }

    if (const JsonValue *sup = doc.find("supervision");
        sup != nullptr && sup->kind == JsonValue::Kind::Object) {
        snap.supervision.enabled = true;
        if (const JsonValue *health = sup->find("health");
            health != nullptr &&
            health->kind == JsonValue::Kind::String)
            snap.supervision.health = health->string;
        snap.supervision.restarts = u64Field(*sup, "restarts");
        snap.supervision.crashes = u64Field(*sup, "crashes");
        snap.supervision.wedged_shards = u64Field(*sup, "wedged_shards");
        snap.supervision.quarantined = u64Field(*sup, "quarantined");
    }
    return snap;
}

namespace {

StatSnapshot
mergeFleet(const std::vector<std::string> &shard_jsons, uint64_t now_s)
{
    StatSnapshot fleet;
    fleet.now_s = now_s;
    fleet.shards = 0;
    for (size_t i = 0; i < shard_jsons.size(); ++i) {
        StatSnapshot::ShardRow row;
        row.shard = uint64_t(i);
        if (shard_jsons[i].empty()) {
            row.stale = true;
            ++fleet.stale_shards;
            fleet.per_shard.push_back(row);
            continue;
        }
        StatSnapshot shard;
        try {
            shard = parseStats(shard_jsons[i]);
        } catch (const std::exception &) {
            row.stale = true;
            ++fleet.stale_shards;
            fleet.per_shard.push_back(row);
            continue;
        }
        ++fleet.shards;
        fleet.requests += shard.requests;
        fleet.ok += shard.ok;
        fleet.errors += shard.errors;
        fleet.shed += shard.shed;
        // The fleet distribution is the merge of the shard
        // distributions (Histogram::merge underneath) - percentiles
        // are computed over the merged buckets, never averaged.
        fleet.lifetime_total.merge(shard.lifetime_total);
        fleet.windows.merge(shard.windows);
        fleet.net.enabled = fleet.net.enabled || shard.net.enabled;
        fleet.net.active += shard.net.active;
        fleet.net.accepted += shard.net.accepted;
        fleet.net.frames_in += shard.net.frames_in;
        fleet.net.frames_out += shard.net.frames_out;
        fleet.net.stats_requests += shard.net.stats_requests;
        fleet.net.stats_coalesced += shard.net.stats_coalesced;

        const WindowView w60 = shard.windows.over(now_s, 60);
        row.requests = shard.requests;
        row.w60_requests = w60.requests;
        row.w60_rate_per_s = w60.ratePerS();
        row.w60_p99_us = w60.total.approxPercentileUs(0.99);
        fleet.per_shard.push_back(row);
    }
    if (fleet.shards == 0)
        fleet.shards = 1; // an all-stale fleet still reports itself
    return fleet;
}

} // namespace

std::string
mergeShardStats(const std::vector<std::string> &shard_jsons,
                uint64_t now_s)
{
    return statsToJson(mergeFleet(shard_jsons, now_s));
}

std::string
mergeShardStats(const std::vector<std::string> &shard_jsons,
                uint64_t now_s, const SupervisionInfo &sup,
                const std::vector<ShardSupervision> &shard_sup)
{
    StatSnapshot fleet = mergeFleet(shard_jsons, now_s);
    fleet.supervision = sup;
    fleet.supervision.enabled = true;
    for (StatSnapshot::ShardRow &row : fleet.per_shard) {
        if (row.shard >= shard_sup.size())
            continue;
        const ShardSupervision &s = shard_sup[size_t(row.shard)];
        row.pid = s.pid;
        row.restarts = s.restarts;
        row.state = s.state;
    }
    return statsToJson(fleet);
}

std::string
renderStats(const StatSnapshot &snap)
{
    std::string out;

    TextTable head;
    head.setHeader({"Shards", "Stale", "Requests", "OK", "Errors",
                    "Shed", "Conns", "Lifetime p50 us",
                    "Lifetime p99 us"});
    head.addRow({std::to_string(snap.shards),
                 std::to_string(snap.stale_shards),
                 std::to_string(snap.requests), std::to_string(snap.ok),
                 std::to_string(snap.errors), std::to_string(snap.shed),
                 snap.net.enabled ? std::to_string(snap.net.active) : "-",
                 std::to_string(
                     snap.lifetime_total.approxPercentileUs(0.50)),
                 std::to_string(
                     snap.lifetime_total.approxPercentileUs(0.99))});
    out += head.toString();

    if (snap.supervision.enabled) {
        TextTable sup;
        sup.setHeader({"Health", "Restarts", "Crashes", "Wedged",
                       "Quarantined"});
        sup.addRow({snap.supervision.health,
                    std::to_string(snap.supervision.restarts),
                    std::to_string(snap.supervision.crashes),
                    std::to_string(snap.supervision.wedged_shards),
                    std::to_string(snap.supervision.quarantined)});
        out += sup.toString();
    }

    TextTable win;
    win.setHeader({"Window", "Requests", "Rate/s", "Errors", "Shed",
                   "p50 us", "p95 us", "p99 us"});
    auto addRow = [&](const char *name, const WindowView &v) {
        win.addRow({name, std::to_string(v.requests),
                    TextTable::num(v.ratePerS(), 1),
                    std::to_string(v.errors), std::to_string(v.shed),
                    std::to_string(v.total.approxPercentileUs(0.50)),
                    std::to_string(v.total.approxPercentileUs(0.95)),
                    std::to_string(v.total.approxPercentileUs(0.99))});
    };
    addRow("last 10s", snap.windows.over(snap.now_s, 10));
    addRow("last 60s", snap.windows.over(snap.now_s, 60));
    out += win.toString();

    if (!snap.per_shard.empty()) {
        TextTable shards;
        const bool sup = snap.supervision.enabled;
        if (sup)
            shards.setHeader({"Shard", "State", "Pid", "Restarts",
                              "Requests", "60s Requests", "60s Rate/s",
                              "60s p99 us"});
        else
            shards.setHeader({"Shard", "State", "Requests",
                              "60s Requests", "60s Rate/s",
                              "60s p99 us"});
        for (const StatSnapshot::ShardRow &row : snap.per_shard) {
            // A supervised-but-down shard shows its supervision state
            // (backoff/quarantined) instead of a bare STALE.
            std::string state = !row.state.empty()
                                    ? row.state
                                    : (row.stale ? "STALE" : "live");
            if (row.stale && row.state == "live")
                state = "STALE";
            std::vector<std::string> cols;
            cols.push_back(std::to_string(row.shard));
            cols.push_back(state);
            if (sup) {
                cols.push_back(row.pid >= 0 ? std::to_string(row.pid)
                                            : "-");
                cols.push_back(std::to_string(row.restarts));
            }
            cols.push_back(row.stale ? "-"
                                     : std::to_string(row.requests));
            cols.push_back(row.stale
                               ? "-"
                               : std::to_string(row.w60_requests));
            cols.push_back(row.stale
                               ? "-"
                               : TextTable::num(row.w60_rate_per_s, 1));
            cols.push_back(row.stale ? "-"
                                     : std::to_string(row.w60_p99_us));
            shards.addRow(cols);
        }
        out += shards.toString();
    }
    return out;
}

} // namespace mdes::service
