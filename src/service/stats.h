#ifndef MDES_SERVICE_STATS_H
#define MDES_SERVICE_STATS_H

/**
 * @file
 * The live stats protocol document: the compact JSON snapshot served
 * over a STAT binary frame or a {"op":"stats"} JSON-lines request.
 *
 * Unlike ServiceMetrics::toJson() (a full diagnostic dump), this
 * document is built for polling and for *reaggregation*: the window
 * ring is serialized slot-by-slot with its raw log2 bucket arrays, so
 * a shard parent can parse N children's documents, reconstruct their
 * histograms, merge them with Histogram::merge, and serve one fleet
 * view whose percentiles are computed over the merged distribution -
 * not averaged from per-shard percentiles, which would be wrong.
 *
 * Schema (stable; validated by CI):
 *
 *   {"now_s":..., "shards":N, "stale_shards":N,
 *    "lifetime":{"requests":..,"ok":..,"errors":..,"shed":..,
 *                "count":..,"total_us":..,"max_us":..,"buckets":[..],
 *                "p50_us":..,"p95_us":..,"p99_us":..},
 *    "windows":{"slots":[{"epoch":..,"requests":..,"ok":..,
 *                         "errors":..,"shed":..,"count":..,
 *                         "total_us":..,"max_us":..,"buckets":[..]},...],
 *               "w10":{...view...}, "w60":{...view...}},
 *    "net":{"active":..,"accepted":..,"frames_in":..,"frames_out":..,
 *           "stats_requests":..,"stats_coalesced":..},
 *    "per_shard":[{"shard":0,"stale":false,"requests":..,
 *                  "w60_requests":..,"w60_rate_per_s":..,
 *                  "w60_p99_us":..,"pid":..,"restarts":..,
 *                  "state":"live"},...],
 *    "supervision":{"health":"ready","restarts":..,"crashes":..,
 *                   "wedged_shards":..,"quarantined":..}}
 *
 * "per_shard" appears only in fleet documents (sharded parent), and
 * "supervision" plus the per-shard pid/restarts/state columns only
 * when a supervisor contributed (DESIGN.md §15). A window view is
 * {"horizon_s","requests","ok","errors","shed","rate_per_s","p50_us",
 * "p95_us","p99_us","mean_us","max_us"}.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "service/metrics.h"

namespace mdes::service {

/**
 * Parent-side supervision state for one shard, injected into the fleet
 * document by the shard parent (DESIGN.md §15). The shards themselves
 * know nothing about restarts; only the supervisor can account them.
 */
struct ShardSupervision
{
    /** Kernel pid, -1 while the shard is down (backoff/quarantine). */
    int64_t pid = -1;
    /** Respawns performed for this slot. */
    uint64_t restarts = 0;
    /** Unexpected exits (crash or kill) observed for this slot. */
    uint64_t crashes = 0;
    /** Watchdog SIGKILLs (heartbeat deadline missed) for this slot. */
    uint64_t wedges = 0;
    /** "live" | "backoff" | "quarantined". */
    std::string state = "live";
};

/** Fleet-level supervision summary (fleet documents only). */
struct SupervisionInfo
{
    bool enabled = false;
    /** "ready" | "draining" | "degraded". */
    std::string health = "ready";
    uint64_t restarts = 0;
    uint64_t crashes = 0;
    /** Watchdog kills: shards that stopped heartbeating and were
     * SIGKILLed — accounted distinctly from crashes. */
    uint64_t wedged_shards = 0;
    /** Shards currently quarantined after rapid crash loops. */
    uint64_t quarantined = 0;
};

/** In-memory form of one stats document (shard-local or fleet). */
struct StatSnapshot
{
    uint64_t now_s = 0;
    /** Processes contributing to this document (1 = single server). */
    uint64_t shards = 1;
    /** Shards that failed to answer the fleet poll in time; their
     * deltas are missing from this document. */
    uint64_t stale_shards = 0;

    // Lifetime totals.
    uint64_t requests = 0;
    uint64_t ok = 0;
    uint64_t errors = 0;
    uint64_t shed = 0;
    /** Lifetime end-to-end latency distribution. */
    StageLatency lifetime_total;

    /** The per-10s delta ring (see metrics.h). */
    WindowRing windows;

    struct Net
    {
        bool enabled = false;
        uint64_t active = 0;
        uint64_t accepted = 0;
        uint64_t frames_in = 0;
        uint64_t frames_out = 0;
        uint64_t stats_requests = 0;
        uint64_t stats_coalesced = 0;
    } net;

    struct ShardRow
    {
        uint64_t shard = 0;
        bool stale = false;
        uint64_t requests = 0;
        uint64_t w60_requests = 0;
        double w60_rate_per_s = 0.0;
        uint64_t w60_p99_us = 0;
        // Supervision columns (fleet documents with a supervisor).
        int64_t pid = -1;
        uint64_t restarts = 0;
        /** "" = unknown (serialized from stale), else the supervisor's
         * view: "live" | "backoff" | "quarantined". */
        std::string state;
    };
    /** Per-shard breakdown (fleet documents only). */
    std::vector<ShardRow> per_shard;

    /** Supervision summary; serialized only when enabled. */
    SupervisionInfo supervision;
};

/** Build one process's snapshot from its merged metrics. */
StatSnapshot makeStatSnapshot(const ServiceMetrics &metrics,
                              uint64_t now_s);

/** Serialize a snapshot as the protocol JSON document. */
std::string statsToJson(const StatSnapshot &snap);

/** Convenience: makeStatSnapshot + statsToJson. */
std::string statsToJson(const ServiceMetrics &metrics, uint64_t now_s);

/** Parse a protocol document. Throws MdesError on malformed input. */
StatSnapshot parseStats(const std::string &json);

/**
 * Merge shard-local documents into one fleet document evaluated at
 * @p now_s. @p shard_jsons[i] is shard i's answer; an empty string
 * means the shard did not answer in time and is reported stale (its
 * numbers are simply missing - a partial fleet view beats a blocked
 * one). Malformed answers also count as stale. Always returns a
 * well-formed document.
 */
std::string mergeShardStats(const std::vector<std::string> &shard_jsons,
                            uint64_t now_s);

/**
 * As above, but stamped with the supervisor's view: @p sup becomes the
 * document's "supervision" object and @p shard_sup[i] (when provided)
 * fills shard i's pid/restarts/state columns. A quarantined or
 * backoff shard answers no polls, so its row shows the supervision
 * state instead of a bare "STALE".
 */
std::string
mergeShardStats(const std::vector<std::string> &shard_jsons,
                uint64_t now_s, const SupervisionInfo &sup,
                const std::vector<ShardSupervision> &shard_sup);

/** Render a snapshot as the `mdesc top` dashboard text. */
std::string renderStats(const StatSnapshot &snap);

} // namespace mdes::service

#endif // MDES_SERVICE_STATS_H
