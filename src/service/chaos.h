#ifndef MDES_SERVICE_CHAOS_H
#define MDES_SERVICE_CHAOS_H

/**
 * @file
 * The chaos harness: seeded fault schedules replayed against a live
 * multi-worker service, with every robustness invariant checked.
 *
 * Each seed expands (via faultsim::Plan::fuzz) into a fault schedule
 * that is installed process-wide while a fresh service runs a fixed
 * request mix. The mix varies the transform-pipeline bits per request,
 * so every request mints a distinct artifact key (no single-flight
 * coupling between requests) while — by the paper's Section 4
 * invariant — every successful response must still produce the
 * identical schedule fingerprint. That turns "no corrupt artifact is
 * ever served" into one equality check.
 *
 * Invariants asserted per seed (any violation fails the sweep):
 *  1. No crash, no hang: every request completes with a typed outcome.
 *  2. No corrupt artifact served: every Ok response's schedule
 *     fingerprint equals the fault-free baseline.
 *  3. Only explainable errors: under this fault set a request may fail
 *     only with CompileFailed (injected allocation failure); anything
 *     else is a bug.
 *  4. Deterministic replay: running the same seed twice (fresh service
 *     and store each time) yields identical per-request outcomes
 *     (error code, degraded flag, fingerprint).
 *  5. Clean recovery: with faults uninstalled, the same mix against the
 *     surviving store completes all-Ok, a second pass compiles nothing
 *     (the store healed), and no quarantined artifact remains.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "service/service.h"

namespace mdes::service::chaos {

/** One request's observable outcome (the replay-equality unit). */
struct Outcome
{
    int error_code = 0;
    bool degraded = false;
    uint64_t fingerprint = 0;

    bool operator==(const Outcome &) const = default;
};

/** What one run of the mix produced (per-request outcomes plus the
 * aggregates the invariants consume). */
struct RunStats
{
    std::vector<Outcome> outcomes;
    uint64_t compiles = 0;
    uint64_t degraded = 0;
    uint64_t failed = 0;
};

struct ChaosConfig;

/**
 * Pluggable per-seed run driver: execute @p mix against a fresh
 * service backed by @p store_dir and report what each request
 * observably did. The default (null) driver submits in-process via
 * runBatch; mdes::net installs a socket driver that pushes the same
 * mix through a loopback server with one connection per request -
 * connection churn - and bounded transport retries. Baseline and
 * recovery phases always run in-process (they define ground truth).
 */
using RunDriver = std::function<RunStats(
    const ChaosConfig &config, const std::string &store_dir,
    const std::vector<ScheduleRequest> &mix)>;

/** Sweep parameters. */
struct ChaosConfig
{
    /** Service worker threads per run. */
    unsigned workers = 4;
    /** Requests per run (each gets a distinct transform-bit pattern). */
    unsigned requests = 12;
    /** First fault seed; the sweep covers [first_seed,
     * first_seed + num_seeds). */
    uint64_t first_seed = 1;
    unsigned num_seeds = 25;
    /** Parent directory for the per-run store directories (a fresh
     * subdirectory per run keeps replays bit-identical). */
    std::string store_base_dir;
    /** Built-in machine driving the mix. */
    std::string machine = "K5";
    /** Synthetic workload size (small keeps a 25-seed sweep fast). */
    size_t synth_ops = 300;
    /** Per-seed run driver override (see RunDriver); null = in-process. */
    RunDriver driver;
    /** Label for reports ("in-process", "socket"). */
    std::string driver_name = "in-process";
};

/** What one seed's run produced. */
struct SeedResult
{
    uint64_t seed = 0;
    /** The installed plan, in faultsim::Plan::parse syntax - paste into
     * `mdesc chaos --seed`/`--faults` to reproduce. */
    std::string plan;
    std::vector<Outcome> outcomes;
    /** Human-readable invariant violations (empty = seed passed). */
    std::vector<std::string> violations;
    uint64_t faults_fired = 0;
    uint64_t degraded_responses = 0;
    uint64_t failed_requests = 0;

    bool ok() const { return violations.empty(); }
};

/** The whole sweep's verdict. */
struct SweepReport
{
    ChaosConfig config;
    uint64_t baseline_fingerprint = 0;
    std::vector<SeedResult> seeds;
    /** Violations from the post-sweep recovery phase. */
    std::vector<std::string> recovery_violations;

    bool ok() const;
    /** Machine-readable report (CI uploads this on failure). */
    std::string toJson() const;
    /** One-line-per-seed human summary. */
    std::string toText() const;
};

/**
 * Run the full sweep: baseline, then per-seed fault runs with replay
 * verification, then the recovery phase. Leaves faultsim uninstalled.
 * Creates (and cleans up) per-run store directories under
 * config.store_base_dir.
 */
SweepReport runSweep(const ChaosConfig &config);

} // namespace mdes::service::chaos

#endif // MDES_SERVICE_CHAOS_H
