#include "service/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>

#include "support/json.h"
#include "support/text_table.h"

namespace mdes::service {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::Ok: return "ok";
    case ErrorCode::UnknownMachine: return "unknown-machine";
    case ErrorCode::CompileFailed: return "compile-failed";
    case ErrorCode::BadWorkload: return "bad-workload";
    case ErrorCode::BadRequest: return "bad-request";
    case ErrorCode::DeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::Cancelled: return "cancelled";
    case ErrorCode::ScheduleFailed: return "schedule-failed";
    case ErrorCode::Internal: return "internal";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::CircuitOpen: return "circuit-open";
    case ErrorCode::Degraded: return "degraded";
    case ErrorCode::Draining: return "draining";
    case ErrorCode::kNumCodes: break;
    }
    return "?";
}

void
StageLatency::record(uint64_t us)
{
    log2_us.add(std::bit_width(us));
    ++count;
    total_us += us;
    if (us > max_us)
        max_us = us;
}

void
StageLatency::merge(const StageLatency &other)
{
    log2_us.merge(other.log2_us);
    count += other.count;
    total_us += other.total_us;
    if (other.max_us > max_us)
        max_us = other.max_us;
}

uint64_t
StageLatency::approxPercentileUs(double q) const
{
    if (count == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Nearest-rank of the q-th sample, 1-based; walk buckets until
    // reached. Ceiling keeps the estimate conservative: p99 of 10
    // samples is the 10th, not the 9th.
    uint64_t rank = uint64_t(std::ceil(q * double(count)));
    if (rank < 1)
        rank = 1;
    uint64_t seen = 0;
    for (uint64_t b = 0; b <= log2_us.maxValue(); ++b) {
        const uint64_t here = log2_us.countAt(b);
        seen += here;
        if (seen < rank)
            continue;
        if (b == 0)
            return 0; // the zero-microsecond bucket
        const uint64_t lo = b == 1 ? 1 : (1ull << (b - 1));
        const uint64_t hi = b >= 64 ? UINT64_MAX : (1ull << b) - 1;
        // Interpolate within the bucket: its `here` samples are
        // assumed evenly spread over [lo, hi], and the rank-th sits
        // pos/here of the way up. The old upper-edge answer overstated
        // by the full bucket width (2x at the coarse tail buckets).
        const uint64_t pos = rank - (seen - here);
        uint64_t est = lo;
        if (hi > lo)
            est += uint64_t(double(hi - lo) *
                            (double(pos) / double(here)));
        return est < max_us ? est : max_us;
    }
    return max_us;
}

uint64_t
windowNowS()
{
    // steady_clock is CLOCK_MONOTONIC on Linux: one machine-wide
    // origin, so epochs agree across forked shard processes.
    return uint64_t(std::chrono::duration_cast<std::chrono::seconds>(
                        std::chrono::steady_clock::now()
                            .time_since_epoch())
                        .count());
}

MetricsWindow &
WindowRing::claim(uint64_t now_s)
{
    const uint64_t epoch = now_s / kWindowSeconds;
    MetricsWindow &slot = slots_[epoch % kWindowSlots];
    if (slot.epoch != epoch) {
        // Rotation: evict the slot's previous (ring-length-old)
        // tenant. Its deltas are already past every horizon.
        slot = MetricsWindow{};
        slot.epoch = epoch;
    }
    return slot;
}

void
WindowRing::record(uint64_t now_s, ErrorCode code, uint64_t total_us)
{
    MetricsWindow &slot = claim(now_s);
    ++slot.requests;
    if (code == ErrorCode::Ok)
        ++slot.ok;
    else
        ++slot.errors;
    slot.total.record(total_us);
}

void
WindowRing::recordShed(uint64_t now_s, uint64_t n)
{
    MetricsWindow &slot = claim(now_s);
    slot.requests += n;
    slot.errors += n;
    slot.shed += n;
}

void
WindowRing::merge(const WindowRing &other)
{
    for (size_t i = 0; i < kWindowSlots; ++i) {
        const MetricsWindow &theirs = other.slots_[i];
        if (theirs.epoch == 0)
            continue;
        MetricsWindow &mine = slots_[i];
        if (mine.epoch == theirs.epoch) {
            mine.requests += theirs.requests;
            mine.ok += theirs.ok;
            mine.errors += theirs.errors;
            mine.shed += theirs.shed;
            mine.total.merge(theirs.total);
        } else if (theirs.epoch > mine.epoch) {
            mine = theirs;
        }
        // theirs.epoch < mine.epoch: stale by a full ring; drop.
    }
}

WindowView
WindowRing::over(uint64_t now_s, uint64_t horizon_s) const
{
    WindowView view;
    view.horizon_s = horizon_s;
    const uint64_t cur = now_s / kWindowSeconds;
    uint64_t span = horizon_s / kWindowSeconds;
    if (span == 0)
        span = 1;
    // Leave one slot of slack so a claim racing this snapshot can
    // only touch a slot already outside the horizon.
    if (span > kWindowSlots - 1)
        span = kWindowSlots - 1;
    const uint64_t min_epoch = cur >= span - 1 ? cur - (span - 1) : 0;
    for (const MetricsWindow &slot : slots_) {
        if (slot.epoch == 0 || slot.epoch < min_epoch ||
            slot.epoch > cur)
            continue;
        view.requests += slot.requests;
        view.ok += slot.ok;
        view.errors += slot.errors;
        view.shed += slot.shed;
        view.total.merge(slot.total);
    }
    return view;
}

bool
WindowRing::empty() const
{
    for (const MetricsWindow &slot : slots_)
        if (slot.epoch != 0 && slot.requests != 0)
            return false;
    return true;
}

void
TransformEffects::add(const PipelineStats &stats)
{
    merged_options += stats.cse.merged_options;
    merged_or_trees += stats.cse.merged_or_trees;
    merged_trees += stats.cse.merged_trees;
    removed_dead += stats.cse.removed_dead;
    redundant_options_removed += stats.redundant_options_removed;
    trees_reordered += stats.trees_reordered;
    usages_hoisted += stats.usages_hoisted;
    resources_shifted += stats.resources_shifted;
}

void
TransformEffects::merge(const TransformEffects &other)
{
    merged_options += other.merged_options;
    merged_or_trees += other.merged_or_trees;
    merged_trees += other.merged_trees;
    removed_dead += other.removed_dead;
    redundant_options_removed += other.redundant_options_removed;
    trees_reordered += other.trees_reordered;
    usages_hoisted += other.usages_hoisted;
    resources_shifted += other.resources_shifted;
}

void
NetStats::merge(const NetStats &other)
{
    enabled = enabled || other.enabled;
    accepted += other.accepted;
    closed += other.closed;
    active += other.active;
    resets += other.resets;
    frames_in += other.frames_in;
    frames_out += other.frames_out;
    bytes_in += other.bytes_in;
    bytes_out += other.bytes_out;
    protocol_errors += other.protocol_errors;
    bad_requests += other.bad_requests;
    shed += other.shed;
    deadline_expired += other.deadline_expired;
    backpressure_stalls += other.backpressure_stalls;
    cancelled_on_close += other.cancelled_on_close;
    stats_requests += other.stats_requests;
    stats_coalesced += other.stats_coalesced;
    draining_shed += other.draining_shed;
}

void
ServiceMetrics::recordOutcome(ErrorCode code)
{
    ++requests;
    if (code == ErrorCode::Ok)
        ++ok;
    else
        ++errors[size_t(code)];
}

void
ServiceMetrics::recordShed(uint64_t n)
{
    // The one place the two shed views move, so they cannot drift:
    // a shed submission is a request that failed with Overloaded.
    requests += n;
    errors[size_t(ErrorCode::Overloaded)] += n;
    requests_shed += n;
}

void
ServiceMetrics::merge(const ServiceMetrics &other)
{
    requests += other.requests;
    ok += other.ok;
    for (size_t i = 0; i < size_t(ErrorCode::kNumCodes); ++i)
        errors[i] += other.errors[i];
    compile.merge(other.compile);
    workload.merge(other.workload);
    schedule.merge(other.schedule);
    total.merge(other.total);
    queue_wait.merge(other.queue_wait);
    windows.merge(other.windows);
    ops_scheduled += other.ops_scheduled;
    blocks_scheduled += other.blocks_scheduled;
    total_schedule_length += other.total_schedule_length;
    attempts += other.attempts;
    resource_checks += other.resource_checks;
    prefilter_hits += other.prefilter_hits;
    probe_fastpath += other.probe_fastpath;
    exact_blocks += other.exact_blocks;
    exact_proven_optimal += other.exact_proven_optimal;
    exact_budget_exhausted += other.exact_budget_exhausted;
    exact_nodes += other.exact_nodes;
    exact_bound_prunes += other.exact_bound_prunes;
    exact_dominance_prunes += other.exact_dominance_prunes;
    exact_probes += other.exact_probes;
    exact_gap_cycles += other.exact_gap_cycles;
    portfolio_wins_list += other.portfolio_wins_list;
    portfolio_wins_backward += other.portfolio_wins_backward;
    portfolio_wins_modulo += other.portfolio_wins_modulo;
    portfolio_wins_exact += other.portfolio_wins_exact;
    requests_shed += other.requests_shed;
    degraded_responses += other.degraded_responses;
    for (const auto &[name, counts] : other.fault_sites) {
        auto &mine = fault_sites[name];
        mine.first += counts.first;
        mine.second += counts.second;
    }
    transform_effects.merge(other.transform_effects);
    attempts_per_op.merge(other.attempts_per_op);
    for (const auto &[name, n] : other.resource_conflicts)
        resource_conflicts[name] += n;
    net.merge(other.net);
}

void
ServiceMetrics::recordConflicts(const lmdes::LowMdes &low,
                                const std::vector<uint64_t> &per_resource)
{
    for (size_t r = 0; r < per_resource.size(); ++r) {
        if (per_resource[r] == 0)
            continue;
        resource_conflicts[low.machineName() + "." +
                           low.resourceName(uint32_t(r))] +=
            per_resource[r];
    }
}

namespace {

/** "[2^(b-1), 2^b) us" rendered compactly for the latency table. */
std::string
bucketLabel(uint64_t bucket)
{
    if (bucket == 0)
        return "0us";
    uint64_t lo = bucket == 1 ? 1 : (1ull << (bucket - 1));
    uint64_t hi = (1ull << bucket) - 1;
    return "<=" + std::to_string(hi) + "us (" + std::to_string(lo) + "-" +
           std::to_string(hi) + ")";
}

void
addLatencyRow(TextTable &table, const char *name, const StageLatency &s)
{
    table.addRow({name, std::to_string(s.count),
                  TextTable::num(s.meanUs(), 1),
                  std::to_string(s.max_us),
                  s.count ? bucketLabel(s.log2_us.maxValue()) : "-"});
}

/** Conflict entries sorted most-contended first (the heat ranking). */
std::vector<std::pair<std::string, uint64_t>>
rankedConflicts(const std::map<std::string, uint64_t> &conflicts)
{
    std::vector<std::pair<std::string, uint64_t>> ranked(conflicts.begin(),
                                                         conflicts.end());
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });
    return ranked;
}

void
addWindowRow(TextTable &table, const char *name, const WindowView &v)
{
    table.addRow({name, std::to_string(v.requests),
                  TextTable::num(v.ratePerS(), 1),
                  std::to_string(v.errors), std::to_string(v.shed),
                  std::to_string(v.total.approxPercentileUs(0.50)),
                  std::to_string(v.total.approxPercentileUs(0.95)),
                  std::to_string(v.total.approxPercentileUs(0.99))});
}

void
jsonWindowView(JsonWriter &w, const char *name, const WindowView &v)
{
    w.key(name).beginObject();
    w.key("horizon_s").value(v.horizon_s);
    w.key("requests").value(v.requests);
    w.key("ok").value(v.ok);
    w.key("errors").value(v.errors);
    w.key("shed").value(v.shed);
    w.key("rate_per_s").value(v.ratePerS());
    w.key("p50_us").value(v.total.approxPercentileUs(0.50));
    w.key("p95_us").value(v.total.approxPercentileUs(0.95));
    w.key("p99_us").value(v.total.approxPercentileUs(0.99));
    w.key("mean_us").value(v.total.meanUs());
    w.key("max_us").value(v.total.max_us);
    w.endObject();
}

void
jsonLatency(JsonWriter &w, const char *name, const StageLatency &s)
{
    w.key(name).beginObject();
    w.key("count").value(s.count);
    w.key("total_us").value(s.total_us);
    w.key("mean_us").value(s.meanUs());
    w.key("max_us").value(s.max_us);
    w.key("log2_us_buckets").beginArray();
    for (uint64_t b = 0; b <= s.log2_us.maxValue(); ++b)
        w.value(s.log2_us.countAt(b));
    w.endArray();
    w.endObject();
}

} // namespace

std::string
ServiceMetrics::toTable() const
{
    std::string out;

    TextTable reqs;
    reqs.setHeader({"Requests", "OK", "Errors", "Cache Hits",
                    "Cache Misses", "Hit Rate", "Compiles", "Evictions"});
    uint64_t total_errors = 0;
    for (size_t i = 1; i < size_t(ErrorCode::kNumCodes); ++i)
        total_errors += errors[i];
    reqs.addRow({std::to_string(requests), std::to_string(ok),
                 std::to_string(total_errors),
                 std::to_string(cache.hits), std::to_string(cache.misses),
                 TextTable::percent(cache.hitRate()),
                 std::to_string(cache.compiles),
                 std::to_string(cache.evictions)});
    out += reqs.toString();

    if (cache.disk_enabled) {
        TextTable disk;
        disk.setHeader({"Store Hits", "Mapped", "Store Misses",
                        "Store Hit Rate", "Publishes", "Corrupt", "Stale",
                        "Store Evictions"});
        disk.addRow({std::to_string(cache.disk_hits),
                     std::to_string(cache.disk_mapped),
                     std::to_string(cache.disk_misses),
                     TextTable::percent(cache.diskHitRate()),
                     std::to_string(cache.disk_stores),
                     std::to_string(cache.disk_corrupt),
                     std::to_string(cache.disk_stale),
                     std::to_string(cache.disk_evictions)});
        out += disk.toString();
    }

    if (total_errors) {
        TextTable errs;
        errs.setHeader({"Error", "Count"});
        for (size_t i = 1; i < size_t(ErrorCode::kNumCodes); ++i) {
            if (errors[i])
                errs.addRow({errorCodeName(ErrorCode(i)),
                             std::to_string(errors[i])});
        }
        out += errs.toString();
    }

    // Robustness counters surface only once something interesting
    // happened, so healthy runs keep the short report they had.
    uint64_t retries = cache.disk_retries;
    if (requests_shed || degraded_responses || retries ||
        cache.breaker_trips || cache.breaker_fast_fails ||
        cache.degraded_compiles) {
        TextTable robust;
        robust.setHeader({"Shed", "Degraded", "Store Retries",
                          "Breaker Trips", "Breaker Fast-Fails"});
        robust.addRow({std::to_string(requests_shed),
                       std::to_string(degraded_responses),
                       std::to_string(retries),
                       std::to_string(cache.breaker_trips),
                       std::to_string(cache.breaker_fast_fails)});
        out += robust.toString();
    }
    if (!fault_sites.empty()) {
        TextTable faults;
        faults.setHeader({"Fault Site", "Evaluations", "Fires"});
        for (const auto &[name, counts] : fault_sites)
            faults.addRow({name, std::to_string(counts.first),
                           std::to_string(counts.second)});
        out += faults.toString();
    }

    TextTable lat;
    lat.setHeader({"Stage", "Count", "Mean us", "Max us", "Peak bucket"});
    addLatencyRow(lat, "queue", queue_wait);
    addLatencyRow(lat, "compile", compile);
    addLatencyRow(lat, "workload", workload);
    addLatencyRow(lat, "schedule", schedule);
    addLatencyRow(lat, "total", total);
    out += lat.toString();

    if (!windows.empty()) {
        const uint64_t now_s = windowNowS();
        TextTable win;
        win.setHeader({"Window", "Requests", "Rate/s", "Errors", "Shed",
                       "p50 us", "p95 us", "p99 us"});
        addWindowRow(win, "last 10s", windows.over(now_s, 10));
        addWindowRow(win, "last 60s", windows.over(now_s, 60));
        out += win.toString();
    }

    TextTable sched;
    sched.setHeader({"Ops Scheduled", "Blocks", "Total Length",
                     "Attempts", "Resource Checks", "Checks/Attempt",
                     "Prefilter Hits", "Fast Path"});
    sched.addRow({std::to_string(ops_scheduled),
                  std::to_string(blocks_scheduled),
                  std::to_string(total_schedule_length),
                  std::to_string(attempts),
                  std::to_string(resource_checks),
                  TextTable::num(attempts ? double(resource_checks) /
                                                double(attempts)
                                          : 0.0,
                                 2),
                  std::to_string(prefilter_hits),
                  std::to_string(probe_fastpath)});
    out += sched.toString();

    // --- Exact/portfolio search section (exact requests only) ---------
    if (exact_blocks != 0) {
        TextTable ex;
        ex.setHeader({"Exact Blocks", "Proven Optimal", "Budget Out",
                      "Gap Cycles", "Nodes", "Bound Prunes",
                      "Dominance Prunes", "Probes"});
        ex.addRow({std::to_string(exact_blocks),
                   std::to_string(exact_proven_optimal),
                   std::to_string(exact_budget_exhausted),
                   std::to_string(exact_gap_cycles),
                   std::to_string(exact_nodes),
                   std::to_string(exact_bound_prunes),
                   std::to_string(exact_dominance_prunes),
                   std::to_string(exact_probes)});
        out += ex.toString();
        uint64_t wins = portfolio_wins_list + portfolio_wins_backward +
                        portfolio_wins_modulo + portfolio_wins_exact;
        if (wins != 0) {
            TextTable pw;
            pw.setHeader({"Portfolio Winner", "Blocks"});
            auto row = [&](const char *name, uint64_t v) {
                if (v)
                    pw.addRow({name, std::to_string(v)});
            };
            row("list", portfolio_wins_list);
            row("backward", portfolio_wins_backward);
            row("modulo", portfolio_wins_modulo);
            row("exact", portfolio_wins_exact);
            out += pw.toString();
        }
    }

    // --- Trace section ------------------------------------------------
    if (transform_effects.total() != 0) {
        TextTable fx;
        fx.setHeader({"Transform Effect", "Total"});
        auto row = [&](const char *name, uint64_t v) {
            if (v)
                fx.addRow({name, std::to_string(v)});
        };
        row("options merged", transform_effects.merged_options);
        row("OR-trees merged", transform_effects.merged_or_trees);
        row("AND/OR-trees merged", transform_effects.merged_trees);
        row("dead entities removed", transform_effects.removed_dead);
        row("redundant options removed",
            transform_effects.redundant_options_removed);
        row("trees reordered", transform_effects.trees_reordered);
        row("usages hoisted", transform_effects.usages_hoisted);
        row("resources shifted", transform_effects.resources_shifted);
        out += fx.toString();
    }
    if (!resource_conflicts.empty()) {
        TextTable heat;
        heat.setHeader({"Contended Resource", "Conflicts"});
        auto ranked = rankedConflicts(resource_conflicts);
        constexpr size_t kTopN = 8;
        for (size_t i = 0; i < ranked.size() && i < kTopN; ++i)
            heat.addRow({ranked[i].first,
                         std::to_string(ranked[i].second)});
        out += heat.toString();
    }
    if (attempts_per_op.total() != 0) {
        TextTable apo;
        apo.setHeader({"Traced Ops", "Mean Attempts/Op",
                       "Max Attempts/Op"});
        apo.addRow({std::to_string(attempts_per_op.total()),
                    TextTable::num(attempts_per_op.mean(), 2),
                    std::to_string(attempts_per_op.maxValue())});
        out += apo.toString();
    }

    // --- Net section (only when a socket server contributed) ----------
    if (net.enabled) {
        TextTable conns;
        conns.setHeader({"Conns Accepted", "Closed", "Active", "Resets",
                         "Backpressure Stalls"});
        conns.addRow({std::to_string(net.accepted),
                      std::to_string(net.closed),
                      std::to_string(net.active),
                      std::to_string(net.resets),
                      std::to_string(net.backpressure_stalls)});
        out += conns.toString();

        TextTable frames;
        frames.setHeader({"Frames In", "Frames Out", "Bytes In",
                          "Bytes Out", "Proto Errors", "Bad Requests"});
        frames.addRow({std::to_string(net.frames_in),
                       std::to_string(net.frames_out),
                       std::to_string(net.bytes_in),
                       std::to_string(net.bytes_out),
                       std::to_string(net.protocol_errors),
                       std::to_string(net.bad_requests)});
        out += frames.toString();

        if (net.shed || net.deadline_expired || net.cancelled_on_close ||
            net.stats_requests || net.draining_shed) {
            TextTable pressure;
            pressure.setHeader({"Net Shed", "Deadline Expired",
                                "Cancelled On Close", "Stats Reqs",
                                "Stats Coalesced", "Draining Shed"});
            pressure.addRow({std::to_string(net.shed),
                             std::to_string(net.deadline_expired),
                             std::to_string(net.cancelled_on_close),
                             std::to_string(net.stats_requests),
                             std::to_string(net.stats_coalesced),
                             std::to_string(net.draining_shed)});
            out += pressure.toString();
        }
    }
    return out;
}

std::string
ServiceMetrics::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.key("requests").value(requests);
    w.key("ok").value(ok);
    w.key("errors").beginObject();
    for (size_t i = 1; i < size_t(ErrorCode::kNumCodes); ++i) {
        if (errors[i])
            w.key(errorCodeName(ErrorCode(i))).value(errors[i]);
    }
    w.endObject();
    w.key("cache").beginObject();
    w.key("hits").value(cache.hits);
    w.key("misses").value(cache.misses);
    w.key("hit_rate").value(cache.hitRate());
    w.key("compiles").value(cache.compiles);
    w.key("evictions").value(cache.evictions);
    w.key("size").value(uint64_t(cache.size));
    w.key("capacity").value(uint64_t(cache.capacity));
    if (cache.disk_enabled) {
        w.key("disk").beginObject();
        w.key("hits").value(cache.disk_hits);
        w.key("mapped").value(cache.disk_mapped);
        w.key("misses").value(cache.disk_misses);
        w.key("hit_rate").value(cache.diskHitRate());
        w.key("stores").value(cache.disk_stores);
        w.key("corrupt").value(cache.disk_corrupt);
        w.key("stale").value(cache.disk_stale);
        w.key("evictions").value(cache.disk_evictions);
        w.key("retries").value(cache.disk_retries);
        w.endObject();
    }
    w.endObject();
    w.key("robustness").beginObject();
    w.key("requests_shed").value(requests_shed);
    w.key("degraded_responses").value(degraded_responses);
    w.key("retries").value(cache.disk_retries);
    w.key("breaker_trips").value(cache.breaker_trips);
    w.key("breaker_fast_fails").value(cache.breaker_fast_fails);
    w.key("degraded_compiles").value(cache.degraded_compiles);
    if (!fault_sites.empty()) {
        w.key("fault_sites").beginObject();
        for (const auto &[name, counts] : fault_sites) {
            w.key(name).beginObject();
            w.key("evaluations").value(counts.first);
            w.key("fires").value(counts.second);
            w.endObject();
        }
        w.endObject();
    }
    w.endObject();
    w.key("latency").beginObject();
    jsonLatency(w, "queue", queue_wait);
    jsonLatency(w, "compile", compile);
    jsonLatency(w, "workload", workload);
    jsonLatency(w, "schedule", schedule);
    jsonLatency(w, "total", total);
    w.endObject();
    {
        const uint64_t now_s = windowNowS();
        w.key("windows").beginObject();
        w.key("now_s").value(now_s);
        jsonWindowView(w, "w10", windows.over(now_s, 10));
        jsonWindowView(w, "w60", windows.over(now_s, 60));
        w.endObject();
    }
    w.key("scheduling").beginObject();
    w.key("ops_scheduled").value(ops_scheduled);
    w.key("blocks_scheduled").value(blocks_scheduled);
    w.key("total_schedule_length").value(total_schedule_length);
    w.key("attempts").value(attempts);
    w.key("resource_checks").value(resource_checks);
    w.key("prefilter_hits").value(prefilter_hits);
    w.key("probe_fastpath").value(probe_fastpath);
    w.endObject();
    if (exact_blocks != 0) {
        w.key("exact").beginObject();
        w.key("blocks").value(exact_blocks);
        w.key("proven_optimal").value(exact_proven_optimal);
        w.key("budget_exhausted").value(exact_budget_exhausted);
        w.key("gap_cycles").value(exact_gap_cycles);
        w.key("nodes").value(exact_nodes);
        w.key("bound_prunes").value(exact_bound_prunes);
        w.key("dominance_prunes").value(exact_dominance_prunes);
        w.key("probes").value(exact_probes);
        w.key("wins").beginObject();
        w.key("list").value(portfolio_wins_list);
        w.key("backward").value(portfolio_wins_backward);
        w.key("modulo").value(portfolio_wins_modulo);
        w.key("exact").value(portfolio_wins_exact);
        w.endObject();
        w.endObject();
    }
    w.key("trace").beginObject();
    w.key("transform_effects").beginObject();
    w.key("merged_options").value(transform_effects.merged_options);
    w.key("merged_or_trees").value(transform_effects.merged_or_trees);
    w.key("merged_trees").value(transform_effects.merged_trees);
    w.key("removed_dead").value(transform_effects.removed_dead);
    w.key("redundant_options_removed")
        .value(transform_effects.redundant_options_removed);
    w.key("trees_reordered").value(transform_effects.trees_reordered);
    w.key("usages_hoisted").value(transform_effects.usages_hoisted);
    w.key("resources_shifted").value(transform_effects.resources_shifted);
    w.endObject();
    w.key("attempts_per_op").beginObject();
    w.key("count").value(attempts_per_op.total());
    w.key("mean").value(attempts_per_op.mean());
    w.key("max").value(attempts_per_op.maxValue());
    w.key("buckets").beginArray();
    for (uint64_t b = 0; b <= attempts_per_op.maxValue(); ++b)
        w.value(attempts_per_op.countAt(b));
    w.endArray();
    w.endObject();
    w.key("resource_conflicts").beginObject();
    for (const auto &[name, n] : rankedConflicts(resource_conflicts))
        w.key(name).value(n);
    w.endObject();
    w.endObject();
    if (net.enabled) {
        w.key("net").beginObject();
        w.key("accepted").value(net.accepted);
        w.key("closed").value(net.closed);
        w.key("active").value(net.active);
        w.key("resets").value(net.resets);
        w.key("frames_in").value(net.frames_in);
        w.key("frames_out").value(net.frames_out);
        w.key("bytes_in").value(net.bytes_in);
        w.key("bytes_out").value(net.bytes_out);
        w.key("protocol_errors").value(net.protocol_errors);
        w.key("bad_requests").value(net.bad_requests);
        w.key("shed").value(net.shed);
        w.key("deadline_expired").value(net.deadline_expired);
        w.key("backpressure_stalls").value(net.backpressure_stalls);
        w.key("cancelled_on_close").value(net.cancelled_on_close);
        w.key("stats_requests").value(net.stats_requests);
        w.key("stats_coalesced").value(net.stats_coalesced);
        w.key("draining_shed").value(net.draining_shed);
        w.endObject();
    }
    w.endObject();
    return w.str();
}

} // namespace mdes::service
