#ifndef MDES_SERVICE_CACHE_H
#define MDES_SERVICE_CACHE_H

/**
 * @file
 * The compiled-description cache.
 *
 * Compiling a high-level MDES and running the full transformation
 * pipeline costs milliseconds; a constraint query costs nanoseconds. A
 * service answering many scheduling requests against few machines must
 * therefore compile each description once and share the result. This
 * cache maps a content hash of (hmdes source, PipelineConfig, bit-vector
 * flag, representation) to an immutable `shared_ptr<const LowMdes>`:
 *
 *  - Bounded LRU: at most `capacity` compiled descriptions are retained;
 *    the least-recently-used entry is evicted first. Evicted artifacts
 *    stay alive for as long as in-flight requests hold the shared_ptr.
 *  - Concurrent-miss collapsing: the table stores shared_futures, so N
 *    threads missing on the same key trigger exactly one compilation and
 *    N-1 waiters. A failed compilation is not cached (the exception
 *    propagates to every waiter of that round, then the entry is
 *    dropped so a later request may retry). A *cancelled* compilation
 *    (the owner's deadline expired) fails only the owner: waiters
 *    re-run the lookup and one of them becomes the new owner.
 *  - Optional disk tier: with an attached store::ArtifactStore the
 *    lookup path becomes memory → disk → compile. The single-flight
 *    owner of a memory miss probes the disk store before compiling and
 *    publishes what it compiled, so one key costs at most one disk read
 *    or one compilation per process lifetime — and at most one
 *    compilation across process restarts. A corrupt or stale on-disk
 *    artifact is a disk miss (the store quarantines it), never an error.
 *  - Per-key circuit breaker: a key whose compile fails
 *    `BreakerPolicy::threshold` times in a row is quarantined — further
 *    misses fail fast with CircuitOpenError instead of burning a worker
 *    on a poisoned description — until a cooldown expires and one
 *    half-open trial is let through. Success closes the breaker.
 *  - Degraded artifacts (the compile fell back to the unoptimized
 *    lowering after a transform-pass fault) are served to the current
 *    round's waiters but never retained in memory or published to disk,
 *    so the next request retries the full pipeline.
 *
 * Thread-safety contract (see DESIGN.md §7): LowMdes is immutable after
 * lower()/load(), which is what makes sharing one artifact across
 * worker threads sound. The cache enforces const-ness in the type it
 * hands out.
 */

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>

#include "core/transforms.h"
#include "exp/runner.h"
#include "lmdes/low_mdes.h"
#include "store/store.h"
#include "support/diagnostics.h"

namespace mdes::service {

/** A shared, immutable compiled description. */
using CompiledMdes = std::shared_ptr<const lmdes::LowMdes>;

/** What a compile callback produces: the artifact plus whether the
 * graceful-degradation path was taken (unoptimized fallback). */
struct CompileResult
{
    CompiledMdes artifact;
    bool degraded = false;
};

/** Thrown by getOrCompile when a key's circuit breaker is open: the
 * description failed persistently and is quarantined until cooldown. */
class CircuitOpenError : public MdesError
{
  public:
    explicit CircuitOpenError(const std::string &what) : MdesError(what) {}
};

/** Per-key circuit-breaker tuning. */
struct BreakerPolicy
{
    /** Consecutive compile failures that open the breaker; 0 disables
     * breaking entirely. */
    uint32_t threshold = 0;
    /** How long an open breaker fails fast before admitting one
     * half-open trial compile. */
    uint32_t cooldown_ms = 10000;
};

/** Bounded LRU cache of compiled descriptions keyed by content hash. */
class DescriptionCache
{
  public:
    /** Content-hash key; equal inputs produce equal keys. */
    using Key = uint64_t;

    explicit DescriptionCache(size_t capacity = 16) : capacity_(capacity)
    {
    }

    /**
     * Key for compiling @p source under @p transforms with @p bit_vector
     * packing and representation @p rep. Delegates to
     * store::artifactKey so the memory and disk tiers agree on
     * identity.
     */
    static Key makeKey(std::string_view source,
                       const PipelineConfig &transforms, bool bit_vector,
                       exp::Rep rep = exp::Rep::AndOrTree);

    /**
     * Attach a persistent disk tier; lookups become
     * memory → disk → compile and successful compilations are
     * published back to the store. Call before the first lookup.
     */
    void attachStore(std::shared_ptr<store::ArtifactStore> disk_store);

    /** The attached disk tier (null when memory-only). */
    std::shared_ptr<store::ArtifactStore> diskStore() const;

    /** Set the per-key circuit-breaker policy (threshold 0 = off, the
     * default). Call before the first lookup. */
    void setBreakerPolicy(BreakerPolicy policy);

    /** Close every breaker and forget failure history (for tests and
     * operator intervention). */
    void resetBreakers();

    /** How one getOrCompile call was served. */
    struct Lookup
    {
        /** An existing entry was used (an entry still being compiled by
         * another thread counts: no new compilation was started). */
        bool hit = false;
        /** The artifact came from the disk tier. */
        bool disk = false;
        /** The artifact is the unoptimized degraded fallback. */
        bool degraded = false;
    };

    /**
     * Return the cached artifact for @p key, compiling it with
     * @p compile on a miss. Concurrent misses on one key run @p compile
     * once; everyone else blocks on the same future.
     * @p config_fingerprint is recorded in the published artifact's
     * header (see store::configFingerprint). @p cancel, when provided,
     * is consulted at blocking points (disk retry backoff; deciding
     * whether an owner's CancelledError is also ours). Exceptions from
     * @p compile propagate; CircuitOpenError is thrown on a miss whose
     * breaker is open.
     */
    CompiledMdes
    getOrCompile(Key key, const std::function<CompileResult()> &compile,
                 Lookup *lookup = nullptr, uint64_t config_fingerprint = 0,
                 const std::function<bool()> &cancel = {});

    /** Monotonic counters plus the current size. */
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        /** Compilations actually executed (misses minus collapsed
         * concurrent misses minus disk-tier hits minus failures). */
        uint64_t compiles = 0;
        size_t size = 0;
        size_t capacity = 0;

        /** True when a disk tier is attached; the disk_* counters
         * below are meaningful only then. */
        bool disk_enabled = false;
        /** Memory misses served by the disk tier. */
        uint64_t disk_hits = 0;
        /** Memory misses the disk tier could not serve (including
         * corrupt artifacts, counted again in disk_corrupt). */
        uint64_t disk_misses = 0;
        /** Compiled artifacts successfully published to the store. */
        uint64_t disk_stores = 0;
        /** Disk hits served zero-copy from an mmap of the artifact
         * (from the store's own counters; a subset of disk_hits). */
        uint64_t disk_mapped = 0;
        /** On-disk artifacts quarantined as corrupt (from the store's
         * own counters). */
        uint64_t disk_corrupt = 0;
        /** Old-format artifacts silently evicted and recompiled - not
         * corruption (from the store's own counters). */
        uint64_t disk_stale = 0;
        /** Artifacts evicted by the store's size-budget sweep. */
        uint64_t disk_evictions = 0;
        /** Transient-I/O backoff retries taken by the store. */
        uint64_t disk_retries = 0;

        /** Breakers opened (threshold reached). */
        uint64_t breaker_trips = 0;
        /** Lookups failed fast because a breaker was open. */
        uint64_t breaker_fast_fails = 0;
        /** Compiles that returned the degraded fallback. */
        uint64_t degraded_compiles = 0;

        double
        hitRate() const
        {
            uint64_t lookups = hits + misses;
            return lookups ? double(hits) / double(lookups) : 0.0;
        }

        double
        diskHitRate() const
        {
            uint64_t lookups = disk_hits + disk_misses;
            return lookups ? double(disk_hits) / double(lookups) : 0.0;
        }
    };

    Stats stats() const;

    /** Drop every in-memory entry (counters, breakers, and the disk
     * tier are preserved). */
    void clear();

  private:
    struct Entry
    {
        Key key;
        /** Distinguishes re-insertions of an evicted key so a failing
         * compile only removes its own entry. */
        uint64_t generation;
        std::shared_future<CompileResult> artifact;
    };

    /** Consecutive-failure tracking for one key. */
    struct BreakerState
    {
        uint32_t consecutive_failures = 0;
        bool open = false;
        /** steady_clock time (us since epoch) when an open breaker
         * admits its half-open trial. */
        int64_t open_until_us = 0;
    };

    /** Front = most recently used. */
    using LruList = std::list<Entry>;

    void touch(LruList::iterator it);
    /** Erase the (key, generation) entry if it is still current. */
    void eraseGeneration(Key key, uint64_t generation);
    void recordBreakerOutcome(Key key, bool success);

    mutable std::mutex mu_;
    size_t capacity_;
    LruList lru_;
    std::unordered_map<Key, LruList::iterator> index_;
    std::unordered_map<Key, BreakerState> breakers_;
    BreakerPolicy breaker_policy_;
    std::shared_ptr<store::ArtifactStore> store_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    uint64_t compiles_ = 0;
    uint64_t disk_hits_ = 0;
    uint64_t disk_misses_ = 0;
    uint64_t disk_stores_ = 0;
    uint64_t breaker_trips_ = 0;
    uint64_t breaker_fast_fails_ = 0;
    uint64_t degraded_compiles_ = 0;
    uint64_t next_generation_ = 0;
};

} // namespace mdes::service

#endif // MDES_SERVICE_CACHE_H
