#ifndef MDES_SERVICE_CACHE_H
#define MDES_SERVICE_CACHE_H

/**
 * @file
 * The compiled-description cache.
 *
 * Compiling a high-level MDES and running the full transformation
 * pipeline costs milliseconds; a constraint query costs nanoseconds. A
 * service answering many scheduling requests against few machines must
 * therefore compile each description once and share the result. This
 * cache maps a content hash of (hmdes source, PipelineConfig, bit-vector
 * flag, representation) to an immutable `shared_ptr<const LowMdes>`:
 *
 *  - Bounded LRU: at most `capacity` compiled descriptions are retained;
 *    the least-recently-used entry is evicted first. Evicted artifacts
 *    stay alive for as long as in-flight requests hold the shared_ptr.
 *  - Concurrent-miss collapsing: the table stores shared_futures, so N
 *    threads missing on the same key trigger exactly one compilation and
 *    N-1 waiters. A failed compilation is not cached (the exception
 *    propagates to every waiter of that round, then the entry is
 *    dropped so a later request may retry).
 *
 * Thread-safety contract (see DESIGN.md §7): LowMdes is immutable after
 * lower()/load(), which is what makes sharing one artifact across
 * worker threads sound. The cache enforces const-ness in the type it
 * hands out.
 */

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>

#include "core/transforms.h"
#include "exp/runner.h"
#include "lmdes/low_mdes.h"

namespace mdes::service {

/** A shared, immutable compiled description. */
using CompiledMdes = std::shared_ptr<const lmdes::LowMdes>;

/** Bounded LRU cache of compiled descriptions keyed by content hash. */
class DescriptionCache
{
  public:
    /** Content-hash key; equal inputs produce equal keys. */
    using Key = uint64_t;

    explicit DescriptionCache(size_t capacity = 16) : capacity_(capacity)
    {
    }

    /**
     * Key for compiling @p source under @p transforms with @p bit_vector
     * packing and representation @p rep (FNV-1a over source bytes and
     * every pipeline flag).
     */
    static Key makeKey(std::string_view source,
                       const PipelineConfig &transforms, bool bit_vector,
                       exp::Rep rep = exp::Rep::AndOrTree);

    /**
     * Return the cached artifact for @p key, compiling it with
     * @p compile on a miss. Concurrent misses on one key run @p compile
     * once; everyone else blocks on the same future. @p hit, when
     * non-null, reports whether an existing entry was used (an entry
     * still being compiled by another thread counts as a hit: no new
     * compilation was started). Exceptions from @p compile propagate.
     */
    CompiledMdes getOrCompile(Key key,
                              const std::function<CompiledMdes()> &compile,
                              bool *hit = nullptr);

    /** Monotonic counters plus the current size. */
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        /** Compilations actually executed (misses minus collapsed
         * concurrent misses minus failures). */
        uint64_t compiles = 0;
        size_t size = 0;
        size_t capacity = 0;

        double
        hitRate() const
        {
            uint64_t lookups = hits + misses;
            return lookups ? double(hits) / double(lookups) : 0.0;
        }
    };

    Stats stats() const;

    /** Drop every entry (counters are preserved). */
    void clear();

  private:
    struct Entry
    {
        Key key;
        /** Distinguishes re-insertions of an evicted key so a failing
         * compile only removes its own entry. */
        uint64_t generation;
        std::shared_future<CompiledMdes> artifact;
    };

    /** Front = most recently used. */
    using LruList = std::list<Entry>;

    void touch(LruList::iterator it);

    mutable std::mutex mu_;
    size_t capacity_;
    LruList lru_;
    std::unordered_map<Key, LruList::iterator> index_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    uint64_t compiles_ = 0;
    uint64_t next_generation_ = 0;
};

} // namespace mdes::service

#endif // MDES_SERVICE_CACHE_H
