#include "service/request_parse.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "support/diagnostics.h"

namespace mdes::service {

namespace {

std::string
readFileOrThrow(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw MdesError("cannot open '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Transform-pass names for transforms=; keep in sync with
 * PipelineConfig. */
struct PassName
{
    const char *name;
    bool PipelineConfig::*field;
};

constexpr PassName kPassNames[] = {
    {"cse", &PipelineConfig::cse},
    {"redundant", &PipelineConfig::redundant_options},
    {"minimize", &PipelineConfig::minimize},
    {"timeshift", &PipelineConfig::time_shift},
    {"sortusages", &PipelineConfig::sort_usages},
    {"hoist", &PipelineConfig::hoist},
    {"sortor", &PipelineConfig::sort_or_trees},
};

PipelineConfig
parseTransforms(const std::string &value, int lineno)
{
    if (value == "all")
        return PipelineConfig::all();
    PipelineConfig config = PipelineConfig::none();
    if (value == "none")
        return config;
    std::istringstream fields(value);
    std::string field;
    while (std::getline(fields, field, ',')) {
        bool known = false;
        for (const auto &pass : kPassNames) {
            if (field == pass.name) {
                config.*(pass.field) = true;
                known = true;
                break;
            }
        }
        if (!known)
            throw MdesError("request line " + std::to_string(lineno) +
                            ": unknown transform '" + field + "'");
    }
    return config;
}

} // namespace

ScheduleRequest
parseRequestLine(const std::string &line, int lineno,
                 const RequestParseOptions &opts)
{
    ScheduleRequest req;
    std::istringstream in(line);
    std::string token;
    auto bad = [&](const std::string &what) {
        throw MdesError("request line " + std::to_string(lineno) + ": " +
                        what);
    };
    auto number = [&](const std::string &key, const std::string &value) {
        uint64_t v = 0;
        auto [end, ec] =
            std::from_chars(value.data(), value.data() + value.size(), v);
        if (ec != std::errc() || end != value.data() + value.size())
            bad("bad number " + key + "='" + value + "'");
        return v;
    };
    auto file = [&](const std::string &key, const std::string &value) {
        if (!opts.allow_files)
            bad(key + "= names a file, which this surface does not "
                      "accept (inline requests only)");
        return readFileOrThrow(value);
    };
    while (in >> token) {
        std::string key = token, value;
        if (size_t eq = token.find('='); eq != std::string::npos) {
            key = token.substr(0, eq);
            value = token.substr(eq + 1);
        }
        if (key == "machine") {
            req.machine = value;
        } else if (key == "source") {
            req.source = file(key, value);
        } else if (key == "sasm") {
            req.sasm = file(key, value);
        } else if (key == "sched") {
            if (value == "list")
                req.scheduler = SchedulerKind::List;
            else if (value == "backward")
                req.scheduler = SchedulerKind::Backward;
            else if (value == "modulo")
                req.scheduler = SchedulerKind::Modulo;
            else if (value == "exact")
                req.scheduler = SchedulerKind::Exact;
            else if (value == "portfolio")
                req.scheduler = SchedulerKind::Portfolio;
            else
                bad("unknown scheduler '" + value + "'");
        } else if (key == "ops") {
            req.synth_ops = number(key, value);
        } else if (key == "seed") {
            req.seed = number(key, value);
        } else if (key == "deadline_ms") {
            req.deadline_ms = int64_t(number(key, value));
        } else if (key == "exact_ms") {
            req.exact_ms = int64_t(number(key, value));
        } else if (key == "exact_nodes") {
            req.exact_nodes = number(key, value);
        } else if (key == "transforms") {
            req.transforms = parseTransforms(value, lineno);
        } else if (key == "verify") {
            req.verify = true;
        } else if (key == "no-optimize") {
            req.transforms = PipelineConfig::none();
        } else if (key == "no-bit-vector") {
            req.bit_vector = false;
        } else {
            bad("unknown key '" + key + "'");
        }
    }
    if (req.machine.empty() && req.source.empty())
        bad("needs machine= or source=");
    return req;
}

ParsedRequests
parseRequestText(const std::string &text, const RequestParseOptions &opts)
{
    ParsedRequests out;
    std::istringstream lines(text);
    std::string line;
    int lineno = 0;
    while (std::getline(lines, line)) {
        ++lineno;
        if (size_t hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            continue;
        size_t last = line.find_last_not_of(" \t\r");
        line = line.substr(first, last - first + 1);
        out.requests.push_back(parseRequestLine(line, lineno, opts));
        out.lines.push_back(line);
        out.linenos.push_back(lineno);
    }
    return out;
}

namespace {

/** True when two pipeline configs select the same passes/direction. */
bool
sameTransforms(const PipelineConfig &a, const PipelineConfig &b)
{
    for (const auto &pass : kPassNames)
        if (a.*(pass.field) != b.*(pass.field))
            return false;
    return a.direction == b.direction;
}

} // namespace

std::string
renderRequestLine(const ScheduleRequest &req)
{
    if (!req.source.empty() || !req.sasm.empty())
        throw MdesError("renderRequestLine: inline source/sasm text has "
                        "no request-line form (the grammar's source=/"
                        "sasm= name files)");
    if (req.machine.empty())
        throw MdesError("renderRequestLine: request names no machine");
    std::ostringstream out;
    out << "machine=" << req.machine;
    if (req.scheduler != SchedulerKind::List)
        out << " sched=" << schedulerKindName(req.scheduler);
    if (req.synth_ops)
        out << " ops=" << req.synth_ops;
    if (req.seed)
        out << " seed=" << req.seed;
    if (req.deadline_ms)
        out << " deadline_ms=" << req.deadline_ms;
    if (req.exact_ms != ScheduleRequest{}.exact_ms)
        out << " exact_ms=" << req.exact_ms;
    if (req.exact_nodes)
        out << " exact_nodes=" << req.exact_nodes;
    if (!sameTransforms(req.transforms, PipelineConfig::all())) {
        out << " transforms=";
        bool any = false;
        for (const auto &pass : kPassNames) {
            if (req.transforms.*(pass.field)) {
                out << (any ? "," : "") << pass.name;
                any = true;
            }
        }
        if (!any)
            out << "none";
    }
    if (!req.bit_vector)
        out << " no-bit-vector";
    if (req.verify)
        out << " verify";
    return out.str();
}

} // namespace mdes::service
