#ifndef MDES_SERVICE_SERVICE_H
#define MDES_SERVICE_SERVICE_H

/**
 * @file
 * The in-process MDES compile-and-schedule service.
 *
 * The paper's division of labor - compile the machine description once,
 * query it cheaply forever - implies a serving architecture: one shared,
 * immutable compiled description per machine and many concurrent
 * scheduler clients. MdesService is that architecture in miniature:
 *
 *  - A bounded LRU DescriptionCache holds compiled descriptions as
 *    `shared_ptr<const LowMdes>`; every request against the same
 *    (source, transforms) pair shares one artifact.
 *  - A fixed pool of worker threads drains a FIFO job queue. All mutable
 *    scheduling state (RU map, Checker, CheckStats) is created fresh per
 *    job, so workers never share anything writable; results are
 *    deterministic and byte-identical for any worker count.
 *  - Requests carry optional deadlines and can be cancelled; failures
 *    surface as a typed ServiceError in the response, never as an
 *    exception escaping a worker thread.
 *  - Per-worker ServiceMetrics are merged on demand into one snapshot
 *    (counters, cache hit rate, per-stage latency histograms).
 *
 * Thread-safety contract (DESIGN.md §7): LowMdes is immutable after
 * lower()/load() - every accessor is const and workers only ever hold
 * `const LowMdes &`. RuMap/Checker/CheckStats are mutable and strictly
 * worker-local. The static_asserts below pin the parts of the contract
 * the type system can see.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "core/transforms.h"
#include "sched/list_scheduler.h"
#include "sched/modulo_scheduler.h"
#include "service/cache.h"
#include "service/metrics.h"

namespace mdes::service {

// The compiled artifact crosses threads; it must be handed out
// const-qualified, and the scheduling entry points must accept it as
// const (immutable-after-build contract).
static_assert(std::is_same_v<CompiledMdes::element_type,
                             const lmdes::LowMdes>,
              "compiled descriptions must be shared as const");
static_assert(
    std::is_constructible_v<sched::ListScheduler, const lmdes::LowMdes &>,
    "schedulers must consume the description read-only");

/** Which scheduler answers the request. Exact runs the branch-and-bound
 * search (list incumbent, proven lower bounds); Portfolio races
 * list/backward/modulo/exact per block under the request deadline and
 * keeps the shortest schedule. */
enum class SchedulerKind { List, Backward, Modulo, Exact, Portfolio };

/** Printable scheduler name. */
const char *schedulerKindName(SchedulerKind kind);

/** Typed failure carried in a ScheduleResponse. */
struct ServiceError
{
    ErrorCode code = ErrorCode::Ok;
    std::string message;

    explicit operator bool() const { return code != ErrorCode::Ok; }
};

/** One unit of service work. */
struct ScheduleRequest
{
    /** Built-in machine name (PA7100, Pentium, SuperSPARC, K5,
     * PentiumPro, PA8000); ignored when @c source is set. */
    std::string machine;
    /** Inline high-level MDES source (wins over @c machine). */
    std::string source;

    /** .sasm workload text; empty selects the synthetic generator
     * (built-in machines only, since the generator needs the machine's
     * class mix). */
    std::string sasm;
    /** Synthetic workload size override (0 = machine default). */
    size_t synth_ops = 0;
    /** Synthetic workload seed override (0 = machine default). */
    uint64_t seed = 0;

    SchedulerKind scheduler = SchedulerKind::List;
    /** Transformation pipeline for the description (cache key input). */
    PipelineConfig transforms = PipelineConfig::all();
    bool bit_vector = true;

    /** Re-verify the produced schedules (all but modulo). */
    bool verify = false;

    /** Soft deadline in milliseconds from submission (0 = none). For
     * exact/portfolio the deadline also truncates the per-block search:
     * the response carries the best schedules found so far instead of
     * failing. */
    int64_t deadline_ms = 0;

    /** Exact/portfolio: per-block search wall-time budget in
     * milliseconds (0 = no time cap - deterministic searches for tests;
     * the request default is 50 ms as in the acceptance workloads). */
    int64_t exact_ms = 50;
    /** Exact/portfolio: per-block search node budget (0 = the
     * scheduler's built-in default). */
    uint64_t exact_nodes = 0;
};

/** Per-block outcome of an exact or portfolio request. */
struct BlockOutcome
{
    /** Backend whose schedule was kept (Exact also stands for "the
     * search's incumbent", i.e. list, when nothing improved it). */
    SchedulerKind winner = SchedulerKind::List;
    /** Kept schedule length. */
    int32_t length = 0;
    /** Proven lower bound on the block's schedule length. */
    int32_t lower_bound = 0;
    /** length == proven optimum. */
    bool proven_optimal = false;
    /** Search stopped on its node/time budget. */
    bool budget_exhausted = false;
    /** Search nodes expanded for this block. */
    uint64_t nodes = 0;
};

/** Search totals across an exact/portfolio request's blocks. */
struct ExactSearchTotals
{
    uint64_t blocks = 0;
    uint64_t proven_optimal = 0;
    uint64_t budget_exhausted = 0;
    uint64_t nodes = 0;
    uint64_t bound_prunes = 0;
    uint64_t dominance_prunes = 0;
    uint64_t probes = 0;
    /** Sum over blocks of (length - lower_bound). */
    uint64_t gap_cycles = 0;
    /** Portfolio win counts by backend. */
    uint64_t wins_list = 0;
    uint64_t wins_backward = 0;
    uint64_t wins_modulo = 0;
    uint64_t wins_exact = 0;
};

/** What a request produces. */
struct ScheduleResponse
{
    ServiceError error;
    std::string machine;
    /** The shared compiled artifact (null on pre-compile failures). */
    CompiledMdes low;
    /** Served from an existing in-memory entry (no new compilation). */
    bool cache_hit = false;
    /** Served by loading the persistent store's artifact from disk. */
    bool disk_hit = false;
    /** The optimizer pipeline faulted and this response was served from
     * the unoptimized lowered description instead (same schedules - the
     * Section 4 invariant - but slower constraint checks). */
    bool degraded = false;

    /** Per-block schedules (all but the modulo scheduler). */
    std::vector<sched::BlockSchedule> schedules;
    /** Per-loop modulo schedules (modulo scheduler). */
    std::vector<sched::ModuloSchedule> modulo;
    /** Per-block search outcomes (exact/portfolio schedulers). */
    std::vector<BlockOutcome> outcomes;
    /** Aggregated search counters (exact/portfolio schedulers). */
    ExactSearchTotals exact;
    sched::SchedStats stats;

    /** Sum of block schedule lengths / achieved IIs. */
    uint64_t total_cycles = 0;

    bool ok() const { return !error; }
};

/**
 * Order-insensitive content hash of a response's schedules; equal
 * workloads scheduled by any worker count must produce equal
 * fingerprints (the determinism tests and bench assert this).
 */
uint64_t scheduleFingerprint(const ScheduleResponse &response);

/** Service construction parameters. */
struct ServiceConfig
{
    /** Worker threads (0 = hardware_concurrency, at least 1). */
    unsigned num_workers = 0;
    /** Compiled-description cache capacity (entries). */
    size_t cache_capacity = 16;
    /**
     * Persistent compiled-description store directory; when non-empty
     * the cache gains a disk tier (memory → disk → compile) shared
     * across service instances and process restarts. Created if
     * absent; the constructor throws MdesError when it cannot be.
     */
    std::string store_dir;
    /** Disk-store size budget in bytes (0 = unbounded); publishes over
     * budget trigger an LRU eviction sweep. */
    uint64_t store_max_bytes = 0;
    /**
     * Admission-queue bound (jobs waiting, not running); a submit that
     * would exceed it is shed immediately with ErrorCode::Overloaded
     * instead of growing the queue without limit. 0 = unbounded.
     */
    size_t max_queue = 0;
    /** Consecutive compile failures of one description that open its
     * circuit breaker (fail fast instead of recompiling a poisoned
     * input on every request). 0 disables the breaker. */
    uint32_t breaker_threshold = 4;
    /** Open-breaker cooldown before one half-open trial compile. */
    uint32_t breaker_cooldown_ms = 10000;
};

/**
 * The concurrent compile-and-schedule service. Submit jobs from any
 * thread; the destructor drains outstanding work before returning.
 */
class MdesService
{
  public:
    using RequestId = uint64_t;

    /**
     * Completion callback for submit(): invoked exactly once with the
     * finished response, from the worker thread that processed the
     * request (or from inside submit() itself when the request is shed
     * at admission). Callbacks must be fast and must not call back into
     * the service except for submit()/cancel() — the network front end
     * uses one to hand responses to its event loop.
     */
    using Completion = std::function<void(ScheduleResponse)>;

    explicit MdesService(ServiceConfig config = {});
    ~MdesService();

    MdesService(const MdesService &) = delete;
    MdesService &operator=(const MdesService &) = delete;

    /**
     * Enqueue @p request; the returned id is waitable/cancellable.
     * With @p on_complete set the response is delivered through the
     * callback instead and the id must NOT be waited on (it remains
     * valid for cancel() until the callback fires).
     */
    RequestId submit(ScheduleRequest request, Completion on_complete = {});

    /**
     * Block until request @p id completes and return its response.
     * Each id may be waited on once.
     */
    ScheduleResponse wait(RequestId id);

    /**
     * Best-effort cancel: a request not yet started completes with
     * ErrorCode::Cancelled; a running request is cancelled at its next
     * stage boundary. @return false when @p id is unknown (already
     * waited, or never submitted).
     */
    bool cancel(RequestId id);

    /** Submit every request and wait for all; responses are returned in
     * request order regardless of completion order. */
    std::vector<ScheduleResponse>
    runBatch(std::vector<ScheduleRequest> requests);

    /** Merged metrics across all workers plus current cache counters. */
    ServiceMetrics metricsSnapshot() const;

    /** Close every description's circuit breaker (operator override
     * after fixing a bad description, and test support). */
    void resetBreakers() { cache_.resetBreakers(); }

    unsigned numWorkers() const { return unsigned(workers_.size()); }

    const DescriptionCache &cache() const { return cache_; }

  private:
    struct Job
    {
        RequestId id = 0;
        ScheduleRequest request;
        std::promise<ScheduleResponse> promise;
        /** Non-null for callback-style submissions (see submit()). */
        Completion completion;
        std::atomic<bool> cancelled{false};
        /** steady_clock deadline (time_point::max() = none). */
        std::chrono::steady_clock::time_point deadline;
        /** When the job entered the admission queue (queue-wait metric). */
        std::chrono::steady_clock::time_point enqueued;
    };

    struct Worker
    {
        std::thread thread;
        /** Guards metrics only; taken once per completed job and during
         * snapshots, never on the scheduling hot path. */
        mutable std::mutex metrics_mu;
        ServiceMetrics metrics;
    };

    void workerLoop(Worker &worker);
    ScheduleResponse process(Job &job, ServiceMetrics &metrics,
                             std::mutex &metrics_mu);
    /** Flight-recorder tail capture: spool the request's ring events
     * when it errored or exceeded the armed latency threshold. */
    static void maybeSpoolFlight(RequestId id, ErrorCode code,
                                 uint64_t latency_us);
    /** Hand @p resp to the job's waiter (promise) or callback. */
    void deliver(Job &job, ScheduleResponse resp);

    DescriptionCache cache_;

    std::mutex queue_mu_;
    std::condition_variable queue_cv_;
    std::deque<std::shared_ptr<Job>> queue_;
    bool stopping_ = false;

    std::mutex jobs_mu_;
    std::unordered_map<RequestId, std::shared_ptr<Job>> jobs_;
    std::atomic<RequestId> next_id_{1};
    /** Submissions rejected by the admission-queue bound. */
    std::atomic<uint64_t> requests_shed_{0};
    /** Windowed view of shed submissions (they never reach a worker,
     * so the per-worker window rings cannot see them). */
    mutable std::mutex shed_windows_mu_;
    WindowRing shed_windows_;
    size_t max_queue_ = 0;

    std::vector<std::unique_ptr<Worker>> workers_;
};

} // namespace mdes::service

#endif // MDES_SERVICE_SERVICE_H
