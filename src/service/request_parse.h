#ifndef MDES_SERVICE_REQUEST_PARSE_H
#define MDES_SERVICE_REQUEST_PARSE_H

/**
 * @file
 * The one request grammar every serving surface shares.
 *
 * A request line is whitespace-separated key=value tokens plus bare
 * flags:
 *
 *   machine=<name> source=<file> sasm=<file>
 *   sched=list|backward|modulo|exact|portfolio
 *   ops=<n> seed=<n> deadline_ms=<n>
 *   exact_ms=<n> exact_nodes=<n>
 *   transforms=all|none|<pass>[,<pass>...]
 *   verify no-optimize no-bit-vector
 *
 * exact_ms/exact_nodes bound the exact/portfolio per-block search
 * (exact_ms=0 removes the time cap, which keeps searches
 * deterministic; exact_nodes=0 uses the scheduler default).
 *
 * `mdesc batch` (files and stdin), the network server's binary frame
 * payloads, and its newline-delimited JSON debug mode (`"req":"..."`)
 * all parse requests through this module, so the wire protocol and the
 * batch tool can never drift apart. renderRequestLine() is the inverse:
 * it emits a line parseRequestLine() reads back into an equal request,
 * which is how in-process harnesses (chaos --socket, bench_net_*) drive
 * their request mixes over a real socket.
 *
 * File-referencing keys (source=, sasm=) read from disk only when the
 * caller allows it; network payloads parse with `allow_files = false`
 * and get a typed error instead of giving remote peers a file oracle.
 */

#include <string>
#include <vector>

#include "service/service.h"

namespace mdes::service {

/** How a request line may be interpreted. */
struct RequestParseOptions
{
    /** Permit source=/sasm= to name local files (the batch tool);
     * disallowed for network payloads. */
    bool allow_files = true;
};

/**
 * Parse one request line (@p lineno appears in error messages).
 * Throws MdesError on an unknown key, malformed number, disallowed
 * file reference, or a line naming neither machine= nor source=.
 */
ScheduleRequest parseRequestLine(const std::string &line, int lineno,
                                 const RequestParseOptions &opts = {});

/** A parsed request file: requests plus the raw line each came from
 * (network clients forward the text verbatim). */
struct ParsedRequests
{
    std::vector<ScheduleRequest> requests;
    /** The stripped request line for requests[i]. */
    std::vector<std::string> lines;
    /** 1-based source line number for requests[i]. */
    std::vector<int> linenos;
};

/**
 * Parse a whole request text: one request per line, `#` starts a
 * comment, blank lines are skipped. Throws MdesError (with line
 * number) on the first bad line.
 */
ParsedRequests parseRequestText(const std::string &text,
                                const RequestParseOptions &opts = {});

/**
 * Render @p req as a request line parseRequestLine() accepts. Inline
 * source/sasm text cannot be rendered (the grammar's source=/sasm=
 * name files); rendering such a request throws MdesError.
 */
std::string renderRequestLine(const ScheduleRequest &req);

} // namespace mdes::service

#endif // MDES_SERVICE_REQUEST_PARSE_H
