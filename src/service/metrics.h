#ifndef MDES_SERVICE_METRICS_H
#define MDES_SERVICE_METRICS_H

/**
 * @file
 * Service observability: request counters, per-stage latency
 * histograms, and scheduling aggregates.
 *
 * Each worker thread owns one ServiceMetrics and records into it without
 * contention; a snapshot merges every worker's copy with
 * Histogram::merge() (plus the cache's own counters) into one report,
 * dumpable as a text table or as JSON.
 *
 * Latencies are recorded in microseconds but bucketed by power of two
 * (value = bit_width(us)), so a histogram stays a few dozen slots even
 * for second-long requests: bucket b covers [2^(b-1), 2^b) us.
 */

#include <cstdint>
#include <string>

#include "service/cache.h"
#include "support/histogram.h"

namespace mdes::service {

/** Why a request failed (Ok = it did not). */
enum class ErrorCode : int {
    Ok = 0,
    UnknownMachine,
    CompileFailed,
    BadWorkload,
    BadRequest,
    DeadlineExceeded,
    Cancelled,
    ScheduleFailed,
    Internal,
    kNumCodes
};

/** Printable name of @p code. */
const char *errorCodeName(ErrorCode code);

/** Latency series for one request stage. */
struct StageLatency
{
    /** Power-of-two buckets: sample = bit_width(microseconds). */
    Histogram log2_us;
    uint64_t count = 0;
    uint64_t total_us = 0;
    uint64_t max_us = 0;

    /** Record one duration of @p us microseconds. */
    void record(uint64_t us);

    /** Combine another series into this one (used lock-free at
     * snapshot time: each input belongs to a quiesced worker). */
    void merge(const StageLatency &other);

    double
    meanUs() const
    {
        return count ? double(total_us) / double(count) : 0.0;
    }
};

/** Everything the service counts. */
struct ServiceMetrics
{
    uint64_t requests = 0;
    uint64_t ok = 0;
    uint64_t errors[size_t(ErrorCode::kNumCodes)] = {};

    /** Filled from DescriptionCache::stats() at snapshot time. */
    DescriptionCache::Stats cache;

    StageLatency compile;
    StageLatency workload;
    StageLatency schedule;
    StageLatency total;

    /** Scheduling aggregates summed across completed requests. */
    uint64_t ops_scheduled = 0;
    uint64_t attempts = 0;
    uint64_t resource_checks = 0;

    void recordOutcome(ErrorCode code);
    void merge(const ServiceMetrics &other);

    /** Human-readable dump (text table). */
    std::string toTable() const;

    /** Machine-readable dump (single JSON object). */
    std::string toJson() const;
};

} // namespace mdes::service

#endif // MDES_SERVICE_METRICS_H
