#ifndef MDES_SERVICE_METRICS_H
#define MDES_SERVICE_METRICS_H

/**
 * @file
 * Service observability: request counters, per-stage latency
 * histograms, and scheduling aggregates.
 *
 * Each worker thread owns one ServiceMetrics and records into it without
 * contention; a snapshot merges every worker's copy with
 * Histogram::merge() (plus the cache's own counters) into one report,
 * dumpable as a text table or as JSON.
 *
 * Latencies are recorded in microseconds but bucketed by power of two
 * (value = bit_width(us)), so a histogram stays a few dozen slots even
 * for second-long requests: bucket b covers [2^(b-1), 2^b) us.
 */

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/transforms.h"
#include "service/cache.h"
#include "support/histogram.h"

namespace mdes::service {

/** Why a request failed (Ok = it did not). */
enum class ErrorCode : int {
    Ok = 0,
    UnknownMachine,
    CompileFailed,
    BadWorkload,
    BadRequest,
    DeadlineExceeded,
    Cancelled,
    ScheduleFailed,
    Internal,
    /** Shed at admission: the bounded queue was full. */
    Overloaded,
    /** Failed fast: the description's circuit breaker is open. */
    CircuitOpen,
    /** Reserved for clients that treat a degraded response as an error;
     * the service itself reports degradation via
     * ScheduleResponse::degraded with code Ok. */
    Degraded,
    /** Shed at the socket tier: the server is draining after SIGTERM
     * and no longer admits new requests (DESIGN.md §15). In-flight
     * work still completes; load balancers should retry elsewhere. */
    Draining,
    kNumCodes
};

/** Printable name of @p code. */
const char *errorCodeName(ErrorCode code);

/** Latency series for one request stage. */
struct StageLatency
{
    /** Power-of-two buckets: sample = bit_width(microseconds). */
    Histogram log2_us;
    uint64_t count = 0;
    uint64_t total_us = 0;
    uint64_t max_us = 0;

    /** Record one duration of @p us microseconds. */
    void record(uint64_t us);

    /** Combine another series into this one (used lock-free at
     * snapshot time: each input belongs to a quiesced worker). */
    void merge(const StageLatency &other);

    double
    meanUs() const
    {
        return count ? double(total_us) / double(count) : 0.0;
    }

    /**
     * Approximate @p q-quantile (q in [0,1]) in microseconds from the
     * power-of-two buckets. The q-th sample's bucket is located by
     * nearest rank, then the estimate interpolates linearly *within*
     * the bucket (samples assumed evenly spread across [2^(b-1),
     * 2^b)), clamped to the observed maximum. Error is bounded by the
     * sample spread inside one bucket instead of the full bucket
     * width, which matters at the coarse tail buckets where the old
     * upper-edge answer overstated p99 by up to 2x. Returns 0 for an
     * empty series.
     */
    uint64_t approxPercentileUs(double q) const;
};

// --- Sliding-window telemetry ------------------------------------------
//
// Lifetime histograms answer "how has this process behaved since
// start"; a dashboard needs "how is it behaving *now*". Each worker's
// metrics carry a small ring of per-10s delta windows: a request lands
// in the slot for epoch now_s/10, claiming (and resetting) the slot
// when its previous tenant is older. A snapshot sums the slots inside
// a horizon (last 10s / last 60s) into current rates and percentiles;
// as epochs age out of the horizon the windowed view decays to zero
// while the lifetime histograms stay monotone.
//
// Slots are keyed by absolute epoch (slot index = epoch % kWindowSlots)
// so windows merge across workers - and across forked shard processes,
// whose steady clocks share the same machine-wide origin - slot by
// slot with Histogram::merge.

/** Window width. Every window boundary is a multiple of this. */
inline constexpr uint64_t kWindowSeconds = 10;
/** Ring length: 60s horizon plus one slot of rotation slack. */
inline constexpr size_t kWindowSlots = 7;

/** Monotonic seconds for window epochs (machine-wide CLOCK_MONOTONIC
 * base, so forked shards stamp the same epoch at the same instant). */
uint64_t windowNowS();

/** One 10-second delta window. epoch == 0 means "empty slot". */
struct MetricsWindow
{
    uint64_t epoch = 0;
    uint64_t requests = 0;
    uint64_t ok = 0;
    uint64_t errors = 0;
    uint64_t shed = 0;
    /** End-to-end request latency deltas for this window. */
    StageLatency total;
};

/** Aggregate of the windows inside one horizon. */
struct WindowView
{
    uint64_t horizon_s = 0;
    uint64_t requests = 0;
    uint64_t ok = 0;
    uint64_t errors = 0;
    uint64_t shed = 0;
    StageLatency total;

    double
    ratePerS() const
    {
        return horizon_s ? double(requests) / double(horizon_s) : 0.0;
    }
};

/** The rotating ring of per-10s windows. */
class WindowRing
{
  public:
    /** Record one completed request into the window for @p now_s. */
    void record(uint64_t now_s, ErrorCode code, uint64_t total_us);

    /** Record @p n admission-shed submissions into @p now_s's window
     * (counted as requests and errors; no latency sample). */
    void recordShed(uint64_t now_s, uint64_t n);

    /** Slot-wise merge keyed by epoch: equal epochs sum (histograms
     * via Histogram::merge), a newer epoch replaces, an older one is
     * stale and ignored. */
    void merge(const WindowRing &other);

    /** Sum of the windows covering the last @p horizon_s seconds
     * ending at @p now_s (epoch granularity; horizon capped at the
     * ring length). */
    WindowView over(uint64_t now_s, uint64_t horizon_s) const;

    /** True when no window holds any data. */
    bool empty() const;

    /** Slot access for serialization (stats protocol) and tests. */
    const MetricsWindow &
    slot(size_t i) const
    {
        return slots_[i];
    }
    MetricsWindow &
    slot(size_t i)
    {
        return slots_[i];
    }

  private:
    MetricsWindow &claim(uint64_t now_s);

    std::array<MetricsWindow, kWindowSlots> slots_{};
};

/** Cumulative transform-pipeline effect totals, summed across the
 * cache-miss compiles a service performed (the trace section's per-pass
 * view of what optimization actually bought). */
struct TransformEffects
{
    uint64_t merged_options = 0;
    uint64_t merged_or_trees = 0;
    uint64_t merged_trees = 0;
    uint64_t removed_dead = 0;
    uint64_t redundant_options_removed = 0;
    uint64_t trees_reordered = 0;
    uint64_t usages_hoisted = 0;
    uint64_t resources_shifted = 0;

    /** Accumulate one pipeline run's counters. */
    void add(const PipelineStats &stats);
    void merge(const TransformEffects &other);

    uint64_t
    total() const
    {
        return merged_options + merged_or_trees + merged_trees +
               removed_dead + redundant_options_removed + trees_reordered +
               usages_hoisted + resources_shifted;
    }
};

/**
 * Socket-tier counters (mdes::net). Filled at snapshot time by the
 * network server, the same way cache stats are; all zero (and the
 * table/JSON sections absent) for an in-process service.
 */
struct NetStats
{
    /** True once a network server contributed to this snapshot. */
    bool enabled = false;

    uint64_t accepted = 0;
    uint64_t closed = 0;
    /** Connections open right now (point-in-time, not monotonic). */
    uint64_t active = 0;
    /** Connections the server closed abruptly (protocol violation or
     * injected peer reset), plus injected accept failures. */
    uint64_t resets = 0;

    uint64_t frames_in = 0;
    uint64_t frames_out = 0;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    /** Connection-fatal framing violations (bad magic/version/length). */
    uint64_t protocol_errors = 0;
    /** Well-framed requests whose payload failed to parse (typed
     * BadRequest response; the connection survives). */
    uint64_t bad_requests = 0;

    /** Responses carrying ErrorCode::Overloaded (admission-queue
     * shedding observed at the socket tier). */
    uint64_t shed = 0;
    /** Responses carrying ErrorCode::DeadlineExceeded (the wire
     * deadline propagated into a cancellation). */
    uint64_t deadline_expired = 0;
    /** Times a connection's reads were paused because its in-flight
     * count or outbound buffer crossed the backpressure high-water
     * mark. */
    uint64_t backpressure_stalls = 0;
    /** In-flight requests cancelled because their connection closed. */
    uint64_t cancelled_on_close = 0;

    /** Stats (STAT frame / {"op":"stats"}) requests served. */
    uint64_t stats_requests = 0;
    /** Stats requests coalesced because an earlier stats response was
     * still draining on the same connection (the reply they got
     * carries the latest request's id and a fresh snapshot). */
    uint64_t stats_coalesced = 0;

    /** Requests answered with ErrorCode::Draining because they arrived
     * after SIGTERM flipped the server to draining (DESIGN.md §15). */
    uint64_t draining_shed = 0;

    void merge(const NetStats &other);
};

/** Everything the service counts. */
struct ServiceMetrics
{
    uint64_t requests = 0;
    uint64_t ok = 0;
    uint64_t errors[size_t(ErrorCode::kNumCodes)] = {};

    /** Filled from DescriptionCache::stats() at snapshot time. */
    DescriptionCache::Stats cache;

    /** Per-10s delta windows behind the live ("now") view. */
    WindowRing windows;

    StageLatency compile;
    StageLatency workload;
    StageLatency schedule;
    StageLatency total;
    /** Time jobs spent in the admission queue before a worker picked
     * them up (the bounded-queue/shedding tradeoff made visible). */
    StageLatency queue_wait;

    /** Scheduling aggregates summed across completed requests. */
    uint64_t ops_scheduled = 0;
    /** Blocks (or loops, for modulo requests) scheduled. */
    uint64_t blocks_scheduled = 0;
    /** Sum of delivered schedule lengths (SchedStats accumulation). */
    uint64_t total_schedule_length = 0;
    uint64_t attempts = 0;
    uint64_t resource_checks = 0;
    /** Attempts rejected outright by the collision-vector prefilter. */
    uint64_t prefilter_hits = 0;
    /** Attempts that took the checker's slot-addressed fast path. */
    uint64_t probe_fastpath = 0;

    // --- Exact/portfolio search section -------------------------------
    // Populated only by exact/portfolio requests; the table and JSON
    // sections stay silent while exact_blocks is zero.
    uint64_t exact_blocks = 0;
    /** Blocks whose delivered length matched the proven lower bound. */
    uint64_t exact_proven_optimal = 0;
    /** Blocks whose search hit its node/time budget. */
    uint64_t exact_budget_exhausted = 0;
    uint64_t exact_nodes = 0;
    uint64_t exact_bound_prunes = 0;
    uint64_t exact_dominance_prunes = 0;
    /** Pure wouldFit() propagation probes spent in searches. */
    uint64_t exact_probes = 0;
    /** Sum over blocks of (delivered length - proven lower bound). */
    uint64_t exact_gap_cycles = 0;
    /** Portfolio win counts by backend. */
    uint64_t portfolio_wins_list = 0;
    uint64_t portfolio_wins_backward = 0;
    uint64_t portfolio_wins_modulo = 0;
    uint64_t portfolio_wins_exact = 0;

    // --- Robustness section -------------------------------------------

    /**
     * Submissions rejected at admission. Shed requests are requests
     * and they failed with Overloaded, so recordShed() — the single
     * authority for this relationship — bumps `requests`,
     * `errors[Overloaded]`, and this counter together; the invariant
     * `requests_shed == errors[Overloaded]` holds for every snapshot
     * and survives merge() (asserted by shedConsistent() and
     * test_metrics). The JSON dump's `errors.overloaded` is the
     * authoritative error count; `robustness.requests_shed` mirrors it
     * for dashboards that read only the robustness section.
     */
    uint64_t requests_shed = 0;
    /** Requests served from the degraded (unoptimized) fallback. */
    uint64_t degraded_responses = 0;
    /** Per-injection-site (evaluations, fires) while faultsim was
     * armed; empty in normal operation. Filled at snapshot time. */
    std::map<std::string, std::pair<uint64_t, uint64_t>> fault_sites;

    // --- Trace section (mdes::trace telemetry) ------------------------

    /** What each transform pass removed/moved, across compiles. */
    TransformEffects transform_effects;
    /** Scheduling attempts per operation (probe hooks; populated only
     * for requests processed while tracing was enabled). */
    Histogram attempts_per_op;
    /** Conflict heat: failed RU-map probes per resource instance, keyed
     * "Machine.Resource" so different machines never alias (populated
     * only while tracing is enabled). */
    std::map<std::string, uint64_t> resource_conflicts;

    // --- Net section (socket front end) -------------------------------

    /** Socket-tier counters; zero/absent without a network server. */
    NetStats net;

    void recordOutcome(ErrorCode code);

    /** Record @p n admission-shed submissions (see requests_shed). */
    void recordShed(uint64_t n);

    /** The shed/Overloaded relationship recordShed() maintains. */
    bool
    shedConsistent() const
    {
        return requests_shed == errors[size_t(ErrorCode::Overloaded)];
    }

    void merge(const ServiceMetrics &other);

    /** Fold one request's conflict table in under @p low's names. */
    void recordConflicts(const lmdes::LowMdes &low,
                         const std::vector<uint64_t> &per_resource);

    /** Human-readable dump (text table). */
    std::string toTable() const;

    /** Machine-readable dump (single JSON object). */
    std::string toJson() const;
};

} // namespace mdes::service

#endif // MDES_SERVICE_METRICS_H
