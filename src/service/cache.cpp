#include "service/cache.h"

#include <chrono>

#include "support/faultsim.h"
#include "support/trace.h"

namespace mdes::service {

namespace {

int64_t
steadyNowUs()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

DescriptionCache::Key
DescriptionCache::makeKey(std::string_view source,
                          const PipelineConfig &transforms,
                          bool bit_vector, exp::Rep rep)
{
    return store::artifactKey(source, transforms, bit_vector, rep);
}

void
DescriptionCache::attachStore(
    std::shared_ptr<store::ArtifactStore> disk_store)
{
    std::lock_guard<std::mutex> lock(mu_);
    store_ = std::move(disk_store);
}

std::shared_ptr<store::ArtifactStore>
DescriptionCache::diskStore() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return store_;
}

void
DescriptionCache::setBreakerPolicy(BreakerPolicy policy)
{
    std::lock_guard<std::mutex> lock(mu_);
    breaker_policy_ = policy;
}

void
DescriptionCache::resetBreakers()
{
    std::lock_guard<std::mutex> lock(mu_);
    breakers_.clear();
}

void
DescriptionCache::eraseGeneration(Key key, uint64_t generation)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end() && it->second->generation == generation) {
        lru_.erase(it->second);
        index_.erase(it);
    }
}

void
DescriptionCache::recordBreakerOutcome(Key key, bool success)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (breaker_policy_.threshold == 0)
        return;
    if (success) {
        breakers_.erase(key);
        return;
    }
    BreakerState &b = breakers_[key];
    ++b.consecutive_failures;
    if (b.consecutive_failures >= breaker_policy_.threshold) {
        if (!b.open)
            ++breaker_trips_;
        b.open = true;
        b.open_until_us =
            steadyNowUs() + int64_t(breaker_policy_.cooldown_ms) * 1000;
    }
}

CompiledMdes
DescriptionCache::getOrCompile(
    Key key, const std::function<CompileResult()> &compile,
    Lookup *lookup, uint64_t config_fingerprint,
    const std::function<bool()> &cancel)
{
    if (lookup)
        *lookup = Lookup{};
    // The outer loop re-runs the lookup when a waiter's owner abandons
    // the compile (CancelledError): someone must still produce the
    // artifact, and it might as well be us.
    for (;;) {
        std::shared_future<CompileResult> fut;
        std::promise<CompileResult> mine;
        std::shared_ptr<store::ArtifactStore> disk_store;
        bool is_owner = false;
        uint64_t my_generation = 0;
        uint64_t waited_generation = 0;
        {
            TRACE_SPAN("cache/lookup");
            std::lock_guard<std::mutex> lock(mu_);
            auto it = index_.find(key);
            if (it != index_.end()) {
                ++hits_;
                if (lookup)
                    lookup->hit = true;
                touch(it->second);
                fut = it->second->artifact;
                waited_generation = it->second->generation;
            } else {
                // Breaker gate: a quarantined key fails fast instead of
                // starting yet another doomed compile. An expired
                // cooldown falls through as the one half-open trial
                // (other concurrent misses become its waiters).
                if (breaker_policy_.threshold > 0) {
                    auto bit = breakers_.find(key);
                    if (bit != breakers_.end() && bit->second.open) {
                        if (steadyNowUs() < bit->second.open_until_us) {
                            ++breaker_fast_fails_;
                            throw CircuitOpenError(
                                "circuit open for key " +
                                std::to_string(key) + ": " +
                                std::to_string(
                                    bit->second.consecutive_failures) +
                                " consecutive compile failures");
                        }
                    }
                }
                ++misses_;
                if (lookup)
                    lookup->hit = false;
                fut = mine.get_future().share();
                my_generation = next_generation_++;
                lru_.push_front(Entry{key, my_generation, fut});
                index_[key] = lru_.begin();
                is_owner = true;
                disk_store = store_;
                while (capacity_ > 0 && lru_.size() > capacity_) {
                    index_.erase(lru_.back().key);
                    lru_.pop_back();
                    ++evictions_;
                }
            }
        }

        if (!is_owner) {
            // Another request owns this key's compile; its spans carry
            // the owner's trace id, so the waiter records only the wait
            // itself.
            TRACE_SPAN("cache/wait");
            // Simulated spurious wakes: the waiter comes back without a
            // result and must re-wait. Bounded so even probability-1.0
            // plans cannot spin forever.
            for (int wakes = 0; wakes < 3; ++wakes) {
                if (!faultsim::probe(faultsim::Site::CacheSpuriousWake)
                         .fired)
                    break;
                fut.wait_for(std::chrono::microseconds(100));
            }
            try {
                CompileResult result = fut.get();
                if (lookup)
                    lookup->degraded = result.degraded;
                return result.artifact;
            } catch (const CancelledError &) {
                // The *owner* gave up, which says nothing about our own
                // deadline. Unless we are also cancelled, drop the dead
                // entry (idempotent with the owner's own cleanup) and
                // retry the lookup; this round's first retrier becomes
                // the new owner.
                if (cancel && cancel())
                    throw;
                eraseGeneration(key, waited_generation);
                continue;
            }
        }

        // Single-flight owner: probe the disk tier, then compile. Both
        // run outside the lock; concurrent lookups of this key block on
        // the shared future, so one key costs at most one disk read or
        // one compilation.
        try {
            faultsim::probe(faultsim::Site::CacheSlowCompile);
            CompileResult result;
            if (disk_store) {
                result.artifact = disk_store->load(key, cancel);
                bool from_disk = result.artifact != nullptr;
                if (lookup)
                    lookup->disk = from_disk;
                std::lock_guard<std::mutex> lock(mu_);
                if (from_disk)
                    ++disk_hits_;
                else
                    ++disk_misses_;
            }
            if (!result.artifact) {
                result = compile();
                {
                    std::lock_guard<std::mutex> lock(mu_);
                    ++compiles_;
                    if (result.degraded)
                        ++degraded_compiles_;
                }
                // A degraded artifact is a stopgap, not a product:
                // publishing or retaining it would pin every future
                // request to the unoptimized fallback.
                if (!result.degraded && disk_store && result.artifact &&
                    disk_store->store(key, *result.artifact,
                                      config_fingerprint, cancel)) {
                    std::lock_guard<std::mutex> lock(mu_);
                    ++disk_stores_;
                }
            }
            recordBreakerOutcome(key, true);
            if (lookup)
                lookup->degraded = result.degraded;
            bool degraded = result.degraded;
            CompiledMdes artifact = result.artifact;
            mine.set_value(std::move(result));
            if (degraded)
                eraseGeneration(key, my_generation);
            return artifact;
        } catch (const CancelledError &) {
            // Our request gave up; that is not the description's fault,
            // so the breaker is not penalized. Waiters will observe the
            // CancelledError and re-run the lookup.
            mine.set_exception(std::current_exception());
            eraseGeneration(key, my_generation);
            throw;
        } catch (...) {
            // Fail every waiter of this round, then forget the entry so
            // a later request retries instead of caching the failure.
            mine.set_exception(std::current_exception());
            recordBreakerOutcome(key, false);
            eraseGeneration(key, my_generation);
            throw;
        }
    }
}

void
DescriptionCache::touch(LruList::iterator it)
{
    lru_.splice(lru_.begin(), lru_, it);
}

DescriptionCache::Stats
DescriptionCache::stats() const
{
    std::shared_ptr<store::ArtifactStore> disk_store;
    Stats s;
    {
        std::lock_guard<std::mutex> lock(mu_);
        s.hits = hits_;
        s.misses = misses_;
        s.evictions = evictions_;
        s.compiles = compiles_;
        s.size = lru_.size();
        s.capacity = capacity_;
        s.disk_enabled = store_ != nullptr;
        s.disk_hits = disk_hits_;
        s.disk_misses = disk_misses_;
        s.disk_stores = disk_stores_;
        s.breaker_trips = breaker_trips_;
        s.breaker_fast_fails = breaker_fast_fails_;
        s.degraded_compiles = degraded_compiles_;
        disk_store = store_;
    }
    if (disk_store) {
        store::StoreStats ss = disk_store->stats();
        s.disk_mapped = ss.mapped_hits;
        s.disk_corrupt = ss.corrupt;
        s.disk_stale = ss.stale_evicted;
        s.disk_evictions = ss.evictions;
        s.disk_retries = ss.retries;
    }
    return s;
}

void
DescriptionCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    index_.clear();
}

} // namespace mdes::service
