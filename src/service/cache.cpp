#include "service/cache.h"

namespace mdes::service {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void
fnvBytes(uint64_t &h, const void *data, size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void
fnvByte(uint64_t &h, unsigned char b)
{
    fnvBytes(h, &b, 1);
}

} // namespace

DescriptionCache::Key
DescriptionCache::makeKey(std::string_view source,
                          const PipelineConfig &transforms,
                          bool bit_vector, exp::Rep rep)
{
    uint64_t h = kFnvOffset;
    fnvBytes(h, source.data(), source.size());
    // Every field that changes the compiled artifact must feed the key;
    // keep in sync with PipelineConfig.
    fnvByte(h, transforms.cse);
    fnvByte(h, transforms.redundant_options);
    fnvByte(h, transforms.minimize);
    fnvByte(h, transforms.time_shift);
    fnvByte(h, transforms.sort_usages);
    fnvByte(h, transforms.hoist);
    fnvByte(h, transforms.sort_or_trees);
    fnvByte(h, static_cast<unsigned char>(transforms.direction));
    fnvByte(h, bit_vector);
    fnvByte(h, static_cast<unsigned char>(rep));
    return h;
}

CompiledMdes
DescriptionCache::getOrCompile(Key key,
                               const std::function<CompiledMdes()> &compile,
                               bool *hit)
{
    std::shared_future<CompiledMdes> fut;
    std::promise<CompiledMdes> mine;
    bool is_owner = false;
    uint64_t my_generation = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = index_.find(key);
        if (it != index_.end()) {
            ++hits_;
            if (hit)
                *hit = true;
            touch(it->second);
            fut = it->second->artifact;
        } else {
            ++misses_;
            if (hit)
                *hit = false;
            fut = mine.get_future().share();
            my_generation = next_generation_++;
            lru_.push_front(Entry{key, my_generation, fut});
            index_[key] = lru_.begin();
            is_owner = true;
            while (capacity_ > 0 && lru_.size() > capacity_) {
                index_.erase(lru_.back().key);
                lru_.pop_back();
                ++evictions_;
            }
        }
    }

    if (!is_owner)
        return fut.get();

    try {
        CompiledMdes artifact = compile();
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++compiles_;
        }
        mine.set_value(artifact);
        return artifact;
    } catch (...) {
        // Fail every waiter of this round, then forget the entry so a
        // later request retries instead of caching the failure.
        mine.set_exception(std::current_exception());
        {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = index_.find(key);
            if (it != index_.end() &&
                it->second->generation == my_generation) {
                lru_.erase(it->second);
                index_.erase(it);
            }
        }
        throw;
    }
}

void
DescriptionCache::touch(LruList::iterator it)
{
    lru_.splice(lru_.begin(), lru_, it);
}

DescriptionCache::Stats
DescriptionCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.compiles = compiles_;
    s.size = lru_.size();
    s.capacity = capacity_;
    return s;
}

void
DescriptionCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    index_.clear();
}

} // namespace mdes::service
