#include "service/cache.h"

#include "support/trace.h"

namespace mdes::service {

DescriptionCache::Key
DescriptionCache::makeKey(std::string_view source,
                          const PipelineConfig &transforms,
                          bool bit_vector, exp::Rep rep)
{
    return store::artifactKey(source, transforms, bit_vector, rep);
}

void
DescriptionCache::attachStore(
    std::shared_ptr<store::ArtifactStore> disk_store)
{
    std::lock_guard<std::mutex> lock(mu_);
    store_ = std::move(disk_store);
}

std::shared_ptr<store::ArtifactStore>
DescriptionCache::diskStore() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return store_;
}

CompiledMdes
DescriptionCache::getOrCompile(Key key,
                               const std::function<CompiledMdes()> &compile,
                               bool *hit, bool *disk,
                               uint64_t config_fingerprint)
{
    if (disk)
        *disk = false;
    std::shared_future<CompiledMdes> fut;
    std::promise<CompiledMdes> mine;
    std::shared_ptr<store::ArtifactStore> disk_store;
    bool is_owner = false;
    uint64_t my_generation = 0;
    {
        TRACE_SPAN("cache/lookup");
        std::lock_guard<std::mutex> lock(mu_);
        auto it = index_.find(key);
        if (it != index_.end()) {
            ++hits_;
            if (hit)
                *hit = true;
            touch(it->second);
            fut = it->second->artifact;
        } else {
            ++misses_;
            if (hit)
                *hit = false;
            fut = mine.get_future().share();
            my_generation = next_generation_++;
            lru_.push_front(Entry{key, my_generation, fut});
            index_[key] = lru_.begin();
            is_owner = true;
            disk_store = store_;
            while (capacity_ > 0 && lru_.size() > capacity_) {
                index_.erase(lru_.back().key);
                lru_.pop_back();
                ++evictions_;
            }
        }
    }

    if (!is_owner) {
        // Another request owns this key's compile; its spans carry the
        // owner's trace id, so the waiter records only the wait itself.
        TRACE_SPAN("cache/wait");
        return fut.get();
    }

    // Single-flight owner: probe the disk tier, then compile. Both run
    // outside the lock; concurrent lookups of this key block on the
    // shared future, so one key costs at most one disk read or one
    // compilation.
    try {
        CompiledMdes artifact;
        bool from_disk = false;
        if (disk_store) {
            artifact = disk_store->load(key);
            from_disk = artifact != nullptr;
            std::lock_guard<std::mutex> lock(mu_);
            if (from_disk)
                ++disk_hits_;
            else
                ++disk_misses_;
        }
        if (!artifact) {
            artifact = compile();
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++compiles_;
            }
            if (disk_store && artifact &&
                disk_store->store(key, *artifact, config_fingerprint)) {
                std::lock_guard<std::mutex> lock(mu_);
                ++disk_stores_;
            }
        }
        if (disk)
            *disk = from_disk;
        mine.set_value(artifact);
        return artifact;
    } catch (...) {
        // Fail every waiter of this round, then forget the entry so a
        // later request retries instead of caching the failure.
        mine.set_exception(std::current_exception());
        {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = index_.find(key);
            if (it != index_.end() &&
                it->second->generation == my_generation) {
                lru_.erase(it->second);
                index_.erase(it);
            }
        }
        throw;
    }
}

void
DescriptionCache::touch(LruList::iterator it)
{
    lru_.splice(lru_.begin(), lru_, it);
}

DescriptionCache::Stats
DescriptionCache::stats() const
{
    std::shared_ptr<store::ArtifactStore> disk_store;
    Stats s;
    {
        std::lock_guard<std::mutex> lock(mu_);
        s.hits = hits_;
        s.misses = misses_;
        s.evictions = evictions_;
        s.compiles = compiles_;
        s.size = lru_.size();
        s.capacity = capacity_;
        s.disk_enabled = store_ != nullptr;
        s.disk_hits = disk_hits_;
        s.disk_misses = disk_misses_;
        s.disk_stores = disk_stores_;
        disk_store = store_;
    }
    if (disk_store) {
        store::StoreStats ss = disk_store->stats();
        s.disk_corrupt = ss.corrupt;
        s.disk_evictions = ss.evictions;
    }
    return s;
}

void
DescriptionCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    index_.clear();
}

} // namespace mdes::service
