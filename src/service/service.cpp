#include "service/service.h"

#include <algorithm>
#include <chrono>

#include <new>

#include "exact/exact_scheduler.h"
#include "machines/machines.h"
#include "sched/backward_scheduler.h"
#include "sched/dep_graph.h"
#include "sched/verify.h"
#include "support/faultsim.h"
#include "support/flightrec.h"
#include "support/trace.h"
#include "workload/sasm.h"
#include "workload/workload.h"

namespace mdes::service {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t
elapsedUs(Clock::time_point since)
{
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - since)
                        .count());
}

void
fnvMix(uint64_t &h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 1099511628211ull;
    }
}

} // namespace

const char *
schedulerKindName(SchedulerKind kind)
{
    switch (kind) {
    case SchedulerKind::List: return "list";
    case SchedulerKind::Backward: return "backward";
    case SchedulerKind::Modulo: return "modulo";
    case SchedulerKind::Exact: return "exact";
    case SchedulerKind::Portfolio: return "portfolio";
    }
    return "?";
}

uint64_t
scheduleFingerprint(const ScheduleResponse &response)
{
    uint64_t h = 1469598103934665603ull;
    for (const auto &s : response.schedules) {
        fnvMix(h, uint64_t(s.length));
        for (int32_t c : s.cycles)
            fnvMix(h, uint64_t(uint32_t(c)));
        for (uint8_t u : s.used_cascade)
            fnvMix(h, u);
    }
    for (const auto &m : response.modulo) {
        fnvMix(h, uint64_t(m.success));
        fnvMix(h, uint64_t(uint32_t(m.ii)));
        for (int32_t t : m.times)
            fnvMix(h, uint64_t(uint32_t(t)));
    }
    return h;
}

MdesService::MdesService(ServiceConfig config)
    : cache_(config.cache_capacity), max_queue_(config.max_queue)
{
    cache_.setBreakerPolicy(
        {config.breaker_threshold, config.breaker_cooldown_ms});
    if (!config.store_dir.empty()) {
        store::StoreConfig sc;
        sc.dir = config.store_dir;
        sc.max_bytes = config.store_max_bytes;
        sc.creator = "mdes-service";
        cache_.attachStore(std::make_shared<store::ArtifactStore>(sc));
    }
    unsigned n = config.num_workers;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    // Threads start only after the vector is fully built so workerLoop
    // never observes a resizing container.
    for (auto &w : workers_)
        w->thread = std::thread([this, worker = w.get()] {
            workerLoop(*worker);
        });
}

MdesService::~MdesService()
{
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        stopping_ = true;
    }
    queue_cv_.notify_all();
    for (auto &w : workers_) {
        if (w->thread.joinable())
            w->thread.join();
    }
}

MdesService::RequestId
MdesService::submit(ScheduleRequest request, Completion on_complete)
{
    auto job = std::make_shared<Job>();
    job->id = next_id_.fetch_add(1, std::memory_order_relaxed);
    job->deadline = request.deadline_ms > 0
                        ? Clock::now() + std::chrono::milliseconds(
                                             request.deadline_ms)
                        : Clock::time_point::max();
    job->request = std::move(request);
    job->completion = std::move(on_complete);
    job->enqueued = Clock::now();
    {
        std::lock_guard<std::mutex> lock(jobs_mu_);
        jobs_.emplace(job->id, job);
    }
    bool shed = false;
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        // Load shedding: beyond the admission bound, rejecting now (a
        // cheap, typed error the client can retry elsewhere) beats
        // queueing work whose deadline will be dead by the time a
        // worker reaches it.
        if (max_queue_ > 0 && queue_.size() >= max_queue_)
            shed = true;
        else
            queue_.push_back(job);
    }
    if (shed) {
        requests_shed_.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(shed_windows_mu_);
            shed_windows_.recordShed(windowNowS(), 1);
        }
        ScheduleResponse resp;
        resp.machine = job->request.machine;
        resp.error = {ErrorCode::Overloaded,
                      "admission queue full (" +
                          std::to_string(max_queue_) + " waiting)"};
        deliver(*job, std::move(resp));
        return job->id;
    }
    queue_cv_.notify_one();
    return job->id;
}

void
MdesService::deliver(Job &job, ScheduleResponse resp)
{
    if (job.completion) {
        // Callback-style jobs are never waited on; retire the id before
        // the callback so a cancel() racing the delivery misses cleanly.
        {
            std::lock_guard<std::mutex> lock(jobs_mu_);
            jobs_.erase(job.id);
        }
        job.completion(std::move(resp));
        return;
    }
    job.promise.set_value(std::move(resp));
}

ScheduleResponse
MdesService::wait(RequestId id)
{
    std::shared_ptr<Job> job;
    {
        std::lock_guard<std::mutex> lock(jobs_mu_);
        auto it = jobs_.find(id);
        if (it == jobs_.end()) {
            ScheduleResponse resp;
            resp.error = {ErrorCode::BadRequest,
                          "unknown or already-waited request id"};
            return resp;
        }
        job = it->second;
        jobs_.erase(it);
    }
    return job->promise.get_future().get();
}

bool
MdesService::cancel(RequestId id)
{
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    it->second->cancelled.store(true, std::memory_order_relaxed);
    return true;
}

std::vector<ScheduleResponse>
MdesService::runBatch(std::vector<ScheduleRequest> requests)
{
    std::vector<RequestId> ids;
    ids.reserve(requests.size());
    for (auto &r : requests)
        ids.push_back(submit(std::move(r)));
    std::vector<ScheduleResponse> responses;
    responses.reserve(ids.size());
    for (RequestId id : ids)
        responses.push_back(wait(id));
    return responses;
}

ServiceMetrics
MdesService::metricsSnapshot() const
{
    ServiceMetrics merged;
    for (const auto &w : workers_) {
        std::lock_guard<std::mutex> lock(w->metrics_mu);
        merged.merge(w->metrics);
    }
    merged.cache = cache_.stats();
    // Shed submissions never reach a worker, so fold them in here
    // through the single authority for the shed/Overloaded pairing.
    merged.recordShed(requests_shed_.load(std::memory_order_relaxed));
    {
        std::lock_guard<std::mutex> lock(shed_windows_mu_);
        merged.windows.merge(shed_windows_);
    }
    // Injection-site telemetry (all zero when faultsim is disarmed and
    // nothing fired since the last install).
    auto site_counters = faultsim::counters();
    for (size_t i = 0; i < faultsim::kNumSites; ++i) {
        if (site_counters[i].evaluations == 0)
            continue;
        merged.fault_sites[faultsim::siteName(faultsim::Site(i))] = {
            site_counters[i].evaluations, site_counters[i].fires};
    }
    return merged;
}

void
MdesService::workerLoop(Worker &worker)
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(queue_mu_);
            queue_cv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        ScheduleResponse resp =
            process(*job, worker.metrics, worker.metrics_mu);
        const ErrorCode code = resp.error.code;
        const uint64_t latency_us = elapsedUs(job->enqueued);
        deliver(*job, std::move(resp));
        // Tail capture after delivery so spool I/O never adds to the
        // caller-observed latency. The request's spans (including the
        // "request" span process() just closed) are still in this
        // thread's flight-recorder ring.
        maybeSpoolFlight(job->id, code, latency_us);
    }
}

void
MdesService::maybeSpoolFlight(RequestId id, ErrorCode code,
                              uint64_t latency_us)
{
    if (!flightrec::spoolArmed())
        return;
    const char *reason = nullptr;
    if (code != ErrorCode::Ok) {
        reason = errorCodeName(code);
    } else {
        const uint64_t slow_us = flightrec::slowThresholdUs();
        if (slow_us != 0 && latency_us > slow_us)
            reason = "slow";
    }
    if (reason != nullptr)
        flightrec::spool(id, reason);
}

ScheduleResponse
MdesService::process(Job &job, ServiceMetrics &metrics,
                     std::mutex &metrics_mu)
{
    const ScheduleRequest &req = job.request;
    ScheduleResponse resp;
    resp.machine = req.machine;

    // Every span recorded while this job runs - including compile passes
    // other requests wait on through the cache's single-flight - carries
    // the request id, so one slow request is traceable end to end. The
    // fault token makes injected faults a function of the request, not
    // of which worker thread happens to run it.
    trace::IdScope trace_scope(job.id);
    faultsim::TokenScope fault_scope(job.id);
    TRACE_SPAN_F(req_span, "request");
    if (req_span.active()) {
        req_span.label("machine", req.machine);
        req_span.label("scheduler", schedulerKindName(req.scheduler));
    }

    uint64_t queue_wait_us = elapsedUs(job.enqueued);
    uint64_t compile_us = 0, workload_us = 0, schedule_us = 0;
    bool timed_compile = false, timed_workload = false,
         timed_schedule = false;
    // Transform effects from this request's own compile (cache misses
    // only; hits reuse an already-optimized artifact).
    PipelineStats pipeline_stats;
    bool compiled = false;
    Clock::time_point t_start = Clock::now();

    // True (and resp.error set) when the job was cancelled or ran past
    // its deadline; checked at every stage boundary.
    auto interrupted = [&]() -> bool {
        if (job.cancelled.load(std::memory_order_relaxed)) {
            resp.error = {ErrorCode::Cancelled, "request cancelled"};
            return true;
        }
        if (Clock::now() > job.deadline) {
            resp.error = {ErrorCode::DeadlineExceeded,
                          "deadline exceeded"};
            return true;
        }
        return false;
    };
    // Record the outcome into the worker's metrics. The lock is per
    // worker and taken once per job, never on the scheduling hot path.
    auto finish = [&] {
        uint64_t total_us = elapsedUs(t_start);
        std::lock_guard<std::mutex> lock(metrics_mu);
        metrics.recordOutcome(resp.error.code);
        metrics.queue_wait.record(queue_wait_us);
        if (resp.degraded)
            ++metrics.degraded_responses;
        if (timed_compile)
            metrics.compile.record(compile_us);
        if (timed_workload)
            metrics.workload.record(workload_us);
        if (timed_schedule)
            metrics.schedule.record(schedule_us);
        metrics.total.record(total_us);
        metrics.windows.record(windowNowS(), resp.error.code, total_us);
        metrics.ops_scheduled += resp.stats.ops_scheduled;
        metrics.blocks_scheduled +=
            resp.schedules.size() + resp.modulo.size();
        metrics.total_schedule_length +=
            resp.stats.total_schedule_length;
        metrics.attempts += resp.stats.checks.attempts;
        metrics.resource_checks += resp.stats.checks.resource_checks;
        metrics.prefilter_hits += resp.stats.checks.prefilter_hits;
        metrics.probe_fastpath += resp.stats.checks.probe_fastpath;
        if (resp.exact.blocks) {
            metrics.exact_blocks += resp.exact.blocks;
            metrics.exact_proven_optimal += resp.exact.proven_optimal;
            metrics.exact_budget_exhausted +=
                resp.exact.budget_exhausted;
            metrics.exact_nodes += resp.exact.nodes;
            metrics.exact_bound_prunes += resp.exact.bound_prunes;
            metrics.exact_dominance_prunes +=
                resp.exact.dominance_prunes;
            metrics.exact_probes += resp.exact.probes;
            metrics.exact_gap_cycles += resp.exact.gap_cycles;
            metrics.portfolio_wins_list += resp.exact.wins_list;
            metrics.portfolio_wins_backward += resp.exact.wins_backward;
            metrics.portfolio_wins_modulo += resp.exact.wins_modulo;
            metrics.portfolio_wins_exact += resp.exact.wins_exact;
        }
        if (compiled)
            metrics.transform_effects.add(pipeline_stats);
        metrics.attempts_per_op.merge(resp.stats.attempts_per_op);
        if (resp.low &&
            !resp.stats.checks.conflicts_per_resource.empty()) {
            metrics.recordConflicts(
                *resp.low, resp.stats.checks.conflicts_per_resource);
        }
    };
    auto fail = [&](ErrorCode code, std::string message) {
        resp.error = {code, std::move(message)};
    };

    // Stage driver: runs the request to completion or first error, so
    // the single finish()/return below records every path uniformly.
    auto stages = [&] {
        if (interrupted())
            return;

        // --- Resolve the description source ---------------------------
        const machines::MachineInfo *builtin = nullptr;
        std::string_view source;
        if (!req.source.empty()) {
            source = req.source;
        } else {
            builtin = machines::byName(req.machine);
            if (!builtin)
                return fail(ErrorCode::UnknownMachine,
                            "unknown machine '" + req.machine + "'");
            source = builtin->source;
        }

        // --- Compile (through the shared cache) -----------------------
        // The cancel predicate lets a compile whose requester's
        // deadline has expired release its worker between transform
        // passes and inside store retry backoffs, instead of finishing
        // work nobody will collect.
        auto cancel = [&]() -> bool {
            return job.cancelled.load(std::memory_order_relaxed) ||
                   Clock::now() > job.deadline;
        };
        Clock::time_point t = Clock::now();
        try {
            DescriptionCache::Key key = DescriptionCache::makeKey(
                source, req.transforms, req.bit_vector);
            DescriptionCache::Lookup lookup;
            resp.low = cache_.getOrCompile(
                key,
                [&]() -> CompileResult {
                    compiled = true;
                    CompileResult result;
                    bool degraded = false;
                    result.artifact =
                        std::make_shared<const lmdes::LowMdes>(
                            exp::compileSourceToLow(
                                source, req.transforms, req.bit_vector,
                                exp::Rep::AndOrTree, &pipeline_stats,
                                &degraded, cancel));
                    result.degraded = degraded;
                    return result;
                },
                &lookup,
                store::configFingerprint(req.transforms,
                                         req.bit_vector),
                cancel);
            resp.cache_hit = lookup.hit;
            resp.disk_hit = lookup.disk;
            resp.degraded = lookup.degraded;
        } catch (const CircuitOpenError &e) {
            return fail(ErrorCode::CircuitOpen, e.what());
        } catch (const CancelledError &e) {
            if (!interrupted())
                resp.error = {ErrorCode::Cancelled, e.what()};
            return;
        } catch (const MdesError &e) {
            return fail(ErrorCode::CompileFailed, e.what());
        } catch (const std::bad_alloc &) {
            return fail(ErrorCode::CompileFailed,
                        "allocation failure during compile");
        }
        compile_us = elapsedUs(t);
        timed_compile = true;
        resp.machine = resp.low->machineName();
        if (interrupted())
            return;

        // --- Build the workload ---------------------------------------
        t = Clock::now();
        sched::Program program;
        {
            TRACE_SPAN("workload/build");
            if (!req.sasm.empty()) {
                DiagnosticEngine diags;
                program = workload::parseSasm(req.sasm, *resp.low, diags);
                if (diags.hasErrors())
                    return fail(ErrorCode::BadWorkload, diags.toString());
            } else if (builtin) {
                workload::WorkloadSpec spec = builtin->workload;
                if (req.synth_ops != 0)
                    spec.num_ops = req.synth_ops;
                if (req.seed != 0)
                    spec.seed = req.seed;
                try {
                    program =
                        req.scheduler == SchedulerKind::Modulo
                            ? workload::generateLoops(spec, *resp.low)
                            : workload::generate(spec, *resp.low);
                } catch (const MdesError &e) {
                    return fail(ErrorCode::BadWorkload, e.what());
                }
            } else {
                return fail(ErrorCode::BadRequest,
                            "inline-source requests need a .sasm "
                            "workload (the synthetic generator requires "
                            "a built-in machine's class mix)");
            }
        }
        workload_us = elapsedUs(t);
        timed_workload = true;
        if (interrupted())
            return;

        // --- Schedule -------------------------------------------------
        // All state below (schedulers, checkers, RU maps, stats) is
        // created fresh per request: nothing mutable crosses jobs.
        t = Clock::now();
        switch (req.scheduler) {
        case SchedulerKind::List: {
            sched::ListScheduler scheduler(*resp.low);
            resp.schedules =
                scheduler.scheduleProgram(program, resp.stats);
            break;
        }
        case SchedulerKind::Backward: {
            sched::BackwardListScheduler scheduler(*resp.low);
            resp.schedules =
                scheduler.scheduleProgram(program, resp.stats);
            break;
        }
        case SchedulerKind::Modulo: {
            sched::ModuloScheduler scheduler(*resp.low);
            for (const auto &block : program.blocks) {
                resp.modulo.push_back(
                    scheduler.schedule(block, resp.stats));
                if (!resp.modulo.back().success)
                    return fail(ErrorCode::ScheduleFailed,
                                "modulo scheduling found no II");
            }
            break;
        }
        case SchedulerKind::Exact:
        case SchedulerKind::Portfolio: {
            // Exact mode: list incumbent + branch-and-bound per block.
            // Portfolio mode: additionally race backward (and, on
            // branch-free blocks, a verified flat modulo schedule) and
            // keep the shortest result, so the response is never longer
            // than plain list scheduling. The request deadline only
            // truncates the searches - the response still carries the
            // best schedules found.
            const bool portfolio =
                req.scheduler == SchedulerKind::Portfolio;
            sched::ListScheduler list(*resp.low);
            sched::BackwardListScheduler backward(*resp.low);
            exact::ExactScheduler search(*resp.low);
            exact::CancelToken token([&]() {
                return job.cancelled.load(std::memory_order_relaxed) ||
                       Clock::now() > job.deadline;
            });
            for (const auto &block : program.blocks) {
                TRACE_SPAN_F(block_span, "exact/block");
                // Every backend runs with local stats: the response's
                // ops_scheduled/total_schedule_length describe the kept
                // schedules, checks describe all work spent.
                sched::SchedStats local;
                sched::BlockSchedule incumbent =
                    list.scheduleBlock(block, local);

                SchedulerKind winner = SchedulerKind::List;
                sched::BlockSchedule best = incumbent;

                if (portfolio) {
                    sched::BlockSchedule b =
                        backward.scheduleBlock(block, local);
                    if (b.length < best.length) {
                        best = std::move(b);
                        winner = SchedulerKind::Backward;
                    }
                    bool branch_free = !block.instrs.empty();
                    for (const auto &in : block.instrs)
                        if (in.is_branch)
                            branch_free = false;
                    if (branch_free) {
                        // A modulo schedule's flat issue times are a
                        // candidate linear schedule; admit it only when
                        // replay proves it legal.
                        sched::ModuloScheduler mod(*resp.low);
                        sched::ModuloSchedule ms =
                            mod.schedule(block, local);
                        if (ms.success && !ms.times.empty()) {
                            sched::BlockSchedule flat;
                            flat.cycles = ms.times;
                            int32_t lo = *std::min_element(
                                flat.cycles.begin(), flat.cycles.end());
                            int32_t hi = *std::max_element(
                                flat.cycles.begin(), flat.cycles.end());
                            for (int32_t &c : flat.cycles)
                                c -= lo;
                            flat.used_cascade.assign(
                                block.instrs.size(), 0);
                            flat.length = hi - lo + 1;
                            if (flat.length < best.length &&
                                sched::verifyScheduleEx(block, flat,
                                                        *resp.low)
                                    .ok()) {
                                best = std::move(flat);
                                winner = SchedulerKind::Modulo;
                            }
                        }
                    }
                }

                exact::ExactOptions eopts;
                if (req.exact_nodes)
                    eopts.max_nodes = req.exact_nodes;
                eopts.time_budget_us =
                    req.exact_ms > 0 ? req.exact_ms * 1000 : 0;
                if (job.deadline != Clock::time_point::max()) {
                    int64_t remain =
                        std::chrono::duration_cast<
                            std::chrono::microseconds>(job.deadline -
                                                       Clock::now())
                            .count();
                    if (remain < 1)
                        remain = 1;
                    eopts.time_budget_us =
                        eopts.time_budget_us > 0
                            ? std::min(eopts.time_budget_us, remain)
                            : remain;
                }
                eopts.cancel = token;
                eopts.incumbent = &incumbent;
                exact::ExactResult er =
                    search.scheduleBlock(block, local, eopts);
                if (er.schedule.length < best.length) {
                    best = er.schedule;
                    winner = SchedulerKind::Exact;
                }
                resp.stats.checks.merge(local.checks);
                resp.stats.attempts_per_op.merge(local.attempts_per_op);
                if (job.cancelled.load(std::memory_order_relaxed))
                    return fail(ErrorCode::Cancelled,
                                "request cancelled");

                BlockOutcome out;
                out.winner = winner;
                out.length = best.length;
                out.lower_bound = std::min(er.lower_bound, best.length);
                out.proven_optimal = best.length <= er.lower_bound;
                out.budget_exhausted = er.budget_exhausted;
                out.nodes = er.nodes;

                auto &tot = resp.exact;
                ++tot.blocks;
                tot.proven_optimal += out.proven_optimal ? 1 : 0;
                tot.budget_exhausted += out.budget_exhausted ? 1 : 0;
                tot.nodes += er.nodes;
                tot.bound_prunes += er.bound_prunes;
                tot.dominance_prunes += er.dominance_prunes;
                tot.probes += er.probes;
                tot.gap_cycles +=
                    uint64_t(out.length - out.lower_bound);
                if (portfolio) {
                    switch (winner) {
                    case SchedulerKind::Backward: ++tot.wins_backward; break;
                    case SchedulerKind::Modulo: ++tot.wins_modulo; break;
                    case SchedulerKind::Exact: ++tot.wins_exact; break;
                    default: ++tot.wins_list; break;
                    }
                }

                if (block_span.active()) {
                    block_span.label("winner",
                                     schedulerKindName(winner));
                    block_span.counter("length", uint64_t(out.length));
                    block_span.counter("lower_bound",
                                       uint64_t(out.lower_bound));
                    block_span.counter(
                        "gap", uint64_t(out.length - out.lower_bound));
                    block_span.counter("nodes", er.nodes);
                }

                resp.stats.ops_scheduled += block.instrs.size();
                resp.stats.total_schedule_length += uint64_t(best.length);
                resp.outcomes.push_back(out);
                resp.schedules.push_back(std::move(best));
            }
            break;
        }
        }
        schedule_us = elapsedUs(t);
        timed_schedule = true;

        for (const auto &s : resp.schedules)
            resp.total_cycles += uint64_t(s.length);
        for (const auto &m : resp.modulo)
            resp.total_cycles += uint64_t(m.ii);

        // --- Optional re-verification ---------------------------------
        if (req.verify && req.scheduler != SchedulerKind::Modulo) {
            for (size_t b = 0; b < resp.schedules.size(); ++b) {
                sched::VerifyResult v = sched::verifyScheduleEx(
                    program.blocks[b], resp.schedules[b], *resp.low);
                if (!v.ok())
                    return fail(ErrorCode::ScheduleFailed,
                                "block " + std::to_string(b) + ": " +
                                    v.message);
            }
        }
    };

    try {
        stages();
    } catch (const std::exception &e) {
        resp.error = {ErrorCode::Internal, e.what()};
    } catch (...) {
        resp.error = {ErrorCode::Internal, "unknown exception"};
    }

    finish();
    return resp;
}

} // namespace mdes::service
