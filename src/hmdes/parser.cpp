#include "hmdes/parser.h"

#include <sstream>

#include "hmdes/lexer.h"

namespace mdes::hmdes {

namespace {

/** Recursive-descent parser with ';'/'}'-synchronizing error recovery. */
class Parser
{
  public:
    Parser(std::vector<Token> tokens, DiagnosticEngine &diags)
        : tokens_(std::move(tokens)), diags_(diags)
    {
    }

    std::optional<MachineDecl> parseMachine();

  private:
    const Token &peek() const { return tokens_[pos_]; }
    const Token &
    advance()
    {
        const Token &t = tokens_[pos_];
        if (t.kind != TokenKind::EndOfFile)
            ++pos_;
        return t;
    }
    bool check(TokenKind kind) const { return peek().kind == kind; }
    bool
    match(TokenKind kind)
    {
        if (!check(kind))
            return false;
        advance();
        return true;
    }

    /** Consume @p kind or report an error mentioning @p context. */
    bool
    expect(TokenKind kind, const char *context)
    {
        if (match(kind))
            return true;
        std::ostringstream os;
        os << "expected " << tokenKindName(kind) << " " << context
           << ", found " << tokenKindName(peek().kind);
        diags_.error(peek().loc, os.str());
        return false;
    }

    /** Skip to just past the next ';' or to a '}' / EOF. */
    void
    synchronize()
    {
        while (!check(TokenKind::EndOfFile)) {
            if (match(TokenKind::Semicolon))
                return;
            if (check(TokenKind::RBrace))
                return;
            advance();
        }
    }

    std::optional<std::string> parseIdent(const char *context);

    ExprPtr parseExpr();
    ExprPtr parseMulExpr();
    ExprPtr parseUnaryExpr();
    ExprPtr parsePrimaryExpr();

    std::optional<ResourceDecl> parseResource();
    std::optional<LetDecl> parseLet();
    std::optional<OrTreeDecl> parseOrTree();
    std::optional<OptionDecl> parseOption();
    bool parseOptItems(std::vector<OptItem> &items);
    std::optional<ForDecl> parseFor();
    bool parseOrItems(std::vector<OrItem> &items);
    std::optional<TableDecl> parseTable();
    std::optional<OperationDecl> parseOperation();
    std::optional<BypassDecl> parseBypass();

    std::vector<Token> tokens_;
    DiagnosticEngine &diags_;
    size_t pos_ = 0;
};

std::optional<std::string>
Parser::parseIdent(const char *context)
{
    if (check(TokenKind::Identifier))
        return advance().text;
    std::ostringstream os;
    os << "expected identifier " << context << ", found "
       << tokenKindName(peek().kind);
    diags_.error(peek().loc, os.str());
    return std::nullopt;
}

ExprPtr
Parser::parseExpr()
{
    ExprPtr lhs = parseMulExpr();
    while (lhs && (check(TokenKind::Plus) || check(TokenKind::Minus))) {
        char op = check(TokenKind::Plus) ? '+' : '-';
        SourceLocation loc = advance().loc;
        ExprPtr rhs = parseMulExpr();
        if (!rhs)
            return nullptr;
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::Binary;
        node->loc = loc;
        node->op = op;
        node->lhs = std::move(lhs);
        node->rhs = std::move(rhs);
        lhs = std::move(node);
    }
    return lhs;
}

ExprPtr
Parser::parseMulExpr()
{
    ExprPtr lhs = parseUnaryExpr();
    while (lhs && (check(TokenKind::Star) || check(TokenKind::Slash) ||
                   check(TokenKind::Percent))) {
        char op = check(TokenKind::Star)    ? '*'
                  : check(TokenKind::Slash) ? '/'
                                            : '%';
        SourceLocation loc = advance().loc;
        ExprPtr rhs = parseUnaryExpr();
        if (!rhs)
            return nullptr;
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::Binary;
        node->loc = loc;
        node->op = op;
        node->lhs = std::move(lhs);
        node->rhs = std::move(rhs);
        lhs = std::move(node);
    }
    return lhs;
}

ExprPtr
Parser::parseUnaryExpr()
{
    if (check(TokenKind::Minus)) {
        SourceLocation loc = advance().loc;
        ExprPtr operand = parseUnaryExpr();
        if (!operand)
            return nullptr;
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::Unary;
        node->loc = loc;
        node->op = '-';
        node->lhs = std::move(operand);
        return node;
    }
    return parsePrimaryExpr();
}

ExprPtr
Parser::parsePrimaryExpr()
{
    if (check(TokenKind::Integer)) {
        const Token &t = advance();
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::IntLit;
        node->loc = t.loc;
        node->value = t.value;
        return node;
    }
    if (check(TokenKind::Identifier)) {
        const Token &t = advance();
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::VarRef;
        node->loc = t.loc;
        node->name = t.text;
        return node;
    }
    if (match(TokenKind::LParen)) {
        ExprPtr inner = parseExpr();
        if (!inner)
            return nullptr;
        if (!expect(TokenKind::RParen, "to close parenthesized expression"))
            return nullptr;
        return inner;
    }
    std::ostringstream os;
    os << "expected expression, found " << tokenKindName(peek().kind);
    diags_.error(peek().loc, os.str());
    return nullptr;
}

std::optional<ResourceDecl>
Parser::parseResource()
{
    ResourceDecl decl;
    decl.loc = advance().loc; // 'resource'
    auto name = parseIdent("after 'resource'");
    if (!name)
        return std::nullopt;
    decl.name = *name;
    if (match(TokenKind::LBracket)) {
        decl.count = parseExpr();
        if (!decl.count)
            return std::nullopt;
        if (!expect(TokenKind::RBracket, "after resource count"))
            return std::nullopt;
    }
    if (!expect(TokenKind::Semicolon, "after resource declaration"))
        return std::nullopt;
    return decl;
}

std::optional<LetDecl>
Parser::parseLet()
{
    LetDecl decl;
    decl.loc = advance().loc; // 'let'
    auto name = parseIdent("after 'let'");
    if (!name)
        return std::nullopt;
    decl.name = *name;
    if (!expect(TokenKind::Equals, "in let declaration"))
        return std::nullopt;
    decl.value = parseExpr();
    if (!decl.value)
        return std::nullopt;
    if (!expect(TokenKind::Semicolon, "after let declaration"))
        return std::nullopt;
    return decl;
}

bool
Parser::parseOptItems(std::vector<OptItem> &items)
{
    while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
        if (check(TokenKind::KwUse)) {
            UsageDecl usage;
            usage.loc = advance().loc; // 'use'
            auto res = parseIdent("after 'use'");
            if (!res)
                return false;
            usage.resource = *res;
            if (match(TokenKind::LBracket)) {
                usage.index = parseExpr();
                if (!usage.index)
                    return false;
                if (!expect(TokenKind::RBracket, "after resource index"))
                    return false;
            }
            if (!expect(TokenKind::KwAt, "in usage (use R at T)"))
                return false;
            usage.time = parseExpr();
            if (!usage.time)
                return false;
            if (!expect(TokenKind::Semicolon, "after usage"))
                return false;
            items.emplace_back(std::move(usage));
        } else if (check(TokenKind::KwFor)) {
            UsageForDecl loop;
            loop.loc = advance().loc; // 'for'
            auto var = parseIdent("after 'for'");
            if (!var)
                return false;
            loop.var = *var;
            if (!expect(TokenKind::KwIn, "in for loop"))
                return false;
            loop.lo = parseExpr();
            if (!loop.lo)
                return false;
            if (!expect(TokenKind::DotDot, "between loop bounds"))
                return false;
            loop.hi = parseExpr();
            if (!loop.hi)
                return false;
            if (!expect(TokenKind::LBrace, "to open for-loop body"))
                return false;
            if (!parseOptItems(loop.body))
                return false;
            if (!expect(TokenKind::RBrace, "to close for-loop body"))
                return false;
            items.emplace_back(std::move(loop));
        } else {
            diags_.error(peek().loc,
                         "expected 'use' or 'for' inside option");
            return false;
        }
    }
    return true;
}

std::optional<OptionDecl>
Parser::parseOption()
{
    OptionDecl decl;
    decl.loc = advance().loc; // 'option'
    if (!expect(TokenKind::LBrace, "after 'option'"))
        return std::nullopt;
    if (!parseOptItems(decl.items))
        return std::nullopt;
    if (!expect(TokenKind::RBrace, "to close option"))
        return std::nullopt;
    return decl;
}

std::optional<ForDecl>
Parser::parseFor()
{
    ForDecl decl;
    decl.loc = advance().loc; // 'for'
    auto var = parseIdent("after 'for'");
    if (!var)
        return std::nullopt;
    decl.var = *var;
    if (!expect(TokenKind::KwIn, "in for loop"))
        return std::nullopt;
    decl.lo = parseExpr();
    if (!decl.lo)
        return std::nullopt;
    if (!expect(TokenKind::DotDot, "between loop bounds"))
        return std::nullopt;
    decl.hi = parseExpr();
    if (!decl.hi)
        return std::nullopt;
    if (!expect(TokenKind::LBrace, "to open for-loop body"))
        return std::nullopt;
    if (!parseOrItems(decl.body))
        return std::nullopt;
    if (!expect(TokenKind::RBrace, "to close for-loop body"))
        return std::nullopt;
    return decl;
}

bool
Parser::parseOrItems(std::vector<OrItem> &items)
{
    while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
        if (check(TokenKind::KwOption)) {
            auto opt = parseOption();
            if (!opt)
                return false;
            items.push_back(std::move(*opt));
        } else if (check(TokenKind::KwFor)) {
            auto loop = parseFor();
            if (!loop)
                return false;
            items.push_back(std::move(*loop));
        } else {
            diags_.error(peek().loc,
                         "expected 'option' or 'for' inside ortree");
            return false;
        }
    }
    return true;
}

std::optional<OrTreeDecl>
Parser::parseOrTree()
{
    OrTreeDecl decl;
    decl.loc = advance().loc; // 'ortree'
    auto name = parseIdent("after 'ortree'");
    if (!name)
        return std::nullopt;
    decl.name = *name;
    if (!expect(TokenKind::LBrace, "to open ortree body"))
        return std::nullopt;
    if (!parseOrItems(decl.items))
        return std::nullopt;
    if (!expect(TokenKind::RBrace, "to close ortree body"))
        return std::nullopt;
    return decl;
}

std::optional<TableDecl>
Parser::parseTable()
{
    TableDecl decl;
    decl.loc = advance().loc; // 'table'
    auto name = parseIdent("after 'table'");
    if (!name)
        return std::nullopt;
    decl.name = *name;
    if (!expect(TokenKind::Equals, "in table declaration"))
        return std::nullopt;
    if (match(TokenKind::KwAnd)) {
        decl.is_and = true;
        if (!expect(TokenKind::LParen, "after 'and'"))
            return std::nullopt;
        do {
            SourceLocation loc = peek().loc;
            auto member = parseIdent("in and(...) list");
            if (!member)
                return std::nullopt;
            decl.or_tree_names.push_back(*member);
            decl.or_tree_locs.push_back(loc);
        } while (match(TokenKind::Comma));
        if (!expect(TokenKind::RParen, "to close and(...) list"))
            return std::nullopt;
    } else {
        SourceLocation loc = peek().loc;
        auto member = parseIdent("naming an ortree");
        if (!member)
            return std::nullopt;
        decl.or_tree_names.push_back(*member);
        decl.or_tree_locs.push_back(loc);
    }
    if (!expect(TokenKind::Semicolon, "after table declaration"))
        return std::nullopt;
    return decl;
}

std::optional<OperationDecl>
Parser::parseOperation()
{
    OperationDecl decl;
    decl.loc = advance().loc; // 'operation'
    auto name = parseIdent("after 'operation'");
    if (!name)
        return std::nullopt;
    decl.name = *name;
    if (!expect(TokenKind::LBrace, "to open operation body"))
        return std::nullopt;
    while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
        if (match(TokenKind::KwTable)) {
            decl.table_loc = peek().loc;
            auto t = parseIdent("after 'table'");
            if (!t)
                return std::nullopt;
            if (decl.table)
                diags_.error(decl.table_loc,
                             "duplicate 'table' in operation '" +
                                 decl.name + "'");
            decl.table = *t;
        } else if (match(TokenKind::KwLatency)) {
            decl.latency = parseExpr();
            if (!decl.latency)
                return std::nullopt;
        } else if (match(TokenKind::KwCascade)) {
            decl.cascade_loc = peek().loc;
            auto c = parseIdent("after 'cascade'");
            if (!c)
                return std::nullopt;
            decl.cascade = *c;
        } else if (match(TokenKind::KwNote)) {
            if (!check(TokenKind::String)) {
                diags_.error(peek().loc, "expected string after 'note'");
                return std::nullopt;
            }
            decl.note = advance().text;
        } else {
            diags_.error(peek().loc,
                         "expected 'table', 'latency', 'cascade' or "
                         "'note' inside operation");
            return std::nullopt;
        }
        if (!expect(TokenKind::Semicolon, "after operation field"))
            return std::nullopt;
    }
    if (!expect(TokenKind::RBrace, "to close operation body"))
        return std::nullopt;
    return decl;
}

std::optional<BypassDecl>
Parser::parseBypass()
{
    BypassDecl decl;
    decl.loc = advance().loc; // 'bypass'
    decl.from_loc = peek().loc;
    auto from = parseIdent("after 'bypass'");
    if (!from)
        return std::nullopt;
    decl.from = *from;
    decl.to_loc = peek().loc;
    auto to = parseIdent("naming the consuming operation");
    if (!to)
        return std::nullopt;
    decl.to = *to;
    if (!expect(TokenKind::KwLatency, "in bypass declaration"))
        return std::nullopt;
    decl.latency = parseExpr();
    if (!decl.latency)
        return std::nullopt;
    if (!expect(TokenKind::Semicolon, "after bypass declaration"))
        return std::nullopt;
    return decl;
}

std::optional<MachineDecl>
Parser::parseMachine()
{
    MachineDecl machine;
    if (!expect(TokenKind::KwMachine, "at start of description"))
        return std::nullopt;
    machine.loc = tokens_[pos_ - 1].loc;
    if (!check(TokenKind::String)) {
        diags_.error(peek().loc, "expected machine name string");
        return std::nullopt;
    }
    machine.name = advance().text;
    if (!expect(TokenKind::LBrace, "to open machine body"))
        return std::nullopt;

    while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
        bool ok = false;
        switch (peek().kind) {
          case TokenKind::KwResource:
            if (auto d = parseResource()) {
                machine.decls.emplace_back(std::move(*d));
                ok = true;
            }
            break;
          case TokenKind::KwLet:
            if (auto d = parseLet()) {
                machine.decls.emplace_back(std::move(*d));
                ok = true;
            }
            break;
          case TokenKind::KwOrTree:
            if (auto d = parseOrTree()) {
                machine.decls.emplace_back(std::move(*d));
                ok = true;
            }
            break;
          case TokenKind::KwTable:
            if (auto d = parseTable()) {
                machine.decls.emplace_back(std::move(*d));
                ok = true;
            }
            break;
          case TokenKind::KwOperation:
            if (auto d = parseOperation()) {
                machine.decls.emplace_back(std::move(*d));
                ok = true;
            }
            break;
          case TokenKind::KwBypass:
            if (auto d = parseBypass()) {
                machine.decls.emplace_back(std::move(*d));
                ok = true;
            }
            break;
          default:
            diags_.error(peek().loc,
                         std::string("expected a declaration, found ") +
                             tokenKindName(peek().kind));
            break;
        }
        if (!ok)
            synchronize();
    }
    if (!expect(TokenKind::RBrace, "to close machine body"))
        return std::nullopt;
    if (!check(TokenKind::EndOfFile)) {
        diags_.error(peek().loc, "unexpected text after machine body");
    }
    return machine;
}

} // namespace

std::optional<MachineDecl>
parseMachine(std::string_view source, DiagnosticEngine &diags)
{
    Lexer lexer(source, diags);
    Parser parser(lexer.lexAll(), diags);
    return parser.parseMachine();
}

} // namespace mdes::hmdes
