#ifndef MDES_HMDES_AST_H
#define MDES_HMDES_AST_H

/**
 * @file
 * Abstract syntax tree for the high-level MDES language.
 *
 * Grammar (EBNF):
 *
 *   machine    := 'machine' STRING '{' decl* '}'
 *   decl       := resource | let | ortree | table | operation | bypass
 *   resource   := 'resource' IDENT ('[' expr ']')? ';'
 *   let        := 'let' IDENT '=' expr ';'
 *   ortree     := 'ortree' IDENT '{' oritem* '}'
 *   oritem     := option | for
 *   for        := 'for' IDENT 'in' expr '..' expr '{' oritem* '}'
 *   option     := 'option' '{' usage* '}'
 *   usage      := 'use' IDENT ('[' expr ']')? 'at' expr ';'
 *   table      := 'table' IDENT '='
 *                   ( 'and' '(' IDENT (',' IDENT)* ')' | IDENT ) ';'
 *   operation  := 'operation' IDENT '{' opfield* '}'
 *   opfield    := 'table' IDENT ';' | 'latency' expr ';'
 *               | 'cascade' IDENT ';' | 'note' STRING ';'
 *   bypass     := 'bypass' IDENT IDENT 'latency' expr ';'
 *   expr       := additive over INT | IDENT | '(' expr ')' with
 *                 + - * / % and unary minus
 *
 * `for` loops expand (nested) option lists; `and(...)` composes named
 * OR-trees into an AND/OR-tree; a bare identifier makes a table whose AND
 * level points at one OR-tree (the paper's Pentium-style description).
 */

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "support/diagnostics.h"

namespace mdes::hmdes {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Arithmetic expression node. */
struct Expr
{
    enum class Kind { IntLit, VarRef, Unary, Binary };

    Kind kind = Kind::IntLit;
    SourceLocation loc;
    int64_t value = 0;       ///< IntLit
    std::string name;        ///< VarRef
    char op = 0;             ///< Unary ('-') / Binary ('+','-','*','/','%')
    ExprPtr lhs;
    ExprPtr rhs;
};

/** `use Res[idx] at time;` */
struct UsageDecl
{
    SourceLocation loc;
    std::string resource;
    ExprPtr index; ///< null for single-instance resources
    ExprPtr time;
};

struct UsageForDecl;

/** An item inside an option body: a usage or a usage-level for loop. */
using OptItem = std::variant<UsageDecl, UsageForDecl>;

/** `for v in lo .. hi { usage* }` inside an option: expands to the
 * loop body's usages once per iteration (e.g. a divide unit busy for
 * cycles 0..5 in a single reservation-table option). */
struct UsageForDecl
{
    SourceLocation loc;
    std::string var;
    ExprPtr lo;
    ExprPtr hi;
    std::vector<OptItem> body;
};

/** `option { optitem* }` */
struct OptionDecl
{
    SourceLocation loc;
    std::vector<OptItem> items;
};

struct ForDecl;

/** An item inside an ortree body: a literal option or a for expansion. */
using OrItem = std::variant<OptionDecl, ForDecl>;

/** `for v in lo .. hi { oritem* }` */
struct ForDecl
{
    SourceLocation loc;
    std::string var;
    ExprPtr lo;
    ExprPtr hi;
    std::vector<OrItem> body;
};

/** `resource Name[count];` */
struct ResourceDecl
{
    SourceLocation loc;
    std::string name;
    ExprPtr count; ///< null means 1
};

/** `let NAME = expr;` */
struct LetDecl
{
    SourceLocation loc;
    std::string name;
    ExprPtr value;
};

/** `ortree Name { ... }` */
struct OrTreeDecl
{
    SourceLocation loc;
    std::string name;
    std::vector<OrItem> items;
};

/** `table Name = and(A, B, ...);` or `table Name = A;` */
struct TableDecl
{
    SourceLocation loc;
    std::string name;
    bool is_and = false;
    std::vector<std::string> or_tree_names;
    std::vector<SourceLocation> or_tree_locs;
};

/** `operation Name { table T; latency n; cascade C; note "..."; }` */
struct OperationDecl
{
    SourceLocation loc;
    std::string name;
    std::optional<std::string> table;
    SourceLocation table_loc;
    ExprPtr latency; ///< null means 1
    std::optional<std::string> cascade;
    SourceLocation cascade_loc;
    std::optional<std::string> note;
};

/** `bypass PRODUCER CONSUMER latency N;` - a forwarding path: when
 * CONSUMER directly consumes PRODUCER's result, the effective flow
 * latency is N instead of PRODUCER's nominal latency (paper footnote 1:
 * machine descriptions also model bypassing and forwarding effects). */
struct BypassDecl
{
    SourceLocation loc;
    std::string from;
    std::string to;
    SourceLocation from_loc;
    SourceLocation to_loc;
    ExprPtr latency;
};

/** One top-level declaration, in source order. */
using Decl = std::variant<ResourceDecl, LetDecl, OrTreeDecl, TableDecl,
                          OperationDecl, BypassDecl>;

/** A whole machine description. */
struct MachineDecl
{
    SourceLocation loc;
    std::string name;
    std::vector<Decl> decls;
};

} // namespace mdes::hmdes

#endif // MDES_HMDES_AST_H
