#ifndef MDES_HMDES_BUILDER_H
#define MDES_HMDES_BUILDER_H

/**
 * @file
 * Semantic analysis and translation of a parsed machine description into
 * the structured core::Mdes model: evaluates let constants and for-loop
 * expansions, resolves resource/OR-tree/table references, and enforces
 * the language's semantic rules with located diagnostics.
 */

#include <optional>

#include "core/mdes.h"
#include "hmdes/ast.h"

namespace mdes::hmdes {

/**
 * Translate @p machine into a core Mdes.
 *
 * Declarations are processed in source order and must be declared before
 * use (resources before usages, OR-trees before tables, tables before
 * operations). @return std::nullopt and diagnostics in @p diags on error.
 */
std::optional<Mdes> buildMdes(const MachineDecl &machine,
                              DiagnosticEngine &diags);

} // namespace mdes::hmdes

#endif // MDES_HMDES_BUILDER_H
