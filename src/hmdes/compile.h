#ifndef MDES_HMDES_COMPILE_H
#define MDES_HMDES_COMPILE_H

/**
 * @file
 * One-call entry points for turning high-level MDES text into a core
 * Mdes model (parse + semantic analysis + build).
 */

#include <optional>
#include <string_view>

#include "core/mdes.h"
#include "support/diagnostics.h"

namespace mdes::hmdes {

/**
 * Compile @p source into an Mdes, reporting problems to @p diags.
 * @return std::nullopt when compilation failed.
 */
std::optional<Mdes> compile(std::string_view source,
                            DiagnosticEngine &diags);

/**
 * Compile @p source, throwing MdesError carrying the rendered diagnostics
 * when compilation fails. Convenience for machines known to be valid.
 */
Mdes compileOrThrow(std::string_view source);

} // namespace mdes::hmdes

#endif // MDES_HMDES_COMPILE_H
