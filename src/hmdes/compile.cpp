#include "hmdes/compile.h"

#include "hmdes/builder.h"
#include "hmdes/parser.h"

namespace mdes::hmdes {

std::optional<Mdes>
compile(std::string_view source, DiagnosticEngine &diags)
{
    auto ast = parseMachine(source, diags);
    if (!ast || diags.hasErrors())
        return std::nullopt;
    return buildMdes(*ast, diags);
}

Mdes
compileOrThrow(std::string_view source)
{
    DiagnosticEngine diags;
    auto mdes = compile(source, diags);
    if (!mdes) {
        throw MdesError("machine description failed to compile:\n" +
                        diags.toString());
    }
    return std::move(*mdes);
}

} // namespace mdes::hmdes
