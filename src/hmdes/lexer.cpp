#include "hmdes/lexer.h"

#include <cctype>
#include <map>

namespace mdes::hmdes {

const char *
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::Identifier: return "identifier";
      case TokenKind::Integer: return "integer";
      case TokenKind::String: return "string";
      case TokenKind::KwMachine: return "'machine'";
      case TokenKind::KwResource: return "'resource'";
      case TokenKind::KwLet: return "'let'";
      case TokenKind::KwOrTree: return "'ortree'";
      case TokenKind::KwFor: return "'for'";
      case TokenKind::KwIn: return "'in'";
      case TokenKind::KwOption: return "'option'";
      case TokenKind::KwUse: return "'use'";
      case TokenKind::KwAt: return "'at'";
      case TokenKind::KwTable: return "'table'";
      case TokenKind::KwAnd: return "'and'";
      case TokenKind::KwOperation: return "'operation'";
      case TokenKind::KwLatency: return "'latency'";
      case TokenKind::KwCascade: return "'cascade'";
      case TokenKind::KwNote: return "'note'";
      case TokenKind::KwBypass: return "'bypass'";
      case TokenKind::LBrace: return "'{'";
      case TokenKind::RBrace: return "'}'";
      case TokenKind::LBracket: return "'['";
      case TokenKind::RBracket: return "']'";
      case TokenKind::LParen: return "'('";
      case TokenKind::RParen: return "')'";
      case TokenKind::Semicolon: return "';'";
      case TokenKind::Comma: return "','";
      case TokenKind::Equals: return "'='";
      case TokenKind::DotDot: return "'..'";
      case TokenKind::Plus: return "'+'";
      case TokenKind::Minus: return "'-'";
      case TokenKind::Star: return "'*'";
      case TokenKind::Slash: return "'/'";
      case TokenKind::Percent: return "'%'";
      case TokenKind::EndOfFile: return "end of file";
      case TokenKind::Error: return "invalid token";
    }
    return "unknown";
}

namespace {

const std::map<std::string_view, TokenKind> kKeywords = {
    {"machine", TokenKind::KwMachine},
    {"resource", TokenKind::KwResource},
    {"let", TokenKind::KwLet},
    {"ortree", TokenKind::KwOrTree},
    {"for", TokenKind::KwFor},
    {"in", TokenKind::KwIn},
    {"option", TokenKind::KwOption},
    {"use", TokenKind::KwUse},
    {"at", TokenKind::KwAt},
    {"table", TokenKind::KwTable},
    {"and", TokenKind::KwAnd},
    {"operation", TokenKind::KwOperation},
    {"latency", TokenKind::KwLatency},
    {"cascade", TokenKind::KwCascade},
    {"note", TokenKind::KwNote},
    {"bypass", TokenKind::KwBypass},
};

} // namespace

Lexer::Lexer(std::string_view source, DiagnosticEngine &diags)
    : source_(source), diags_(diags)
{
}

std::vector<Token>
Lexer::lexAll()
{
    std::vector<Token> tokens;
    for (;;) {
        Token t = next();
        bool eof = t.kind == TokenKind::EndOfFile;
        tokens.push_back(std::move(t));
        if (eof)
            break;
    }
    return tokens;
}

char
Lexer::peek() const
{
    return atEnd() ? '\0' : source_[pos_];
}

char
Lexer::peekAhead() const
{
    return pos_ + 1 < source_.size() ? source_[pos_ + 1] : '\0';
}

char
Lexer::advance()
{
    char c = source_[pos_++];
    if (c == '\n') {
        ++line_;
        column_ = 1;
    } else {
        ++column_;
    }
    return c;
}

bool
Lexer::atEnd() const
{
    return pos_ >= source_.size();
}

SourceLocation
Lexer::here() const
{
    return {line_, column_};
}

void
Lexer::skipTrivia()
{
    for (;;) {
        if (atEnd())
            return;
        char c = peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
        } else if (c == '/' && peekAhead() == '/') {
            while (!atEnd() && peek() != '\n')
                advance();
        } else if (c == '/' && peekAhead() == '*') {
            SourceLocation start = here();
            advance();
            advance();
            bool closed = false;
            while (!atEnd()) {
                if (peek() == '*' && peekAhead() == '/') {
                    advance();
                    advance();
                    closed = true;
                    break;
                }
                advance();
            }
            if (!closed)
                diags_.error(start, "unterminated block comment");
        } else {
            return;
        }
    }
}

Token
Lexer::next()
{
    skipTrivia();
    Token t;
    t.loc = here();
    if (atEnd()) {
        t.kind = TokenKind::EndOfFile;
        return t;
    }

    char c = advance();
    switch (c) {
      case '{': t.kind = TokenKind::LBrace; return t;
      case '}': t.kind = TokenKind::RBrace; return t;
      case '[': t.kind = TokenKind::LBracket; return t;
      case ']': t.kind = TokenKind::RBracket; return t;
      case '(': t.kind = TokenKind::LParen; return t;
      case ')': t.kind = TokenKind::RParen; return t;
      case ';': t.kind = TokenKind::Semicolon; return t;
      case ',': t.kind = TokenKind::Comma; return t;
      case '=': t.kind = TokenKind::Equals; return t;
      case '+': t.kind = TokenKind::Plus; return t;
      case '-': t.kind = TokenKind::Minus; return t;
      case '*': t.kind = TokenKind::Star; return t;
      case '/': t.kind = TokenKind::Slash; return t;
      case '%': t.kind = TokenKind::Percent; return t;
      case '.':
        if (peek() == '.') {
            advance();
            t.kind = TokenKind::DotDot;
            return t;
        }
        diags_.error(t.loc, "unexpected '.'");
        t.kind = TokenKind::Error;
        return t;
      case '"': {
        std::string text;
        while (!atEnd() && peek() != '"' && peek() != '\n')
            text.push_back(advance());
        if (atEnd() || peek() != '"') {
            diags_.error(t.loc, "unterminated string literal");
            t.kind = TokenKind::Error;
            return t;
        }
        advance();
        t.kind = TokenKind::String;
        t.text = std::move(text);
        return t;
      }
      default:
        break;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
        int64_t value = c - '0';
        bool overflow = false;
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
            value = value * 10 + (advance() - '0');
            if (value > 1'000'000'000) {
                overflow = true;
                value = 1'000'000'000;
            }
        }
        if (overflow)
            diags_.error(t.loc, "integer literal too large");
        t.kind = TokenKind::Integer;
        t.value = value;
        return t;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string text(1, c);
        while (!atEnd() &&
               (std::isalnum(static_cast<unsigned char>(peek())) ||
                peek() == '_')) {
            text.push_back(advance());
        }
        auto it = kKeywords.find(text);
        if (it != kKeywords.end()) {
            t.kind = it->second;
        } else {
            t.kind = TokenKind::Identifier;
            t.text = std::move(text);
        }
        return t;
    }

    diags_.error(t.loc, std::string("unexpected character '") + c + "'");
    t.kind = TokenKind::Error;
    return t;
}

} // namespace mdes::hmdes
