#ifndef MDES_HMDES_LEXER_H
#define MDES_HMDES_LEXER_H

/**
 * @file
 * Lexer for the high-level MDES language.
 *
 * Supports // line comments, C-style block comments, decimal integers,
 * double-quoted strings, and the keyword/punctuation set in token.h.
 */

#include <string_view>
#include <vector>

#include "hmdes/token.h"
#include "support/diagnostics.h"

namespace mdes::hmdes {

/** Converts MDES source text into a token stream. */
class Lexer
{
  public:
    /** Lex @p source, reporting problems to @p diags. The token stream
     * always ends with an EndOfFile token. */
    Lexer(std::string_view source, DiagnosticEngine &diags);

    /** Lex the whole buffer. */
    std::vector<Token> lexAll();

  private:
    Token next();
    char peek() const;
    char peekAhead() const;
    char advance();
    bool atEnd() const;
    void skipTrivia();
    SourceLocation here() const;

    std::string_view source_;
    DiagnosticEngine &diags_;
    size_t pos_ = 0;
    int line_ = 1;
    int column_ = 1;
};

} // namespace mdes::hmdes

#endif // MDES_HMDES_LEXER_H
