#ifndef MDES_HMDES_TOKEN_H
#define MDES_HMDES_TOKEN_H

/**
 * @file
 * Token definitions for the high-level MDES language.
 */

#include <cstdint>
#include <string>

#include "support/diagnostics.h"

namespace mdes::hmdes {

/** Lexical token kinds. */
enum class TokenKind {
    // Literals and names.
    Identifier,
    Integer,
    String,

    // Keywords.
    KwMachine,
    KwResource,
    KwLet,
    KwOrTree,
    KwFor,
    KwIn,
    KwOption,
    KwUse,
    KwAt,
    KwTable,
    KwAnd,
    KwOperation,
    KwLatency,
    KwCascade,
    KwNote,
    KwBypass,

    // Punctuation.
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Semicolon,
    Comma,
    Equals,
    DotDot,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,

    EndOfFile,
    Error,
};

/** Printable name of a token kind, for diagnostics. */
const char *tokenKindName(TokenKind kind);

/** One lexed token. */
struct Token
{
    TokenKind kind = TokenKind::Error;
    SourceLocation loc;
    /** Identifier or string contents. */
    std::string text;
    /** Value for Integer tokens. */
    int64_t value = 0;
};

} // namespace mdes::hmdes

#endif // MDES_HMDES_TOKEN_H
