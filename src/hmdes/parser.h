#ifndef MDES_HMDES_PARSER_H
#define MDES_HMDES_PARSER_H

/**
 * @file
 * Recursive-descent parser for the high-level MDES language.
 */

#include <optional>
#include <string_view>

#include "hmdes/ast.h"
#include "hmdes/token.h"

namespace mdes::hmdes {

/**
 * Parse one machine description.
 *
 * @param source the MDES text.
 * @param diags receives errors/warnings with source locations.
 * @return the AST, or std::nullopt when parsing failed badly enough that
 *         no usable machine declaration was produced. Even a returned AST
 *         may be accompanied by errors in @p diags; callers must check
 *         diags.hasErrors() before building.
 */
std::optional<MachineDecl> parseMachine(std::string_view source,
                                        DiagnosticEngine &diags);

} // namespace mdes::hmdes

#endif // MDES_HMDES_PARSER_H
