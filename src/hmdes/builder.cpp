#include "hmdes/builder.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace mdes::hmdes {

namespace {

/** Usage times are pipeline-relative; this bound catches typos. */
constexpr int64_t kMaxUsageTime = 4096;
/** Sanity bound on resource instance counts and loop trip counts. */
constexpr int64_t kMaxCount = 4096;

class Builder
{
  public:
    Builder(const MachineDecl &machine, DiagnosticEngine &diags)
        : machine_(machine), diags_(diags), mdes_(machine.name)
    {
    }

    std::optional<Mdes> run();

  private:
    std::optional<int64_t> eval(const Expr &e);
    void declareResource(const ResourceDecl &d);
    void declareLet(const LetDecl &d);
    void declareOrTree(const OrTreeDecl &d);
    void declareTable(const TableDecl &d);
    void declareOperation(const OperationDecl &d);
    void declareBypass(const BypassDecl &d);

    bool expandItems(const std::vector<OrItem> &items,
                     std::vector<OptionId> &out);
    bool expandUsageItems(const std::vector<OptItem> &items,
                          Option &option);
    std::optional<Option> buildOption(const OptionDecl &d);

    const MachineDecl &machine_;
    DiagnosticEngine &diags_;
    Mdes mdes_;

    std::map<std::string, int64_t> env_;
    std::map<std::string, size_t> resource_classes_; ///< name -> class idx
    std::map<std::string, OrTreeId> or_trees_;
    std::map<std::string, TreeId> tables_;
};

std::optional<int64_t>
Builder::eval(const Expr &e)
{
    switch (e.kind) {
      case Expr::Kind::IntLit:
        return e.value;
      case Expr::Kind::VarRef: {
        auto it = env_.find(e.name);
        if (it == env_.end()) {
            diags_.error(e.loc, "unknown constant or loop variable '" +
                                    e.name + "'");
            return std::nullopt;
        }
        return it->second;
      }
      case Expr::Kind::Unary: {
        auto v = eval(*e.lhs);
        if (!v)
            return std::nullopt;
        return -*v;
      }
      case Expr::Kind::Binary: {
        auto l = eval(*e.lhs);
        auto r = eval(*e.rhs);
        if (!l || !r)
            return std::nullopt;
        switch (e.op) {
          case '+': return *l + *r;
          case '-': return *l - *r;
          case '*': return *l * *r;
          case '/':
            if (*r == 0) {
                diags_.error(e.loc, "division by zero");
                return std::nullopt;
            }
            return *l / *r;
          case '%':
            if (*r == 0) {
                diags_.error(e.loc, "modulo by zero");
                return std::nullopt;
            }
            return *l % *r;
          default:
            diags_.error(e.loc, "internal: bad binary operator");
            return std::nullopt;
        }
      }
    }
    return std::nullopt;
}

void
Builder::declareResource(const ResourceDecl &d)
{
    if (resource_classes_.count(d.name)) {
        diags_.error(d.loc, "resource '" + d.name + "' already declared");
        return;
    }
    int64_t count = 1;
    if (d.count) {
        auto v = eval(*d.count);
        if (!v)
            return;
        count = *v;
    }
    if (count < 1 || count > kMaxCount) {
        diags_.error(d.loc, "resource count must be in [1, " +
                                std::to_string(kMaxCount) + "]");
        return;
    }
    mdes_.addResourceClass(d.name, uint32_t(count));
    resource_classes_[d.name] = mdes_.resourceClasses().size() - 1;
}

void
Builder::declareLet(const LetDecl &d)
{
    if (env_.count(d.name)) {
        diags_.error(d.loc, "constant '" + d.name + "' already defined");
        return;
    }
    auto v = eval(*d.value);
    if (!v)
        return;
    env_[d.name] = *v;
}

bool
Builder::expandUsageItems(const std::vector<OptItem> &items,
                          Option &option)
{
    for (const auto &item : items) {
        if (const auto *loop = std::get_if<UsageForDecl>(&item)) {
            if (env_.count(loop->var)) {
                diags_.error(loop->loc, "loop variable '" + loop->var +
                                            "' shadows an existing name");
                return false;
            }
            auto lo = eval(*loop->lo);
            auto hi = eval(*loop->hi);
            if (!lo || !hi)
                return false;
            if (*hi - *lo + 1 > kMaxCount) {
                diags_.error(loop->loc, "loop trip count too large");
                return false;
            }
            for (int64_t v = *lo; v <= *hi; ++v) {
                env_[loop->var] = v;
                if (!expandUsageItems(loop->body, option)) {
                    env_.erase(loop->var);
                    return false;
                }
            }
            env_.erase(loop->var);
            continue;
        }
        const auto &u = std::get<UsageDecl>(item);
        auto cls_it = resource_classes_.find(u.resource);
        if (cls_it == resource_classes_.end()) {
            diags_.error(u.loc,
                         "unknown resource '" + u.resource + "'");
            return false;
        }
        const ResourceClass &rc =
            mdes_.resourceClasses()[cls_it->second];
        int64_t index = 0;
        if (u.index) {
            auto v = eval(*u.index);
            if (!v)
                return false;
            index = *v;
        } else if (rc.count > 1) {
            diags_.error(u.loc, "resource '" + u.resource + "' has " +
                                    std::to_string(rc.count) +
                                    " instances; an index is required");
            return false;
        }
        if (index < 0 || index >= int64_t(rc.count)) {
            diags_.error(u.loc, "index " + std::to_string(index) +
                                    " out of range for resource '" +
                                    u.resource + "' (count " +
                                    std::to_string(rc.count) + ")");
            return false;
        }
        auto time = eval(*u.time);
        if (!time)
            return false;
        if (*time < -kMaxUsageTime || *time > kMaxUsageTime) {
            diags_.error(u.loc, "usage time " + std::to_string(*time) +
                                    " out of sane range");
            return false;
        }
        ResourceUsage usage;
        usage.time = int32_t(*time);
        usage.resource = rc.first_instance + uint32_t(index);
        if (std::find(option.usages.begin(), option.usages.end(), usage) !=
            option.usages.end()) {
            diags_.error(u.loc,
                         "duplicate usage of '" +
                             mdes_.resourceName(usage.resource) +
                             "' at time " + std::to_string(usage.time) +
                             " within one option");
            return false;
        }
        option.usages.push_back(usage);
    }
    return true;
}

std::optional<Option>
Builder::buildOption(const OptionDecl &d)
{
    Option option;
    if (!expandUsageItems(d.items, option))
        return std::nullopt;
    if (option.usages.empty()) {
        diags_.error(d.loc, "option has no resource usages");
        return std::nullopt;
    }
    return option;
}

bool
Builder::expandItems(const std::vector<OrItem> &items,
                     std::vector<OptionId> &out)
{
    for (const auto &item : items) {
        if (const auto *opt = std::get_if<OptionDecl>(&item)) {
            auto built = buildOption(*opt);
            if (!built)
                return false;
            out.push_back(mdes_.addOption(std::move(*built)));
        } else {
            const auto &loop = std::get<ForDecl>(item);
            if (env_.count(loop.var)) {
                diags_.error(loop.loc, "loop variable '" + loop.var +
                                           "' shadows an existing name");
                return false;
            }
            auto lo = eval(*loop.lo);
            auto hi = eval(*loop.hi);
            if (!lo || !hi)
                return false;
            if (*hi - *lo + 1 > kMaxCount) {
                diags_.error(loop.loc, "loop trip count too large");
                return false;
            }
            for (int64_t v = *lo; v <= *hi; ++v) {
                env_[loop.var] = v;
                if (!expandItems(loop.body, out)) {
                    env_.erase(loop.var);
                    return false;
                }
            }
            env_.erase(loop.var);
        }
    }
    return true;
}

void
Builder::declareOrTree(const OrTreeDecl &d)
{
    if (or_trees_.count(d.name)) {
        diags_.error(d.loc, "ortree '" + d.name + "' already declared");
        return;
    }
    OrTree tree;
    tree.name = d.name;
    if (!expandItems(d.items, tree.options))
        return;
    if (tree.options.empty()) {
        diags_.error(d.loc, "ortree '" + d.name + "' has no options");
        return;
    }
    or_trees_[d.name] = mdes_.addOrTree(std::move(tree));
}

void
Builder::declareTable(const TableDecl &d)
{
    if (tables_.count(d.name)) {
        diags_.error(d.loc, "table '" + d.name + "' already declared");
        return;
    }
    AndOrTree tree;
    tree.name = d.name;
    for (size_t i = 0; i < d.or_tree_names.size(); ++i) {
        auto it = or_trees_.find(d.or_tree_names[i]);
        if (it == or_trees_.end()) {
            diags_.error(d.or_tree_locs[i], "unknown ortree '" +
                                                d.or_tree_names[i] + "'");
            return;
        }
        tree.or_trees.push_back(it->second);
    }

    // AND subtrees that can touch the same resource instance at the same
    // time make the greedy AND-level evaluation weaker than the full
    // cross-product (the checker stays safe via its pending overlay, but
    // a schedulable combination may be missed, and the Section 8
    // reorderings assume independence). Warn the description writer.
    for (size_t i = 0; i < tree.or_trees.size(); ++i) {
        for (size_t j = i + 1; j < tree.or_trees.size(); ++j) {
            bool overlap = false;
            for (OptionId oi : mdes_.orTree(tree.or_trees[i]).options) {
                for (OptionId oj :
                     mdes_.orTree(tree.or_trees[j]).options) {
                    for (const auto &ui : mdes_.option(oi).usages) {
                        for (const auto &uj : mdes_.option(oj).usages) {
                            overlap |= ui == uj;
                        }
                    }
                }
            }
            if (overlap) {
                diags_.warning(
                    d.loc,
                    "table '" + d.name + "': AND subtrees '" +
                        mdes_.orTree(tree.or_trees[i]).name + "' and '" +
                        mdes_.orTree(tree.or_trees[j]).name +
                        "' can use the same resource at the same time; "
                        "greedy AND/OR checking may reject combinations "
                        "the expanded OR-tree would accept");
            }
        }
    }
    tables_[d.name] = mdes_.addTree(std::move(tree));
}

void
Builder::declareOperation(const OperationDecl &d)
{
    if (mdes_.findOpClass(d.name) != kInvalidId) {
        diags_.error(d.loc, "operation '" + d.name + "' already declared");
        return;
    }
    OperationClass oc;
    oc.name = d.name;
    if (!d.table) {
        diags_.error(d.loc,
                     "operation '" + d.name + "' is missing a table");
        return;
    }
    auto it = tables_.find(*d.table);
    if (it == tables_.end()) {
        diags_.error(d.table_loc, "unknown table '" + *d.table + "'");
        return;
    }
    oc.tree = it->second;
    if (d.latency) {
        auto v = eval(*d.latency);
        if (!v)
            return;
        if (*v < 0 || *v > kMaxUsageTime) {
            diags_.error(d.loc, "latency out of range");
            return;
        }
        oc.latency = int(*v);
    }
    if (d.cascade) {
        auto cit = tables_.find(*d.cascade);
        if (cit == tables_.end()) {
            diags_.error(d.cascade_loc,
                         "unknown cascade table '" + *d.cascade + "'");
            return;
        }
        oc.cascade_tree = cit->second;
    }
    if (d.note)
        oc.comment = *d.note;
    mdes_.addOpClass(std::move(oc));
}

void
Builder::declareBypass(const BypassDecl &d)
{
    OpClassId from = mdes_.findOpClass(d.from);
    if (from == kInvalidId) {
        diags_.error(d.from_loc,
                     "unknown operation '" + d.from + "' in bypass");
        return;
    }
    OpClassId to = mdes_.findOpClass(d.to);
    if (to == kInvalidId) {
        diags_.error(d.to_loc,
                     "unknown operation '" + d.to + "' in bypass");
        return;
    }
    auto v = eval(*d.latency);
    if (!v)
        return;
    if (*v < 0 || *v > kMaxUsageTime) {
        diags_.error(d.loc, "bypass latency out of range");
        return;
    }
    if (*v >= mdes_.opClass(from).latency) {
        diags_.warning(d.loc,
                       "bypass from '" + d.from + "' to '" + d.to +
                           "' does not improve on the producer's "
                           "nominal latency");
    }
    for (const auto &existing : mdes_.bypasses()) {
        if (existing.from == from && existing.to == to) {
            diags_.error(d.loc, "duplicate bypass from '" + d.from +
                                    "' to '" + d.to + "'");
            return;
        }
    }
    mdes_.addBypass({from, to, int(*v)});
}

std::optional<Mdes>
Builder::run()
{
    for (const auto &decl : machine_.decls) {
        std::visit(
            [this](const auto &d) {
                using T = std::decay_t<decltype(d)>;
                if constexpr (std::is_same_v<T, ResourceDecl>)
                    declareResource(d);
                else if constexpr (std::is_same_v<T, LetDecl>)
                    declareLet(d);
                else if constexpr (std::is_same_v<T, OrTreeDecl>)
                    declareOrTree(d);
                else if constexpr (std::is_same_v<T, TableDecl>)
                    declareTable(d);
                else if constexpr (std::is_same_v<T, OperationDecl>)
                    declareOperation(d);
                else
                    declareBypass(d);
            },
            decl);
    }
    if (mdes_.opClasses().empty()) {
        diags_.error(machine_.loc,
                     "machine declares no operations");
    }
    if (diags_.hasErrors())
        return std::nullopt;
    std::string problem = mdes_.validate();
    if (!problem.empty()) {
        diags_.error(machine_.loc, "internal consistency: " + problem);
        return std::nullopt;
    }
    return std::move(mdes_);
}

} // namespace

std::optional<Mdes>
buildMdes(const MachineDecl &machine, DiagnosticEngine &diags)
{
    Builder builder(machine, diags);
    return builder.run();
}

} // namespace mdes::hmdes
