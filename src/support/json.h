#ifndef MDES_SUPPORT_JSON_H
#define MDES_SUPPORT_JSON_H

/**
 * @file
 * Minimal JSON emission for machine-readable metric dumps.
 *
 * The service layer reports its counters both as a human-oriented text
 * table and as JSON for scrapers; this writer covers exactly the subset
 * needed (objects, arrays, strings, integers, doubles, booleans) without
 * pulling in a dependency. Output is deterministic: keys appear in the
 * order they are written.
 */

#include <cstdint>
#include <string>
#include <string_view>

namespace mdes {

/** Escape @p s for use inside a JSON string literal (no quotes added). */
std::string jsonEscape(std::string_view s);

/**
 * Streaming JSON builder. Commas are inserted automatically; the caller
 * is responsible for balancing begin/end calls. Inside an object every
 * value must be preceded by key(); inside an array values are written
 * directly.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Write an object key; the next value belongs to it. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view s);
    JsonWriter &value(const char *s) { return value(std::string_view(s)); }
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(double v);
    JsonWriter &value(bool v);

    /** The document built so far. */
    const std::string &str() const { return out_; }

  private:
    void comma();

    std::string out_;
    /** Whether the current nesting level already holds an element. */
    std::string stack_;
    bool after_key_ = false;
};

} // namespace mdes

#endif // MDES_SUPPORT_JSON_H
