#ifndef MDES_SUPPORT_JSON_H
#define MDES_SUPPORT_JSON_H

/**
 * @file
 * Minimal JSON emission and parsing for machine-readable metric dumps.
 *
 * The service layer reports its counters both as a human-oriented text
 * table and as JSON for scrapers; this writer covers exactly the subset
 * needed (objects, arrays, strings, integers, doubles, booleans) without
 * pulling in a dependency. Output is deterministic: keys appear in the
 * order they are written.
 *
 * The parser is the writer's counterpart: tests and tools use it to
 * validate that emitted documents (metrics dumps, Chrome trace exports)
 * are well-formed and to round-trip them losslessly. Numbers keep their
 * source token, so writeJson(parseJson(s)) == s for any document this
 * writer produced.
 */

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mdes {

/** Escape @p s for use inside a JSON string literal (no quotes added). */
std::string jsonEscape(std::string_view s);

/**
 * Streaming JSON builder. Commas are inserted automatically; the caller
 * is responsible for balancing begin/end calls. Inside an object every
 * value must be preceded by key(); inside an array values are written
 * directly.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Write an object key; the next value belongs to it. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view s);
    JsonWriter &value(const char *s) { return value(std::string_view(s)); }
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(double v);
    JsonWriter &value(bool v);

    /** Write @p token verbatim as a value (a pre-rendered JSON number
     * or literal; the caller guarantees validity). */
    JsonWriter &rawValue(std::string_view token);

    /** The document built so far. */
    const std::string &str() const { return out_; }

  private:
    void comma();

    std::string out_;
    /** Whether the current nesting level already holds an element. */
    std::string stack_;
    bool after_key_ = false;
};

/** A parsed JSON document node (tagged union, insertion-ordered). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    /** Numeric value; large 64-bit integers may round (see number_text). */
    double number = 0;
    /** The untouched number token, kept for lossless re-emission. */
    std::string number_text;
    std::string string;
    std::vector<JsonValue> array;
    /** Members in document order (duplicate keys are preserved). */
    std::vector<std::pair<std::string, JsonValue>> object;

    /** First member named @p key, or nullptr (Object kind only). */
    const JsonValue *find(std::string_view key) const;

    bool isNull() const { return kind == Kind::Null; }
};

/**
 * Parse one JSON document (trailing whitespace allowed, nothing else).
 * Throws MdesError naming the byte offset and what was expected on
 * malformed input. Nesting deeper than 128 levels is rejected.
 */
JsonValue parseJson(std::string_view text);

/** Re-emit @p v through JsonWriter (the round-trip counterpart). */
std::string writeJson(const JsonValue &v);

/**
 * Read @p v as an unsigned 64-bit integer without the double round
 * trip: a Number's untouched token (or a String of digits) parses
 * losslessly, so wire ids and cycle counts above 2^53 survive.
 * Non-integer tokens fall back to the double; non-numeric nodes
 * yield 0.
 */
uint64_t jsonU64(const JsonValue &v);

} // namespace mdes

#endif // MDES_SUPPORT_JSON_H
