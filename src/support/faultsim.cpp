#include "support/faultsim.h"

#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "support/diagnostics.h"
#include "support/rng.h"

namespace mdes::faultsim {

std::atomic<bool> g_armed{false};

namespace {

const char *const kSiteNames[kNumSites] = {
    "store/open-read",    "store/short-read", "store/corrupt-byte",
    "store/open-write",   "store/write",      "store/fsync",
    "store/rename",       "cache/spurious-wake",
    "cache/slow-compile", "compile/pass-throw",
    "compile/alloc-fail", "net/accept-fail",
    "net/short-read",     "net/short-write",
    "net/peer-reset",     "net/stalled-write",
    "net/heartbeat-drop", "store/map",
};

/** Sites that sever connections (vs shape latency): Plan::fuzz keeps
 * these sub-certain so a bounded-retry client always progresses. */
bool
isNetSeverSite(Site site)
{
    return site == Site::NetAcceptFail || site == Site::NetPeerReset;
}

/** splitmix64 finalizer: a full-avalanche 64-bit mix. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

struct State
{
    std::mutex mu;
    Plan plan;
    /** Per-(site, token) decision state, reset by install(): `draws`
     * indexes the deterministic draw (it must advance on every
     * evaluation, or a sub-certain site would repeat one draw forever),
     * while `fires` enforces SiteSpec::max_fires. */
    struct HitState
    {
        uint32_t draws = 0;
        uint32_t fires = 0;
    };
    std::unordered_map<uint64_t, HitState> hits[kNumSites];
    std::atomic<uint64_t> evaluations[kNumSites]{};
    std::atomic<uint64_t> fires[kNumSites]{};
};

State &
state()
{
    static State s;
    return s;
}

thread_local uint64_t t_token = 0;

} // namespace

const char *
siteName(Site site)
{
    size_t i = size_t(site);
    return i < kNumSites ? kSiteNames[i] : "?";
}

bool
siteFromName(std::string_view name, Site *out)
{
    for (size_t i = 0; i < kNumSites; ++i) {
        if (name == kSiteNames[i]) {
            *out = Site(i);
            return true;
        }
    }
    return false;
}

Plan
Plan::parse(std::string_view spec)
{
    Plan plan;
    std::string text(spec);
    for (char &c : text)
        if (c == ',')
            c = ' ';
    std::istringstream in(text);
    std::string tok;
    while (in >> tok) {
        size_t eq = tok.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == tok.size())
            throw MdesError("faultsim: bad plan token '" + tok +
                            "' (want name=value)");
        std::string name = tok.substr(0, eq);
        std::string value = tok.substr(eq + 1);
        if (name == "seed") {
            try {
                plan.seed = std::stoull(value);
            } catch (const std::exception &) {
                throw MdesError("faultsim: bad seed '" + value + "'");
            }
            continue;
        }
        Site site;
        if (!siteFromName(name, &site))
            throw MdesError("faultsim: unknown site '" + name + "'");
        SiteSpec &s = plan.sites[size_t(site)];
        // probability[:delay_us[:max_fires]]
        std::istringstream fields(value);
        std::string field;
        int idx = 0;
        while (std::getline(fields, field, ':')) {
            try {
                switch (idx) {
                case 0:
                    s.probability = std::stod(field);
                    break;
                case 1:
                    s.delay_us = uint32_t(std::stoul(field));
                    break;
                case 2:
                    s.max_fires = uint32_t(std::stoul(field));
                    break;
                default:
                    throw MdesError("faultsim: too many fields in '" +
                                    tok + "'");
                }
            } catch (const MdesError &) {
                throw;
            } catch (const std::exception &) {
                throw MdesError("faultsim: bad value '" + field +
                                "' in '" + tok + "'");
            }
            ++idx;
        }
        if (s.probability < 0.0 || s.probability > 1.0)
            throw MdesError("faultsim: probability out of [0,1] in '" +
                            tok + "'");
    }
    return plan;
}

Plan
Plan::fuzz(uint64_t seed)
{
    Plan plan;
    plan.seed = seed;
    Rng rng(mix64(seed) ^ 0xFA017517ull);
    for (size_t i = 0; i < kNumSites; ++i) {
        SiteSpec &s = plan.sites[i];
        if (!rng.chance(0.6))
            continue;
        // Mostly gentle rates with an occasional hard-failing site;
        // capped fires keep every request able to eventually finish.
        s.probability = rng.chance(0.15) ? 1.0 : 0.05 + 0.45 * rng.uniform();
        s.max_fires = uint32_t(1 + rng.below(3));
        if (Site(i) == Site::CacheSlowCompile)
            s.delay_us = uint32_t(500 + rng.below(20000));
        if (Site(i) == Site::NetStalledWrite)
            s.delay_us = uint32_t(200 + rng.below(5000));
        // Connection-severing sites must stay sub-certain (the draws
        // above are still consumed, so old seeds replay unchanged): at
        // p=1.0 every retry of every request would be reset forever.
        if (isNetSeverSite(Site(i)) && s.probability > 0.35)
            s.probability = 0.35;
    }
    // A plan that arms nothing tests nothing: force one gentle site.
    if (!plan.anyArmed()) {
        SiteSpec &s = plan.sites[size_t(Site::StoreOpenRead)];
        s.probability = 0.5;
        s.max_fires = 2;
    }
    return plan;
}

std::string
Plan::toString() const
{
    std::ostringstream out;
    out << "seed=" << seed;
    for (size_t i = 0; i < kNumSites; ++i) {
        const SiteSpec &s = sites[i];
        if (s.probability <= 0.0)
            continue;
        out << ',' << kSiteNames[i] << '=' << s.probability;
        if (s.delay_us || s.max_fires)
            out << ':' << s.delay_us;
        if (s.max_fires)
            out << ':' << s.max_fires;
    }
    return out.str();
}

void
install(const Plan &plan)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.plan = plan;
    for (size_t i = 0; i < kNumSites; ++i) {
        s.hits[i].clear();
        s.evaluations[i].store(0, std::memory_order_relaxed);
        s.fires[i].store(0, std::memory_order_relaxed);
    }
    g_armed.store(plan.anyArmed(), std::memory_order_release);
}

void
uninstall()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    g_armed.store(false, std::memory_order_release);
    s.plan = Plan{};
}

Plan
currentPlan()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.plan;
}

TokenScope::TokenScope(uint64_t token) : prev_(t_token)
{
    t_token = token;
}

TokenScope::~TokenScope() { t_token = prev_; }

uint64_t
currentToken()
{
    return t_token;
}

FireInfo
evaluate(Site site)
{
    State &s = state();
    size_t i = size_t(site);
    s.evaluations[i].fetch_add(1, std::memory_order_relaxed);

    FireInfo info;
    uint32_t delay_us = 0;
    {
        std::lock_guard<std::mutex> lock(s.mu);
        const SiteSpec &spec = s.plan.sites[i];
        if (spec.probability <= 0.0)
            return info;
        State::HitState &hit = s.hits[i][t_token];
        if (spec.max_fires != 0 && hit.fires >= spec.max_fires)
            return info;
        // Pure function of (seed, site, token, draw index): the draw is
        // identical on replay no matter which thread evaluates it.
        uint64_t draw = mix64(mix64(s.plan.seed ^ (uint64_t(i) << 56)) ^
                              mix64(t_token) ^ hit.draws);
        ++hit.draws;
        double unit = double(draw >> 11) * (1.0 / 9007199254740992.0);
        if (unit >= spec.probability)
            return info;
        ++hit.fires;
        info.fired = true;
        info.value = mix64(draw);
        info.delay_us = spec.delay_us;
        delay_us = spec.delay_us;
    }
    s.fires[i].fetch_add(1, std::memory_order_relaxed);
    if (site == Site::CacheSlowCompile && delay_us)
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    return info;
}

void
maybeThrow(Site site, const char *what)
{
    if (probe(site).fired)
        throw MdesError(std::string("faultsim: ") + what + " (" +
                        siteName(site) + ")");
}

std::array<SiteCounters, kNumSites>
counters()
{
    State &s = state();
    std::array<SiteCounters, kNumSites> out{};
    for (size_t i = 0; i < kNumSites; ++i) {
        out[i].evaluations = s.evaluations[i].load(std::memory_order_relaxed);
        out[i].fires = s.fires[i].load(std::memory_order_relaxed);
    }
    return out;
}

void
resetCounters()
{
    State &s = state();
    for (size_t i = 0; i < kNumSites; ++i) {
        s.evaluations[i].store(0, std::memory_order_relaxed);
        s.fires[i].store(0, std::memory_order_relaxed);
    }
}

} // namespace mdes::faultsim
