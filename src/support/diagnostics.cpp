#include "support/diagnostics.h"

#include <sstream>

namespace mdes {

std::string
SourceLocation::toString() const
{
    std::ostringstream os;
    os << line << ":" << column;
    return os.str();
}

std::string
Diagnostic::toString() const
{
    const char *sev = severity == Severity::Error     ? "error"
                      : severity == Severity::Warning ? "warning"
                                                      : "note";
    std::ostringstream os;
    os << loc.toString() << ": " << sev << ": " << message;
    return os.str();
}

void
DiagnosticEngine::error(SourceLocation loc, std::string message)
{
    diags_.push_back({Severity::Error, loc, std::move(message)});
    ++num_errors_;
}

void
DiagnosticEngine::warning(SourceLocation loc, std::string message)
{
    diags_.push_back({Severity::Warning, loc, std::move(message)});
}

std::string
DiagnosticEngine::toString() const
{
    std::string out;
    for (const auto &d : diags_) {
        out += d.toString();
        out += '\n';
    }
    return out;
}

} // namespace mdes
