#ifndef MDES_SUPPORT_FAULTSIM_H
#define MDES_SUPPORT_FAULTSIM_H

/**
 * @file
 * mdes::faultsim - seeded, deterministic fault injection for the
 * compile/store/serve stack.
 *
 * The service's robustness claims (bounded shedding, retry, circuit
 * breaking, graceful degradation, corrupt-artifact quarantine) are only
 * claims until adverse conditions can be manufactured on demand. This
 * layer plants named injection sites at every point where the real world
 * can fail - disk opens, reads, writes, renames; slow or throwing
 * compiles; allocation failure - and arms them from a seeded Plan so a
 * failing run can be replayed bit-for-bit.
 *
 * Like mdes::trace, the layer is compiled in but inert: with no plan
 * installed a probe costs one relaxed atomic load and a branch, and no
 * probe sits on the scheduler's hot loop (the paper's nanosecond
 * constraint-check path carries zero faultsim code).
 *
 * Determinism model: every decision is a pure function of
 * (plan seed, site, token, per-(site,token) hit index), where the token
 * is a caller-provided identity - the service stamps the request id via
 * TokenScope, exactly as trace::IdScope stamps trace ids. Because one
 * request's site hits happen in program order on one thread, replaying
 * the same seed against the same request stream reproduces the same
 * faults regardless of worker count or thread interleaving.
 */

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace mdes::faultsim {

/** Every named injection site, threaded through store, cache, and the
 * compile pipeline. Keep siteName() in sync. */
enum class Site : uint32_t {
    /** store::ArtifactStore::load - opening the artifact fails with a
     * transient I/O error (retried with backoff). */
    StoreOpenRead,
    /** store::ArtifactStore::load - the artifact reads short (truncated
     * payload: quarantined, recompiled). */
    StoreShortRead,
    /** store::ArtifactStore::load - one payload byte flips (bit rot:
     * checksum mismatch, quarantined, recompiled). */
    StoreCorruptByte,
    /** store::ArtifactStore::store - opening the temp file fails. */
    StoreOpenWrite,
    /** store::ArtifactStore::store - writing the artifact fails. */
    StoreWrite,
    /** store::ArtifactStore::store - flushing to stable storage fails. */
    StoreFsync,
    /** store::ArtifactStore::store - the atomic publish rename fails. */
    StoreRename,
    /** DescriptionCache waiter - wakes without its artifact being ready
     * and must re-check the table (bounded per lookup). */
    CacheSpuriousWake,
    /** DescriptionCache single-flight owner - the compile stalls for the
     * site's delay_us before starting. */
    CacheSlowCompile,
    /** runPipeline - a transform pass throws (triggers the graceful-
     * degradation path: serve the unoptimized lowering). */
    CompilePassThrow,
    /** compileSourceToLow - lowering hits allocation failure
     * (std::bad_alloc; a hard compile failure feeding the breaker). */
    CompileAllocFail,

    // Socket-I/O sites (mdes::net). Appended after the original sites so
    // existing seeds' Plan::fuzz draw sequences are unchanged. The
    // observable sites (accept-fail, peer-reset) are evaluated at
    // protocol events - once per accept, once per decoded request frame,
    // token = connection id - never per syscall, so replays with the same
    // connection stream see the same evaluation sequence. The
    // latency-shaping sites (short-read/short-write/stalled-write) may
    // evaluate per syscall; they alter timing, never outcomes.

    /** net::Server accept path - the freshly accepted connection is
     * closed immediately (counts as a reset; client retries). */
    NetAcceptFail,
    /** net::Connection read path - a read is truncated to one byte
     * (exercises incremental frame reassembly; no data loss). */
    NetShortRead,
    /** net::Connection write path - a write is truncated to one byte
     * (exercises partial-write resumption; no data loss). */
    NetShortWrite,
    /** net::Connection - the server resets the connection after decoding
     * a request frame (client sees EOF/ECONNRESET and retries). */
    NetPeerReset,
    /** net::Connection write path - the write stalls delay_us before
     * proceeding (exercises EPOLLOUT backpressure paths). */
    NetStalledWrite,
    /** Shard child supervision channel - a watchdog heartbeat reply is
     * dropped (the parent sees a silent shard and, past the deadline,
     * SIGKILLs and restarts it; DESIGN.md §15). Appended after the
     * socket-I/O sites so existing seeds replay unchanged. */
    NetHeartbeatDrop,
    /** ArtifactStore load path - the fstat/mmap of an artifact fails
     * transiently (exercises the retry-then-recompile path of the
     * zero-copy loader). Appended last so existing seeds replay
     * unchanged. */
    StoreMap,
    kNumSites
};

constexpr size_t kNumSites = size_t(Site::kNumSites);

/** Stable printable name, e.g. "store/rename". */
const char *siteName(Site site);

/** Reverse of siteName(); returns false for unknown names. */
bool siteFromName(std::string_view name, Site *out);

/** How one site misbehaves while a plan is installed. */
struct SiteSpec
{
    /** Chance each evaluation fires, in [0, 1]. */
    double probability = 0.0;
    /** Cap on fires per (site, token); 0 = unlimited. Per token - not
     * global - so the cap itself cannot introduce cross-request
     * nondeterminism. */
    uint32_t max_fires = 0;
    /** Stall length for delay sites (cache/slow-compile). */
    uint32_t delay_us = 0;
};

/**
 * A complete, replayable fault schedule: the seed plus one SiteSpec per
 * site. Install it with install(); the identical plan against the same
 * request stream produces the identical faults.
 */
struct Plan
{
    uint64_t seed = 0;
    std::array<SiteSpec, kNumSites> sites{};

    bool
    anyArmed() const
    {
        for (const auto &s : sites)
            if (s.probability > 0.0)
                return true;
        return false;
    }

    /**
     * Parse a spec string: whitespace/comma-separated tokens of the form
     * `seed=N` or `<site>=<probability>[:<delay_us>[:<max_fires>]]`,
     * e.g. "seed=7,store/rename=0.5,cache/slow-compile=1:2000".
     * Throws MdesError on a malformed token or unknown site.
     */
    static Plan parse(std::string_view spec);

    /** A seeded random plan for chaos sweeps: each site armed with ~60%
     * probability at a random rate; delays capped test-friendly. */
    static Plan fuzz(uint64_t seed);

    /** Render in parse() syntax (only armed sites are listed). */
    std::string toString() const;
};

/** Global arm flag (relaxed load; this is the whole disabled-mode
 * cost of a probe). */
extern std::atomic<bool> g_armed;

/** True while a plan is installed. */
inline bool
armed()
{
    return g_armed.load(std::memory_order_relaxed);
}

/** Install @p plan process-wide and reset per-token hit state and
 * counters; probes start firing immediately. */
void install(const Plan &plan);

/** Disarm every site (counters survive for inspection; a later
 * install() resets them). */
void uninstall();

/** The currently installed plan (zero plan when disarmed). */
Plan currentPlan();

/**
 * RAII scope binding the calling thread's fault token (the identity
 * that makes decisions interleaving-independent). The service stamps
 * the request id; 0 means "no token" and still decides
 * deterministically per global hit order of that site.
 */
class TokenScope
{
  public:
    explicit TokenScope(uint64_t token);
    ~TokenScope();

    TokenScope(const TokenScope &) = delete;
    TokenScope &operator=(const TokenScope &) = delete;

  private:
    uint64_t prev_;
};

/** The calling thread's current fault token (0 = none). */
uint64_t currentToken();

/** Outcome of one probe evaluation. */
struct FireInfo
{
    bool fired = false;
    /** Deterministic 64-bit value derived from the same draw; sites use
     * it for byte offsets / corruption masks. */
    uint64_t value = 0;
    /** The site's configured stall (delay sites). */
    uint32_t delay_us = 0;
};

/** Slow path: evaluate @p site under the installed plan (counts the
 * evaluation, decides deterministically, counts the fire). */
FireInfo evaluate(Site site);

/** The probe planted in product code: free when disarmed. */
inline FireInfo
probe(Site site)
{
    if (!armed())
        return {};
    return evaluate(site);
}

/** Probe @p site and throw MdesError("faultsim: <what>") when it
 * fires. */
void maybeThrow(Site site, const char *what);

/** Monotonic per-site telemetry (reset by install()). */
struct SiteCounters
{
    uint64_t evaluations = 0;
    uint64_t fires = 0;
};

/** Snapshot of every site's counters, indexed by Site. */
std::array<SiteCounters, kNumSites> counters();

/** Zero every site's counters (hit state survives). */
void resetCounters();

} // namespace mdes::faultsim

#endif // MDES_SUPPORT_FAULTSIM_H
