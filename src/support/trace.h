#ifndef MDES_SUPPORT_TRACE_H
#define MDES_SUPPORT_TRACE_H

/**
 * @file
 * mdes::trace - low-overhead, end-to-end tracing for the compile/store/
 * schedule stack.
 *
 * The paper's argument is quantitative: every transformation is justified
 * by how many options, usages, and checks it eliminates. This layer makes
 * those quantities observable *per request* instead of per offline
 * benchmark run:
 *
 *  - Spans: RAII-timed regions (TRACE_SPAN) with monotonic microsecond
 *    timestamps and attached counters, recorded into per-thread buffers
 *    (each buffer has its own mutex, taken only by its owning thread
 *    while recording and by the exporter during a snapshot - never
 *    contended on the hot path).
 *  - Trace ids: a thread-local current id (IdScope) stamps every span
 *    recorded while a request is being processed, so one slow request is
 *    attributable across cache, store, compile, and scheduler tiers.
 *  - Export: the Chrome trace-event JSON format ("ph":"X" complete
 *    events), loadable in chrome://tracing or Perfetto.
 *
 * Overhead budget (asserted by bench_trace_overhead): with tracing
 * compiled in but disabled, a span costs one relaxed atomic load and a
 * branch; the schedulers' probe hooks test a plain flag or null pointer.
 * The scheduler hot loop must stay within 1% of its untraced cost.
 * Compiling with -DMDES_TRACE_ENABLED=0 removes the macros entirely.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mdes::trace {

#ifndef MDES_TRACE_ENABLED
#define MDES_TRACE_ENABLED 1
#endif

/** Global runtime switch. Off by default; flipped by setEnabled(). */
extern std::atomic<bool> g_trace_enabled;

/** True when span collection is active (relaxed load; hot-path safe). */
inline bool
enabled()
{
    return g_trace_enabled.load(std::memory_order_relaxed);
}

/** Turn span collection on or off process-wide. */
void setEnabled(bool on);

/** Monotonic microseconds since the process's first trace query. */
uint64_t nowUs();

/** Small dense id of the calling thread (stable for its lifetime). */
uint32_t threadId();

/** The thread-local trace id stamped on recorded spans (0 = none). */
uint64_t currentTraceId();

/** RAII scope setting the calling thread's trace id (restores on exit).
 * Spans a request's worker thread records - including compile passes run
 * on behalf of other requests collapsed into this single-flight - carry
 * this id. */
class IdScope
{
  public:
    explicit IdScope(uint64_t id);
    ~IdScope();

    IdScope(const IdScope &) = delete;
    IdScope &operator=(const IdScope &) = delete;

  private:
    uint64_t prev_;
};

/** One completed timed region. */
struct Span
{
    /** Static string (all call sites pass literals). */
    const char *name = "";
    uint64_t trace_id = 0;
    uint64_t ts_us = 0;
    uint64_t dur_us = 0;
    uint32_t tid = 0;
    /** Numeric args ("effect deltas": options removed, conflicts, ...). */
    std::vector<std::pair<const char *, uint64_t>> counters;
    /** String args (machine name, scheduler kind, ...). */
    std::vector<std::pair<const char *, std::string>> labels;
};

/**
 * The process-wide span sink. Threads register a buffer on first record;
 * buffers outlive their threads so a snapshot never races a detach.
 */
class Collector
{
  public:
    static Collector &instance();

    /** Append one finished span to the calling thread's buffer. */
    void record(Span &&span);

    /** Copy of every buffered span, in per-thread recording order. */
    std::vector<Span> snapshot() const;

    /** Spans currently buffered across all threads. */
    size_t spanCount() const;

    /** Spans discarded because a thread buffer hit its cap. */
    uint64_t droppedCount() const;

    /** Drop all buffered spans (counters and registrations survive). */
    void clear();

    /**
     * Render every buffered span as a Chrome trace-event JSON document
     * ({"traceEvents":[...]}, "ph":"X" complete events, ts/dur in
     * microseconds). Load the result in chrome://tracing or Perfetto.
     */
    std::string toChromeJson() const;

    /** Per-thread span cap (drop-newest beyond it; default 1<<20). */
    void setThreadCapacity(size_t spans);

  private:
    Collector() = default;

    struct ThreadBuffer
    {
        mutable std::mutex mu;
        std::vector<Span> spans;
        uint64_t dropped = 0;
    };

    ThreadBuffer &localBuffer();

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
    std::atomic<size_t> thread_capacity_{size_t(1) << 20};
};

/**
 * RAII span: times its scope and records into the Collector on
 * destruction. Inert (a single relaxed load in the constructor) while
 * tracing is disabled.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** True when this span is live (tracing was enabled at entry). */
    bool active() const { return active_; }

    /** Attach a numeric arg (shown under "args" in the trace viewer). */
    void
    counter(const char *key, uint64_t value)
    {
        if (active_)
            counters_.emplace_back(key, value);
    }

    /** Attach a string arg. */
    void
    label(const char *key, std::string value)
    {
        if (active_)
            labels_.emplace_back(key, std::move(value));
    }

  private:
    const char *name_;
    uint64_t start_us_ = 0;
    /** flightrec::nowTicks() at entry (recorder path only; cheaper
     * than a clock_gettime pair per span). */
    uint64_t start_ticks_ = 0;
    bool active_;
    /** True when the flight recorder ring wants this span too (set
     * independently of active_, so tail capture works with --trace
     * off). */
    bool recorded_;
    std::vector<std::pair<const char *, uint64_t>> counters_;
    std::vector<std::pair<const char *, std::string>> labels_;
};

/** Drop-in stand-in when tracing is compiled out. */
struct NullSpan
{
    explicit NullSpan(const char *) {}
    static constexpr bool active() { return false; }
    void counter(const char *, uint64_t) {}
    void label(const char *, std::string) {}
};

#define MDES_TRACE_CAT2(a, b) a##b
#define MDES_TRACE_CAT(a, b) MDES_TRACE_CAT2(a, b)

#if MDES_TRACE_ENABLED
/** Time the enclosing scope as an anonymous span. */
#define TRACE_SPAN(name_literal)                                          \
    ::mdes::trace::ScopedSpan MDES_TRACE_CAT(mdes_trace_span_,            \
                                             __LINE__)(name_literal)
/** Time the enclosing scope as span @p var (counters can be attached). */
#define TRACE_SPAN_F(var, name_literal)                                   \
    ::mdes::trace::ScopedSpan var(name_literal)
#else
#define TRACE_SPAN(name_literal) ((void)0)
#define TRACE_SPAN_F(var, name_literal) ::mdes::trace::NullSpan var(name_literal)
#endif

} // namespace mdes::trace

#endif // MDES_SUPPORT_TRACE_H
