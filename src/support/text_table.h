#ifndef MDES_SUPPORT_TEXT_TABLE_H
#define MDES_SUPPORT_TEXT_TABLE_H

/**
 * @file
 * Column-aligned ASCII table rendering for the benchmark harness.
 *
 * Every bench binary reproduces one of the paper's tables; this helper
 * renders rows the same way so outputs are easy to diff against the paper.
 */

#include <string>
#include <vector>

namespace mdes {

/** A simple right-aligned-numbers, left-aligned-text ASCII table. */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row. Rows may have fewer cells than the header. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render the table with box-drawing in plain ASCII. */
    std::string toString() const;

    /** Format helpers used throughout the benches. */
    static std::string num(double v, int decimals);
    static std::string percent(double v, int decimals = 1);
    static std::string bytes(size_t v);

  private:
    std::vector<std::string> header_;
    // A row with the single sentinel cell "\x01" renders as a separator.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mdes

#endif // MDES_SUPPORT_TEXT_TABLE_H
