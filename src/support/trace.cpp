#include "support/trace.h"

#include <chrono>

#include "support/flightrec.h"
#include "support/json.h"

namespace mdes::trace {

std::atomic<bool> g_trace_enabled{false};

namespace {

using Clock = std::chrono::steady_clock;

/** Process-wide monotonic origin, pinned on first use. */
Clock::time_point
origin()
{
    static const Clock::time_point t0 = Clock::now();
    return t0;
}

std::atomic<uint32_t> g_next_thread_id{1};

thread_local uint64_t t_trace_id = 0;

} // namespace

void
setEnabled(bool on)
{
    // Pin the clock origin before the first span so timestamps are
    // small positive offsets.
    origin();
    g_trace_enabled.store(on, std::memory_order_relaxed);
}

uint64_t
nowUs()
{
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - origin())
                        .count());
}

uint32_t
threadId()
{
    thread_local uint32_t id =
        g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
    return id;
}

uint64_t
currentTraceId()
{
    return t_trace_id;
}

IdScope::IdScope(uint64_t id) : prev_(t_trace_id)
{
    t_trace_id = id;
}

IdScope::~IdScope()
{
    t_trace_id = prev_;
}

Collector &
Collector::instance()
{
    static Collector collector;
    return collector;
}

Collector::ThreadBuffer &
Collector::localBuffer()
{
    // One buffer per (thread, process lifetime): registered under the
    // collector lock once, then reached lock-free through the cached
    // pointer. Buffers are never removed, so a snapshot from another
    // thread can never race a thread exiting.
    thread_local ThreadBuffer *buffer = [this] {
        auto owned = std::make_unique<ThreadBuffer>();
        ThreadBuffer *raw = owned.get();
        std::lock_guard<std::mutex> lock(mu_);
        buffers_.push_back(std::move(owned));
        return raw;
    }();
    return *buffer;
}

void
Collector::record(Span &&span)
{
    ThreadBuffer &buffer = localBuffer();
    std::lock_guard<std::mutex> lock(buffer.mu);
    if (buffer.spans.size() >=
        thread_capacity_.load(std::memory_order_relaxed)) {
        ++buffer.dropped;
        return;
    }
    buffer.spans.push_back(std::move(span));
}

std::vector<Span>
Collector::snapshot() const
{
    std::vector<Span> all;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mu);
        all.insert(all.end(), buffer->spans.begin(),
                   buffer->spans.end());
    }
    return all;
}

size_t
Collector::spanCount() const
{
    size_t n = 0;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mu);
        n += buffer->spans.size();
    }
    return n;
}

uint64_t
Collector::droppedCount() const
{
    uint64_t n = 0;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mu);
        n += buffer->dropped;
    }
    return n;
}

void
Collector::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mu);
        buffer->spans.clear();
        buffer->dropped = 0;
    }
}

void
Collector::setThreadCapacity(size_t spans)
{
    thread_capacity_.store(spans, std::memory_order_relaxed);
}

std::string
Collector::toChromeJson() const
{
    std::vector<Span> spans = snapshot();
    JsonWriter w;
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("otherData").beginObject();
    w.key("tool").value("mdes::trace");
    w.key("spans").value(uint64_t(spans.size()));
    w.key("dropped").value(droppedCount());
    w.endObject();
    w.key("traceEvents").beginArray();
    for (const Span &s : spans) {
        w.beginObject();
        w.key("name").value(s.name);
        w.key("cat").value("mdes");
        w.key("ph").value("X");
        w.key("pid").value(uint64_t(1));
        w.key("tid").value(uint64_t(s.tid));
        w.key("ts").value(s.ts_us);
        w.key("dur").value(s.dur_us);
        w.key("args").beginObject();
        if (s.trace_id != 0)
            w.key("trace_id").value(s.trace_id);
        for (const auto &[key, value] : s.counters)
            w.key(key).value(value);
        for (const auto &[key, value] : s.labels)
            w.key(key).value(value);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

ScopedSpan::ScopedSpan(const char *name)
    : name_(name), active_(enabled()),
#if MDES_FLIGHTREC_ENABLED
      recorded_(flightrec::enabled())
#else
      recorded_(false)
#endif
{
    if (active_)
        start_us_ = nowUs();
#if MDES_FLIGHTREC_ENABLED
    if (recorded_)
        start_ticks_ = flightrec::nowTicks();
#endif
}

ScopedSpan::~ScopedSpan()
{
    if (!active_ && !recorded_)
        return;
#if MDES_FLIGHTREC_ENABLED
    if (recorded_)
        flightrec::record(name_, t_trace_id, start_ticks_,
                          flightrec::nowTicks() - start_ticks_);
#endif
    if (!active_)
        return;
    const uint64_t end_us = nowUs();
    Span span;
    span.name = name_;
    span.trace_id = t_trace_id;
    span.ts_us = start_us_;
    span.dur_us = end_us - start_us_;
    span.tid = threadId();
    span.counters = std::move(counters_);
    span.labels = std::move(labels_);
    Collector::instance().record(std::move(span));
}

} // namespace mdes::trace
