#ifndef MDES_SUPPORT_RNG_H
#define MDES_SUPPORT_RNG_H

/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * The synthetic workload generator must be exactly reproducible across
 * platforms and standard-library versions, so we implement our own small
 * generator (xoshiro256**, seeded via splitmix64) instead of relying on
 * std::mt19937 distributions, whose outputs are not portable.
 */

#include <cassert>
#include <cstdint>
#include <vector>

namespace mdes {

/** Portable, deterministic xoshiro256** generator. */
class Rng
{
  public:
    /** Seed the generator; identical seeds yield identical streams. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // splitmix64 expansion of the seed into the full state.
        uint64_t x = seed;
        for (auto &s : state_) {
            x += 0x9E3779B97F4A7C15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            s = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        auto rotl = [](uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        uint64_t result = rotl(state_[1] * 5, 7) * 9;
        uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        assert(bound > 0);
        // Debiased via rejection on the top of the range.
        uint64_t threshold = -bound % bound;
        for (;;) {
            uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        assert(lo <= hi);
        return lo + int64_t(below(uint64_t(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Pick an index according to non-negative @p weights (need not sum
     * to 1). At least one weight must be positive.
     */
    size_t
    pickWeighted(const std::vector<double> &weights)
    {
        double total = 0;
        for (double w : weights)
            total += w;
        assert(total > 0);
        double r = uniform() * total;
        for (size_t i = 0; i < weights.size(); ++i) {
            r -= weights[i];
            if (r < 0)
                return i;
        }
        return weights.size() - 1;
    }

  private:
    uint64_t state_[4] = {};
};

} // namespace mdes

#endif // MDES_SUPPORT_RNG_H
