#include "support/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/diagnostics.h"

namespace mdes {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::comma()
{
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (!stack_.empty() && stack_.back() == '1')
        out_ += ',';
    if (!stack_.empty())
        stack_.back() = '1';
}

JsonWriter &
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
    stack_ += '0';
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out_ += '}';
    stack_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    comma();
    out_ += '[';
    stack_ += '0';
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out_ += ']';
    stack_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    comma();
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\":";
    after_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view s)
{
    comma();
    out_ += '"';
    out_ += jsonEscape(s);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    comma();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    comma();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    comma();
    if (!std::isfinite(v)) {
        out_ += "null";
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    comma();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::rawValue(std::string_view token)
{
    comma();
    out_ += token;
    return *this;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    for (const auto &[name, value] : object) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

namespace {

/** Recursive-descent parser over the document text. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue(0);
        skipWs();
        if (pos_ != text_.size())
            fail("end of document", "trailing content");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &expected, const std::string &found)
    {
        throw MdesError("JSON parse error at offset " +
                        std::to_string(pos_) + ": expected " + expected +
                        ", found " + found);
    }

    [[noreturn]] void
    failHere(const std::string &expected)
    {
        if (pos_ >= text_.size())
            fail(expected, "end of input");
        fail(expected, "'" + std::string(1, text_[pos_]) + "'");
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            failHere("a value");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            failHere("'" + std::string(1, c) + "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            failHere("'" + std::string(word) + "'");
        pos_ += word.size();
    }

    JsonValue
    parseValue(int depth)
    {
        if (depth > 128)
            throw MdesError("JSON parse error at offset " +
                            std::to_string(pos_) +
                            ": nesting deeper than 128 levels");
        skipWs();
        JsonValue v;
        switch (peek()) {
        case '{': {
            v.kind = JsonValue::Kind::Object;
            ++pos_;
            skipWs();
            if (consume('}'))
                return v;
            for (;;) {
                skipWs();
                std::string key = parseString();
                skipWs();
                expect(':');
                v.object.emplace_back(std::move(key),
                                      parseValue(depth + 1));
                skipWs();
                if (consume(','))
                    continue;
                expect('}');
                return v;
            }
        }
        case '[': {
            v.kind = JsonValue::Kind::Array;
            ++pos_;
            skipWs();
            if (consume(']'))
                return v;
            for (;;) {
                v.array.push_back(parseValue(depth + 1));
                skipWs();
                if (consume(','))
                    continue;
                expect(']');
                return v;
            }
        }
        case '"':
            v.kind = JsonValue::Kind::String;
            v.string = parseString();
            return v;
        case 't':
            literal("true");
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
        case 'f':
            literal("false");
            v.kind = JsonValue::Kind::Bool;
            return v;
        case 'n':
            literal("null");
            return v;
        default: return parseNumber();
        }
    }

    JsonValue
    parseNumber()
    {
        size_t start = pos_;
        consume('-');
        if (pos_ >= text_.size() || !isDigit(text_[pos_]))
            failHere("a digit");
        while (pos_ < text_.size() && isDigit(text_[pos_]))
            ++pos_;
        if (consume('.')) {
            if (pos_ >= text_.size() || !isDigit(text_[pos_]))
                failHere("a fraction digit");
            while (pos_ < text_.size() && isDigit(text_[pos_]))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() || !isDigit(text_[pos_]))
                failHere("an exponent digit");
            while (pos_ < text_.size() && isDigit(text_[pos_]))
                ++pos_;
        }
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number_text = std::string(text_.substr(start, pos_ - start));
        v.number = std::strtod(v.number_text.c_str(), nullptr);
        return v;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                failHere("closing '\"'");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("escaped control character",
                     "raw control character");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                failHere("an escape character");
            char esc = text_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': appendCodepoint(out); break;
            default:
                --pos_;
                failHere("a valid escape");
            }
        }
    }

    void
    appendCodepoint(std::string &out)
    {
        uint32_t cp = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size())
                failHere("4 hex digits");
            char c = text_[pos_++];
            cp <<= 4;
            if (c >= '0' && c <= '9')
                cp |= uint32_t(c - '0');
            else if (c >= 'a' && c <= 'f')
                cp |= uint32_t(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                cp |= uint32_t(c - 'A' + 10);
            else {
                --pos_;
                failHere("a hex digit");
            }
        }
        // Basic-plane UTF-8 encoding; surrogate pairs are rejected (the
        // writer never produces them).
        if (cp >= 0xD800 && cp <= 0xDFFF)
            fail("a non-surrogate \\u escape", "a surrogate");
        if (cp < 0x80) {
            out += char(cp);
        } else if (cp < 0x800) {
            out += char(0xC0 | (cp >> 6));
            out += char(0x80 | (cp & 0x3F));
        } else {
            out += char(0xE0 | (cp >> 12));
            out += char(0x80 | ((cp >> 6) & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        }
    }

    static bool isDigit(char c) { return c >= '0' && c <= '9'; }

    std::string_view text_;
    size_t pos_ = 0;
};

void
writeValue(JsonWriter &w, const JsonValue &v)
{
    switch (v.kind) {
    case JsonValue::Kind::Null: w.rawValue("null"); break;
    case JsonValue::Kind::Bool: w.value(v.boolean); break;
    case JsonValue::Kind::Number:
        if (v.number_text.empty())
            w.value(v.number);
        else
            w.rawValue(v.number_text);
        break;
    case JsonValue::Kind::String: w.value(v.string); break;
    case JsonValue::Kind::Array:
        w.beginArray();
        for (const auto &element : v.array)
            writeValue(w, element);
        w.endArray();
        break;
    case JsonValue::Kind::Object:
        w.beginObject();
        for (const auto &[key, member] : v.object) {
            w.key(key);
            writeValue(w, member);
        }
        w.endObject();
        break;
    }
}

} // namespace

JsonValue
parseJson(std::string_view text)
{
    return JsonParser(text).parse();
}

uint64_t
jsonU64(const JsonValue &v)
{
    const std::string &tok = v.kind == JsonValue::Kind::String
                                 ? v.string
                                 : v.number_text;
    if (!tok.empty() &&
        tok.find_first_not_of("0123456789") == std::string::npos) {
        errno = 0;
        char *end = nullptr;
        unsigned long long val = std::strtoull(tok.c_str(), &end, 10);
        if (end && *end == '\0' && errno != ERANGE)
            return uint64_t(val);
    }
    return v.kind == JsonValue::Kind::Number ? uint64_t(v.number) : 0;
}

std::string
writeJson(const JsonValue &v)
{
    JsonWriter w;
    writeValue(w, v);
    return w.str();
}

} // namespace mdes
