#include "support/json.h"

#include <cmath>
#include <cstdio>

namespace mdes {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::comma()
{
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (!stack_.empty() && stack_.back() == '1')
        out_ += ',';
    if (!stack_.empty())
        stack_.back() = '1';
}

JsonWriter &
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
    stack_ += '0';
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out_ += '}';
    stack_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    comma();
    out_ += '[';
    stack_ += '0';
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out_ += ']';
    stack_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    comma();
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\":";
    after_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view s)
{
    comma();
    out_ += '"';
    out_ += jsonEscape(s);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    comma();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    comma();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    comma();
    if (!std::isfinite(v)) {
        out_ += "null";
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    comma();
    out_ += v ? "true" : "false";
    return *this;
}

} // namespace mdes
