#include "support/text_table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace mdes {

namespace {

const char *const kSeparatorSentinel = "\x01";

/** True if the cell looks numeric and should right-align. */
bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != '%' && c != ',' && c != 'x') {
            return false;
        }
    }
    return true;
}

} // namespace

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows_.push_back({kSeparatorSentinel});
}

std::string
TextTable::toString() const
{
    // Compute column widths over header + all rows.
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &row) {
        if (row.size() == 1 && row[0] == kSeparatorSentinel)
            return;
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream os;
    auto renderSep = [&] {
        os << '+';
        for (size_t w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto renderRow = [&](const std::vector<std::string> &row, bool head) {
        os << '|';
        for (size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < row.size() ? row[i] : "";
            bool right = !head && looksNumeric(cell);
            size_t pad = widths[i] - cell.size();
            os << ' ';
            if (right)
                os << std::string(pad, ' ') << cell;
            else
                os << cell << std::string(pad, ' ');
            os << " |";
        }
        os << '\n';
    };

    renderSep();
    if (!header_.empty()) {
        renderRow(header_, true);
        renderSep();
    }
    for (const auto &r : rows_) {
        if (r.size() == 1 && r[0] == kSeparatorSentinel)
            renderSep();
        else
            renderRow(r, false);
    }
    renderSep();
    return os.str();
}

std::string
TextTable::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
TextTable::percent(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, v * 100.0);
    return buf;
}

std::string
TextTable::bytes(size_t v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

} // namespace mdes
