#include "support/flightrec.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <mutex>
#include <system_error>

#include "support/diagnostics.h"

#include "support/json.h"
#include "support/trace.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace mdes::flightrec {

std::atomic<bool> g_flightrec_enabled{true};

namespace {

namespace fs = std::filesystem;

static_assert((kRingSlots & (kRingSlots - 1)) == 0,
              "ring size must be a power of two");

/**
 * Ticks -> microseconds calibration. The origin pair is pinned when
 * the first ring registers (long before anything is gathered in
 * practice); the rate is re-derived at each gather from the elapsed
 * span since then, so it improves as the process ages. Conversion only
 * has to be *monotone* for ordering to hold; absolute accuracy
 * converges within milliseconds of process start.
 */
struct TickOrigin
{
    uint64_t ticks = 0;
    uint64_t us = 0;
};

const TickOrigin &
tickOrigin()
{
    static const TickOrigin origin = [] {
        TickOrigin o;
        o.us = trace::nowUs();
        o.ticks = nowTicks();
        return o;
    }();
    return origin;
}

/** Ticks per microsecond, measured from the origin to now. */
double
ticksPerUs()
{
    const TickOrigin &o = tickOrigin();
    const uint64_t now_us = trace::nowUs();
    const uint64_t now_ticks = nowTicks();
    const uint64_t dus = now_us > o.us ? now_us - o.us : 1;
    const uint64_t dticks =
        now_ticks > o.ticks ? now_ticks - o.ticks : dus;
    return double(dticks) / double(dus);
}

/** Convert an event timestamp; pre-origin stamps clamp to the origin. */
uint64_t
ticksToUs(uint64_t ticks, double rate)
{
    const TickOrigin &o = tickOrigin();
    if (ticks <= o.ticks)
        return o.us;
    return o.us + uint64_t(double(ticks - o.ticks) / rate);
}

/** One ring slot. All fields are atomics so a concurrent reader is a
 * well-defined (if possibly torn) read; torn slots are discarded by the
 * head re-check in snapshotInto(). */
struct Slot
{
    std::atomic<const char *> name{nullptr};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> ts_ticks{0};
    std::atomic<uint64_t> dur_ticks{0};
};

struct Ring
{
    /** Events ever pushed; slot for event i is slots[i % kRingSlots].
     * Written only by the owning thread. */
    std::atomic<uint64_t> head{0};
    uint32_t tid = 0;
    std::array<Slot, kRingSlots> slots;

    void
    push(const char *name, uint64_t trace_id, uint64_t ts_ticks,
         uint64_t dur_ticks)
    {
        const uint64_t h = head.load(std::memory_order_relaxed);
        Slot &s = slots[h & (kRingSlots - 1)];
        s.name.store(name, std::memory_order_relaxed);
        s.trace_id.store(trace_id, std::memory_order_relaxed);
        s.ts_ticks.store(ts_ticks, std::memory_order_relaxed);
        s.dur_ticks.store(dur_ticks, std::memory_order_relaxed);
        // Publish: a reader that observes head > h sees slot h's
        // fields (or a later overwrite it will discard).
        head.store(h + 1, std::memory_order_release);
    }

    /** Append this ring's non-lapped events for @p trace_id (or all
     * when trace_id == 0) to @p out, converting ticks to microseconds
     * at @p rate ticks/us. */
    void
    snapshotInto(uint64_t trace_id, double rate,
                 std::vector<Event> &out) const
    {
        const uint64_t h1 = head.load(std::memory_order_acquire);
        const uint64_t lo = h1 > kRingSlots ? h1 - kRingSlots : 0;
        std::vector<Event> copied;
        copied.reserve(size_t(h1 - lo));
        for (uint64_t i = lo; i < h1; ++i) {
            const Slot &s = slots[i & (kRingSlots - 1)];
            Event e;
            e.name = s.name.load(std::memory_order_relaxed);
            e.trace_id = s.trace_id.load(std::memory_order_relaxed);
            e.ts_us = ticksToUs(
                s.ts_ticks.load(std::memory_order_relaxed), rate);
            e.dur_us = uint64_t(
                double(s.dur_ticks.load(std::memory_order_relaxed)) /
                rate);
            e.tid = tid;
            copied.push_back(e);
        }
        // Anything the writer lapped while we copied may be torn:
        // keep only indices still inside the window at h2. push()
        // stores slot fields *before* publishing head = h2 + 1, so
        // while head still reads h2 the slot event h2 reuses (index
        // h2 - kRingSlots from the previous lap) may already be
        // mid-overwrite - discard that one too (the window is
        // effectively kRingSlots - 1 events deep).
        const uint64_t h2 = head.load(std::memory_order_acquire);
        const uint64_t lo2 =
            h2 + 1 > kRingSlots ? h2 + 1 - kRingSlots : 0;
        for (uint64_t i = lo; i < h1; ++i) {
            if (i < lo2)
                continue;
            const Event &e = copied[size_t(i - lo)];
            if (e.name == nullptr)
                continue;
            if (trace_id == 0 || e.trace_id == trace_id)
                out.push_back(e);
        }
    }
};

// ---- Crash-capture ring table -------------------------------------
//
// The Registry below guards its rings with a mutex, which a fatal-
// signal handler must never take. Rings are registered once and never
// freed, so a parallel lock-free table of raw pointers is safe for the
// handler to walk: registration publishes the pointer with a release
// store before bumping the count, and the handler loads the count with
// acquire. Capped; threads past the cap simply aren't captured.

inline constexpr size_t kMaxCrashRings = 256;
std::atomic<Ring *> g_crash_rings[kMaxCrashRings];
std::atomic<size_t> g_crash_ring_count{0};

void
publishCrashRing(Ring *ring)
{
    // Serialized by the Registry mutex; only the count's ordering
    // against the slot store matters for the signal-handler reader.
    const size_t idx = g_crash_ring_count.load(std::memory_order_relaxed);
    if (idx >= kMaxCrashRings)
        return;
    g_crash_rings[idx].store(ring, std::memory_order_release);
    g_crash_ring_count.store(idx + 1, std::memory_order_release);
}

/** Ring registry: one ring per thread, registered once, never removed
 * (same lifetime contract as trace::Collector's buffers). */
class Registry
{
  public:
    static Registry &
    instance()
    {
        static Registry registry;
        return registry;
    }

    Ring &
    registerLocalRing()
    {
        // Pin the tick calibration origin at first registration, long
        // before anything could be gathered.
        (void)tickOrigin();
        auto owned = std::make_unique<Ring>();
        owned->tid = trace::threadId();
        Ring *raw = owned.get();
        std::lock_guard<std::mutex> lock(mu_);
        rings_.push_back(std::move(owned));
        publishCrashRing(raw);
        return *raw;
    }

    std::vector<Event>
    eventsForTrace(uint64_t trace_id) const
    {
        std::vector<Event> out;
        const double rate = ticksPerUs();
        {
            std::lock_guard<std::mutex> lock(mu_);
            for (const auto &ring : rings_)
                ring->snapshotInto(trace_id, rate, out);
        }
        std::sort(out.begin(), out.end(),
                  [](const Event &a, const Event &b) {
                      return a.ts_us < b.ts_us;
                  });
        return out;
    }

    uint64_t
    recordedCount() const
    {
        uint64_t n = 0;
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &ring : rings_)
            n += ring->head.load(std::memory_order_relaxed);
        return n;
    }

  private:
    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Ring>> rings_;
};

/** Disk spool: serialized under one mutex (spooling is the rare tail
 * path; contention here is a non-goal). */
class Spool
{
  public:
    static Spool &
    instance()
    {
        static Spool spool;
        return spool;
    }

    void
    arm(const SpoolConfig &config)
    {
        std::lock_guard<std::mutex> lock(mu_);
        config_ = config;
        armed_ = !config.dir.empty();
        stats_ = SpoolStats{};
        files_.clear();
        bytes_ = 0;
        if (!armed_)
            return;
        std::error_code ec;
        fs::create_directories(config_.dir, ec);
        // Adopt files from a previous run so the cap holds across
        // restarts; names sort oldest-first by construction.
        for (const auto &entry : fs::directory_iterator(config_.dir, ec)) {
            if (!entry.is_regular_file(ec) ||
                entry.path().extension() != ".json")
                continue;
            const uint64_t size = uint64_t(entry.file_size(ec));
            files_.push_back({entry.path().string(), size});
            bytes_ += size;
        }
        std::sort(files_.begin(), files_.end(),
                  [](const File &a, const File &b) {
                      return a.path < b.path;
                  });
        // Resume numbering after the adopted run: names lead with an
        // 8-digit sequence, and restarting at 1 would make new spools
        // sort before (or collide with and silently overwrite) the
        // adopted files, breaking oldest-first eviction and the cap
        // accounting.
        next_seq_ = 1;
        for (const File &f : files_) {
            const std::string base =
                fs::path(f.path).filename().string();
            uint64_t seq = 0;
            size_t i = 0;
            while (i < base.size() && i < 8 && base[i] >= '0' &&
                   base[i] <= '9')
                seq = seq * 10 + uint64_t(base[i++] - '0');
            if (i == 8)
                next_seq_ = std::max(next_seq_, seq + 1);
        }
        evictLocked();
        stats_.bytes = bytes_;
    }

    void
    disarm()
    {
        std::lock_guard<std::mutex> lock(mu_);
        armed_ = false;
        config_ = SpoolConfig{};
        files_.clear();
        bytes_ = 0;
    }

    bool
    armed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return armed_;
    }

    uint64_t
    slowUs() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return armed_ ? config_.slow_us : 0;
    }

    SpoolStats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return stats_;
    }

    std::string
    write(uint64_t trace_id, const char *reason)
    {
        std::vector<Event> events =
            Registry::instance().eventsForTrace(trace_id);
        std::lock_guard<std::mutex> lock(mu_);
        if (!armed_)
            return "";
        if (events.empty()) {
            ++stats_.empty_skipped;
            return "";
        }
        const std::string doc = toChromeJson(events, trace_id, reason);
        char seq[16];
        std::snprintf(seq, sizeof seq, "%08llu",
                      (unsigned long long)next_seq_++);
        const std::string path = config_.dir + "/" + seq + "-" +
                                 sanitize(reason) + "-" +
                                 std::to_string(trace_id) + ".json";
        {
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            if (!out) {
                return "";
            }
            out.write(doc.data(), std::streamsize(doc.size()));
            if (!out) {
                std::error_code ec;
                fs::remove(path, ec);
                return "";
            }
        }
        files_.push_back({path, doc.size()});
        bytes_ += doc.size();
        ++stats_.files_written;
        evictLocked();
        stats_.bytes = bytes_;
        // The new file itself may have been evicted if it alone
        // exceeds the cap; report "" so callers don't dangle a path.
        return bytes_ == 0 ? "" : path;
    }

  private:
    struct File
    {
        std::string path;
        uint64_t bytes = 0;
    };

    static std::string
    sanitize(const char *reason)
    {
        std::string s = reason != nullptr ? reason : "unknown";
        for (char &c : s) {
            const bool ok = (c >= 'a' && c <= 'z') ||
                            (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '-';
            if (!ok)
                c = '-';
        }
        return s.empty() ? "unknown" : s;
    }

    void
    evictLocked()
    {
        while (bytes_ > config_.max_bytes && !files_.empty()) {
            const File oldest = files_.front();
            files_.pop_front();
            std::error_code ec;
            fs::remove(oldest.path, ec);
            bytes_ -= std::min(bytes_, oldest.bytes);
            ++stats_.files_evicted;
        }
    }

    mutable std::mutex mu_;
    SpoolConfig config_;
    bool armed_ = false;
    std::deque<File> files_;
    uint64_t bytes_ = 0;
    uint64_t next_seq_ = 1;
    SpoolStats stats_;
};

} // namespace

namespace {

/** The calling thread's ring, as a plain TLS pointer so the record
 * hot path is one TLS load and a branch - no static-init guard. */
thread_local Ring *t_ring = nullptr;

} // namespace

void
setEnabled(bool on)
{
    g_flightrec_enabled.store(on, std::memory_order_relaxed);
}

uint64_t
nowTicks()
{
#if defined(__x86_64__) || defined(_M_X64)
    return __rdtsc();
#else
    return uint64_t(std::chrono::steady_clock::now()
                        .time_since_epoch()
                        .count());
#endif
}

void
record(const char *name, uint64_t trace_id, uint64_t ts_ticks,
       uint64_t dur_ticks)
{
    Ring *ring = t_ring;
    if (ring == nullptr)
        t_ring = ring = &Registry::instance().registerLocalRing();
    ring->push(name, trace_id, ts_ticks, dur_ticks);
}

std::vector<Event>
eventsForTrace(uint64_t trace_id)
{
    return Registry::instance().eventsForTrace(trace_id);
}

uint64_t
recordedCount()
{
    return Registry::instance().recordedCount();
}

std::string
toChromeJson(const std::vector<Event> &events, uint64_t trace_id,
             const char *reason)
{
    JsonWriter w;
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("otherData").beginObject();
    w.key("tool").value("mdes::flightrec");
    w.key("trace_id").value(trace_id);
    w.key("reason").value(reason != nullptr ? reason : "unknown");
    w.key("events").value(uint64_t(events.size()));
    w.endObject();
    w.key("traceEvents").beginArray();
    for (const Event &e : events) {
        w.beginObject();
        w.key("name").value(e.name);
        w.key("cat").value("flightrec");
        w.key("ph").value("X");
        w.key("pid").value(uint64_t(1));
        w.key("tid").value(uint64_t(e.tid));
        w.key("ts").value(e.ts_us);
        w.key("dur").value(e.dur_us);
        w.key("args").beginObject();
        if (e.trace_id != 0)
            w.key("trace_id").value(e.trace_id);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

void
armSpool(const SpoolConfig &config)
{
    Spool::instance().arm(config);
}

void
disarmSpool()
{
    Spool::instance().disarm();
}

bool
spoolArmed()
{
    return Spool::instance().armed();
}

uint64_t
slowThresholdUs()
{
    return Spool::instance().slowUs();
}

std::string
spool(uint64_t trace_id, const char *reason)
{
    return Spool::instance().write(trace_id, reason);
}

SpoolStats
spoolStats()
{
    return Spool::instance().stats();
}

// ---- Crash capture ------------------------------------------------

namespace {

// On-disk .mdcr layout, host-endian (captures are decoded on the
// machine that wrote them). A fixed header, then ring_count rings of
// (CrashRingHeader + nrec CrashRecords). Timestamps stay in raw ticks;
// the header carries two (ticks, us) calibration points - the origin
// pinned at arm time and the crash instant - so the decoder can derive
// the tick rate without trusting the dying process to do math.
struct CrashFileHeader
{
    char magic[4]; // "MDCR"
    uint32_t version;
    uint32_t signo;
    uint32_t ring_count;
    uint64_t pid;
    uint64_t fault_addr;
    uint64_t origin_ticks;
    uint64_t origin_us;
    uint64_t crash_ticks;
    uint64_t crash_us;
};

struct CrashRingHeader
{
    uint32_t tid;
    uint32_t nrec;
};

struct CrashRecord
{
    char name[40]; // NUL-terminated span name, truncated
    uint64_t trace_id;
    uint64_t ts_ticks;
    uint64_t dur_ticks;
};

inline constexpr char kCrashMagic[4] = {'M', 'D', 'C', 'R'};
inline constexpr uint32_t kCrashVersion = 1;

// Handler state, all set before sigaction() installs anything. The
// directory is a plain char buffer: the handler may not touch
// std::string.
char g_crash_dir[3584];
std::atomic<bool> g_crash_armed{false};
uint64_t g_crash_origin_ticks = 0;
uint64_t g_crash_origin_us = 0;
alignas(16) char g_crash_stack[64 * 1024];

/** write() all of @p len, ignoring EINTR; best-effort. */
void
crashWrite(int fd, const void *data, size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        p += n;
        len -= size_t(n);
    }
}

/** Decimal-format @p v into @p out; returns digits written. */
size_t
crashFmtU64(char *out, uint64_t v)
{
    char tmp[20];
    size_t n = 0;
    do {
        tmp[n++] = char('0' + v % 10);
        v /= 10;
    } while (v != 0);
    for (size_t i = 0; i < n; ++i)
        out[i] = tmp[n - 1 - i];
    return n;
}

/** The fatal-signal handler. Restricted to async-signal-safe calls:
 * open/write/close/getpid/raise, atomic loads, and clock_gettime via
 * trace::nowUs() (whose statics armCrashCapture() pre-initialized). */
extern "C" void
crashCaptureHandler(int sig, siginfo_t *info, void *)
{
    // "<dir>/crash-<pid>-<signo>.mdcr"
    char path[4096];
    size_t off = 0;
    const size_t dirlen = ::strlen(g_crash_dir);
    ::memcpy(path, g_crash_dir, dirlen);
    off = dirlen;
    ::memcpy(path + off, "/crash-", 7);
    off += 7;
    off += crashFmtU64(path + off, uint64_t(::getpid()));
    path[off++] = '-';
    off += crashFmtU64(path + off, uint64_t(sig));
    ::memcpy(path + off, ".mdcr", 6);

    int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
        const size_t nrings = std::min(
            g_crash_ring_count.load(std::memory_order_acquire),
            kMaxCrashRings);
        CrashFileHeader h{};
        ::memcpy(h.magic, kCrashMagic, sizeof(kCrashMagic));
        h.version = kCrashVersion;
        h.signo = uint32_t(sig);
        h.ring_count = uint32_t(nrings);
        h.pid = uint64_t(::getpid());
        h.fault_addr =
            info != nullptr ? uint64_t(uintptr_t(info->si_addr)) : 0;
        h.origin_ticks = g_crash_origin_ticks;
        h.origin_us = g_crash_origin_us;
        h.crash_us = trace::nowUs();
        h.crash_ticks = nowTicks();
        crashWrite(fd, &h, sizeof h);

        for (size_t r = 0; r < nrings; ++r) {
            Ring *ring =
                g_crash_rings[r].load(std::memory_order_acquire);
            if (ring == nullptr)
                continue;
            // Other threads may still be pushing; their in-progress
            // slot can tear. Crash forensics tolerates one garbled
            // event per surviving thread.
            const uint64_t head =
                ring->head.load(std::memory_order_acquire);
            const uint64_t lo =
                head > kRingSlots ? head - kRingSlots : 0;
            CrashRingHeader rh{ring->tid, uint32_t(head - lo)};
            crashWrite(fd, &rh, sizeof rh);
            CrashRecord batch[64];
            size_t filled = 0;
            for (uint64_t i = lo; i < head; ++i) {
                const Slot &s = ring->slots[i & (kRingSlots - 1)];
                CrashRecord &rec = batch[filled];
                ::memset(rec.name, 0, sizeof rec.name);
                const char *name =
                    s.name.load(std::memory_order_relaxed);
                if (name != nullptr) {
                    // Span names are string literals in this process;
                    // copy by hand (strncpy is not on the safe list).
                    size_t k = 0;
                    while (k < sizeof(rec.name) - 1 && name[k] != '\0') {
                        rec.name[k] = name[k];
                        ++k;
                    }
                }
                rec.trace_id =
                    s.trace_id.load(std::memory_order_relaxed);
                rec.ts_ticks =
                    s.ts_ticks.load(std::memory_order_relaxed);
                rec.dur_ticks =
                    s.dur_ticks.load(std::memory_order_relaxed);
                if (++filled == sizeof(batch) / sizeof(batch[0])) {
                    crashWrite(fd, batch, sizeof batch);
                    filled = 0;
                }
            }
            if (filled > 0)
                crashWrite(fd, batch, filled * sizeof(CrashRecord));
        }
        ::close(fd);
    }

    // SA_RESETHAND restored the default disposition on entry; re-raise
    // so the process dies with the real signal (status, cores intact).
    ::raise(sig);
}

} // namespace

bool
armCrashCapture(const std::string &dir)
{
    if (dir.empty() || dir.size() >= sizeof(g_crash_dir) - 1)
        return false;
    std::error_code ec;
    fs::create_directories(dir, ec);
    std::memcpy(g_crash_dir, dir.c_str(), dir.size() + 1);
    // Pre-initialize every static the handler touches while it is
    // still legal to take locks: the tick origin pair and the
    // trace-clock epoch inside trace::nowUs().
    const TickOrigin &origin = tickOrigin();
    g_crash_origin_ticks = origin.ticks;
    g_crash_origin_us = origin.us;

    stack_t ss{};
    ss.ss_sp = g_crash_stack;
    ss.ss_size = sizeof g_crash_stack;
    if (sigaltstack(&ss, nullptr) != 0)
        return false;

    struct sigaction sa{};
    sa.sa_sigaction = crashCaptureHandler;
    sa.sa_flags = SA_SIGINFO | SA_RESETHAND | SA_ONSTACK;
    sigemptyset(&sa.sa_mask);
    for (int sig : {SIGSEGV, SIGBUS, SIGABRT}) {
        if (sigaction(sig, &sa, nullptr) != 0)
            return false;
    }
    g_crash_armed.store(true, std::memory_order_relaxed);
    return true;
}

bool
crashCaptureArmed()
{
    return g_crash_armed.load(std::memory_order_relaxed);
}

std::string
decodeCrashCapture(const std::string &path, CrashInfo *info)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw MdesError("flightrec: cannot open crash capture '" + path +
                        "'");
    std::string raw((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    if (raw.size() < sizeof(CrashFileHeader))
        throw MdesError("flightrec: truncated crash capture '" + path +
                        "'");
    CrashFileHeader h;
    std::memcpy(&h, raw.data(), sizeof h);
    if (std::memcmp(h.magic, kCrashMagic, sizeof(kCrashMagic)) != 0)
        throw MdesError("flightrec: bad crash-capture magic in '" + path +
                        "'");
    if (h.version != kCrashVersion)
        throw MdesError("flightrec: unsupported crash-capture version " +
                        std::to_string(h.version));

    // Tick rate from the two calibration points the handler recorded.
    const uint64_t dus =
        h.crash_us > h.origin_us ? h.crash_us - h.origin_us : 1;
    const uint64_t dticks = h.crash_ticks > h.origin_ticks
                                ? h.crash_ticks - h.origin_ticks
                                : dus;
    const double rate = double(dticks) / double(dus);

    std::deque<std::string> names; // stable storage behind Event.name
    std::vector<Event> events;
    size_t off = sizeof h;
    for (uint32_t r = 0; r < h.ring_count; ++r) {
        if (off + sizeof(CrashRingHeader) > raw.size())
            throw MdesError("flightrec: truncated ring header in '" +
                            path + "'");
        CrashRingHeader rh;
        std::memcpy(&rh, raw.data() + off, sizeof rh);
        off += sizeof rh;
        if (rh.nrec > kRingSlots)
            throw MdesError("flightrec: implausible ring length in '" +
                            path + "'");
        for (uint32_t i = 0; i < rh.nrec; ++i) {
            if (off + sizeof(CrashRecord) > raw.size())
                throw MdesError("flightrec: truncated record in '" +
                                path + "'");
            CrashRecord rec;
            std::memcpy(&rec, raw.data() + off, sizeof rec);
            off += sizeof rec;
            rec.name[sizeof(rec.name) - 1] = '\0';
            if (rec.name[0] == '\0')
                continue; // never-written or torn slot
            Event e;
            names.emplace_back(rec.name);
            e.name = names.back().c_str();
            e.trace_id = rec.trace_id;
            e.ts_us = rec.ts_ticks <= h.origin_ticks
                          ? h.origin_us
                          : h.origin_us +
                                uint64_t(double(rec.ts_ticks -
                                                h.origin_ticks) /
                                         rate);
            e.dur_us = uint64_t(double(rec.dur_ticks) / rate);
            e.tid = rh.tid;
            events.push_back(e);
        }
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  return a.ts_us < b.ts_us;
              });

    if (info != nullptr) {
        info->signo = int(h.signo);
        info->pid = h.pid;
        info->fault_addr = h.fault_addr;
        info->rings = h.ring_count;
        info->events = events.size();
    }
    const char *reason = h.signo == SIGSEGV  ? "crash-sigsegv"
                         : h.signo == SIGBUS ? "crash-sigbus"
                         : h.signo == SIGABRT
                             ? "crash-sigabrt"
                             : "crash";
    return toChromeJson(events, 0, reason);
}

} // namespace mdes::flightrec
