#ifndef MDES_SUPPORT_IO_RETRY_H
#define MDES_SUPPORT_IO_RETRY_H

/**
 * @file
 * mdes::io - EINTR-safe syscall wrappers for the serving stack.
 *
 * The supervision plane (DESIGN.md §15) leans on signals: SIGCHLD
 * announces shard deaths to the routing loop, signalfd carries
 * termination, and the watchdog escalates to SIGKILL. Every blocking
 * syscall on the serving path can therefore return -1/EINTR at any
 * moment, and one forgotten retry turns a routine child exit into a
 * spurious connection reset. All retry loops live behind these
 * wrappers so there is exactly one place to audit.
 *
 * retryIntr() is the primitive: it re-runs any callable returning a
 * signed result until the result is not -1/EINTR. The named wrappers
 * cover the syscalls the socket tier actually uses; epollWaitRetry()
 * additionally re-arms a finite timeout with the remaining time, so a
 * burst of SIGCHLDs cannot stretch a 100 ms wait into seconds.
 */

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

namespace mdes::io {

/** Run @p fn until it stops failing with EINTR; returns its result. */
template <typename Fn>
auto
retryIntr(Fn &&fn) -> decltype(fn())
{
    for (;;) {
        auto r = fn();
        if (r >= 0 || errno != EINTR)
            return r;
    }
}

inline ssize_t
readRetry(int fd, void *buf, size_t len)
{
    return retryIntr([&] { return ::read(fd, buf, len); });
}

inline ssize_t
writeRetry(int fd, const void *buf, size_t len)
{
    return retryIntr([&] { return ::write(fd, buf, len); });
}

/** send() with MSG_NOSIGNAL always ORed in: a peer that closed
 * mid-response yields EPIPE instead of a process-killing SIGPIPE. */
inline ssize_t
sendRetry(int fd, const void *buf, size_t len, int flags = 0)
{
    return retryIntr(
        [&] { return ::send(fd, buf, len, flags | MSG_NOSIGNAL); });
}

inline int
accept4Retry(int fd, sockaddr *addr, socklen_t *alen, int flags)
{
    return retryIntr([&] { return ::accept4(fd, addr, alen, flags); });
}

/**
 * epoll_wait() that survives EINTR without distorting the deadline: a
 * finite timeout is re-armed with the time still remaining, never the
 * original duration. timeout_ms < 0 blocks indefinitely, as usual.
 */
inline int
epollWaitRetry(int epfd, epoll_event *events, int maxevents, int timeout_ms)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        timeout_ms >= 0 ? Clock::now() + std::chrono::milliseconds(timeout_ms)
                        : Clock::time_point{};
    for (;;) {
        int n = ::epoll_wait(epfd, events, maxevents, timeout_ms);
        if (n >= 0 || errno != EINTR)
            return n;
        if (timeout_ms >= 0) {
            auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
            timeout_ms = left > 0 ? int(left) : 0;
        }
    }
}

} // namespace mdes::io

#endif // MDES_SUPPORT_IO_RETRY_H
