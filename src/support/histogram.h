#ifndef MDES_SUPPORT_HISTOGRAM_H
#define MDES_SUPPORT_HISTOGRAM_H

/**
 * @file
 * Integer histogram with ASCII bar rendering.
 *
 * Figure 2 of the paper plots the distribution of options checked per
 * scheduling attempt; the checker records per-attempt counts here and the
 * bench renders the same series.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace mdes {

/** Counts occurrences of small non-negative integer samples. */
class Histogram
{
  public:
    /** Record one sample of @p value. Inline and minimal: the
     * constraint checker records one sample per scheduling attempt, so
     * this is two increments on the hot path (the mean is derived from
     * the counts on demand instead of being maintained here). */
    void
    add(uint64_t value)
    {
        if (value >= counts_.size()) [[unlikely]]
            counts_.resize(value + 1, 0);
        ++counts_[value];
        ++total_;
    }

    /** Record @p n samples of @p value at once (deserialization of
     * bucket arrays; equivalent to n add() calls). */
    void
    addCount(uint64_t value, uint64_t n)
    {
        if (n == 0)
            return;
        if (value >= counts_.size())
            counts_.resize(value + 1, 0);
        counts_[value] += n;
        total_ += n;
    }

    /** Merge another histogram into this one. */
    void merge(const Histogram &other);

    /** Total number of samples recorded. */
    uint64_t total() const { return total_; }

    /** Count for a specific @p value (0 if never seen). */
    uint64_t countAt(uint64_t value) const;

    /** Fraction of samples equal to @p value. */
    double fractionAt(uint64_t value) const;

    /** Fraction of samples in the inclusive range [lo, hi]. */
    double fractionBetween(uint64_t lo, uint64_t hi) const;

    /** Largest sample value seen (0 for an empty histogram). */
    uint64_t maxValue() const;

    /** Mean of all samples. */
    double mean() const;

    /**
     * Render an ASCII bar chart: one row per distinct value up to
     * maxValue(), bar lengths scaled to @p bar_width characters, with
     * percentage labels. Values with zero count are skipped when
     * @p skip_zero is true.
     */
    std::string render(int bar_width = 50, bool skip_zero = true) const;

  private:
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace mdes

#endif // MDES_SUPPORT_HISTOGRAM_H
