#ifndef MDES_SUPPORT_DIAGNOSTICS_H
#define MDES_SUPPORT_DIAGNOSTICS_H

/**
 * @file
 * Source locations and error reporting for the high-level MDES language.
 *
 * The paper's model asks compiler writers to author machine descriptions by
 * hand, so the translator must produce precise, human-quality diagnostics.
 */

#include <stdexcept>
#include <string>
#include <vector>

namespace mdes {

/** A position inside a high-level MDES source buffer (1-based). */
struct SourceLocation
{
    int line = 0;
    int column = 0;

    bool operator==(const SourceLocation &) const = default;

    /** Render as "line:column". */
    std::string toString() const;
};

/** Severity of a reported diagnostic. */
enum class Severity { Error, Warning, Note };

/** One reported problem with its location. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    SourceLocation loc;
    std::string message;

    /** Render as "file-less <line:col>: <severity>: <message>". */
    std::string toString() const;
};

/**
 * Collects diagnostics during parsing/semantic analysis.
 *
 * The parser reports and recovers where it can; callers check hasErrors()
 * after a phase and may render all diagnostics for the user.
 */
class DiagnosticEngine
{
  public:
    /** Report an error at @p loc. */
    void error(SourceLocation loc, std::string message);

    /** Report a warning at @p loc. */
    void warning(SourceLocation loc, std::string message);

    /** @return true if any error (not warning) was reported. */
    bool hasErrors() const { return num_errors_ > 0; }

    /** All diagnostics in report order. */
    const std::vector<Diagnostic> &diagnostics() const { return diags_; }

    /** Render every diagnostic, one per line. */
    std::string toString() const;

  private:
    std::vector<Diagnostic> diags_;
    int num_errors_ = 0;
};

/** Thrown by convenience entry points when a description fails to compile. */
class MdesError : public std::runtime_error
{
  public:
    explicit MdesError(const std::string &what) : std::runtime_error(what) {}
};

/**
 * Thrown at cooperative-cancellation checkpoints (between transform
 * passes, inside store retry loops) when a request's deadline expires or
 * it is cancelled. Distinct from MdesError so callers can tell "the work
 * was abandoned" apart from "the work failed" — a cancelled compile must
 * not poison a circuit breaker or count as a compile failure.
 */
class CancelledError : public MdesError
{
  public:
    explicit CancelledError(const std::string &what) : MdesError(what) {}
};

} // namespace mdes

#endif // MDES_SUPPORT_DIAGNOSTICS_H
