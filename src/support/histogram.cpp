#include "support/histogram.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mdes {

void
Histogram::merge(const Histogram &other)
{
    if (other.counts_.size() > counts_.size())
        counts_.resize(other.counts_.size(), 0);
    for (size_t i = 0; i < other.counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

uint64_t
Histogram::countAt(uint64_t value) const
{
    return value < counts_.size() ? counts_[value] : 0;
}

double
Histogram::fractionAt(uint64_t value) const
{
    return total_ == 0 ? 0.0 : double(countAt(value)) / double(total_);
}

double
Histogram::fractionBetween(uint64_t lo, uint64_t hi) const
{
    if (total_ == 0)
        return 0.0;
    uint64_t sum = 0;
    for (uint64_t v = lo; v <= hi && v < counts_.size(); ++v)
        sum += counts_[v];
    return double(sum) / double(total_);
}

uint64_t
Histogram::maxValue() const
{
    for (size_t i = counts_.size(); i > 0; --i) {
        if (counts_[i - 1] != 0)
            return i - 1;
    }
    return 0;
}

double
Histogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    uint64_t weighted_sum = 0;
    for (size_t v = 0; v < counts_.size(); ++v)
        weighted_sum += counts_[v] * v;
    return double(weighted_sum) / double(total_);
}

std::string
Histogram::render(int bar_width, bool skip_zero) const
{
    std::ostringstream os;
    if (total_ == 0)
        return "(empty histogram)\n";

    uint64_t peak = *std::max_element(counts_.begin(), counts_.end());
    for (size_t v = 0; v < counts_.size(); ++v) {
        if (skip_zero && counts_[v] == 0)
            continue;
        double frac = double(counts_[v]) / double(total_);
        int len = peak == 0
                      ? 0
                      : int(double(counts_[v]) / double(peak) * bar_width);
        char label[64];
        std::snprintf(label, sizeof(label), "%4zu | %6.2f%% | ", v,
                      frac * 100.0);
        os << label << std::string(size_t(len), '#') << '\n';
    }
    return os.str();
}

} // namespace mdes
