#ifndef MDES_SUPPORT_FLIGHTREC_H
#define MDES_SUPPORT_FLIGHTREC_H

/**
 * @file
 * mdes::flightrec - the always-on flight recorder behind mdes::trace.
 *
 * Full tracing (--trace) buffers every span until exported; that is the
 * right tool for a planned investigation and the wrong one for a
 * production tier, where the interesting request is the one nobody was
 * watching. The flight recorder fills that gap: every thread keeps a
 * small fixed-size ring of the most recent span events, recorded
 * unconditionally (even with tracing off) at a cost of a few relaxed
 * atomic stores per span. The ring remembers the last ~4096 spans per
 * thread and silently overwrites older ones.
 *
 * Tail-based capture: when a request ends badly - typed error, breaker
 * trip, deadline blown, or latency beyond a configurable threshold -
 * the service asks the recorder to *spool* that trace id: every ring
 * event carrying the id is gathered across threads and written to a
 * bounded on-disk directory as a standalone Chrome trace-event JSON
 * file. The directory is a size-capped FIFO - oldest spool files are
 * deleted first and the total never exceeds the configured byte cap -
 * so a misbehaving fleet cannot fill a disk.
 *
 * Concurrency: each ring is written only by its owning thread (relaxed
 * stores into atomic slot fields, release store of the head counter);
 * a reader snapshots the head, copies the window, then re-reads the
 * head and discards any slot the writer may have lapped during the
 * copy. Torn events are therefore discarded, never reported, and the
 * scheme is clean under ThreadSanitizer without any lock on the record
 * path.
 *
 * Compiling with -DMDES_FLIGHTREC_ENABLED=0 removes the record hook
 * from ScopedSpan entirely; at runtime setEnabled(false) reduces it to
 * one relaxed load.
 */

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mdes::flightrec {

#ifndef MDES_FLIGHTREC_ENABLED
#define MDES_FLIGHTREC_ENABLED 1
#endif

/** Slots per thread ring (power of two; ~128KiB per thread). */
inline constexpr size_t kRingSlots = 4096;

/** Global runtime switch. On by default. */
extern std::atomic<bool> g_flightrec_enabled;

/** True when ring recording is active (relaxed load; hot-path safe). */
inline bool
enabled()
{
    return g_flightrec_enabled.load(std::memory_order_relaxed);
}

/** Turn ring recording on or off process-wide. */
void setEnabled(bool on);

/**
 * Cheapest available monotone timestamp, in unspecified "ticks" (TSC
 * cycles on x86-64, steady-clock nanoseconds elsewhere). Ring events
 * are stamped in ticks on the hot path - a vdso clock_gettime pair per
 * span would alone blow the recorder's <1% budget - and converted to
 * microseconds only when a trace is gathered, using a rate calibrated
 * against trace::nowUs() since process start.
 */
uint64_t nowTicks();

/** Append one event to the calling thread's ring (wait-free).
 * Timestamps are nowTicks() values; eventsForTrace() converts. */
void record(const char *name, uint64_t trace_id, uint64_t ts_ticks,
            uint64_t dur_ticks);

/** One event copied out of a ring. */
struct Event
{
    const char *name = "";
    uint64_t trace_id = 0;
    uint64_t ts_us = 0;
    uint64_t dur_us = 0;
    uint32_t tid = 0;
};

/** Every ring event stamped with @p trace_id, across all threads,
 * ordered by timestamp and converted from ticks to microseconds on
 * trace::nowUs()'s axis. Best-effort: events the writers lapped during
 * the copy are omitted, and events stamped before the recorder's
 * first use clamp to the calibration origin. */
std::vector<Event> eventsForTrace(uint64_t trace_id);

/** Total events ever pushed across all rings (monotone; for tests). */
uint64_t recordedCount();

/** Render events as a standalone Chrome trace-event JSON document. */
std::string toChromeJson(const std::vector<Event> &events,
                         uint64_t trace_id, const char *reason);

/** Disk spool configuration. Unarmed by default: the library never
 * writes to disk unless a tool arms a directory. */
struct SpoolConfig
{
    /** Directory for spool files (created if missing). */
    std::string dir;
    /** Byte cap for the whole directory (FIFO eviction; never
     * exceeded after a spool() returns). */
    uint64_t max_bytes = 8ull << 20;
    /** End-to-end request latency (µs) beyond which an otherwise
     * successful request is spooled. 0 disables the latency trigger;
     * errors always trigger. */
    uint64_t slow_us = 0;
};

/** Arm disk spooling. Scans @p config.dir for existing spool files so
 * the byte cap holds across restarts. Replaces any previous config. */
void armSpool(const SpoolConfig &config);

/** Disarm disk spooling (ring recording is unaffected). */
void disarmSpool();

/** True when a spool directory is armed. */
bool spoolArmed();

/** The armed latency trigger in µs (0 when unarmed or disabled). */
uint64_t slowThresholdUs();

/**
 * Gather @p trace_id's ring events and write them to the spool
 * directory as one Chrome-trace JSON file named
 * "NNNNNNNN-<reason>-<trace_id>.json", then evict oldest files until
 * the directory is back under its byte cap. Returns the path written,
 * or "" when unarmed, the trace has no buffered events, or the write
 * failed. Never throws.
 */
std::string spool(uint64_t trace_id, const char *reason);

/** Spool-side counters (monotone since arm; for tests and tables). */
struct SpoolStats
{
    uint64_t files_written = 0;
    uint64_t files_evicted = 0;
    uint64_t empty_skipped = 0;
    /** Bytes currently on disk under the armed directory. */
    uint64_t bytes = 0;
};

SpoolStats spoolStats();

// ---- Crash capture (DESIGN.md §15) --------------------------------
//
// The spool path above gathers/serializes under locks and allocates -
// none of which is legal inside a fatal-signal handler. Crash capture
// is its async-signal-safe sibling: a pre-registered, lock-free table
// of ring pointers lets a SIGSEGV/SIGBUS/SIGABRT handler dump every
// thread's raw ring (plus a minimal crash report) to one ".mdcr" file
// using only open/write/close, so every crash arrives with its last
// milliseconds of spans. The binary capture is decoded offline by
// `mdesc flight decode`.

/** Crash report decoded from a .mdcr capture header. */
struct CrashInfo
{
    int signo = 0;
    uint64_t pid = 0;
    uint64_t fault_addr = 0;
    uint64_t rings = 0;
    uint64_t events = 0;
};

/**
 * Arm the crash handler: SIGSEGV, SIGBUS and SIGABRT write
 * "<dir>/crash-<pid>-<signo>.mdcr" (raw ring snapshot + crash report)
 * and then re-raise with the default disposition, preserving the exit
 * status a supervisor observes. Handlers run on an alternate stack so
 * stack-overflow SIGSEGVs are captured too. Safe to call again after
 * fork() to point a child at its own directory. Returns false when
 * @p dir is empty/oversized or handler installation failed.
 */
bool armCrashCapture(const std::string &dir);

/** True once armCrashCapture() installed handlers in this process. */
bool crashCaptureArmed();

/**
 * Decode a .mdcr capture into a standalone Chrome trace-event JSON
 * document (the spool-file shape). Fills @p info when non-null.
 * Throws MdesError on unreadable or malformed input.
 */
std::string decodeCrashCapture(const std::string &path,
                               CrashInfo *info = nullptr);

} // namespace mdes::flightrec

#endif // MDES_SUPPORT_FLIGHTREC_H
