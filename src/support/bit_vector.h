#ifndef MDES_SUPPORT_BIT_VECTOR_H
#define MDES_SUPPORT_BIT_VECTOR_H

/**
 * @file
 * Dynamically sized bit vector.
 *
 * Used for resource-instance sets wider than one machine word, for
 * collision vectors (Section 7 of the paper), and by tests as a reference
 * implementation for the packed RU-map words.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mdes {

/**
 * A fixed-width (set at construction or resize) vector of bits with the
 * word-parallel operations needed by the resource-constraint machinery:
 * test-any-overlap, set-union, and per-bit access.
 */
class BitVector
{
  public:
    BitVector() = default;

    /** Construct with @p num_bits bits, all clear. */
    explicit BitVector(size_t num_bits)
        : num_bits_(num_bits), words_((num_bits + 63) / 64, 0)
    {
    }

    /** Number of bits this vector holds. */
    size_t size() const { return num_bits_; }

    /** Resize to @p num_bits, preserving existing bits, clearing new ones. */
    void resize(size_t num_bits);

    /** Set bit @p idx. */
    void set(size_t idx);

    /** Clear bit @p idx. */
    void reset(size_t idx);

    /** Clear all bits. */
    void clear();

    /** @return true if bit @p idx is set. */
    bool test(size_t idx) const;

    /** @return true if no bit is set. */
    bool none() const;

    /** @return true if any bit is set. */
    bool any() const { return !none(); }

    /** Number of set bits. */
    size_t count() const;

    /** @return true if this and @p other share any set bit. */
    bool intersects(const BitVector &other) const;

    /** Union @p other into this vector. Widths must match. */
    BitVector &operator|=(const BitVector &other);

    /** Intersect @p other into this vector. Widths must match. */
    BitVector &operator&=(const BitVector &other);

    bool operator==(const BitVector &other) const = default;

    /** Render as a string of '0'/'1', bit 0 first (for tests/debugging). */
    std::string toString() const;

  private:
    size_t num_bits_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace mdes

#endif // MDES_SUPPORT_BIT_VECTOR_H
