#include "support/bit_vector.h"

#include <bit>
#include <cassert>

namespace mdes {

void
BitVector::resize(size_t num_bits)
{
    num_bits_ = num_bits;
    words_.resize((num_bits + 63) / 64, 0);
    // Clear any stale bits beyond the new width in the last word so that
    // equality and none() remain exact.
    if (num_bits % 64 != 0 && !words_.empty()) {
        words_.back() &= (uint64_t(1) << (num_bits % 64)) - 1;
    }
}

void
BitVector::set(size_t idx)
{
    assert(idx < num_bits_);
    words_[idx / 64] |= uint64_t(1) << (idx % 64);
}

void
BitVector::reset(size_t idx)
{
    assert(idx < num_bits_);
    words_[idx / 64] &= ~(uint64_t(1) << (idx % 64));
}

void
BitVector::clear()
{
    for (auto &w : words_)
        w = 0;
}

bool
BitVector::test(size_t idx) const
{
    assert(idx < num_bits_);
    return (words_[idx / 64] >> (idx % 64)) & 1;
}

bool
BitVector::none() const
{
    for (auto w : words_) {
        if (w != 0)
            return false;
    }
    return true;
}

size_t
BitVector::count() const
{
    size_t n = 0;
    for (auto w : words_)
        n += std::popcount(w);
    return n;
}

bool
BitVector::intersects(const BitVector &other) const
{
    size_t n = std::min(words_.size(), other.words_.size());
    for (size_t i = 0; i < n; ++i) {
        if (words_[i] & other.words_[i])
            return true;
    }
    return false;
}

BitVector &
BitVector::operator|=(const BitVector &other)
{
    assert(num_bits_ == other.num_bits_);
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] |= other.words_[i];
    return *this;
}

BitVector &
BitVector::operator&=(const BitVector &other)
{
    assert(num_bits_ == other.num_bits_);
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] &= other.words_[i];
    return *this;
}

std::string
BitVector::toString() const
{
    std::string s;
    s.reserve(num_bits_);
    for (size_t i = 0; i < num_bits_; ++i)
        s.push_back(test(i) ? '1' : '0');
    return s;
}

} // namespace mdes
