#ifndef MDES_FSA_AUTOMATON_H
#define MDES_FSA_AUTOMATON_H

/**
 * @file
 * Finite-state-automaton scheduling baseline (paper Section 10).
 *
 * Proebsting & Fraser (POPL'94), Mueller (MICRO-26), and Bala & Rubin
 * (MICRO-28) replace per-attempt reservation-table checking with an
 * automaton whose states encode the processor's outstanding resource
 * commitments: one table lookup decides whether an operation can issue
 * and yields the successor state. This module implements that baseline
 * so the paper's comparison can be reproduced:
 *
 *  - a state is the forward window of reserved resource words relative
 *    to the current cycle (all usage times must be >= 0, i.e. the
 *    Section 7 time shift must have run);
 *  - transitions are built lazily and memoized, as in Bala & Rubin's
 *    on-the-fly construction, so only reachable states materialize;
 *  - issue transitions choose exactly the same greedy highest-priority
 *    options as the reservation-table checker, so the FSA-driven list
 *    scheduler produces the identical schedule.
 *
 * What the paper observes still holds here by construction: lookups per
 * attempt drop to one, but the state/transition tables grow with the
 * machine's flexibility, and there is no way to *release* resources -
 * unscheduling (needed by iterative modulo scheduling) has no automaton
 * analogue.
 */

#include <cstdint>
#include <map>
#include <vector>

#include "lmdes/low_mdes.h"
#include "sched/ir.h"
#include "sched/list_scheduler.h"

namespace mdes::fsa {

/** Size/usage statistics of a (lazily built) scheduler automaton. */
struct FsaStats
{
    size_t states = 0;
    size_t window = 0;
    /** Bytes for state words plus transition tables. */
    size_t memory_bytes = 0;
    uint64_t issue_lookups = 0;
    /** Lookups that had to construct the transition (cold). */
    uint64_t transitions_built = 0;
};

/**
 * On-the-fly deterministic automaton over scheduler resource states.
 *
 * States are interned windows of future RU words; state 0 is the empty
 * machine. issue() and advanceCycle() build memoized transitions.
 */
class SchedulerAutomaton
{
  public:
    /** Transition result meaning "the operation cannot issue here". */
    static constexpr uint32_t kFail = 0xFFFFFFFF;

    /**
     * Build over @p low. Requires every check time in [0, window);
     * throws MdesError if any usage time is negative (run the usage-time
     * transformation first) or if @p max_states is exceeded later.
     */
    explicit SchedulerAutomaton(const lmdes::LowMdes &low,
                                size_t max_states = 1u << 20);

    /** The empty-machine state. */
    uint32_t initialState() const { return 0; }

    /**
     * Issue an operation using AND/OR-tree @p tree in the current cycle
     * of @p state. @return the successor state, or kFail.
     */
    uint32_t issue(uint32_t state, uint32_t tree);

    /** Move to the next cycle (shift the commitment window). */
    uint32_t advanceCycle(uint32_t state);

    FsaStats stats() const;

  private:
    using Window = std::vector<uint64_t>;

    uint32_t intern(const Window &window);

    const lmdes::LowMdes &low_;
    size_t max_states_;
    int32_t window_ = 1;

    std::vector<Window> state_windows_;
    std::map<Window, uint32_t> state_ids_;
    /** Per state: one issue transition per tree + one advance. Built
     * lazily; kUnbuilt marks absent entries. */
    static constexpr uint32_t kUnbuilt = 0xFFFFFFFE;
    std::vector<std::vector<uint32_t>> issue_transitions_;
    std::vector<uint32_t> advance_transitions_;

    mutable FsaStats stats_;
};

/**
 * The FSA-driven forward list scheduler: identical algorithm to
 * ListScheduler, but resource feasibility is a single automaton lookup
 * per attempt. Produces bit-identical schedules.
 */
class FsaListScheduler
{
  public:
    explicit FsaListScheduler(const lmdes::LowMdes &low,
                              SchedulerAutomaton &automaton)
        : low_(low), fsa_(automaton)
    {
    }

    sched::BlockSchedule scheduleBlock(const sched::Block &block,
                                       sched::SchedStats &stats);

    std::vector<sched::BlockSchedule>
    scheduleProgram(const sched::Program &program,
                    sched::SchedStats &stats);

  private:
    const lmdes::LowMdes &low_;
    SchedulerAutomaton &fsa_;
};

} // namespace mdes::fsa

#endif // MDES_FSA_AUTOMATON_H
