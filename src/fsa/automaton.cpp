#include "fsa/automaton.h"

#include <algorithm>

#include "sched/dep_graph.h"
#include "support/diagnostics.h"

namespace mdes::fsa {

SchedulerAutomaton::SchedulerAutomaton(const lmdes::LowMdes &low,
                                       size_t max_states)
    : low_(low), max_states_(max_states)
{
    for (const auto &check : low_.checks()) {
        if (check.slot < 0) {
            throw MdesError(
                "scheduler automata require non-negative usage times; "
                "run the usage-time transformation (Section 7) first");
        }
        window_ = std::max(window_, check.slot + 1);
    }
    // Whole cycles: advanceCycle() shifts one cycle's worth of slots.
    int32_t words = int32_t(low_.slotWords());
    window_ = (window_ + words - 1) / words * words;
    Window empty(size_t(window_), 0);
    intern(empty);
}

uint32_t
SchedulerAutomaton::intern(const Window &window)
{
    auto it = state_ids_.find(window);
    if (it != state_ids_.end())
        return it->second;
    if (state_windows_.size() >= max_states_) {
        throw MdesError(
            "scheduler automaton exceeded its state budget (" +
            std::to_string(max_states_) +
            " states); the machine is too flexible for the FSA "
            "approach at this budget");
    }
    uint32_t id = uint32_t(state_windows_.size());
    state_windows_.push_back(window);
    state_ids_.emplace(window, id);
    issue_transitions_.emplace_back(); // sized lazily on first use
    advance_transitions_.push_back(kUnbuilt);
    return id;
}

uint32_t
SchedulerAutomaton::issue(uint32_t state, uint32_t tree)
{
    ++stats_.issue_lookups;
    auto &row = issue_transitions_[state];
    if (row.size() < low_.trees().size())
        row.resize(low_.trees().size(), kUnbuilt);
    if (row[tree] != kUnbuilt)
        return row[tree];

    ++stats_.transitions_built;
    // Greedy AND-of-ORs evaluation against the window, with the same
    // pending overlay as the reservation-table checker, so the chosen
    // options - and therefore the successor state - are identical.
    Window window = state_windows_[state]; // copy: accumulates choices
    const lmdes::LowTree &t = low_.trees()[tree];
    bool ok = true;
    for (uint32_t s = 0; s < t.num_or_trees && ok; ++s) {
        const lmdes::LowOrTree &ot =
            low_.orTrees()[low_.orRefs()[t.first_or_ref + s]];
        bool found = false;
        for (uint32_t oi = 0; oi < ot.num_options && !found; ++oi) {
            const lmdes::LowOption &opt =
                low_.options()[low_.optionRefs()[ot.first_option_ref +
                                                 oi]];
            bool fits = true;
            for (uint32_t c = 0; c < opt.num_checks; ++c) {
                const lmdes::Check &check =
                    low_.checks()[opt.first_check + c];
                if (window[size_t(check.slot)] & check.mask) {
                    fits = false;
                    break;
                }
            }
            if (fits) {
                for (uint32_t c = 0; c < opt.num_checks; ++c) {
                    const lmdes::Check &check =
                        low_.checks()[opt.first_check + c];
                    window[size_t(check.slot)] |= check.mask;
                }
                found = true;
            }
        }
        ok = found;
    }

    uint32_t next = ok ? intern(window) : kFail;
    // intern() may have grown the transition tables; re-fetch the row.
    auto &fresh_row = issue_transitions_[state];
    if (fresh_row.size() < low_.trees().size())
        fresh_row.resize(low_.trees().size(), kUnbuilt);
    fresh_row[tree] = next;
    return next;
}

uint32_t
SchedulerAutomaton::advanceCycle(uint32_t state)
{
    if (advance_transitions_[state] != kUnbuilt)
        return advance_transitions_[state];
    Window shifted(size_t(window_), 0);
    const Window &current = state_windows_[state];
    size_t words = low_.slotWords();
    for (size_t i = words; i < current.size(); ++i)
        shifted[i - words] = current[i];
    uint32_t next = intern(shifted);
    advance_transitions_[state] = next;
    return next;
}

FsaStats
SchedulerAutomaton::stats() const
{
    FsaStats s = stats_;
    s.states = state_windows_.size();
    s.window = size_t(window_);
    s.memory_bytes = state_windows_.size() * size_t(window_) * 8;
    for (const auto &row : issue_transitions_)
        s.memory_bytes += row.size() * 4;
    s.memory_bytes += advance_transitions_.size() * 4;
    return s;
}

// ----------------------------------------------------- FsaListScheduler

sched::BlockSchedule
FsaListScheduler::scheduleBlock(const sched::Block &block,
                                sched::SchedStats &stats)
{
    using sched::DepGraph;
    const size_t n = block.instrs.size();
    sched::BlockSchedule sched;
    sched.cycles.assign(n, -1);
    sched.used_cascade.assign(n, 0);
    if (n == 0)
        return sched;

    DepGraph graph = DepGraph::build(block, low_);
    std::vector<uint32_t> order(n);
    for (uint32_t i = 0; i < n; ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                         return graph.priorities()[a] >
                                graph.priorities()[b];
                     });

    std::vector<uint32_t> unscheduled_preds(n, 0);
    for (const auto &e : graph.edges())
        ++unscheduled_preds[e.succ];

    size_t remaining = n;
    int64_t cycle_bound = 64;
    for (const auto &in : block.instrs)
        cycle_bound += 2 + low_.opClasses()[in.op_class].latency;

    uint32_t state = fsa_.initialState();
    for (int32_t cycle = 0; remaining > 0; ++cycle) {
        if (cycle > cycle_bound) {
            throw MdesError(
                "FSA list scheduler exceeded cycle bound; the machine "
                "description cannot issue some operation");
        }
        for (uint32_t u : order) {
            if (sched.cycles[u] >= 0 || unscheduled_preds[u] > 0)
                continue;
            const sched::Instr &in = block.instrs[u];
            const lmdes::LowOpClass &cls = low_.opClasses()[in.op_class];

            int32_t normal_ready = 0;
            int32_t cascade_ready = 0;
            for (uint32_t e : graph.predEdges()[u]) {
                const sched::DepEdge &edge = graph.edges()[e];
                int32_t at = sched.cycles[edge.pred] + edge.min_dist;
                normal_ready = std::max(normal_ready, at);
                cascade_ready =
                    std::max(cascade_ready,
                             edge.cascade_relax
                                 ? sched.cycles[edge.pred]
                                 : at);
            }
            bool can_cascade =
                in.cascadable && cls.cascade_tree != kInvalidId;
            if (cycle < (can_cascade ? cascade_ready : normal_ready))
                continue;
            bool use_cascade = can_cascade && cycle < normal_ready;
            uint32_t tree = use_cascade ? cls.cascade_tree : cls.tree;

            ++stats.checks.attempts;
            ++stats.checks.resource_checks; // one automaton lookup
            uint32_t next = fsa_.issue(state, tree);
            if (next != SchedulerAutomaton::kFail) {
                ++stats.checks.successes;
                state = next;
                sched.cycles[u] = cycle;
                sched.used_cascade[u] = use_cascade ? 1 : 0;
                sched.length = std::max(sched.length, cycle + 1);
                sched.issue_order.push_back(u);
                --remaining;
                for (uint32_t e : graph.succEdges()[u])
                    --unscheduled_preds[graph.edges()[e].succ];
            }
        }
        state = fsa_.advanceCycle(state);
    }

    stats.ops_scheduled += n;
    stats.total_schedule_length += uint64_t(sched.length);
    return sched;
}

std::vector<sched::BlockSchedule>
FsaListScheduler::scheduleProgram(const sched::Program &program,
                                  sched::SchedStats &stats)
{
    std::vector<sched::BlockSchedule> schedules;
    schedules.reserve(program.blocks.size());
    for (const auto &block : program.blocks) {
        // Fresh machine per block, like the RU-map scheduler.
        schedules.push_back(scheduleBlock(block, stats));
    }
    return schedules;
}

} // namespace mdes::fsa
