#include "exact/exact_scheduler.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <climits>

#include "support/trace.h"

namespace mdes::exact {

namespace {

/** Probe-propagation cap per search node: bounds the wouldFit() work a
 * single bound computation may spend sharpening earliest starts. */
constexpr int kProbeCap = 64;

int64_t
nowUs()
{
    using namespace std::chrono;
    return duration_cast<microseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

/** Split a check slot into (usage cycle, word index): the inverse of
 * slot = cycle * slot_words + word with word in [0, slot_words). */
void
decomposeSlot(int32_t slot, uint32_t words, int32_t &cycle, uint32_t &word)
{
    int32_t w = int32_t(words);
    int32_t c = slot >= 0 ? slot / w : -((-slot + w - 1) / w);
    cycle = c;
    word = uint32_t(slot - c * w);
}

/** a is a subset of b (per-word mask inclusion). */
bool
subsetOf(const std::vector<uint64_t> &a, const std::vector<uint64_t> &b)
{
    for (size_t i = 0; i < a.size(); ++i)
        if (a[i] & ~b[i])
            return false;
    return true;
}

} // namespace

ExactScheduler::ExactScheduler(const lmdes::LowMdes &low)
    : low_(low), checker_(low), list_(low)
{
    buildGroups();
}

void
ExactScheduler::buildGroups()
{
    const uint32_t words = low_.slotWords();
    const uint32_t num_res = low_.numResources();
    std::vector<int32_t> min_off(num_res, INT32_MAX);
    std::vector<int32_t> max_off(num_res, INT32_MIN);

    std::vector<uint32_t> used_trees;
    auto note_tree = [&](uint32_t t) {
        if (t == kInvalidId)
            return;
        if (std::find(used_trees.begin(), used_trees.end(), t)
            == used_trees.end())
            used_trees.push_back(t);
    };
    for (const auto &cls : low_.opClasses()) {
        note_tree(cls.tree);
        note_tree(cls.cascade_tree);
    }

    // Pass 1: intern every OR subtree's mandatory instance group and
    // record each resource's usage-offset spread.
    std::vector<uint64_t> key(words);
    for (uint32_t t : used_trees) {
        const auto &tree = low_.trees()[t];
        for (uint32_t s = 0; s < tree.num_or_trees; ++s) {
            const auto &sub =
                low_.orTrees()[low_.orRefs()[tree.first_or_ref + s]];
            std::fill(key.begin(), key.end(), 0);
            uint32_t mandatory = UINT32_MAX;
            for (uint32_t o = 0; o < sub.num_options; ++o) {
                const auto &opt =
                    low_.options()
                        [low_.optionRefs()[sub.first_option_ref + o]];
                uint32_t count = 0;
                for (uint32_t ci = 0; ci < opt.num_checks; ++ci) {
                    const auto &chk = low_.checks()[opt.first_check + ci];
                    int32_t cyc;
                    uint32_t word;
                    decomposeSlot(chk.slot, words, cyc, word);
                    key[word] |= chk.mask;
                    count += uint32_t(std::popcount(chk.mask));
                    for (uint64_t bits = chk.mask; bits;
                         bits &= bits - 1) {
                        uint32_t r = word * 64
                                     + uint32_t(std::countr_zero(bits));
                        if (r >= num_res)
                            continue;
                        min_off[r] = std::min(min_off[r], cyc);
                        max_off[r] = std::max(max_off[r], cyc);
                    }
                }
                mandatory = std::min(mandatory, count);
            }
            if (mandatory == 0 || mandatory == UINT32_MAX)
                continue;
            bool known = false;
            for (const auto &g : groups_)
                if (g.key == key) {
                    known = true;
                    break;
                }
            if (!known) {
                Group g;
                g.key = key;
                groups_.push_back(std::move(g));
            }
        }
    }

    for (auto &g : groups_) {
        int32_t lo = INT32_MAX, hi = INT32_MIN, size = 0;
        for (uint32_t w = 0; w < words; ++w) {
            for (uint64_t bits = g.key[w]; bits; bits &= bits - 1) {
                uint32_t r = w * 64 + uint32_t(std::countr_zero(bits));
                if (r >= num_res)
                    continue;
                ++size;
                lo = std::min(lo, min_off[r]);
                hi = std::max(hi, max_off[r]);
            }
        }
        g.size = size ? size : 1;
        g.width = lo <= hi ? hi - lo : 0;
    }

    // Pass 2: per-class demand against the interned groups.
    class_demand_.resize(low_.opClasses().size());
    for (size_t i = 0; i < low_.opClasses().size(); ++i) {
        const auto &cls = low_.opClasses()[i];
        auto &cd = class_demand_[i];
        cd.normal = treeDemand(cls.tree);
        if (cls.cascade_tree != kInvalidId) {
            cd.either = treeDemand(cls.cascade_tree);
            for (size_t g = 0; g < cd.either.size(); ++g)
                cd.either[g] = std::min(cd.either[g], cd.normal[g]);
        } else {
            cd.either = cd.normal;
        }
    }
}

std::vector<uint32_t>
ExactScheduler::treeDemand(uint32_t tree_id) const
{
    std::vector<uint32_t> demand(groups_.size(), 0);
    if (tree_id == kInvalidId)
        return demand;
    const uint32_t words = low_.slotWords();
    const auto &tree = low_.trees()[tree_id];
    std::vector<uint64_t> key(words);
    for (uint32_t s = 0; s < tree.num_or_trees; ++s) {
        const auto &sub =
            low_.orTrees()[low_.orRefs()[tree.first_or_ref + s]];
        std::fill(key.begin(), key.end(), 0);
        uint32_t mandatory = UINT32_MAX;
        for (uint32_t o = 0; o < sub.num_options; ++o) {
            const auto &opt =
                low_.options()[low_.optionRefs()[sub.first_option_ref + o]];
            uint32_t count = 0;
            for (uint32_t ci = 0; ci < opt.num_checks; ++ci) {
                const auto &chk = low_.checks()[opt.first_check + ci];
                int32_t cyc;
                uint32_t word;
                decomposeSlot(chk.slot, words, cyc, word);
                key[word] |= chk.mask;
                count += uint32_t(std::popcount(chk.mask));
            }
            mandatory = std::min(mandatory, count);
        }
        if (mandatory == 0 || mandatory == UINT32_MAX)
            continue;
        // A subtree's guaranteed usage also satisfies every group that
        // contains its instances, so charge all supersets: that is what
        // lets a cascade tree's demand line up with the normal tree's.
        for (size_t g = 0; g < groups_.size(); ++g)
            if (subsetOf(key, groups_[g].key))
                demand[g] += mandatory;
    }
    return demand;
}

int32_t
ExactScheduler::readyCycle(uint32_t u, int32_t &normal_ready) const
{
    normal_ready = 0;
    int32_t relaxed = 0;
    const auto &edges = graph_.edges();
    for (uint32_t ei : graph_.predEdges()[u]) {
        const auto &e = edges[ei];
        int32_t at = cycles_[e.pred];
        int32_t nr = at + e.min_dist;
        if (nr > normal_ready)
            normal_ready = nr;
        int32_t rr = e.cascade_relax ? at : nr;
        if (rr > relaxed)
            relaxed = rr;
    }
    return can_casc_[u] ? relaxed : normal_ready;
}

bool
ExactScheduler::wouldFitEither(uint32_t u, int32_t cycle)
{
    const auto &cls = low_.opClasses()[block_instr_class_[u]];
    ++result_->probes;
    if (checker_.wouldFit(cls.tree, cycle, ru_, &stats_->checks))
        return true;
    if (!can_casc_[u])
        return false;
    ++result_->probes;
    return checker_.wouldFit(cls.cascade_tree, cycle, ru_, &stats_->checks);
}

int32_t
ExactScheduler::computeBound(int32_t cycle)
{
    int32_t lb = cur_len_;
    const auto &edges = graph_.edges();
    const auto &pred_edges = graph_.predEdges();

    // Earliest-start forward pass (instruction index is a topological
    // order: dependence edges always point to a higher index).
    for (uint32_t u = 0; u < n_; ++u) {
        if (cycles_[u] >= 0) {
            est_[u] = cycles_[u];
            continue;
        }
        int32_t est = cycle;
        for (uint32_t ei : pred_edges[u]) {
            const auto &e = edges[ei];
            int32_t d =
                e.cascade_relax && can_casc_[u] ? 0 : e.min_dist;
            est = std::max(est, est_[e.pred] + d);
        }
        est_[u] = est;
        lb = std::max(lb, est + h_[u] + 1);
    }

    // Resource height: remaining mandatory demand vs. group capacity.
    for (size_t g = 0; g < groups_.size(); ++g) {
        uint64_t dem = rem_demand_[g];
        if (!dem)
            continue;
        const Group &grp = groups_[g];
        int32_t need =
            int32_t((dem + uint64_t(grp.size) - 1) / uint64_t(grp.size));
        lb = std::max(lb, cycle + need - grp.width);
    }
    if (lb >= best_len_)
        return lb;

    // wouldFit propagation: bump the critical op's earliest start while
    // the map proves it cannot issue there. Sound within this subtree
    // because the RU map only ever grows below this node.
    for (int probes_left = kProbeCap; probes_left > 0; --probes_left) {
        int32_t crit_bound = -1;
        uint32_t crit = n_;
        for (uint32_t u = 0; u < n_; ++u) {
            if (cycles_[u] >= 0)
                continue;
            int32_t b = est_[u] + h_[u] + 1;
            if (b > crit_bound) {
                crit_bound = b;
                crit = u;
            }
        }
        if (crit == n_)
            break;
        if (crit_bound >= best_len_)
            return crit_bound;
        if (wouldFitEither(crit, est_[crit]))
            break;
        ++est_[crit];
        lb = std::max(lb, est_[crit] + h_[crit] + 1);
    }
    return lb;
}

void
ExactScheduler::place(uint32_t u, int32_t cycle, bool cascade)
{
    cycles_[u] = cycle;
    casc_[u] = cascade;
    order_.push_back(u);
    ++placed_;
    cur_len_ = std::max(cur_len_, cycle + 1);
    const auto &edges = graph_.edges();
    for (uint32_t ei : graph_.succEdges()[u])
        --pending_preds_[edges[ei].succ];
    const auto &dem = *op_demand_[u];
    for (size_t g = 0; g < dem.size(); ++g)
        rem_demand_[g] -= dem[g];
}

void
ExactScheduler::unplace(uint32_t u, int32_t restore_len,
                        const std::vector<rumap::Reservation> &reserved)
{
    for (const auto &r : reserved)
        ru_.releaseSlot(r.cycle, r.mask);
    const auto &dem = *op_demand_[u];
    for (size_t g = 0; g < dem.size(); ++g)
        rem_demand_[g] += dem[g];
    const auto &edges = graph_.edges();
    for (uint32_t ei : graph_.succEdges()[u])
        ++pending_preds_[edges[ei].succ];
    --placed_;
    order_.pop_back();
    casc_[u] = 0;
    cycles_[u] = -1;
    cur_len_ = restore_len;
}

bool
ExactScheduler::dfs(int32_t cycle, uint32_t floor)
{
    ExactResult &res = *result_;
    ++res.nodes;
    if (node_limit_ && res.nodes > node_limit_) {
        res.budget_exhausted = true;
        return false;
    }
    if ((res.nodes & 1023u) == 0) {
        if (cancel_ && cancel_->cancelled()) {
            res.cancelled = true;
            return false;
        }
        if (deadline_us_ && nowUs() > deadline_us_) {
            res.budget_exhausted = true;
            return false;
        }
    }

    if (placed_ == n_) {
        // Complete - and strictly better than the incumbent: every
        // placement on this path passed the futility check.
        best_len_ = cur_len_;
        best_cycles_ = cycles_;
        best_casc_ = casc_;
        best_order_ = order_;
        have_best_ = true;
        if (best_len_ <= root_lb_)
            done_ = true;
        return !done_;
    }

    int32_t lb = computeBound(cycle);
    if (lb >= best_len_) {
        ++res.bound_prunes;
        return true;
    }

    int32_t next_cycle = INT32_MAX;
    for (uint32_t u = 0; u < n_; ++u) {
        if (cycles_[u] >= 0 || pending_preds_[u] > 0)
            continue;
        int32_t normal_ready = 0;
        int32_t ready_at = readyCycle(u, normal_ready);
        next_cycle = std::min(next_cycle, std::max(ready_at, cycle + 1));
        if (ready_at > cycle)
            continue;
        if (u < floor) {
            // A lower-indexed ready op was deliberately skipped earlier
            // in this cycle; placing it now would permute an already
            // enumerated issue set.
            ++res.dominance_prunes;
            continue;
        }
        if (cycle + h_[u] + 1 >= best_len_) {
            ++res.bound_prunes;
            continue;
        }
        bool cascade = can_casc_[u] && cycle < normal_ready;
        const auto &cls = low_.opClasses()[block_instr_class_[u]];
        uint32_t tree = cascade ? cls.cascade_tree : cls.tree;
        auto &reserved = reserved_pool_[placed_];
        reserved.clear();
        if (!checker_.tryReserve(tree, cycle, ru_, stats_->checks, nullptr,
                                 &reserved))
            continue;
        int32_t prev_len = cur_len_;
        place(u, cycle, cascade);
        bool keep_going = dfs(cycle, u + 1);
        unplace(u, prev_len, reserved);
        if (!keep_going)
            return false;
    }

    if (placed_ == 0)
        return true; // a fresh RU map is translation-invariant: the
                     // first issue can be pinned to cycle 0
    if (next_cycle == INT32_MAX)
        return true;
    return dfs(next_cycle, 0);
}

ExactResult
ExactScheduler::scheduleBlock(const sched::Block &block,
                              sched::SchedStats &stats,
                              const ExactOptions &opts)
{
    TRACE_SPAN_F(span, "exact/search");
    ExactResult res;
    n_ = uint32_t(block.instrs.size());
    if (n_ == 0) {
        res.proven_optimal = true;
        return res;
    }

    sched::BlockSchedule seed;
    const sched::BlockSchedule *incumbent = opts.incumbent;
    if (!incumbent || incumbent->cycles.size() != n_) {
        sched::SchedStats seed_stats;
        seed = list_.scheduleBlock(block, seed_stats);
        stats.checks.merge(seed_stats.checks);
        stats.attempts_per_op.merge(seed_stats.attempts_per_op);
        incumbent = &seed;
    }

    graph_.rebuild(block, low_);
    const auto &edges = graph_.edges();

    block_instr_class_.resize(n_);
    can_casc_.assign(n_, 0);
    for (uint32_t u = 0; u < n_; ++u) {
        const auto &in = block.instrs[u];
        block_instr_class_[u] = in.op_class;
        const auto &cls = low_.opClasses()[in.op_class];
        can_casc_[u] =
            in.cascadable && cls.cascade_tree != kInvalidId ? 1 : 0;
    }

    h_.assign(n_, 0);
    for (uint32_t u = n_; u-- > 0;) {
        for (uint32_t ei : graph_.succEdges()[u]) {
            const auto &e = edges[ei];
            int32_t d =
                e.cascade_relax && can_casc_[e.succ] ? 0 : e.min_dist;
            h_[u] = std::max(h_[u], d + h_[e.succ]);
        }
    }

    cycles_.assign(n_, -1);
    casc_.assign(n_, 0);
    est_.assign(n_, 0);
    pending_preds_.assign(n_, 0);
    for (uint32_t u = 0; u < n_; ++u)
        pending_preds_[u] = uint32_t(graph_.predEdges()[u].size());

    op_demand_.resize(n_);
    rem_demand_.assign(groups_.size(), 0);
    for (uint32_t u = 0; u < n_; ++u) {
        const ClassDemand &cd = class_demand_[block_instr_class_[u]];
        op_demand_[u] = can_casc_[u] ? &cd.either : &cd.normal;
        for (size_t g = 0; g < rem_demand_.size(); ++g)
            rem_demand_[g] += (*op_demand_[u])[g];
    }

    order_.clear();
    order_.reserve(n_);
    reserved_pool_.resize(n_);
    ru_.clear();
    cur_len_ = 0;
    placed_ = 0;
    have_best_ = false;
    done_ = false;
    result_ = &res;
    stats_ = &stats;
    best_len_ = incumbent->length;

    root_lb_ = std::max(computeBound(0), 1);
    res.lower_bound = root_lb_;

    bool completed = true;
    if (incumbent->length > root_lb_) {
        node_limit_ = opts.max_nodes;
        deadline_us_ =
            opts.time_budget_us > 0 ? nowUs() + opts.time_budget_us : 0;
        cancel_ = &opts.cancel;
        completed = dfs(0, 0);
        cancel_ = nullptr;
    }

    bool proven = completed || done_;
    if (have_best_) {
        res.schedule.cycles = best_cycles_;
        res.schedule.used_cascade = best_casc_;
        res.schedule.length = best_len_;
        res.schedule.issue_order = best_order_;
        res.improved = best_len_ < incumbent->length;
    } else {
        res.schedule = *incumbent;
    }
    res.proven_optimal = proven;
    res.lower_bound = proven ? res.schedule.length : root_lb_;

    stats.ops_scheduled += n_;
    stats.total_schedule_length += uint64_t(res.schedule.length);

    if (span.active()) {
        span.counter("ops", n_);
        span.counter("nodes", res.nodes);
        span.counter("bound_prunes", res.bound_prunes);
        span.counter("dominance_prunes", res.dominance_prunes);
        span.counter("probes", res.probes);
        span.counter("length", uint64_t(res.schedule.length));
        span.counter("lower_bound", uint64_t(res.lower_bound));
        span.counter("proven", res.proven_optimal ? 1 : 0);
    }
    result_ = nullptr;
    stats_ = nullptr;
    return res;
}

} // namespace mdes::exact
