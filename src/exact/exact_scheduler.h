#ifndef MDES_EXACT_EXACT_SCHEDULER_H
#define MDES_EXACT_EXACT_SCHEDULER_H

/**
 * @file
 * Branch-and-bound optimal block scheduling over the MDES constraints.
 *
 * The search enumerates *canonical* schedules: issue decisions are made
 * cycle by cycle, and within a cycle in ascending instruction index.
 * Because dependence edges always point from a lower to a higher source
 * index and have non-negative distances, every feasible set of issue
 * cycles has a canonical realization, so restricting the search to the
 * canonical order prunes all permutations of the same cycle assignment
 * (the dominance pruning on symmetric issue orders) without losing
 * optimality. "Feasible" means the greedy checker replay in canonical
 * (cycle, index) order succeeds - the same constraint model used by
 * schedule validation and by the brute-force test reference; for
 * machines whose AND subtrees are resource-disjoint (all four shipped
 * machines) the greedy replay model is exact.
 *
 * Pruning combines three lower bounds, all derived from the machine
 * description rather than hard-coded machine knowledge:
 *
 *  - critical path: the longest remaining dependence chain below any
 *    unplaced operation (cascade-relaxable edges count as zero);
 *  - earliest start: a forward pass propagating placed issue cycles
 *    through the remaining dependences;
 *  - resource height: for every *mandatory resource group* - the union
 *    of instances that every option of some OR subtree must take one
 *    of - the remaining demand divided by the group's per-cycle
 *    capacity, corrected by the group's usage-offset spread.
 *
 * The earliest-start estimate is sharpened with the checker's pure
 * wouldFit() probe: within one search subtree the RU map only grows, so
 * an operation that does not fit at cycle c now can never fit at c
 * deeper in the subtree, making probe-based es-bumping a sound monotone
 * propagator.
 *
 * The search is seeded with the list scheduler's result as the
 * incumbent and runs under a node and wall-time budget with cooperative
 * cancellation, so callers (the service's exact and portfolio modes)
 * always get the best schedule found so far - never worse than the list
 * scheduler - plus a proven lower bound for the optimality gap.
 */

#include <cstdint>
#include <functional>
#include <vector>

#include "lmdes/low_mdes.h"
#include "rumap/checker.h"
#include "sched/dep_graph.h"
#include "sched/ir.h"
#include "sched/list_scheduler.h"

namespace mdes::exact {

/**
 * Cooperative cancellation handle, polled in the search loop the same
 * way the transform passes poll between passes. Default-constructed
 * tokens never cancel.
 */
class CancelToken
{
  public:
    CancelToken() = default;
    explicit CancelToken(std::function<bool()> poll) : poll_(std::move(poll))
    {
    }

    bool cancelled() const { return poll_ && poll_(); }

  private:
    std::function<bool()> poll_;
};

/** Search limits and seeding for one block. */
struct ExactOptions
{
    /** Search-node budget; 0 = unbounded. */
    uint64_t max_nodes = 1u << 20;
    /** Wall-time budget per block in microseconds; 0 = unbounded. */
    int64_t time_budget_us = 50000;
    /** Polled every kPollStride nodes; a cancelled search returns the
     * incumbent with ExactResult::cancelled set. */
    CancelToken cancel;
    /** Optional incumbent (normally the list schedule). When null the
     * scheduler runs its own list-scheduler seed pass. */
    const sched::BlockSchedule *incumbent = nullptr;
};

/** Outcome of one exact-scheduling attempt. */
struct ExactResult
{
    /** Best schedule found: the search's best canonical schedule, or
     * the (list) incumbent when the search could not improve on it. */
    sched::BlockSchedule schedule;
    /** The returned length is proven minimal (search exhausted, or the
     * incumbent already met the proven lower bound). */
    bool proven_optimal = false;
    /** The search found a schedule strictly shorter than the incumbent. */
    bool improved = false;
    /** Proven lower bound on the block's schedule length: the root
     * static bound, or the optimum itself when the search completed. */
    int32_t lower_bound = 0;

    /** Search nodes expanded. */
    uint64_t nodes = 0;
    /** Subtrees cut by the lower bounds (futile placements included). */
    uint64_t bound_prunes = 0;
    /** Ready candidates skipped by the canonical-order dominance rule. */
    uint64_t dominance_prunes = 0;
    /** Pure wouldFit() propagation probes issued. */
    uint64_t probes = 0;

    /** Node or time budget ran out before the search space was
     * exhausted (the result may still be proven via the root bound). */
    bool budget_exhausted = false;
    /** The cancel token fired mid-search. */
    bool cancelled = false;

    /** Length - lower_bound, the reportable optimality gap. */
    int32_t
    gap() const
    {
        return schedule.length - lower_bound;
    }
};

/** Branch-and-bound exact scheduler for one machine description. */
class ExactScheduler
{
  public:
    explicit ExactScheduler(const lmdes::LowMdes &low);

    /**
     * Find a minimum-length schedule for @p block under the budgets in
     * @p opts. @p stats accumulates every probe the seed pass and the
     * search make (CheckStats), while ops_scheduled and
     * total_schedule_length reflect only the returned schedule, so the
     * stats describe the delivered result plus the work spent on it.
     */
    ExactResult scheduleBlock(const sched::Block &block,
                              sched::SchedStats &stats,
                              const ExactOptions &opts = {});

  private:
    /** One mandatory resource group (see file comment). */
    struct Group
    {
        /** Instance-set key, one word per RU-map slot word. */
        std::vector<uint64_t> key;
        /** Instances in the group (per-cycle capacity). */
        int32_t size = 0;
        /** Usage-offset spread (max offset - min offset) across the
         * group's instances, widening the cycle window demand may
         * occupy. */
        int32_t width = 0;
    };

    /** Per-op-class demand vectors against the machine's groups. */
    struct ClassDemand
    {
        /** Demand via the normal tree, indexed by group. */
        std::vector<uint32_t> normal;
        /** Guaranteed demand whichever of normal/cascade tree is used
         * (elementwise min); equals normal when there is no cascade
         * tree. */
        std::vector<uint32_t> either;
    };

    void buildGroups();
    std::vector<uint32_t> treeDemand(uint32_t tree) const;

    bool dfs(int32_t cycle, uint32_t floor);
    int32_t computeBound(int32_t cycle);
    bool wouldFitEither(uint32_t u, int32_t cycle);
    void place(uint32_t u, int32_t cycle, bool cascade);
    void unplace(uint32_t u, int32_t restore_len,
                 const std::vector<rumap::Reservation> &reserved);
    int32_t readyCycle(uint32_t u, int32_t &normal_ready) const;

    const lmdes::LowMdes &low_;
    rumap::Checker checker_;
    sched::ListScheduler list_;

    // Machine-level precompute (constructor).
    std::vector<Group> groups_;
    std::vector<ClassDemand> class_demand_;

    // Per-block state.
    sched::DepGraph graph_;
    rumap::RuMap ru_;
    uint32_t n_ = 0;
    std::vector<int32_t> h_;       ///< height-to-sink by relaxed dist
    std::vector<int32_t> est_;     ///< earliest-start scratch
    std::vector<int32_t> cycles_;  ///< issue cycle, -1 = unplaced
    std::vector<uint8_t> casc_;    ///< placed with cascade tree
    std::vector<uint8_t> can_casc_;
    std::vector<uint32_t> block_instr_class_;
    std::vector<uint32_t> pending_preds_;
    std::vector<uint32_t> order_;  ///< placement stack (canonical order)
    std::vector<uint64_t> rem_demand_;  ///< per group
    std::vector<const std::vector<uint32_t> *> op_demand_;
    std::vector<std::vector<rumap::Reservation>> reserved_pool_;
    int32_t cur_len_ = 0;
    uint32_t placed_ = 0;

    // Incumbent / budget state for the current search.
    int32_t best_len_ = 0;
    int32_t root_lb_ = 0;
    std::vector<int32_t> best_cycles_;
    std::vector<uint8_t> best_casc_;
    std::vector<uint32_t> best_order_;
    bool have_best_ = false;  ///< the search itself recorded a schedule
    bool done_ = false;       ///< best_len_ hit the root bound: stop
    uint64_t node_limit_ = 0;
    int64_t deadline_us_ = 0;  ///< monotonic deadline, 0 = none
    const CancelToken *cancel_ = nullptr;
    ExactResult *result_ = nullptr;
    sched::SchedStats *stats_ = nullptr;
};

} // namespace mdes::exact

#endif // MDES_EXACT_EXACT_SCHEDULER_H
