#include "net/crash_chaos.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <optional>
#include <random>
#include <sstream>
#include <thread>

#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "service/request_parse.h"
#include "service/stats.h"
#include "support/diagnostics.h"
#include "support/flightrec.h"
#include "support/io_retry.h"
#include "support/json.h"

namespace mdes::net {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;
using service::ErrorCode;
using service::ScheduleRequest;
using service::StatSnapshot;

namespace {

constexpr const char *kHost = "127.0.0.1";
/** Bounded transport retries per request (each spaced ~100 ms, so a
 * request survives a full backoff-length outage). */
constexpr unsigned kRequestRetries = 30;

uint64_t
msSince(Clock::time_point t0)
{
    return uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                        Clock::now() - t0)
                        .count());
}

void
sleepMs(uint64_t ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/** Same distinct-transform-bits mix as the faultsim chaos sweep:
 * distinct artifact keys per request, identical schedule fingerprints
 * demanded from every pattern. */
std::vector<ScheduleRequest>
requestMix(const CrashChaosConfig &config)
{
    std::vector<ScheduleRequest> mix;
    mix.reserve(config.requests);
    for (unsigned i = 0; i < config.requests; ++i) {
        ScheduleRequest req;
        req.machine = config.machine;
        req.synth_ops = config.synth_ops;
        PipelineConfig t;
        t.cse = i & 1;
        t.redundant_options = i & 2;
        t.time_shift = i & 4;
        t.sort_usages = i & 8;
        t.hoist = i & 16;
        t.sort_or_trees = i & 32;
        req.transforms = t;
        req.bit_vector = true;
        mix.push_back(std::move(req));
    }
    return mix;
}

/**
 * One fleet-under-test: `runServe` in a forked child (the supervisor
 * becomes that child), bound port reported back over a pipe. The
 * destructor SIGKILLs and reaps whatever is still running, so a
 * violated seed never leaks a fleet into the next one.
 */
class FleetProc
{
  public:
    FleetProc() = default;
    ~FleetProc() { kill9(); }
    FleetProc(const FleetProc &) = delete;
    FleetProc &operator=(const FleetProc &) = delete;

    pid_t pid = -1;
    uint16_t port = 0;

    void
    kill9()
    {
        if (pid <= 0)
            return;
        ::kill(pid, SIGKILL);
        int status = 0;
        waitpid(pid, &status, 0);
        pid = -1;
    }

    /** Reap within @p timeout_ms; false (child untouched) on timeout. */
    bool
    waitExit(uint64_t timeout_ms, int *status)
    {
        if (pid <= 0)
            return false;
        auto t0 = Clock::now();
        for (;;) {
            pid_t r = waitpid(pid, status, WNOHANG);
            if (r == pid) {
                pid = -1;
                return true;
            }
            if (r < 0 && errno != EINTR) {
                pid = -1;
                return false;
            }
            if (msSince(t0) >= timeout_ms)
                return false;
            sleepMs(20);
        }
    }
};

/**
 * Fork a sharded fleet. The child calls runServe() with port 0 and
 * writes the bound port to a pipe (ServeOptions::port_notify_fd); the
 * parent blocks on that pipe so a fleet that fails to bind is a typed
 * launch failure, not a hang.
 */
bool
launchFleet(const CrashChaosConfig &config, const std::string &store_dir,
            const std::string &flight_dir, uint32_t quarantine_after,
            uint64_t backoff_base_ms, FleetProc *out, std::string *err)
{
    int pfd[2];
    if (pipe(pfd) != 0) {
        *err = std::string("pipe: ") + strerror(errno);
        return false;
    }
    pid_t pid = fork();
    if (pid < 0) {
        ::close(pfd[0]);
        ::close(pfd[1]);
        *err = std::string("fork: ") + strerror(errno);
        return false;
    }
    if (pid == 0) {
        ::close(pfd[0]);
        ServeOptions opts;
        opts.server.host = kHost;
        opts.server.port = 0;
        opts.server.service.num_workers = config.workers;
        opts.server.service.cache_capacity = config.requests + 4;
        opts.server.service.store_dir = store_dir;
        opts.shards = config.shards;
        opts.flightrec_dir = flight_dir;
        opts.drain_deadline_ms = config.drain_deadline_ms;
        opts.restart_backoff_base_ms = backoff_base_ms;
        opts.restart_backoff_max_ms = backoff_base_ms * 8;
        opts.quarantine_after = quarantine_after;
        opts.heartbeat_interval_ms = config.heartbeat_interval_ms;
        opts.heartbeat_timeout_ms = config.heartbeat_timeout_ms;
        opts.port_notify_fd = pfd[1];
        int code = 1;
        try {
            code = runServe(opts);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "crash-chaos fleet: %s\n", e.what());
        }
        _exit(code);
    }
    ::close(pfd[1]);
    // The port arrives once the listen socket is bound; 15 s covers
    // the slowest CI machine.
    pollfd pw{pfd[0], POLLIN, 0};
    int pr = ::poll(&pw, 1, 15000);
    unsigned char b[2];
    ssize_t n = pr > 0 ? io::readRetry(pfd[0], b, sizeof(b)) : 0;
    ::close(pfd[0]);
    if (n != 2) {
        *err = "fleet failed to report a bound port";
        ::kill(pid, SIGKILL);
        int status = 0;
        waitpid(pid, &status, 0);
        return false;
    }
    out->pid = pid;
    out->port = uint16_t(b[0]) | uint16_t(b[1]) << 8;
    return true;
}

/** One stats poll (fresh connection; the parent closes after
 * answering). Empty on transport failure or malformed document. */
std::optional<StatSnapshot>
pollStats(uint16_t port)
{
    BlockingClient client(kHost, port);
    if (!client.connected())
        return std::nullopt;
    std::string doc = client.stats();
    if (doc.empty())
        return std::nullopt;
    try {
        return service::parseStats(doc);
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

const StatSnapshot::ShardRow *
findShard(const StatSnapshot &snap, uint64_t shard)
{
    for (const auto &row : snap.per_shard)
        if (row.shard == shard)
            return &row;
    return nullptr;
}

/** Poll until @p pred holds; returns the satisfying snapshot. */
std::optional<StatSnapshot>
waitSnap(uint16_t port, uint64_t timeout_ms,
         const std::function<bool(const StatSnapshot &)> &pred)
{
    auto t0 = Clock::now();
    for (;;) {
        if (auto snap = pollStats(port))
            if (pred(*snap))
                return snap;
        if (msSince(t0) >= timeout_ms)
            return std::nullopt;
        sleepMs(100);
    }
}

bool
allLive(const StatSnapshot &snap, unsigned shards)
{
    if (snap.per_shard.size() != shards)
        return false;
    for (const auto &row : snap.per_shard)
        if (row.state != "live" || row.pid <= 0)
            return false;
    return true;
}

/**
 * Push one request through the fleet with bounded retries. Returns
 * false (appending a violation) when the request never got a typed Ok.
 * @p expected_fp == 0 records the fingerprint into @p fp_out instead of
 * checking it (the seed's own fault-free first pass is the baseline).
 */
bool
sendOne(uint16_t port, const ScheduleRequest &req, uint64_t expected_fp,
        uint64_t *fp_out, const std::string &phase,
        std::vector<std::string> *violations)
{
    std::string line = service::renderRequestLine(req);
    uint64_t route = routeKey(req);
    NetResponse resp;
    bool answered = false;
    for (unsigned attempt = 0; attempt < kRequestRetries; ++attempt) {
        BlockingClient client(kHost, port);
        if (client.connected()) {
            resp = client.request(line, 0, route);
            if (resp.transport_ok &&
                resp.code != ErrorCode::Overloaded) {
                answered = true;
                break;
            }
        }
        sleepMs(100);
    }
    if (!answered || resp.code != ErrorCode::Ok) {
        violations->push_back(
            phase + ": request '" + line + "' never completed Ok (" +
            (answered ? "code " + std::to_string(int(resp.code))
                      : "transport retries exhausted") +
            ")");
        return false;
    }
    if (expected_fp != 0 && resp.fingerprint != expected_fp) {
        violations->push_back(
            phase + ": fingerprint mismatch for '" + line + "' (got " +
            std::to_string(resp.fingerprint) + ", baseline " +
            std::to_string(expected_fp) + ")");
        return false;
    }
    if (fp_out)
        *fp_out = resp.fingerprint;
    return true;
}

/** The whole mix, sequentially, against @p baseline (filled when its
 * entries are zero). */
void
runMixPass(uint16_t port, const std::vector<ScheduleRequest> &mix,
           std::vector<uint64_t> *baseline, const std::string &phase,
           std::vector<std::string> *violations)
{
    for (size_t i = 0; i < mix.size(); ++i)
        sendOne(port, mix[i], (*baseline)[i], &(*baseline)[i], phase,
                violations);
}

/** Fleet health over the wire (binary Health frame); "" on failure. */
std::string
fleetHealth(uint16_t port)
{
    BlockingClient client(kHost, port);
    if (!client.connected())
        return "";
    return client.health();
}

std::string
healthField(const std::string &doc)
{
    try {
        JsonValue v = parseJson(doc);
        if (const JsonValue *h = v.find("health"))
            return h->string;
    } catch (const std::exception &) {
    }
    return "";
}

/** Post-drain store scan: quarantined or orphaned files are residue
 * the supervision plane promised to clean up. */
void
checkStoreClean(const std::string &store_dir,
                std::vector<std::string> *violations)
{
    uint64_t artifacts = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(store_dir, ec)) {
        const std::string name = de.path().filename().string();
        if (name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".bad") == 0)
            violations->push_back("store: quarantined artifact '" +
                                  name + "' after drain");
        else if (name.rfind(".tmp-", 0) == 0)
            violations->push_back("store: orphaned publish temp '" +
                                  name + "' after drain");
        else if (name.size() > 6 &&
                 name.compare(name.size() - 6, 6, ".lmdes") == 0)
            ++artifacts;
    }
    if (ec)
        violations->push_back("store: cannot scan '" + store_dir +
                              "': " + ec.message());
    else if (artifacts == 0)
        violations->push_back(
            "store: no artifact survived the run (nothing persisted?)");
}

/** Every seed that SIGSEGVed a shard must find at least one decodable
 * ".mdcr" capture in the crash directory. */
uint64_t
checkCrashCaptures(const std::string &crash_dir, bool expect_some,
                   std::vector<std::string> *violations)
{
    uint64_t decodable = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(crash_dir, ec)) {
        const std::string path = de.path().string();
        if (path.size() < 5 ||
            path.compare(path.size() - 5, 5, ".mdcr") != 0)
            continue;
        try {
            flightrec::CrashInfo info;
            std::string json = flightrec::decodeCrashCapture(path, &info);
            if (!json.empty() && info.signo != 0)
                ++decodable;
            else
                violations->push_back("crash capture '" + path +
                                      "' decoded empty");
        } catch (const std::exception &e) {
            violations->push_back("crash capture '" + path +
                                  "' undecodable: " + e.what());
        }
    }
    if (expect_some && decodable == 0)
        violations->push_back(
            "SIGSEGV was delivered but no decodable .mdcr capture "
            "exists in " +
            crash_dir);
    return decodable;
}

/**
 * The drain invariant: K raw connections each write one complete
 * request, then the supervisor gets SIGTERM, then every connection
 * must still read a typed response — Ok (accepted before the flip) or
 * Draining (shed after it), never a bare EOF.
 */
void
checkDrain(FleetProc &fleet, const ScheduleRequest &req,
           uint64_t drain_deadline_ms,
           std::vector<std::string> *violations)
{
    constexpr unsigned kConns = 4;
    std::string line = service::renderRequestLine(req);
    struct Pending
    {
        int fd = -1;
        uint64_t id = 0;
    };
    std::vector<Pending> pending;
    for (unsigned k = 0; k < kConns; ++k) {
        int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0)
            continue;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(fleet.port);
        inet_pton(AF_INET, kHost, &addr.sin_addr);
        if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr)) != 0) {
            ::close(fd);
            continue;
        }
        Frame f;
        f.type = FrameType::Request;
        f.id = k + 1;
        f.route = routeKey(req);
        f.payload = line;
        std::string wire = encodeFrame(f);
        size_t off = 0;
        bool sent = true;
        while (off < wire.size()) {
            ssize_t n = io::sendRetry(fd, wire.data() + off,
                                      wire.size() - off);
            if (n <= 0) {
                sent = false;
                break;
            }
            off += size_t(n);
        }
        if (!sent) {
            ::close(fd);
            continue;
        }
        pending.push_back({fd, f.id});
    }
    if (pending.empty()) {
        violations->push_back("drain: no connection could be opened");
        return;
    }

    ::kill(fleet.pid, SIGTERM);

    // Every fully-written request must be answered before the close.
    const uint64_t read_budget_ms = drain_deadline_ms + 10000;
    for (const Pending &p : pending) {
        FrameDecoder decoder;
        char buf[16384];
        auto t0 = Clock::now();
        bool answered = false;
        while (!answered) {
            Frame frame;
            FrameDecoder::Status st = decoder.next(&frame);
            if (st == FrameDecoder::Status::Error)
                break;
            if (st == FrameDecoder::Status::Ready) {
                if (frame.type != FrameType::Response ||
                    frame.id != p.id)
                    continue;
                try {
                    NetResponse r = parseResponseJson(frame.payload);
                    if (r.code != ErrorCode::Ok &&
                        r.code != ErrorCode::Draining)
                        violations->push_back(
                            "drain: request answered with unexpected "
                            "code " +
                            std::to_string(int(r.code)));
                } catch (const std::exception &) {
                    violations->push_back(
                        "drain: unparseable response payload");
                }
                answered = true;
                break;
            }
            uint64_t left =
                msSince(t0) >= read_budget_ms
                    ? 0
                    : read_budget_ms - msSince(t0);
            if (left == 0)
                break;
            pollfd pw{p.fd, POLLIN, 0};
            if (::poll(&pw, 1, int(left)) <= 0)
                break;
            ssize_t n = io::readRetry(p.fd, buf, sizeof(buf));
            if (n <= 0)
                break;
            decoder.feed(buf, size_t(n));
        }
        if (!answered)
            violations->push_back(
                "drain: a request written before SIGTERM got no "
                "response (lost in drain)");
        ::close(p.fd);
    }

    int status = 0;
    if (!fleet.waitExit(drain_deadline_ms + 15000, &status)) {
        violations->push_back(
            "drain: supervisor still running past the deadline");
        fleet.kill9();
    } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::ostringstream what;
        if (WIFSIGNALED(status))
            what << "killed by signal " << WTERMSIG(status);
        else
            what << "exit code " << WEXITSTATUS(status);
        violations->push_back("drain: supervisor exited unclean (" +
                              what.str() + ")");
    }
}

CrashSeedResult
runSeed(const CrashChaosConfig &config, uint64_t seed,
        const std::string &seed_dir)
{
    CrashSeedResult result;
    result.seed = seed;
    const std::string store_dir = seed_dir + "/store";
    const std::string flight_dir = seed_dir + "/flight";
    fs::create_directories(store_dir);

    FleetProc fleet;
    std::string err;
    if (!launchFleet(config, store_dir, flight_dir,
                     /*quarantine_after=*/10, config.backoff_base_ms,
                     &fleet, &err)) {
        result.violations.push_back("launch: " + err);
        return result;
    }

    std::vector<ScheduleRequest> mix = requestMix(config);
    std::vector<uint64_t> baseline(mix.size(), 0);
    std::mt19937_64 rng(seed);

    // Fault-free first pass: warms the store and records the
    // fingerprint baseline every later pass is checked against.
    runMixPass(fleet.port, mix, &baseline, "baseline",
               &result.violations);
    if (!result.violations.empty())
        return result;
    if (healthField(fleetHealth(fleet.port)) != "ready")
        result.violations.push_back(
            "health: fleet not 'ready' before faults");

    for (unsigned round = 0; round < config.kill_rounds; ++round) {
        const std::string phase = "round " + std::to_string(round);
        auto stable = waitSnap(fleet.port, 20000,
                               [&](const StatSnapshot &s) {
                                   return allLive(s, config.shards);
                               });
        if (!stable) {
            result.violations.push_back(
                phase + ": fleet never stabilized (all shards live)");
            return result;
        }
        const auto &rows = stable->per_shard;
        const auto &victim = rows[rng() % rows.size()];
        int sig = (rng() & 1) ? SIGSEGV : SIGKILL;
        if (sig == SIGSEGV)
            ++result.segvs;
        else
            ++result.kills;
        result.injected.push_back(
            std::string(sig == SIGSEGV ? "SIGSEGV" : "SIGKILL") +
            " shard " + std::to_string(victim.shard) + " pid " +
            std::to_string(victim.pid));
        auto t0 = Clock::now();
        ::kill(pid_t(victim.pid), sig);

        // Outage window: the fleet must answer while the slot is down,
        // and the respawn must not beat the backoff.
        uint64_t shard = victim.shard;
        int64_t old_pid = victim.pid;
        bool respawned = false;
        size_t probe = 0;
        while (msSince(t0) < 20000) {
            if (auto s = pollStats(fleet.port)) {
                const auto *row = findShard(*s, shard);
                if (row && row->pid > 0 && row->pid != old_pid &&
                    row->state == "live") {
                    respawned = true;
                    break;
                }
            }
            // One serving probe per poll tick: the outage must be
            // invisible to clients (live shards absorb the traffic).
            size_t i = probe++ % mix.size();
            sendOne(fleet.port, mix[i], baseline[i], nullptr,
                    phase + " (during outage)", &result.violations);
        }
        uint64_t elapsed = msSince(t0);
        if (!respawned) {
            result.violations.push_back(
                phase + ": shard " + std::to_string(shard) +
                " never respawned");
            return result;
        }
        if (elapsed + 5 < config.backoff_base_ms)
            result.violations.push_back(
                phase + ": shard " + std::to_string(shard) +
                " respawned after " + std::to_string(elapsed) +
                " ms, before the " +
                std::to_string(config.backoff_base_ms) +
                " ms base backoff");
        runMixPass(fleet.port, mix, &baseline, phase + " (recovered)",
                   &result.violations);
    }

    // Wedge: SIGSTOP a shard; the watchdog must count it wedged,
    // SIGKILL it, and respawn the slot — all while serving continues.
    {
        auto stable = waitSnap(fleet.port, 20000,
                               [&](const StatSnapshot &s) {
                                   return allLive(s, config.shards);
                               });
        if (!stable) {
            result.violations.push_back(
                "wedge: fleet never stabilized before SIGSTOP");
            return result;
        }
        const auto &rows = stable->per_shard;
        const auto &victim = rows[rng() % rows.size()];
        uint64_t shard = victim.shard;
        int64_t old_pid = victim.pid;
        uint64_t wedged_before = stable->supervision.wedged_shards;
        ++result.stops;
        result.injected.push_back("SIGSTOP shard " +
                                  std::to_string(shard) + " pid " +
                                  std::to_string(old_pid));
        ::kill(pid_t(old_pid), SIGSTOP);
        auto wedged = waitSnap(
            fleet.port, config.heartbeat_timeout_ms + 15000,
            [&](const StatSnapshot &s) {
                return s.supervision.wedged_shards > wedged_before;
            });
        if (!wedged) {
            result.violations.push_back(
                "wedge: watchdog never counted the stopped shard");
            ::kill(pid_t(old_pid), SIGCONT); // unwedge for teardown
            return result;
        }
        auto back = waitSnap(fleet.port, 20000,
                             [&](const StatSnapshot &s) {
                                 const auto *row = findShard(s, shard);
                                 return row && row->pid > 0 &&
                                        row->pid != old_pid &&
                                        row->state == "live";
                             });
        if (!back) {
            result.violations.push_back(
                "wedge: shard " + std::to_string(shard) +
                " never respawned after the watchdog kill");
            return result;
        }
        runMixPass(fleet.port, mix, &baseline, "wedge (recovered)",
                   &result.violations);
    }

    // Counter accounting, read before the drain tears the fleet down.
    if (auto snap = pollStats(fleet.port)) {
        const auto &sup = snap->supervision;
        result.restarts_observed = sup.restarts;
        result.crashes_observed = sup.crashes;
        result.wedged_observed = sup.wedged_shards;
        uint64_t injected_crashes = result.kills + result.segvs;
        if (sup.crashes < injected_crashes)
            result.violations.push_back(
                "counters: crashes=" + std::to_string(sup.crashes) +
                " < injected " + std::to_string(injected_crashes));
        if (sup.wedged_shards < result.stops)
            result.violations.push_back(
                "counters: wedged_shards=" +
                std::to_string(sup.wedged_shards) + " < injected " +
                std::to_string(result.stops));
        if (sup.restarts < injected_crashes + result.stops)
            result.violations.push_back(
                "counters: restarts=" + std::to_string(sup.restarts) +
                " < injected " +
                std::to_string(injected_crashes + result.stops));
    } else {
        result.violations.push_back(
            "counters: no stats answer before drain");
    }

    checkDrain(fleet, mix[0], config.drain_deadline_ms,
               &result.violations);
    checkStoreClean(store_dir, &result.violations);
    result.crash_captures = checkCrashCaptures(
        flight_dir + "/crash", result.segvs > 0, &result.violations);
    return result;
}

/**
 * The quarantine probe: with quarantine_after=2 and a short backoff,
 * kill one slot's shard on every respawn until the supervisor gives up
 * on it. Fleet health must then read "degraded" over the wire while
 * the surviving shards still answer, and a SIGTERM must still drain
 * cleanly around the dead slot.
 */
std::vector<std::string>
runQuarantineProbe(const CrashChaosConfig &config,
                   const std::string &probe_dir)
{
    std::vector<std::string> violations;
    const std::string store_dir = probe_dir + "/store";
    const std::string flight_dir = probe_dir + "/flight";
    fs::create_directories(store_dir);

    FleetProc fleet;
    std::string err;
    if (!launchFleet(config, store_dir, flight_dir,
                     /*quarantine_after=*/2, /*backoff_base_ms=*/100,
                     &fleet, &err)) {
        violations.push_back("quarantine launch: " + err);
        return violations;
    }
    auto stable = waitSnap(fleet.port, 20000,
                           [&](const StatSnapshot &s) {
                               return allLive(s, config.shards);
                           });
    if (!stable) {
        violations.push_back("quarantine: fleet never stabilized");
        return violations;
    }

    // Kill shard 0's pid every time a new one appears; two rapid
    // crashes in a row must quarantine the slot.
    int64_t last_killed = -1;
    auto t0 = Clock::now();
    bool quarantined = false;
    while (msSince(t0) < 30000) {
        auto snap = pollStats(fleet.port);
        if (!snap) {
            sleepMs(100);
            continue;
        }
        if (snap->supervision.quarantined >= 1) {
            quarantined = true;
            break;
        }
        const auto *row = findShard(*snap, 0);
        if (row && row->pid > 0 && row->pid != last_killed) {
            last_killed = row->pid;
            ::kill(pid_t(row->pid), SIGKILL);
        }
    }
    if (!quarantined) {
        violations.push_back(
            "quarantine: slot 0 was never quarantined despite "
            "repeated rapid kills");
        return violations;
    }

    std::string health = healthField(fleetHealth(fleet.port));
    if (health != "degraded")
        violations.push_back(
            "quarantine: fleet health is '" + health +
            "', expected 'degraded' with a quarantined slot");

    // The surviving shards keep serving.
    std::vector<ScheduleRequest> mix = requestMix(config);
    std::vector<uint64_t> baseline(mix.size(), 0);
    runMixPass(fleet.port, mix, &baseline, "quarantine (serving)",
               &violations);

    // And SIGTERM still drains cleanly around the dead slot.
    ::kill(fleet.pid, SIGTERM);
    int status = 0;
    if (!fleet.waitExit(config.drain_deadline_ms + 15000, &status)) {
        violations.push_back(
            "quarantine: supervisor still running past the drain "
            "deadline");
        fleet.kill9();
    } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        violations.push_back(
            "quarantine: supervisor exited unclean after drain");
    }
    return violations;
}

} // namespace

bool
CrashSweepReport::ok() const
{
    if (!quarantine_violations.empty())
        return false;
    for (const auto &s : seeds)
        if (!s.ok())
            return false;
    return true;
}

std::string
CrashSweepReport::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.key("sweep").value("crash-chaos");
    w.key("shards").value(uint64_t(config.shards));
    w.key("requests").value(uint64_t(config.requests));
    w.key("first_seed").value(config.first_seed);
    w.key("num_seeds").value(uint64_t(config.num_seeds));
    w.key("kill_rounds").value(uint64_t(config.kill_rounds));
    w.key("backoff_base_ms").value(config.backoff_base_ms);
    w.key("ok").value(ok());
    w.key("seeds").beginArray();
    for (const auto &s : seeds) {
        w.beginObject();
        w.key("seed").value(s.seed);
        w.key("ok").value(s.ok());
        w.key("kills").value(s.kills);
        w.key("segvs").value(s.segvs);
        w.key("stops").value(s.stops);
        w.key("restarts_observed").value(s.restarts_observed);
        w.key("crashes_observed").value(s.crashes_observed);
        w.key("wedged_observed").value(s.wedged_observed);
        w.key("crash_captures").value(s.crash_captures);
        w.key("injected").beginArray();
        for (const auto &line : s.injected)
            w.value(line);
        w.endArray();
        w.key("violations").beginArray();
        for (const auto &v : s.violations)
            w.value(v);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.key("quarantine_violations").beginArray();
    for (const auto &v : quarantine_violations)
        w.value(v);
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
CrashSweepReport::toText() const
{
    std::ostringstream out;
    out << "crash-chaos sweep: " << config.num_seeds << " seeds, "
        << config.shards << " shards, " << config.kill_rounds
        << " kill rounds/seed\n";
    for (const auto &s : seeds) {
        out << "  seed " << s.seed << ": "
            << (s.ok() ? "ok" : "FAILED") << " (kills=" << s.kills
            << " segvs=" << s.segvs << " stops=" << s.stops
            << " restarts=" << s.restarts_observed
            << " wedged=" << s.wedged_observed
            << " captures=" << s.crash_captures << ")\n";
        for (const auto &v : s.violations)
            out << "    violation: " << v << "\n";
    }
    if (config.quarantine_probe) {
        out << "  quarantine probe: "
            << (quarantine_violations.empty() ? "ok" : "FAILED")
            << "\n";
        for (const auto &v : quarantine_violations)
            out << "    violation: " << v << "\n";
    }
    out << (ok() ? "crash-chaos sweep passed\n"
                 : "crash-chaos sweep FAILED\n");
    return out.str();
}

CrashSweepReport
runCrashSweep(const CrashChaosConfig &config)
{
    CrashSweepReport report;
    report.config = config;
    fs::create_directories(config.store_base_dir);
    for (unsigned i = 0; i < config.num_seeds; ++i) {
        uint64_t seed = config.first_seed + i;
        const std::string seed_dir =
            config.store_base_dir + "/seed-" + std::to_string(seed);
        std::error_code ec;
        fs::remove_all(seed_dir, ec);
        CrashSeedResult result = runSeed(config, seed, seed_dir);
        // A passing seed cleans up after itself; a failing one keeps
        // its store and crash captures for post-mortem (CI uploads).
        if (result.ok())
            fs::remove_all(seed_dir, ec);
        report.seeds.push_back(std::move(result));
    }
    if (config.quarantine_probe) {
        const std::string probe_dir =
            config.store_base_dir + "/quarantine-probe";
        std::error_code ec;
        fs::remove_all(probe_dir, ec);
        report.quarantine_violations =
            runQuarantineProbe(config, probe_dir);
        if (report.quarantine_violations.empty())
            fs::remove_all(probe_dir, ec);
    }
    return report;
}

} // namespace mdes::net
