#include "net/chaos_socket.h"

#include "net/client.h"
#include "net/server.h"
#include "service/request_parse.h"

namespace mdes::net {

using service::ErrorCode;
using service::ScheduleRequest;
using service::chaos::ChaosConfig;
using service::chaos::Outcome;
using service::chaos::RunStats;

service::chaos::RunDriver
chaosSocketDriver()
{
    return [](const ChaosConfig &config, const std::string &store_dir,
              const std::vector<ScheduleRequest> &mix) {
        ServerConfig sc;
        sc.host = "127.0.0.1";
        sc.port = 0; // ephemeral
        sc.service.num_workers = config.workers;
        sc.service.cache_capacity = config.requests + 4;
        sc.service.store_dir = store_dir;

        RunStats result;
        Server server(sc);
        server.start();
        uint16_t port = server.port();

        for (const ScheduleRequest &req : mix) {
            std::string line = service::renderRequestLine(req);
            uint64_t route = routeKey(req);
            Outcome o;
            bool answered = false;
            // One connection per request is the churn; a transport
            // failure retries on another fresh connection.
            for (unsigned attempt = 0;
                 attempt <= kMaxTransportRetries && !answered; ++attempt) {
                BlockingClient client("127.0.0.1", port);
                if (!client.connected())
                    continue;
                NetResponse resp = client.request(line, 0, route);
                if (!resp.transport_ok)
                    continue;
                answered = true;
                o.error_code = int(resp.code);
                o.degraded = resp.degraded;
                o.fingerprint =
                    resp.code == ErrorCode::Ok ? resp.fingerprint : 0;
            }
            if (!answered) {
                // Exhausted retries: surface it as an outcome the
                // invariant checks will reject, never a silent gap.
                o.error_code = int(ErrorCode::Internal);
                o.degraded = false;
                o.fingerprint = 0;
            }
            if (o.error_code != int(ErrorCode::Ok))
                ++result.failed;
            if (o.degraded)
                ++result.degraded;
            result.outcomes.push_back(o);
        }

        server.stop();
        service::ServiceMetrics m = server.metrics();
        result.compiles = m.cache.compiles;
        return result;
    };
}

} // namespace mdes::net
