#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/signalfd.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <iostream>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame.h"
#include "service/request_parse.h"
#include "service/stats.h"
#include "support/diagnostics.h"
#include "support/faultsim.h"
#include "support/flightrec.h"
#include "support/io_retry.h"
#include "support/json.h"

namespace mdes::net {

using service::ErrorCode;
using service::MdesService;
using service::ScheduleRequest;
using service::ScheduleResponse;

namespace {

void
setNonBlocking(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/** Bind+listen a nonblocking TCP socket on @p host:@p port (numeric
 * address or "localhost"); fills @p bound_port with the resolved
 * ephemeral port. Throws MdesError on failure. */
int
makeListenSocket(const std::string &host, uint16_t port,
                 uint16_t *bound_port)
{
    int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0)
        throw MdesError(std::string("net: socket: ") + strerror(errno));
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    std::string numeric = host == "localhost" ? "127.0.0.1" : host;
    if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
        close(fd);
        throw MdesError("net: bad listen address '" + host +
                        "' (numeric IPv4 or 'localhost')");
    }
    if (bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) != 0) {
        int e = errno;
        close(fd);
        throw MdesError("net: bind " + host + ":" + std::to_string(port) +
                        ": " + strerror(e));
    }
    if (listen(fd, 128) != 0) {
        int e = errno;
        close(fd);
        throw MdesError(std::string("net: listen: ") + strerror(e));
    }
    socklen_t len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) == 0)
        *bound_port = ntohs(addr.sin_port);
    return fd;
}

/** Pass @p fd over the SOCK_SEQPACKET channel @p chan via SCM_RIGHTS. */
bool
sendFd(int chan, int fd)
{
    char byte = 'c';
    iovec iov{&byte, 1};
    alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))] = {};
    msghdr msg{};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = cbuf;
    msg.msg_controllen = sizeof(cbuf);
    cmsghdr *cm = CMSG_FIRSTHDR(&msg);
    cm->cmsg_level = SOL_SOCKET;
    cm->cmsg_type = SCM_RIGHTS;
    cm->cmsg_len = CMSG_LEN(sizeof(int));
    std::memcpy(CMSG_DATA(cm), &fd, sizeof(int));
    for (;;) {
        // MSG_NOSIGNAL: the target shard may have just crashed; the
        // hand-off must fail with EPIPE, not kill the router.
        if (sendmsg(chan, &msg, MSG_NOSIGNAL) >= 0)
            return true;
        if (errno != EINTR)
            return false;
    }
}

/** Receive one message from @p chan. An fd-bearing message returns the
 * fd; a plain data message (the parent's stat poll) fills @p data and
 * returns -3. Returns -1 on EAGAIN, -2 on EOF/error (channel closed -
 * graceful-shutdown cue). */
int
recvFd(int chan, std::string *data = nullptr)
{
    char buf[64] = {};
    iovec iov{buf, sizeof(buf)};
    alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))] = {};
    msghdr msg{};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = cbuf;
    msg.msg_controllen = sizeof(cbuf);
    for (;;) {
        ssize_t n = recvmsg(chan, &msg, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errno == EAGAIN || errno == EWOULDBLOCK ? -1 : -2;
        }
        if (n == 0)
            return -2;
        for (cmsghdr *cm = CMSG_FIRSTHDR(&msg); cm;
             cm = CMSG_NXTHDR(&msg, cm)) {
            if (cm->cmsg_level == SOL_SOCKET &&
                cm->cmsg_type == SCM_RIGHTS) {
                int fd = -1;
                std::memcpy(&fd, CMSG_DATA(cm), sizeof(int));
                return fd;
            }
        }
        if (data) {
            data->assign(buf, size_t(n));
            return -3;
        }
        // A data message nobody asked about: ignore and keep reading.
    }
}

/** Thread-safe monotonic net counters; the loop thread writes, metrics
 * snapshots read (relaxed - these are statistics, not synchronization). */
struct NetCounters
{
    std::atomic<uint64_t> accepted{0}, closed{0}, active{0}, resets{0};
    std::atomic<uint64_t> frames_in{0}, frames_out{0};
    std::atomic<uint64_t> bytes_in{0}, bytes_out{0};
    std::atomic<uint64_t> protocol_errors{0}, bad_requests{0};
    std::atomic<uint64_t> shed{0}, deadline_expired{0};
    std::atomic<uint64_t> backpressure_stalls{0}, cancelled_on_close{0};
    std::atomic<uint64_t> stats_requests{0}, stats_coalesced{0};
    std::atomic<uint64_t> draining_shed{0};

    void
    fill(service::NetStats &out) const
    {
        out.enabled = true;
        out.accepted = accepted.load(std::memory_order_relaxed);
        out.closed = closed.load(std::memory_order_relaxed);
        out.active = active.load(std::memory_order_relaxed);
        out.resets = resets.load(std::memory_order_relaxed);
        out.frames_in = frames_in.load(std::memory_order_relaxed);
        out.frames_out = frames_out.load(std::memory_order_relaxed);
        out.bytes_in = bytes_in.load(std::memory_order_relaxed);
        out.bytes_out = bytes_out.load(std::memory_order_relaxed);
        out.protocol_errors =
            protocol_errors.load(std::memory_order_relaxed);
        out.bad_requests = bad_requests.load(std::memory_order_relaxed);
        out.shed = shed.load(std::memory_order_relaxed);
        out.deadline_expired =
            deadline_expired.load(std::memory_order_relaxed);
        out.backpressure_stalls =
            backpressure_stalls.load(std::memory_order_relaxed);
        out.cancelled_on_close =
            cancelled_on_close.load(std::memory_order_relaxed);
        out.stats_requests =
            stats_requests.load(std::memory_order_relaxed);
        out.stats_coalesced =
            stats_coalesced.load(std::memory_order_relaxed);
        out.draining_shed =
            draining_shed.load(std::memory_order_relaxed);
    }
};

/** One client connection's loop-local state. */
struct Conn
{
    int fd = -1;
    uint64_t id = 0;
    enum class Mode { Unknown, Binary, Json } mode = Mode::Unknown;

    FrameDecoder decoder;
    /** JSON mode: bytes up to the next newline. */
    std::string jsonbuf;

    /** Outbound bytes not yet written ([out_pos, size)). */
    std::string out;
    size_t out_pos = 0;

    /** Requests submitted to the service, not yet responded. */
    uint32_t inflight = 0;
    /** Their service ids, for cancel-on-close (best effort: an id may
     * be missing if its completion fired before submit() returned). */
    std::vector<uint64_t> pending;

    bool paused = false;    // EPOLLIN dropped (backpressure)
    bool closing = false;   // flush out, then close
    uint32_t epoll_events = 0;

    /** STAT coalescing: at most one stats response may occupy `out` at
     * a time; further STATs arriving while it drains collapse into one
     * answer carrying the latest id, sent when the buffer empties. A
     * stat flood therefore contributes at most one response to `out`
     * no matter how fast it polls. */
    bool stat_inflight = false;
    bool stat_waiting = false;
    uint64_t stat_waiting_id = 0;

    size_t
    outstandingOut() const
    {
        return out.size() - out_pos;
    }
};

/** epoll user-data ids for the non-connection fds. */
constexpr uint64_t kIdListen = 1, kIdFeed = 2, kIdEvent = 3;
constexpr uint64_t kFirstConnId = 16;

/** Ceiling on error text echoed back to a peer. Parse errors quote the
 * offending token, which a hostile request can grow to nearly
 * kMaxPayload - and jsonEscape can expand it up to 6x beyond that -
 * so untruncated echoes would make the response frame unencodable.
 * 512 bytes keeps every response comfortably inside kMaxPayload. */
constexpr size_t kMaxErrorMessage = 512;

std::string
truncateErrorMessage(const std::string &msg)
{
    if (msg.size() <= kMaxErrorMessage)
        return msg;
    return msg.substr(0, kMaxErrorMessage) + "... [truncated]";
}

/** Sentinel a completion leaves in its request-id holder to record
 * that it already fired (service ids start at 1 and never reach it). */
constexpr uint64_t kRidFired = ~uint64_t(0);

/** One finished request on its way back to the loop. */
struct Completion
{
    uint64_t conn_id = 0;
    /** Service request id (0 when unknown; see Conn::pending). */
    uint64_t request_id = 0;
    ErrorCode code = ErrorCode::Ok;
    /** Fully serialized wire bytes (frame or JSON line). */
    std::string bytes;
};

} // namespace

struct Server::Impl
{
    ServerConfig config;
    std::unique_ptr<MdesService> svc;

    int epoll_fd = -1;
    int event_fd = -1;
    int listen_fd = -1;
    int feed_fd = -1;
    uint16_t bound_port = 0;

    std::thread loop;
    std::atomic<bool> stop_requested{false};
    /** Graceful drain (DESIGN.md §15): set by beginDrain() from any
     * thread; the loop stops accepting, sheds new requests with typed
     * Draining responses, and exits once no connection remains (or the
     * deadline below passes, steady-clock microseconds). */
    std::atomic<bool> drain_requested{false};
    std::atomic<int64_t> drain_deadline_us{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
    bool loop_done = false;
    bool started = false;
    bool stopped = false;

    std::mutex comp_mu;
    std::vector<Completion> completions;

    NetCounters counters;
    /** Metrics captured at stop() so metrics() works after shutdown. */
    service::ServiceMetrics final_metrics;

    std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;
    uint64_t next_conn_id = kFirstConnId;

    // --- epoll plumbing ----------------------------------------------

    void
    epollAdd(int fd, uint64_t id, uint32_t events)
    {
        epoll_event ev{};
        ev.events = events;
        ev.data.u64 = id;
        if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0)
            throw MdesError(std::string("net: epoll_ctl add: ") +
                            strerror(errno));
    }

    void
    updateInterest(Conn &conn)
    {
        uint32_t events = 0;
        if (!conn.paused && !conn.closing)
            events |= EPOLLIN;
        if (conn.outstandingOut() > 0)
            events |= EPOLLOUT;
        if (events == conn.epoll_events)
            return;
        epoll_event ev{};
        ev.events = events;
        ev.data.u64 = conn.id;
        epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
        conn.epoll_events = events;
    }

    void
    wake()
    {
        uint64_t one = 1;
        [[maybe_unused]] ssize_t n =
            io::writeRetry(event_fd, &one, sizeof(one));
    }

    void
    beginDrain(uint64_t deadline_ms)
    {
        auto now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
        drain_deadline_us.store(now_us + int64_t(deadline_ms) * 1000,
                                std::memory_order_release);
        drain_requested.store(true, std::memory_order_release);
        wake();
    }

    // --- connection lifecycle ----------------------------------------

    /** Adopt @p fd as a new connection (from accept or the shard feed).
     * Applies the net/accept-fail fault site. */
    void
    adoptConnection(int fd)
    {
        setNonBlocking(fd);
        uint64_t id = next_conn_id++;
        faultsim::TokenScope scope(id);
        if (faultsim::probe(faultsim::Site::NetAcceptFail).fired) {
            ::close(fd);
            counters.resets.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->id = id;
        conn->epoll_events = EPOLLIN;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = id;
        if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
            // Must not throw out of the loop thread; drop the conn.
            ::close(fd);
            return;
        }
        conns.emplace(id, std::move(conn));
        counters.accepted.fetch_add(1, std::memory_order_relaxed);
        counters.active.fetch_add(1, std::memory_order_relaxed);
    }

    /** Close @p conn, cancelling whatever is still in flight. @p abrupt
     * marks server-initiated teardown (counted as a reset). */
    void
    closeConn(Conn &conn, bool abrupt)
    {
        if (conn.inflight) {
            counters.cancelled_on_close.fetch_add(
                conn.inflight, std::memory_order_relaxed);
            for (uint64_t rid : conn.pending)
                svc->cancel(rid);
        }
        if (abrupt)
            counters.resets.fetch_add(1, std::memory_order_relaxed);
        ::close(conn.fd);
        counters.closed.fetch_add(1, std::memory_order_relaxed);
        counters.active.fetch_sub(1, std::memory_order_relaxed);
        conns.erase(conn.id); // invalidates conn
    }

    // --- outbound path ------------------------------------------------

    void
    enqueueOut(Conn &conn, std::string bytes)
    {
        counters.frames_out.fetch_add(1, std::memory_order_relaxed);
        if (conn.outstandingOut() == 0) {
            conn.out = std::move(bytes);
            conn.out_pos = 0;
        } else {
            conn.out += bytes;
        }
        // Every enqueue can cross the high-water mark, not just request
        // submission: a peer that floods pings or malformed frames
        // while never reading must also stop being read, or its
        // outbound buffer grows without bound.
        maybePause(conn);
    }

    /** Write until EAGAIN or drained; returns false when the
     * connection died (already closed). */
    bool
    flushWrites(Conn &conn)
    {
        faultsim::TokenScope scope(conn.id);
        for (;;) {
            while (conn.outstandingOut() > 0) {
                auto stall =
                    faultsim::probe(faultsim::Site::NetStalledWrite);
                if (stall.fired && stall.delay_us)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(stall.delay_us));
                size_t n = conn.outstandingOut();
                if (faultsim::probe(faultsim::Site::NetShortWrite).fired)
                    n = 1;
                // sendRetry = EINTR-retried send with MSG_NOSIGNAL: a
                // peer that closed mid-response costs EPIPE (the conn
                // is torn down below), never a process-killing SIGPIPE.
                ssize_t w = io::sendRetry(
                    conn.fd, conn.out.data() + conn.out_pos, n);
                if (w > 0) {
                    conn.out_pos += size_t(w);
                    counters.bytes_out.fetch_add(
                        uint64_t(w), std::memory_order_relaxed);
                    continue;
                }
                if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                    return true;
                closeConn(conn, /*abrupt=*/true);
                return false;
            }
            conn.out.clear();
            conn.out_pos = 0;
            // Fully drained: the in-flight stat response (if any) is on
            // the wire, so a coalesced poll can now be answered - with
            // a *fresh* snapshot, which is what the poller wants.
            if (conn.stat_inflight) {
                conn.stat_inflight = false;
                if (conn.stat_waiting) {
                    conn.stat_waiting = false;
                    conn.stat_inflight = true;
                    enqueueOut(conn,
                               statResponseBytes(conn,
                                                 conn.stat_waiting_id));
                    continue; // try to write it out right now
                }
            }
            break;
        }
        if (conn.closing) {
            closeConn(conn, /*abrupt=*/false);
            return false;
        }
        return true;
    }

    // --- backpressure -------------------------------------------------

    void
    maybePause(Conn &conn)
    {
        if (conn.paused)
            return;
        if (conn.inflight >= config.max_inflight_per_conn ||
            conn.outstandingOut() > config.write_high_water) {
            conn.paused = true;
            counters.backpressure_stalls.fetch_add(
                1, std::memory_order_relaxed);
        }
    }

    void
    maybeResume(Conn &conn)
    {
        if (conn.paused && conn.inflight < config.max_inflight_per_conn &&
            conn.outstandingOut() <= config.write_high_water)
            conn.paused = false;
    }

    // --- inbound path -------------------------------------------------

    /** Respond to a malformed-but-framed request: typed BadRequest, the
     * connection survives. */
    void
    sendBadRequest(Conn &conn, uint64_t wire_id, const std::string &msg)
    {
        counters.bad_requests.fetch_add(1, std::memory_order_relaxed);
        ScheduleResponse resp;
        resp.error = {ErrorCode::BadRequest, msg};
        std::string body = serializeResponse(wire_id, resp);
        if (conn.mode == Conn::Mode::Json) {
            enqueueOut(conn, body + "\n");
        } else {
            Frame f;
            f.type = FrameType::Error;
            f.id = wire_id;
            f.payload = std::move(body);
            enqueueOut(conn, encodeFrame(f));
        }
    }

    /** Shed one request arriving after beginDrain(): a typed Draining
     * response, so the client knows to retry against another instance
     * instead of seeing a silent EOF. The connection survives - it may
     * still be reading earlier in-flight responses. */
    void
    sendDraining(Conn &conn, uint64_t wire_id)
    {
        counters.draining_shed.fetch_add(1, std::memory_order_relaxed);
        ScheduleResponse resp;
        resp.error = {ErrorCode::Draining,
                      "server draining; retry another instance"};
        std::string body = serializeResponse(wire_id, resp);
        if (conn.mode == Conn::Mode::Json) {
            enqueueOut(conn, body + "\n");
        } else {
            Frame f;
            f.type = FrameType::Response;
            f.id = wire_id;
            f.payload = std::move(body);
            enqueueOut(conn, encodeFrame(f));
        }
    }

    /** One health answer ({"op":"health"} or a Health frame): the
     * process's own lifecycle state. The shard parent answers fleet
     * Health frames itself with the supervision view; this one is what
     * a single server or an individual shard reports. */
    std::string
    healthResponseBytes(const Conn &conn, uint64_t wire_id)
    {
        const char *state =
            drain_requested.load(std::memory_order_acquire) ? "draining"
                                                            : "ready";
        std::string doc = std::string("{\"health\":\"") + state + "\"}";
        if (conn.mode == Conn::Mode::Json)
            return "{\"id\":" + std::to_string(wire_id) + "," +
                   doc.substr(1) + "\n";
        Frame f;
        f.type = FrameType::Response;
        f.id = wire_id;
        f.payload = std::move(doc);
        return encodeFrame(f);
    }

    /** A framing violation: emit one typed Error frame naming the
     * ProtoError, then flush and close (the stream has no trustworthy
     * resync point). */
    void
    sendProtocolError(Conn &conn, ProtoError err)
    {
        counters.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        ScheduleResponse resp;
        resp.error = {ErrorCode::BadRequest,
                      std::string("protocol error: ") +
                          protoErrorName(err)};
        std::string body = serializeResponse(0, resp);
        if (conn.mode == Conn::Mode::Json) {
            enqueueOut(conn, body + "\n");
        } else {
            Frame f;
            f.type = FrameType::Error;
            f.payload = std::move(body);
            enqueueOut(conn, encodeFrame(f));
        }
        conn.closing = true;
    }

    void
    submitRequest(Conn &conn, uint64_t wire_id, ScheduleRequest req)
    {
        ++conn.inflight;
        bool json = conn.mode == Conn::Mode::Json;
        uint64_t conn_id = conn.id;
        Impl *self = this;
        // The completion may run before submit() returns (shed path).
        // The holder arbitrates: whichever side runs second sees what
        // the first left behind - the completion either reads the real
        // id or marks kRidFired so the submit side skips the pending
        // bookkeeping for an id that can never be removed.
        auto rid_holder = std::make_shared<std::atomic<uint64_t>>(0);
        uint64_t rid = svc->submit(
            std::move(req),
            [self, conn_id, wire_id, json, rid_holder](
                ScheduleResponse resp) {
                Completion c;
                c.conn_id = conn_id;
                c.request_id = rid_holder->exchange(
                    kRidFired, std::memory_order_acq_rel);
                c.code = resp.error.code;
                // A worker (or the loop, on the shed path) must never
                // unwind: fall back to a minimal typed error if the
                // response cannot be framed.
                try {
                    std::string body = serializeResponse(wire_id, resp);
                    if (json) {
                        c.bytes = body + "\n";
                    } else {
                        Frame f;
                        f.type = FrameType::Response;
                        f.id = wire_id;
                        f.payload = std::move(body);
                        c.bytes = encodeFrame(f);
                    }
                } catch (const std::exception &) {
                    ScheduleResponse min;
                    min.error = {ErrorCode::Internal,
                                 "response serialization failed"};
                    c.code = min.error.code;
                    std::string body = serializeResponse(wire_id, min);
                    if (json) {
                        c.bytes = body + "\n";
                    } else {
                        Frame f;
                        f.type = FrameType::Error;
                        f.id = wire_id;
                        f.payload = std::move(body);
                        c.bytes = encodeFrame(f);
                    }
                }
                {
                    std::lock_guard<std::mutex> lock(self->comp_mu);
                    self->completions.push_back(std::move(c));
                }
                self->wake();
            });
        if (rid_holder->exchange(rid, std::memory_order_acq_rel) !=
            kRidFired)
            conn.pending.push_back(rid);
        maybePause(conn);
    }

    /** Serialize one live stats answer for @p conn's wire mode. Binary
     * mode: a Response frame whose payload is the stats document; JSON
     * mode: the document itself with an "id" field prepended. */
    std::string
    statResponseBytes(const Conn &conn, uint64_t wire_id)
    {
        service::ServiceMetrics m = svc->metricsSnapshot();
        counters.fill(m.net);
        std::string doc =
            service::statsToJson(m, service::windowNowS());
        if (conn.mode == Conn::Mode::Json) {
            // Splice the id into the document so JSON-lines pollers get
            // the same schema as the frame payload, plus correlation.
            return "{\"id\":" + std::to_string(wire_id) + "," +
                   doc.substr(1) + "\n";
        }
        Frame f;
        f.type = FrameType::Response;
        f.id = wire_id;
        f.payload = std::move(doc);
        return encodeFrame(f);
    }

    /** One STAT poll (either wire mode). Serialized per connection:
     * while a stats response is still draining, further polls coalesce
     * into one pending answer with the latest id. */
    void
    handleStat(Conn &conn, uint64_t wire_id)
    {
        counters.stats_requests.fetch_add(1, std::memory_order_relaxed);
        if (conn.stat_inflight) {
            if (conn.stat_waiting)
                counters.stats_coalesced.fetch_add(
                    1, std::memory_order_relaxed);
            conn.stat_waiting = true;
            conn.stat_waiting_id = wire_id;
            return;
        }
        conn.stat_inflight = true;
        enqueueOut(conn, statResponseBytes(conn, wire_id));
    }

    /** Handle one decoded binary frame. Returns false when the
     * connection was torn down. */
    bool
    handleFrame(Conn &conn, Frame &frame)
    {
        counters.frames_in.fetch_add(1, std::memory_order_relaxed);
        faultsim::TokenScope scope(conn.id);
        switch (frame.type) {
        case FrameType::Ping: {
            Frame pong;
            pong.type = FrameType::Pong;
            pong.id = frame.id;
            enqueueOut(conn, encodeFrame(pong));
            return true;
        }
        case FrameType::Pong:
            return true;
        case FrameType::Stat:
            handleStat(conn, frame.id);
            return true;
        case FrameType::Health:
            enqueueOut(conn, healthResponseBytes(conn, frame.id));
            return true;
        case FrameType::Response:
        case FrameType::Error:
            sendBadRequest(conn, frame.id,
                           "unexpected frame type from client");
            return true;
        case FrameType::Request:
            break;
        }
        if (drain_requested.load(std::memory_order_acquire)) {
            sendDraining(conn, frame.id);
            return true;
        }
        // Injected peer reset: evaluated exactly once per decoded
        // request frame (a protocol event, not a syscall), so replays
        // of the same connection stream make the same decision.
        if (faultsim::probe(faultsim::Site::NetPeerReset).fired) {
            closeConn(conn, /*abrupt=*/true);
            return false;
        }
        ScheduleRequest req;
        try {
            service::RequestParseOptions opts;
            opts.allow_files = false;
            req = service::parseRequestLine(frame.payload, 0, opts);
        } catch (const MdesError &e) {
            sendBadRequest(conn, frame.id, e.what());
            return true;
        }
        if (frame.deadline_ms)
            req.deadline_ms = int64_t(frame.deadline_ms);
        submitRequest(conn, frame.id, std::move(req));
        return true;
    }

    /** Handle one newline-delimited JSON request. Returns false when
     * the connection was torn down. */
    bool
    handleJsonLine(Conn &conn, const std::string &line)
    {
        if (line.empty())
            return true;
        counters.frames_in.fetch_add(1, std::memory_order_relaxed);
        faultsim::TokenScope scope(conn.id);
        uint64_t wire_id = 0;
        std::string reqline;
        uint32_t deadline_ms = 0;
        bool is_stats = false;
        bool is_health = false;
        try {
            JsonValue doc = parseJson(line);
            if (doc.kind != JsonValue::Kind::Object)
                throw MdesError("request must be a JSON object");
            // jsonU64: the wire id is a full u64 and must not round
            // through the parser's double above 2^53.
            if (const JsonValue *id = doc.find("id"))
                wire_id = jsonU64(*id);
            if (const JsonValue *op = doc.find("op")) {
                if (op->kind != JsonValue::Kind::String)
                    throw MdesError(
                        "unknown op (\"stats\" or \"health\")");
                if (op->string == "stats")
                    is_stats = true;
                else if (op->string == "health")
                    is_health = true;
                else
                    throw MdesError(
                        "unknown op (\"stats\" or \"health\")");
            } else {
                const JsonValue *req = doc.find("req");
                if (!req || req->kind != JsonValue::Kind::String)
                    throw MdesError("missing string field 'req'");
                reqline = req->string;
                if (const JsonValue *dl = doc.find("deadline_ms"))
                    deadline_ms = uint32_t(jsonU64(*dl));
                // "route" is the shard acceptor's concern; ignored
                // here.
            }
        } catch (const MdesError &e) {
            sendBadRequest(conn, wire_id, e.what());
            return true;
        }
        if (is_stats) {
            handleStat(conn, wire_id);
            return true;
        }
        if (is_health) {
            enqueueOut(conn, healthResponseBytes(conn, wire_id));
            return true;
        }
        if (drain_requested.load(std::memory_order_acquire)) {
            sendDraining(conn, wire_id);
            return true;
        }
        if (faultsim::probe(faultsim::Site::NetPeerReset).fired) {
            closeConn(conn, /*abrupt=*/true);
            return false;
        }
        ScheduleRequest req;
        try {
            service::RequestParseOptions opts;
            opts.allow_files = false;
            req = service::parseRequestLine(reqline, 0, opts);
        } catch (const MdesError &e) {
            sendBadRequest(conn, wire_id, e.what());
            return true;
        }
        if (deadline_ms)
            req.deadline_ms = int64_t(deadline_ms);
        submitRequest(conn, wire_id, std::move(req));
        return true;
    }

    /** Feed freshly read bytes through the mode-appropriate parser.
     * Returns false when the connection was torn down. */
    bool
    consume(Conn &conn, const char *data, size_t len)
    {
        if (conn.mode == Conn::Mode::Unknown && len > 0)
            conn.mode = data[0] == '{' ? Conn::Mode::Json
                                       : Conn::Mode::Binary;
        if (conn.mode == Conn::Mode::Json) {
            conn.jsonbuf.append(data, len);
            size_t start = 0;
            for (;;) {
                size_t nl = conn.jsonbuf.find('\n', start);
                if (nl == std::string::npos)
                    break;
                std::string line =
                    conn.jsonbuf.substr(start, nl - start);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                start = nl + 1;
                if (!handleJsonLine(conn, line))
                    return false;
            }
            conn.jsonbuf.erase(0, start);
            if (conn.jsonbuf.size() > kMaxPayload) {
                sendProtocolError(conn, ProtoError::OversizedPayload);
            }
            return true;
        }
        conn.decoder.feed(data, len);
        for (;;) {
            Frame frame;
            FrameDecoder::Status st = conn.decoder.next(&frame);
            if (st == FrameDecoder::Status::NeedMore)
                return true;
            if (st == FrameDecoder::Status::Error) {
                sendProtocolError(conn, conn.decoder.error());
                return true;
            }
            if (!handleFrame(conn, frame))
                return false;
            // Keep decoding even when paused: backpressure stops
            // *reading the socket*, not already-buffered frames -
            // otherwise a paused connection whose peer is done sending
            // would never see its remaining requests submitted.
            if (conn.closing)
                return true;
        }
    }

    void
    handleReadable(Conn &conn)
    {
        faultsim::TokenScope scope(conn.id);
        char buf[16384];
        for (;;) {
            size_t want = sizeof(buf);
            if (faultsim::probe(faultsim::Site::NetShortRead).fired)
                want = 1;
            ssize_t n = io::readRetry(conn.fd, buf, want);
            if (n > 0) {
                counters.bytes_in.fetch_add(uint64_t(n),
                                            std::memory_order_relaxed);
                if (!consume(conn, buf, size_t(n)))
                    return; // conn gone
                if (conn.paused || conn.closing)
                    break;
                continue;
            }
            if (n == 0) {
                closeConn(conn, /*abrupt=*/false);
                return;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            closeConn(conn, /*abrupt=*/true);
            return;
        }
        if (!flushWrites(conn))
            return;
        // The flush may have drained a pause caused purely by output
        // (ping/bad-frame floods produce no completion to resume via
        // drainCompletions); re-evaluate here or the connection wedges
        // with no interest bits armed.
        maybeResume(conn);
        updateInterest(conn);
    }

    void
    handleAccept()
    {
        for (;;) {
            int fd = io::accept4Retry(listen_fd, nullptr, nullptr,
                                      SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (fd < 0)
                return; // EAGAIN or transient accept error
            adoptConnection(fd);
        }
    }

    /** Shard child: answer the parent's stat poll ('s' + 8-byte seq)
     * with one datagram of seq + this shard's stats document. Sent
     * best-effort on the nonblocking channel: a full buffer just means
     * the parent reports this shard stale for that poll. */
    void
    answerStatPoll(const std::string &poll)
    {
        if (poll.size() < 9 || poll[0] != 's')
            return;
        service::ServiceMetrics m = svc->metricsSnapshot();
        counters.fill(m.net);
        std::string reply = poll.substr(1, 8);
        reply += service::statsToJson(m, service::windowNowS());
        [[maybe_unused]] ssize_t n =
            io::sendRetry(feed_fd, reply.data(), reply.size());
    }

    /** Shard child: dispatch one parent control datagram. 's'+seq is a
     * stat poll, 'h'+seq a watchdog heartbeat (echoed verbatim - the
     * 9-byte length is what distinguishes an echo from a stat reply on
     * the parent side), 'd'+u32le a drain command (DESIGN.md §15). */
    void
    handleFeedDatagram(const std::string &data)
    {
        if (data.empty())
            return;
        if (data[0] == 's') {
            answerStatPoll(data);
            return;
        }
        if (data[0] == 'h' && data.size() >= 9) {
            uint64_t seq = 0;
            for (int b = 0; b < 8; ++b)
                seq |= uint64_t(uint8_t(data[size_t(1 + b)])) << (8 * b);
            // The wedge fault: drop the echo so the parent's watchdog
            // sees a silent shard and SIGKILLs us. Keyed by the probe
            // seq so chaos replays make the same drop decisions.
            faultsim::TokenScope scope(seq);
            if (faultsim::probe(faultsim::Site::NetHeartbeatDrop).fired)
                return;
            [[maybe_unused]] ssize_t n =
                io::sendRetry(feed_fd, data.data(), 9);
            return;
        }
        if (data[0] == 'd' && data.size() >= 5) {
            uint32_t ms = 0;
            for (int b = 0; b < 4; ++b)
                ms |= uint32_t(uint8_t(data[size_t(1 + b)])) << (8 * b);
            beginDrain(ms);
            return;
        }
        // Unknown control byte: a newer parent talking to an older
        // shard; ignore rather than kill the feed.
    }

    /** Shard child: drain connection fds (and control datagrams) off
     * the feed channel. Returns false on channel EOF
     * (graceful-shutdown cue). */
    bool
    handleFeed()
    {
        for (;;) {
            std::string data;
            int fd = recvFd(feed_fd, &data);
            if (fd == -1)
                return true; // EAGAIN
            if (fd == -2)
                return false; // EOF: parent is shutting down
            if (fd == -3) {
                handleFeedDatagram(data);
                continue;
            }
            adoptConnection(fd);
        }
    }

    void
    drainCompletions()
    {
        std::vector<Completion> batch;
        {
            std::lock_guard<std::mutex> lock(comp_mu);
            batch.swap(completions);
        }
        for (Completion &c : batch) {
            if (c.code == ErrorCode::Overloaded)
                counters.shed.fetch_add(1, std::memory_order_relaxed);
            else if (c.code == ErrorCode::DeadlineExceeded)
                counters.deadline_expired.fetch_add(
                    1, std::memory_order_relaxed);
            auto it = conns.find(c.conn_id);
            if (it == conns.end())
                continue; // connection closed first; already counted
            Conn &conn = *it->second;
            if (conn.inflight)
                --conn.inflight;
            if (c.request_id) {
                auto &p = conn.pending;
                for (size_t i = 0; i < p.size(); ++i) {
                    if (p[i] == c.request_id) {
                        p[i] = p.back();
                        p.pop_back();
                        break;
                    }
                }
            }
            enqueueOut(conn, std::move(c.bytes));
            // Resume only after the flush: the just-enqueued response
            // counts against the high-water mark until written, and a
            // pre-flush resume decision could strand a paused
            // connection whose buffer then drains completely.
            if (flushWrites(conn)) {
                maybeResume(conn);
                updateInterest(conn);
            }
        }
    }

    void
    run()
    {
        epoll_event evs[64];
        bool done = false;
        bool drain_applied = false;
        while (!done) {
            int timeout = -1;
            if (drain_requested.load(std::memory_order_acquire)) {
                if (!drain_applied) {
                    drain_applied = true;
                    // Stop admitting: closing the listen socket means
                    // new clients are refused outright instead of
                    // queueing behind a dying process. (Shard children
                    // have no listen fd; their feed simply stops
                    // delivering connections.)
                    if (listen_fd >= 0) {
                        epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd,
                                  nullptr);
                        ::close(listen_fd);
                        listen_fd = -1;
                    }
                }
                // Drained = no connection remains: every in-flight
                // request was answered and its bytes flushed (clients
                // close after reading). Past the deadline we exit
                // anyway - a stuck client that never reads its
                // response must not hold the process hostage.
                if (conns.empty())
                    break;
                auto now_us =
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now()
                            .time_since_epoch())
                        .count();
                int64_t left_ms =
                    (drain_deadline_us.load(std::memory_order_acquire) -
                     now_us) /
                    1000;
                if (left_ms <= 0)
                    break;
                timeout = int(std::min<int64_t>(left_ms, 100));
            }
            int n = io::epollWaitRetry(epoll_fd, evs, 64, timeout);
            if (n < 0)
                break;
            for (int i = 0; i < n && !done; ++i) {
                uint64_t id = evs[i].data.u64;
                if (id == kIdEvent) {
                    uint64_t junk;
                    [[maybe_unused]] ssize_t r =
                        ::read(event_fd, &junk, sizeof(junk));
                    drainCompletions();
                    if (stop_requested.load(std::memory_order_acquire))
                        done = true;
                } else if (id == kIdListen) {
                    handleAccept();
                } else if (id == kIdFeed) {
                    if (!handleFeed()) {
                        stop_requested.store(
                            true, std::memory_order_release);
                        done = true;
                    }
                } else {
                    auto it = conns.find(id);
                    if (it == conns.end())
                        continue; // closed earlier in this batch
                    uint32_t events = evs[i].events;
                    // Nothing may unwind the loop thread (that would
                    // std::terminate the process): an unexpected
                    // exception costs the offending connection only.
                    try {
                        Conn &conn = *it->second;
                        if (events & (EPOLLHUP | EPOLLERR)) {
                            closeConn(conn, /*abrupt=*/true);
                            continue;
                        }
                        if (events & EPOLLOUT) {
                            if (!flushWrites(conn))
                                continue;
                            maybeResume(conn);
                            updateInterest(conn);
                            // re-find: flush may have closed on
                            // `closing`
                            if (conns.find(id) == conns.end())
                                continue;
                        }
                        if (events & EPOLLIN)
                            handleReadable(conn);
                    } catch (const std::exception &) {
                        auto again = conns.find(id);
                        if (again != conns.end())
                            closeConn(*again->second, /*abrupt=*/true);
                    }
                }
            }
        }
        // Final drain so late completions are counted, then teardown.
        drainCompletions();
        std::vector<uint64_t> ids;
        ids.reserve(conns.size());
        for (auto &[id, conn] : conns)
            ids.push_back(id);
        for (uint64_t id : ids) {
            auto it = conns.find(id);
            if (it != conns.end())
                closeConn(*it->second, /*abrupt=*/false);
        }
        {
            std::lock_guard<std::mutex> lock(done_mu);
            loop_done = true;
        }
        done_cv.notify_all();
    }
};

Server::Server(ServerConfig config) : impl_(std::make_unique<Impl>())
{
    impl_->config = std::move(config);
}

Server::~Server()
{
    try {
        stop();
    } catch (...) {
        // Destructors must not throw; stop() failures are already
        // reflected in closed fds.
    }
}

void
Server::start()
{
    Impl &im = *impl_;
    if (im.started)
        return;
    im.epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    if (im.epoll_fd < 0)
        throw MdesError(std::string("net: epoll_create1: ") +
                        strerror(errno));
    im.event_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (im.event_fd < 0)
        throw MdesError(std::string("net: eventfd: ") + strerror(errno));
    im.epollAdd(im.event_fd, kIdEvent, EPOLLIN);

    if (im.config.conn_feed_fd >= 0) {
        im.feed_fd = im.config.conn_feed_fd;
        setNonBlocking(im.feed_fd);
        im.epollAdd(im.feed_fd, kIdFeed, EPOLLIN);
    } else if (im.config.inherit_listen_fd >= 0) {
        im.listen_fd = im.config.inherit_listen_fd;
        setNonBlocking(im.listen_fd);
        im.epollAdd(im.listen_fd, kIdListen, EPOLLIN);
    } else {
        im.listen_fd = makeListenSocket(im.config.host, im.config.port,
                                        &im.bound_port);
        im.epollAdd(im.listen_fd, kIdListen, EPOLLIN);
    }

    im.svc = std::make_unique<MdesService>(im.config.service);
    im.loop = std::thread([&im] { im.run(); });
    im.started = true;
}

void
Server::stop()
{
    Impl &im = *impl_;
    if (!im.started || im.stopped)
        return;
    im.stop_requested.store(true, std::memory_order_release);
    im.wake();
    im.loop.join();
    // Capture the final snapshot before the service goes away, so
    // metrics() keeps answering after shutdown.
    im.final_metrics = im.svc->metricsSnapshot();
    im.counters.fill(im.final_metrics.net);
    // Service teardown drains outstanding jobs; their completions still
    // push to the (now undrained) queue and poke the eventfd - both
    // stay valid until below.
    im.svc.reset();
    if (im.listen_fd >= 0)
        ::close(im.listen_fd);
    if (im.feed_fd >= 0)
        ::close(im.feed_fd);
    ::close(im.event_fd);
    ::close(im.epoll_fd);
    im.listen_fd = im.feed_fd = im.event_fd = im.epoll_fd = -1;
    im.stopped = true;
}

uint16_t
Server::port() const
{
    return impl_->bound_port;
}

service::ServiceMetrics
Server::metrics() const
{
    Impl &im = *impl_;
    if (!im.svc)
        return im.final_metrics;
    service::ServiceMetrics m = im.svc->metricsSnapshot();
    im.counters.fill(m.net);
    return m;
}

service::MdesService &
Server::service()
{
    return *impl_->svc;
}

bool
Server::stopping() const
{
    return impl_->stop_requested.load(std::memory_order_acquire);
}

void
Server::beginDrain(uint64_t deadline_ms)
{
    impl_->beginDrain(deadline_ms);
}

bool
Server::draining() const
{
    return impl_->drain_requested.load(std::memory_order_acquire);
}

void
Server::waitUntilStopped()
{
    Impl &im = *impl_;
    std::unique_lock<std::mutex> lock(im.done_mu);
    im.done_cv.wait(lock, [&im] { return im.loop_done; });
}

std::string
serializeResponse(uint64_t id, const ScheduleResponse &resp)
{
    JsonWriter w;
    w.beginObject();
    w.key("id").value(id);
    w.key("code").value(uint64_t(resp.error.code));
    w.key("error").value(service::errorCodeName(resp.error.code));
    if (resp.error)
        w.key("message").value(truncateErrorMessage(resp.error.message));
    if (!resp.machine.empty())
        w.key("machine").value(resp.machine);
    // Decimal string: a u64 does not survive a JSON double. Errors get
    // a literal 0 so no client mistakes the empty-schedule hash (the
    // FNV basis) for a real fingerprint.
    w.key("fingerprint")
        .value(std::to_string(
            resp.ok() ? service::scheduleFingerprint(resp) : 0));
    w.key("cache_hit").value(resp.cache_hit);
    w.key("disk_hit").value(resp.disk_hit);
    w.key("degraded").value(resp.degraded);
    w.key("total_cycles").value(resp.total_cycles);
    w.key("blocks").value(
        uint64_t(resp.schedules.size() + resp.modulo.size()));
    w.endObject();
    return w.str();
}

// ---------------------------------------------------------------------
// mdesc serve: signal-driven single-process and fork-per-shard modes.
// ---------------------------------------------------------------------

namespace {

/** Block SIGINT/SIGTERM in the calling thread (inherited by threads
 * spawned after); returns the set for sigwait/signalfd. */
sigset_t
blockTermSignals()
{
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
    return set;
}

void
dumpMetrics(const service::ServiceMetrics &m, bool json)
{
    if (json)
        std::cout << m.toJson() << "\n";
    else
        std::cout << m.toTable();
}

/** Arm the flight-recorder spool for this serving process (@p shard
 * >= 0 selects a per-shard subdirectory). No-op when disabled. */
void
armFlightRecorder(const ServeOptions &opts, int shard)
{
    if (opts.flightrec_dir.empty())
        return;
    // Crash capture (DESIGN.md §15): fatal signals dump the trace rings
    // to one fleet-wide crash directory (files are named by pid, so
    // shards never collide), decodable by `mdesc flight decode`.
    flightrec::armCrashCapture(opts.flightrec_dir + "/crash");
    flightrec::SpoolConfig cfg;
    cfg.dir = opts.flightrec_dir;
    if (shard >= 0)
        cfg.dir += "/shard-" + std::to_string(shard);
    cfg.max_bytes = opts.flightrec_max_bytes;
    cfg.slow_us = opts.flightrec_slow_ms * 1000;
    flightrec::armSpool(cfg);
    // Announce the disk side effect (opt-in, but say where it lands).
    std::cout << "mdesc serve: flight recorder spooling to " << cfg.dir
              << " (cap " << (cfg.max_bytes >> 20) << " MiB, slow >= "
              << opts.flightrec_slow_ms << " ms)\n";
}

/** Tell the launcher (the chaos harness) which port a port-0 server
 * bound: one little-endian u16 on opts.port_notify_fd, then close. */
void
notifyPort(int fd, uint16_t port)
{
    if (fd < 0)
        return;
    unsigned char b[2] = {uint8_t(port & 0xff), uint8_t(port >> 8)};
    [[maybe_unused]] ssize_t n = io::writeRetry(fd, b, sizeof(b));
    ::close(fd);
}

int
runSingleServe(const ServeOptions &opts)
{
    sigset_t set = blockTermSignals();
    armFlightRecorder(opts, /*shard=*/-1);
    Server server(opts.server);
    server.start();
    notifyPort(opts.port_notify_fd, server.port());
    std::cout << "mdesc serve: listening on " << opts.server.host << ":"
              << server.port() << " (pid " << getpid() << ", "
              << server.service().numWorkers() << " workers)\n"
              << std::flush;
    int sig = 0;
    sigwait(&set, &sig);
    if (sig == SIGTERM) {
        // Graceful drain (DESIGN.md §15): stop accepting, let in-flight
        // work finish under the deadline, shed new requests with typed
        // Draining responses. SIGINT stays the fast path.
        std::cout << "mdesc serve: " << strsignal(sig)
                  << ", draining (deadline " << opts.drain_deadline_ms
                  << " ms)\n"
                  << std::flush;
        server.beginDrain(opts.drain_deadline_ms);
        server.waitUntilStopped();
        std::cout << "mdesc serve: drained, shutting down\n";
    } else {
        std::cout << "mdesc serve: " << strsignal(sig)
                  << ", shutting down\n";
    }
    server.stop();
    dumpMetrics(server.metrics(), opts.json_metrics);
    return 0;
}

/** Shard child body: serve connections off @p feed_fd until EOF. Never
 * returns to the caller's stack - exits the process. */
[[noreturn]] void
runShardChild(const ServeOptions &opts, unsigned shard, int feed_fd)
{
    int code = 0;
    try {
        armFlightRecorder(opts, int(shard));
        ServerConfig cfg = opts.server;
        cfg.conn_feed_fd = feed_fd;
        cfg.inherit_listen_fd = -1;
        Server server(cfg);
        server.start();
        server.waitUntilStopped();
        server.stop();
        service::ServiceMetrics m = server.metrics();
        std::cerr << "mdesc serve: shard " << shard << " exiting ("
                  << m.requests << " requests, "
                  << m.net.frames_in << " frames in)\n";
    } catch (const std::exception &e) {
        std::cerr << "mdesc serve: shard " << shard << ": " << e.what()
                  << "\n";
        code = 1;
    }
    _exit(code);
}

/** A connection the shard parent is still routing: waiting to peek
 * enough bytes to read the binary header's route field. */
struct RoutingConn
{
    int fd = -1;
    /** When routing began; a peer that never completes the header is
     * closed after kRouteTimeout (slow-loris defense: otherwise one
     * stalled byte holds an acceptor fd until process shutdown). */
    std::chrono::steady_clock::time_point since;
};

constexpr std::chrono::seconds kRouteTimeout(5);

/** Close every fd except stdio and @p keep. A freshly forked shard
 * must not inherit the listen socket, its siblings' feed channels, the
 * routing epoll, or client sockets mid-routing: a restarted shard's
 * leaked listen fd would otherwise hold the port open even after the
 * parent dies, and leaked feed ends would mask sibling EOFs. */
void
closeAllFdsExcept(int keep)
{
    long max = sysconf(_SC_OPEN_MAX);
    if (max <= 0 || max > 65536)
        max = 65536;
    for (int fd = 3; fd < int(max); ++fd)
        if (fd != keep)
            ::close(fd);
}

/**
 * One shard slot's supervision state (DESIGN.md §15). The routing
 * thread owns every transition (spawn, reap, watchdog kill,
 * quarantine); the stats thread reads channels and refreshes
 * last_beat; fleet_mu guards the lot. chan is closed only under
 * fleet_mu and every use outside the lock goes through a dup() taken
 * under it, so a closed fd number can never be recycled out from under
 * a concurrent reader.
 */
struct ShardSlot
{
    pid_t pid = -1;
    /** Parent end of the feed pair; -1 while the shard is down. */
    int chan = -1;
    uint64_t restarts = 0;
    uint64_t crashes = 0;
    uint64_t wedges = 0;
    /** Consecutive crashes younger than rapid_crash_window_ms; drives
     * the exponential backoff and the quarantine decision. */
    uint32_t rapid = 0;
    bool quarantined = false;
    /** Watchdog SIGKILL sent; the next reap counts as a wedge, not a
     * crash. */
    bool kill_pending = false;
    bool drain_sent = false;
    std::chrono::steady_clock::time_point started{};
    /** When down: earliest respawn time (crash-loop backoff). */
    std::chrono::steady_clock::time_point restart_at{};
    std::chrono::steady_clock::time_point last_beat{};
};

int
runShardedServe(const ServeOptions &opts)
{
    using Clock = std::chrono::steady_clock;
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    sigaddset(&set, SIGCHLD);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
    const unsigned nshards = opts.shards;

    uint16_t bound_port = 0;
    int listen_fd =
        makeListenSocket(opts.server.host, opts.server.port, &bound_port);

    // The parent gets crash capture too: a routing-loop SIGSEGV is as
    // much a fleet outage as a shard's.
    if (!opts.flightrec_dir.empty())
        flightrec::armCrashCapture(opts.flightrec_dir + "/crash");

    std::vector<ShardSlot> slots(nshards);
    std::mutex fleet_mu;
    std::atomic<bool> fleet_draining{false};
    bool unclean_exit = false; // routing thread only

    // Spawn (or respawn) shard @p i. Forking with the stats thread
    // live is safe here: glibc's atfork handlers keep malloc usable in
    // the child, and the child touches no parent lock - it closes every
    // inherited fd and builds a fresh Server from scratch.
    auto spawnShard = [&](unsigned i, bool respawn) {
        int pair[2];
        if (socketpair(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0,
                       pair) != 0) {
            if (!respawn)
                throw MdesError(std::string("net: socketpair: ") +
                                strerror(errno));
            return false;
        }
        pid_t pid = fork();
        if (pid < 0) {
            ::close(pair[0]);
            ::close(pair[1]);
            if (!respawn)
                throw MdesError(std::string("net: fork: ") +
                                strerror(errno));
            return false;
        }
        if (pid == 0) {
            // Child: keep only its feed end. Signals stay blocked; the
            // shutdown cues are feed EOF and the 'd' drain datagram.
            closeAllFdsExcept(pair[1]);
            runShardChild(opts, i, pair[1]);
        }
        ::close(pair[1]);
        auto now = Clock::now();
        std::lock_guard<std::mutex> lock(fleet_mu);
        ShardSlot &s = slots[i];
        s.chan = pair[0];
        s.pid = pid;
        if (respawn)
            ++s.restarts;
        s.kill_pending = false;
        s.started = now;
        s.last_beat = now;
        return true;
    };

    // Fork the initial fleet before any threads exist.
    for (unsigned i = 0; i < nshards; ++i)
        spawnShard(i, /*respawn=*/false);

    notifyPort(opts.port_notify_fd, bound_port);
    std::cout << "mdesc serve: listening on " << opts.server.host << ":"
              << bound_port << " (pid " << getpid() << ", " << nshards
              << " shards)\n"
              << std::flush;

    // The routing loop: accept, peek the route, hand the socket over.
    int ep = epoll_create1(EPOLL_CLOEXEC);
    int sfd = signalfd(-1, &set, SFD_CLOEXEC | SFD_NONBLOCK);
    constexpr uint64_t kListen = 1, kSignal = 2, kFirstRoute = 16;
    auto add = [&](int fd, uint64_t id, uint32_t events) {
        epoll_event ev{};
        ev.events = events;
        ev.data.u64 = id;
        epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev);
    };
    add(listen_fd, kListen, EPOLLIN);
    add(sfd, kSignal, EPOLLIN);

    std::unordered_map<uint64_t, RoutingConn> routing;
    uint64_t next_id = kFirstRoute;
    uint64_t round_robin = 0;

    /** Dup shard @p i's feed channel under fleet_mu (-1 when down). */
    auto dupChan = [&](unsigned i) {
        std::lock_guard<std::mutex> lock(fleet_mu);
        return slots[i].chan >= 0 ? ::dup(slots[i].chan) : -1;
    };

    auto handTo = [&](uint64_t shard, int fd) {
        // Prefer the keyed shard but fail over to the next live one:
        // route affinity is a cache hint while availability is an
        // invariant (the shards share one artifact store, so any can
        // serve any key). With no live shard at all the close resets
        // the client, which retries (chaos treats that as transport
        // loss, bounded by the restart backoff).
        for (unsigned probe = 0; probe < nshards; ++probe) {
            int chan = dupChan(unsigned((shard + probe) % nshards));
            if (chan < 0)
                continue;
            bool ok = sendFd(chan, fd);
            ::close(chan);
            if (ok) {
                ::close(fd);
                return;
            }
        }
        ::close(fd);
    };

    /** Fleet + per-shard supervision view for stats and health. */
    auto supervisionSnapshot = [&]() {
        service::SupervisionInfo sup;
        sup.enabled = true;
        std::vector<service::ShardSupervision> rows(nshards);
        std::lock_guard<std::mutex> lock(fleet_mu);
        for (unsigned i = 0; i < nshards; ++i) {
            const ShardSlot &s = slots[i];
            rows[i].pid = s.pid;
            rows[i].restarts = s.restarts;
            rows[i].crashes = s.crashes;
            rows[i].wedges = s.wedges;
            rows[i].state = s.quarantined ? "quarantined"
                            : s.pid > 0  ? "live"
                                         : "backoff";
            sup.restarts += s.restarts;
            sup.crashes += s.crashes;
            sup.wedged_shards += s.wedges;
            if (s.quarantined)
                ++sup.quarantined;
        }
        sup.health = fleet_draining.load(std::memory_order_acquire)
                         ? "draining"
                     : sup.quarantined ? "degraded"
                                       : "ready";
        return std::make_pair(sup, rows);
    };

    /** Any datagram from shard @p i is proof of life. */
    auto noteBeat = [&](unsigned i) {
        std::lock_guard<std::mutex> lock(fleet_mu);
        slots[i].last_beat = Clock::now();
    };

    // Fleet stats (DESIGN.md §14): poll every shard over its feed
    // channel ('s' + seq datagram), collect replies until @p timeout_ms,
    // and merge what answered. A shard that misses the deadline is
    // reported stale, never waited on - a partial fleet view beats a
    // blocked router. Replies carry the seq so a late answer from an
    // earlier poll is discarded instead of being mistaken for a fresh
    // one.
    uint64_t stat_seq = 0; // stats thread only
    auto pollFleet = [&](int timeout_ms) {
        uint64_t seq = ++stat_seq;
        std::string pollmsg(1, 's');
        for (int b = 0; b < 8; ++b)
            pollmsg.push_back(char((seq >> (8 * b)) & 0xff));
        std::vector<int> fds(nshards, -1);
        for (unsigned i = 0; i < nshards; ++i)
            fds[i] = dupChan(i);
        std::vector<std::string> answers(nshards);
        std::vector<bool> done_shard(nshards, false);
        size_t remaining = 0;
        for (unsigned i = 0; i < nshards; ++i) {
            if (fds[i] >= 0 &&
                ::send(fds[i], pollmsg.data(), pollmsg.size(),
                       MSG_NOSIGNAL) == ssize_t(pollmsg.size()))
                ++remaining;
            else
                done_shard[i] = true; // down shard: stays stale
        }
        std::string buf(1 << 16, '\0');
        auto deadline =
            Clock::now() + std::chrono::milliseconds(timeout_ms);
        while (remaining > 0) {
            auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
            if (left <= 0)
                break;
            std::vector<pollfd> pfds(nshards);
            for (unsigned i = 0; i < nshards; ++i)
                pfds[i] = {fds[i],
                           short(done_shard[i] ? 0 : POLLIN), 0};
            int pr = ::poll(pfds.data(), nfds_t(pfds.size()), int(left));
            if (pr < 0 && errno == EINTR)
                continue;
            if (pr <= 0)
                break;
            for (unsigned i = 0; i < nshards; ++i) {
                if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                    continue;
                ssize_t n = ::recv(fds[i], buf.data(), buf.size(), 0);
                if (n <= 0) {
                    if (n < 0 &&
                        (errno == EAGAIN || errno == EWOULDBLOCK ||
                         errno == EINTR))
                        continue;
                    done_shard[i] = true; // channel dead: stale
                    --remaining;
                    continue;
                }
                noteBeat(i); // any datagram is proof of life
                if (size_t(n) == 9 && buf[0] == 'h')
                    continue; // heartbeat echo, not a stat reply
                if (size_t(n) < 9)
                    continue; // runt datagram: discard
                uint64_t rseq = 0;
                for (int b = 0; b < 8; ++b)
                    rseq |= uint64_t(uint8_t(buf[b])) << (8 * b);
                if (rseq != seq)
                    continue; // late reply to an earlier poll
                answers[i].assign(buf.data() + 8, size_t(n) - 8);
                done_shard[i] = true;
                --remaining;
            }
        }
        for (int fd : fds)
            if (fd >= 0)
                ::close(fd);
        auto [sup, rows] = supervisionSnapshot();
        return service::mergeShardStats(answers, service::windowNowS(),
                                        sup, rows);
    };

    // Watchdog heartbeats (DESIGN.md §15): probe every live shard over
    // its feed channel and collect echoes briefly. A shard whose event
    // loop is wedged (stuck handler, livelocked epoll) answers nothing;
    // last_beat goes stale and the routing thread SIGKILLs it. Echoes
    // ride the same channel as stat replies - a 9-byte 'h' datagram is
    // unambiguous because stat replies are always seq + a JSON
    // document, far longer than 9 bytes.
    uint64_t hb_seq = 0; // stats thread only
    auto heartbeatRound = [&]() {
        ++hb_seq;
        char msg[9];
        msg[0] = 'h';
        for (int b = 0; b < 8; ++b)
            msg[1 + b] = char((hb_seq >> (8 * b)) & 0xff);
        std::vector<int> fds(nshards, -1);
        {
            std::lock_guard<std::mutex> lock(fleet_mu);
            for (unsigned i = 0; i < nshards; ++i) {
                const ShardSlot &s = slots[i];
                if (s.chan >= 0 && s.pid > 0 && !s.drain_sent)
                    fds[i] = ::dup(s.chan);
            }
        }
        for (unsigned i = 0; i < nshards; ++i) {
            if (fds[i] < 0)
                continue;
            [[maybe_unused]] ssize_t w =
                ::send(fds[i], msg, sizeof(msg), MSG_NOSIGNAL);
        }
        auto deadline = Clock::now() + std::chrono::milliseconds(60);
        char buf[512];
        for (;;) {
            std::vector<pollfd> pfds;
            std::vector<unsigned> owner;
            for (unsigned i = 0; i < nshards; ++i) {
                if (fds[i] >= 0) {
                    pfds.push_back({fds[i], POLLIN, 0});
                    owner.push_back(i);
                }
            }
            if (pfds.empty())
                break;
            auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
            if (left <= 0)
                break;
            int pr = ::poll(pfds.data(), nfds_t(pfds.size()), int(left));
            if (pr < 0 && errno == EINTR)
                continue;
            if (pr <= 0)
                break;
            for (size_t k = 0; k < pfds.size(); ++k) {
                if (!(pfds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                    continue;
                unsigned i = owner[k];
                // A truncating recv is fine: any datagram (echo or
                // late stat reply) proves the shard alive, and a
                // truncated stat reply was already written off as
                // stale by its poll.
                ssize_t n = ::recv(fds[i], buf, sizeof(buf), 0);
                if (n <= 0) {
                    if (n < 0 &&
                        (errno == EAGAIN || errno == EWOULDBLOCK ||
                         errno == EINTR))
                        continue;
                    ::close(fds[i]); // EOF: shard died; reap handles it
                    fds[i] = -1;
                    continue;
                }
                noteBeat(i);
                ::close(fds[i]); // one proof of life per round is enough
                fds[i] = -1;
            }
        }
        for (int fd : fds)
            if (fd >= 0)
                ::close(fd);
    };

    // Watchdog + crash-loop restarts, run from the routing thread's
    // periodic tick. Wedged shards (silent past heartbeat_timeout_ms)
    // are SIGKILLed; the reap below classifies and schedules the
    // restart. Slots whose backoff elapsed respawn here.
    auto superviseTick = [&]() {
        if (fleet_draining.load(std::memory_order_acquire))
            return;
        auto now = Clock::now();
        struct Kill
        {
            unsigned shard;
            pid_t pid;
        };
        std::vector<Kill> to_kill;
        std::vector<unsigned> to_spawn;
        {
            std::lock_guard<std::mutex> lock(fleet_mu);
            for (unsigned i = 0; i < nshards; ++i) {
                ShardSlot &s = slots[i];
                if (s.pid > 0 && !s.kill_pending &&
                    now - s.last_beat >
                        std::chrono::milliseconds(
                            opts.heartbeat_timeout_ms)) {
                    s.kill_pending = true;
                    to_kill.push_back({i, s.pid});
                } else if (s.pid < 0 && !s.quarantined &&
                           s.restart_at != Clock::time_point{} &&
                           now >= s.restart_at) {
                    to_spawn.push_back(i);
                }
            }
        }
        for (const Kill &k : to_kill) {
            std::cout << "mdesc serve: shard " << k.shard
                      << " wedged (no heartbeat), SIGKILL pid " << k.pid
                      << "\n"
                      << std::flush;
            ::kill(k.pid, SIGKILL);
        }
        for (unsigned i : to_spawn) {
            if (spawnShard(i, /*respawn=*/true)) {
                uint64_t nth;
                {
                    std::lock_guard<std::mutex> lock(fleet_mu);
                    nth = slots[i].restarts;
                }
                std::cout << "mdesc serve: shard " << i
                          << " restarted (restart #" << nth << ")\n"
                          << std::flush;
            }
        }
    };

    // Reap dead children (SIGCHLD coalesces, so sweep until WNOHANG
    // returns nothing). Classifies wedge vs crash, escalates the
    // crash-loop backoff, and quarantines a slot that keeps dying.
    auto reapChildren = [&]() {
        for (;;) {
            int status = 0;
            pid_t pid = waitpid(-1, &status, WNOHANG);
            if (pid <= 0)
                break;
            auto now = Clock::now();
            std::string note;
            {
                std::lock_guard<std::mutex> lock(fleet_mu);
                for (unsigned i = 0; i < nshards; ++i) {
                    ShardSlot &s = slots[i];
                    if (s.pid != pid)
                        continue;
                    ::close(s.chan); // safe: other users dup under lock
                    s.chan = -1;
                    s.pid = -1;
                    bool clean =
                        WIFEXITED(status) && WEXITSTATUS(status) == 0;
                    if (fleet_draining.load(
                            std::memory_order_acquire) ||
                        s.drain_sent) {
                        // Expected exit during drain; unclean ones
                        // surface in the final exit code.
                        if (!clean)
                            unclean_exit = true;
                        break;
                    }
                    bool rapid_crash =
                        now - s.started <
                        std::chrono::milliseconds(
                            opts.rapid_crash_window_ms);
                    if (s.kill_pending) {
                        ++s.wedges;
                        s.kill_pending = false;
                    } else {
                        ++s.crashes;
                    }
                    s.rapid = rapid_crash ? s.rapid + 1 : 0;
                    note =
                        "mdesc serve: shard " + std::to_string(i) +
                        (WIFSIGNALED(status)
                             ? " killed by signal " +
                                   std::to_string(WTERMSIG(status))
                             : " exited with status " +
                                   std::to_string(WEXITSTATUS(status)));
                    if (s.rapid >= opts.quarantine_after) {
                        s.quarantined = true;
                        note += "; quarantined after " +
                                std::to_string(s.rapid) +
                                " rapid crashes";
                    } else {
                        uint64_t shift =
                            std::min<uint32_t>(s.rapid, 10);
                        uint64_t backoff_ms = std::min(
                            opts.restart_backoff_base_ms << shift,
                            opts.restart_backoff_max_ms);
                        s.restart_at =
                            now + std::chrono::milliseconds(backoff_ms);
                        note += "; restart in " +
                                std::to_string(backoff_ms) + " ms";
                    }
                    break;
                }
            }
            if (!note.empty())
                std::cout << note << "\n" << std::flush;
        }
    };

    // Fleet STAT connections are never answered on the router thread:
    // pollFleet blocks up to its deadline and the response write can
    // stall on a peer that never reads, so answering inline would let
    // an unauthenticated client serialize multi-second stalls (one
    // bare STAT frame per connection is ~1 packet) and starve
    // accept/routing. The router only consumes the header and
    // enqueues the fd; a dedicated stats thread drains the queue in
    // batches - one fleet poll answers every connection that arrived
    // while the previous batch was in flight, so a flood coalesces
    // into one poll per round instead of queueing polls. The queue is
    // bounded; beyond the bound new STAT connections are shed
    // (closed), which a poller sees as a reset and retries.
    struct StatConn
    {
        int fd = -1;
        uint64_t id = 0; // frame id, echoed in the response
        /** True for a Health frame: answered from supervision state
         * (no fleet poll needed), not with the stats document. */
        bool health = false;
    };
    constexpr size_t kMaxQueuedStat = 64;
    std::mutex stat_mu;
    std::condition_variable stat_cv;
    std::deque<StatConn> stat_queue;
    bool stat_shutdown = false;

    // Write one batch's responses concurrently under a single shared
    // deadline, so N hostile peers that never read cost one deadline
    // total, not N of them. Every fd is closed on exit.
    auto answerStatBatch = [](std::vector<StatConn> &batch,
                              const std::string &stats_payload,
                              const std::string &health_payload) {
        struct Out
        {
            int fd;
            std::string wire;
            size_t off = 0;
        };
        std::vector<Out> outs;
        outs.reserve(batch.size());
        for (const StatConn &sc : batch) {
            Frame f;
            f.type = FrameType::Response;
            f.id = sc.id;
            f.payload = sc.health ? health_payload : stats_payload;
            outs.push_back({sc.fd, encodeFrame(f)});
        }
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(2);
        for (;;) {
            std::vector<pollfd> pending;
            for (Out &o : outs) {
                while (o.fd >= 0 && o.off < o.wire.size()) {
                    ssize_t w = ::send(o.fd, o.wire.data() + o.off,
                                       o.wire.size() - o.off,
                                       MSG_NOSIGNAL);
                    if (w > 0) {
                        o.off += size_t(w);
                        continue;
                    }
                    if (w < 0 && errno == EINTR)
                        continue;
                    if (w < 0 &&
                        (errno == EAGAIN || errno == EWOULDBLOCK)) {
                        pending.push_back({o.fd, POLLOUT, 0});
                        break;
                    }
                    ::close(o.fd); // peer reset: drop it
                    o.fd = -1;
                    break;
                }
                if (o.fd >= 0 && o.off == o.wire.size()) {
                    ::close(o.fd);
                    o.fd = -1;
                }
            }
            if (pending.empty())
                return;
            auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
            if (left <= 0)
                break;
            ::poll(pending.data(), nfds_t(pending.size()), int(left));
        }
        for (Out &o : outs)
            if (o.fd >= 0)
                ::close(o.fd); // deadline passed: peer not reading
    };

    /** The parent's health document: supervision state, no shard
     * round-trip (a wedged fleet must still answer health probes). */
    auto healthJson = [&]() {
        auto [sup, rows] = supervisionSnapshot();
        (void)rows;
        std::string doc = "{\"health\":\"" + sup.health + "\"";
        doc += ",\"shards\":" + std::to_string(nshards);
        doc += ",\"restarts\":" + std::to_string(sup.restarts);
        doc += ",\"crashes\":" + std::to_string(sup.crashes);
        doc +=
            ",\"wedged_shards\":" + std::to_string(sup.wedged_shards);
        doc += ",\"quarantined\":" + std::to_string(sup.quarantined);
        doc += "}";
        return doc;
    };

    // The stats thread is the only reader on the feed channels (the
    // router only ever sends), so its recv() in pollFleet never races
    // the routing loop; SOCK_SEQPACKET sends from two threads stay
    // atomic per datagram. It doubles as the heartbeat pacemaker:
    // between stat batches it wakes on a timer and probes the fleet.
    std::thread stat_thread([&] {
        auto next_beat =
            Clock::now() +
            std::chrono::milliseconds(opts.heartbeat_interval_ms);
        for (;;) {
            std::vector<StatConn> batch;
            {
                std::unique_lock<std::mutex> lock(stat_mu);
                stat_cv.wait_until(lock, next_beat, [&] {
                    return stat_shutdown || !stat_queue.empty();
                });
                if (stat_shutdown)
                    return; // queued fds are closed by the owner
                batch.assign(stat_queue.begin(), stat_queue.end());
                stat_queue.clear();
            }
            if (Clock::now() >= next_beat) {
                heartbeatRound();
                next_beat = Clock::now() +
                            std::chrono::milliseconds(
                                opts.heartbeat_interval_ms);
            }
            if (batch.empty())
                continue;
            bool want_stats = false;
            for (const StatConn &sc : batch)
                want_stats |= !sc.health;
            const std::string stats_payload =
                want_stats ? pollFleet(/*timeout_ms=*/300)
                           : std::string();
            answerStatBatch(batch, stats_payload, healthJson());
        }
    });

    // Decide a shard from peeked bytes. Returns false when more bytes
    // are needed (binary header incomplete).
    auto route = [&](RoutingConn &rc) {
        char hdr[kHeaderSize];
        ssize_t n = recv(rc.fd, hdr, sizeof(hdr), MSG_PEEK);
        if (n < 0)
            return errno == EAGAIN || errno == EWOULDBLOCK ||
                   errno == EINTR;
        if (n == 0) {
            ::close(rc.fd);
            rc.fd = -1;
            return false;
        }
        if (hdr[0] == kMagic[0]) {
            if (size_t(n) < kHeaderSize)
                return true; // wait for the full header
            uint32_t payload_len = 0;
            for (int i = 0; i < 4; ++i)
                payload_len |= uint32_t(uint8_t(hdr[8 + i])) << (8 * i);
            uint8_t ftype = uint8_t(hdr[5]);
            bool fleet_stat =
                ftype == uint8_t(FrameType::Stat) && payload_len == 0;
            bool fleet_health =
                ftype == uint8_t(FrameType::Health) && payload_len == 0;
            if (fleet_stat || fleet_health) {
                // Fleet stats/health: consume the frame and hand the
                // fd to the stats thread. Stats answer with all shards
                // merged; health with the parent's supervision view -
                // which is the point: a draining or degraded fleet is
                // something only the supervisor knows. (A Stat with a
                // payload is left to a shard, which answers with its
                // local view.)
                char sink[kHeaderSize];
                if (recv(rc.fd, sink, sizeof(sink), 0) !=
                    ssize_t(kHeaderSize)) {
                    ::close(rc.fd);
                    rc.fd = -1;
                    return false;
                }
                uint64_t wire_id = 0;
                for (int b = 0; b < 8; ++b)
                    wire_id |= uint64_t(uint8_t(hdr[16 + b]))
                               << (8 * b);
                bool queued = false;
                {
                    std::lock_guard<std::mutex> lock(stat_mu);
                    if (stat_queue.size() < kMaxQueuedStat) {
                        stat_queue.push_back(
                            {rc.fd, wire_id, fleet_health});
                        queued = true;
                    }
                }
                if (queued)
                    stat_cv.notify_one();
                else
                    ::close(rc.fd); // STAT flood: shed this one
                rc.fd = -1;
                return false;
            }
            uint64_t key = 0;
            for (int i = 0; i < 8; ++i)
                key |= uint64_t(uint8_t(hdr[24 + i])) << (8 * i);
            handTo(key ? key : round_robin++, rc.fd);
        } else {
            // JSON (or garbage the shard will reject): round-robin.
            handTo(round_robin++, rc.fd);
        }
        rc.fd = -1;
        return false;
    };

    // --- drain orchestration (DESIGN.md §15) ---------------------------
    bool done = false;
    bool drain_cmds_sent = false;
    Clock::time_point drain_deadline{};
    Clock::time_point drain_route_deadline{};

    auto beginFleetDrain = [&]() {
        if (fleet_draining.exchange(true))
            return;
        auto now = Clock::now();
        drain_deadline =
            now + std::chrono::milliseconds(opts.drain_deadline_ms);
        // Mid-routing connections were accepted; give them a moment to
        // finish their headers before the shards stop taking work.
        drain_route_deadline =
            now + std::chrono::milliseconds(std::min<uint64_t>(
                      500, opts.drain_deadline_ms / 2));
        epoll_ctl(ep, EPOLL_CTL_DEL, listen_fd, nullptr);
        ::close(listen_fd);
        listen_fd = -1;
        std::cout << "mdesc serve: SIGTERM, draining " << nshards
                  << " shards (deadline " << opts.drain_deadline_ms
                  << " ms)\n"
                  << std::flush;
    };

    epoll_event evs[64];
    while (!done) {
        // Finite timeout: the supervision tick (watchdog deadlines,
        // restart backoffs, drain progress) must run even when no fd
        // ever becomes ready.
        int n = io::epollWaitRetry(ep, evs, 64, 200);
        if (n < 0)
            break;
        auto now = Clock::now();
        for (auto it = routing.begin(); it != routing.end();) {
            if (now - it->second.since > kRouteTimeout) {
                ::close(it->second.fd);
                it = routing.erase(it);
            } else {
                ++it;
            }
        }
        for (int i = 0; i < n; ++i) {
            uint64_t id = evs[i].data.u64;
            if (id == kSignal) {
                signalfd_siginfo si;
                while (read(sfd, &si, sizeof(si)) ==
                       ssize_t(sizeof(si))) {
                    if (si.ssi_signo == SIGCHLD)
                        reapChildren();
                    else if (si.ssi_signo == SIGTERM)
                        beginFleetDrain();
                    else
                        done = true; // SIGINT: immediate shutdown
                }
                continue;
            }
            if (id == kListen) {
                if (listen_fd < 0)
                    continue; // closed by a drain in this same batch
                for (;;) {
                    int fd = io::accept4Retry(
                        listen_fd, nullptr, nullptr,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
                    if (fd < 0)
                        break;
                    uint64_t cid = next_id++;
                    RoutingConn rc{fd, Clock::now()};
                    // Edge-triggered: MSG_PEEK leaves bytes readable,
                    // so level-triggered polling would spin while the
                    // header is still partial.
                    if (route(rc)) {
                        routing.emplace(cid, rc);
                        epoll_event ev{};
                        ev.events = EPOLLIN | EPOLLET;
                        ev.data.u64 = cid;
                        epoll_ctl(ep, EPOLL_CTL_ADD, rc.fd, &ev);
                    }
                }
                continue;
            }
            auto it = routing.find(id);
            if (it == routing.end())
                continue;
            if (!route(it->second))
                routing.erase(it);
        }
        if (done)
            break;
        reapChildren(); // SIGCHLD coalesces; sweep every tick
        if (!fleet_draining.load(std::memory_order_acquire)) {
            superviseTick();
            continue;
        }
        // Drain progress. Phase 1: wait (briefly) for mid-routing
        // headers, then tell every live shard to drain. Phase 2: wait
        // for the reaps; SIGKILL stragglers past deadline + grace.
        now = Clock::now();
        if (!drain_cmds_sent &&
            (routing.empty() || now >= drain_route_deadline)) {
            drain_cmds_sent = true;
            for (auto &[rid, rc] : routing)
                if (rc.fd >= 0)
                    ::close(rc.fd); // header never completed in time
            routing.clear();
            char msg[5];
            msg[0] = 'd';
            uint32_t ms32 = uint32_t(std::min<uint64_t>(
                opts.drain_deadline_ms, 0xffffffffull));
            for (int b = 0; b < 4; ++b)
                msg[1 + b] = char((ms32 >> (8 * b)) & 0xff);
            std::lock_guard<std::mutex> lock(fleet_mu);
            for (unsigned i = 0; i < nshards; ++i) {
                ShardSlot &s = slots[i];
                if (s.chan < 0)
                    continue;
                [[maybe_unused]] ssize_t w =
                    ::send(s.chan, msg, sizeof(msg), MSG_NOSIGNAL);
                s.drain_sent = true;
            }
        }
        bool all_exited = true;
        std::vector<pid_t> stragglers;
        {
            std::lock_guard<std::mutex> lock(fleet_mu);
            for (const ShardSlot &s : slots) {
                if (s.pid <= 0)
                    continue;
                all_exited = false;
                if (now >=
                    drain_deadline + std::chrono::milliseconds(1000))
                    stragglers.push_back(s.pid);
            }
        }
        if (all_exited) {
            done = true;
        } else if (!stragglers.empty()) {
            for (pid_t pid : stragglers)
                ::kill(pid, SIGKILL);
            unclean_exit = true;
        }
        if (now >= drain_deadline + std::chrono::milliseconds(5000))
            done = true; // absolute cap; teardown reaps what remains
    }

    std::cout << "mdesc serve: shutting down " << nshards << " shards\n"
              << std::flush;
    if (listen_fd >= 0)
        ::close(listen_fd);
    ::close(sfd);
    for (auto &[id, rc] : routing)
        if (rc.fd >= 0)
            ::close(rc.fd);
    // Stop the stats thread before closing the feed channels it dups;
    // a round in flight finishes first (bounded by its poll and write
    // deadlines).
    {
        std::lock_guard<std::mutex> lock(stat_mu);
        stat_shutdown = true;
        for (const StatConn &sc : stat_queue)
            ::close(sc.fd);
        stat_queue.clear();
    }
    stat_cv.notify_one();
    stat_thread.join();
    ::close(ep);
    int exit_code = unclean_exit ? 1 : 0;
    {
        std::lock_guard<std::mutex> lock(fleet_mu);
        for (ShardSlot &s : slots) {
            if (s.chan >= 0) {
                ::close(s.chan); // feed EOF: children drain and exit
                s.chan = -1;
            }
        }
    }
    for (ShardSlot &s : slots) {
        if (s.pid <= 0)
            continue;
        int status = 0;
        if (waitpid(s.pid, &status, 0) < 0 || !WIFEXITED(status) ||
            WEXITSTATUS(status) != 0)
            exit_code = 1;
        s.pid = -1;
    }
    std::cout << "mdesc serve: shards exited "
              << (exit_code == 0 ? "cleanly" : "with errors") << "\n";
    return exit_code;
}

} // namespace

int
runServe(const ServeOptions &opts)
{
    if (opts.shards > 1)
        return runShardedServe(opts);
    return runSingleServe(opts);
}

} // namespace mdes::net
