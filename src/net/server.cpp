#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/signalfd.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <iostream>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame.h"
#include "service/request_parse.h"
#include "service/stats.h"
#include "support/diagnostics.h"
#include "support/faultsim.h"
#include "support/flightrec.h"
#include "support/json.h"

namespace mdes::net {

using service::ErrorCode;
using service::MdesService;
using service::ScheduleRequest;
using service::ScheduleResponse;

namespace {

void
setNonBlocking(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/** Bind+listen a nonblocking TCP socket on @p host:@p port (numeric
 * address or "localhost"); fills @p bound_port with the resolved
 * ephemeral port. Throws MdesError on failure. */
int
makeListenSocket(const std::string &host, uint16_t port,
                 uint16_t *bound_port)
{
    int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0)
        throw MdesError(std::string("net: socket: ") + strerror(errno));
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    std::string numeric = host == "localhost" ? "127.0.0.1" : host;
    if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
        close(fd);
        throw MdesError("net: bad listen address '" + host +
                        "' (numeric IPv4 or 'localhost')");
    }
    if (bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) != 0) {
        int e = errno;
        close(fd);
        throw MdesError("net: bind " + host + ":" + std::to_string(port) +
                        ": " + strerror(e));
    }
    if (listen(fd, 128) != 0) {
        int e = errno;
        close(fd);
        throw MdesError(std::string("net: listen: ") + strerror(e));
    }
    socklen_t len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) == 0)
        *bound_port = ntohs(addr.sin_port);
    return fd;
}

/** Pass @p fd over the SOCK_SEQPACKET channel @p chan via SCM_RIGHTS. */
bool
sendFd(int chan, int fd)
{
    char byte = 'c';
    iovec iov{&byte, 1};
    alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))] = {};
    msghdr msg{};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = cbuf;
    msg.msg_controllen = sizeof(cbuf);
    cmsghdr *cm = CMSG_FIRSTHDR(&msg);
    cm->cmsg_level = SOL_SOCKET;
    cm->cmsg_type = SCM_RIGHTS;
    cm->cmsg_len = CMSG_LEN(sizeof(int));
    std::memcpy(CMSG_DATA(cm), &fd, sizeof(int));
    for (;;) {
        if (sendmsg(chan, &msg, 0) >= 0)
            return true;
        if (errno != EINTR)
            return false;
    }
}

/** Receive one message from @p chan. An fd-bearing message returns the
 * fd; a plain data message (the parent's stat poll) fills @p data and
 * returns -3. Returns -1 on EAGAIN, -2 on EOF/error (channel closed -
 * graceful-shutdown cue). */
int
recvFd(int chan, std::string *data = nullptr)
{
    char buf[64] = {};
    iovec iov{buf, sizeof(buf)};
    alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))] = {};
    msghdr msg{};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = cbuf;
    msg.msg_controllen = sizeof(cbuf);
    for (;;) {
        ssize_t n = recvmsg(chan, &msg, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errno == EAGAIN || errno == EWOULDBLOCK ? -1 : -2;
        }
        if (n == 0)
            return -2;
        for (cmsghdr *cm = CMSG_FIRSTHDR(&msg); cm;
             cm = CMSG_NXTHDR(&msg, cm)) {
            if (cm->cmsg_level == SOL_SOCKET &&
                cm->cmsg_type == SCM_RIGHTS) {
                int fd = -1;
                std::memcpy(&fd, CMSG_DATA(cm), sizeof(int));
                return fd;
            }
        }
        if (data) {
            data->assign(buf, size_t(n));
            return -3;
        }
        // A data message nobody asked about: ignore and keep reading.
    }
}

/** Thread-safe monotonic net counters; the loop thread writes, metrics
 * snapshots read (relaxed - these are statistics, not synchronization). */
struct NetCounters
{
    std::atomic<uint64_t> accepted{0}, closed{0}, active{0}, resets{0};
    std::atomic<uint64_t> frames_in{0}, frames_out{0};
    std::atomic<uint64_t> bytes_in{0}, bytes_out{0};
    std::atomic<uint64_t> protocol_errors{0}, bad_requests{0};
    std::atomic<uint64_t> shed{0}, deadline_expired{0};
    std::atomic<uint64_t> backpressure_stalls{0}, cancelled_on_close{0};
    std::atomic<uint64_t> stats_requests{0}, stats_coalesced{0};

    void
    fill(service::NetStats &out) const
    {
        out.enabled = true;
        out.accepted = accepted.load(std::memory_order_relaxed);
        out.closed = closed.load(std::memory_order_relaxed);
        out.active = active.load(std::memory_order_relaxed);
        out.resets = resets.load(std::memory_order_relaxed);
        out.frames_in = frames_in.load(std::memory_order_relaxed);
        out.frames_out = frames_out.load(std::memory_order_relaxed);
        out.bytes_in = bytes_in.load(std::memory_order_relaxed);
        out.bytes_out = bytes_out.load(std::memory_order_relaxed);
        out.protocol_errors =
            protocol_errors.load(std::memory_order_relaxed);
        out.bad_requests = bad_requests.load(std::memory_order_relaxed);
        out.shed = shed.load(std::memory_order_relaxed);
        out.deadline_expired =
            deadline_expired.load(std::memory_order_relaxed);
        out.backpressure_stalls =
            backpressure_stalls.load(std::memory_order_relaxed);
        out.cancelled_on_close =
            cancelled_on_close.load(std::memory_order_relaxed);
        out.stats_requests =
            stats_requests.load(std::memory_order_relaxed);
        out.stats_coalesced =
            stats_coalesced.load(std::memory_order_relaxed);
    }
};

/** One client connection's loop-local state. */
struct Conn
{
    int fd = -1;
    uint64_t id = 0;
    enum class Mode { Unknown, Binary, Json } mode = Mode::Unknown;

    FrameDecoder decoder;
    /** JSON mode: bytes up to the next newline. */
    std::string jsonbuf;

    /** Outbound bytes not yet written ([out_pos, size)). */
    std::string out;
    size_t out_pos = 0;

    /** Requests submitted to the service, not yet responded. */
    uint32_t inflight = 0;
    /** Their service ids, for cancel-on-close (best effort: an id may
     * be missing if its completion fired before submit() returned). */
    std::vector<uint64_t> pending;

    bool paused = false;    // EPOLLIN dropped (backpressure)
    bool closing = false;   // flush out, then close
    uint32_t epoll_events = 0;

    /** STAT coalescing: at most one stats response may occupy `out` at
     * a time; further STATs arriving while it drains collapse into one
     * answer carrying the latest id, sent when the buffer empties. A
     * stat flood therefore contributes at most one response to `out`
     * no matter how fast it polls. */
    bool stat_inflight = false;
    bool stat_waiting = false;
    uint64_t stat_waiting_id = 0;

    size_t
    outstandingOut() const
    {
        return out.size() - out_pos;
    }
};

/** epoll user-data ids for the non-connection fds. */
constexpr uint64_t kIdListen = 1, kIdFeed = 2, kIdEvent = 3;
constexpr uint64_t kFirstConnId = 16;

/** Ceiling on error text echoed back to a peer. Parse errors quote the
 * offending token, which a hostile request can grow to nearly
 * kMaxPayload - and jsonEscape can expand it up to 6x beyond that -
 * so untruncated echoes would make the response frame unencodable.
 * 512 bytes keeps every response comfortably inside kMaxPayload. */
constexpr size_t kMaxErrorMessage = 512;

std::string
truncateErrorMessage(const std::string &msg)
{
    if (msg.size() <= kMaxErrorMessage)
        return msg;
    return msg.substr(0, kMaxErrorMessage) + "... [truncated]";
}

/** Sentinel a completion leaves in its request-id holder to record
 * that it already fired (service ids start at 1 and never reach it). */
constexpr uint64_t kRidFired = ~uint64_t(0);

/** One finished request on its way back to the loop. */
struct Completion
{
    uint64_t conn_id = 0;
    /** Service request id (0 when unknown; see Conn::pending). */
    uint64_t request_id = 0;
    ErrorCode code = ErrorCode::Ok;
    /** Fully serialized wire bytes (frame or JSON line). */
    std::string bytes;
};

} // namespace

struct Server::Impl
{
    ServerConfig config;
    std::unique_ptr<MdesService> svc;

    int epoll_fd = -1;
    int event_fd = -1;
    int listen_fd = -1;
    int feed_fd = -1;
    uint16_t bound_port = 0;

    std::thread loop;
    std::atomic<bool> stop_requested{false};
    std::mutex done_mu;
    std::condition_variable done_cv;
    bool loop_done = false;
    bool started = false;
    bool stopped = false;

    std::mutex comp_mu;
    std::vector<Completion> completions;

    NetCounters counters;
    /** Metrics captured at stop() so metrics() works after shutdown. */
    service::ServiceMetrics final_metrics;

    std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;
    uint64_t next_conn_id = kFirstConnId;

    // --- epoll plumbing ----------------------------------------------

    void
    epollAdd(int fd, uint64_t id, uint32_t events)
    {
        epoll_event ev{};
        ev.events = events;
        ev.data.u64 = id;
        if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0)
            throw MdesError(std::string("net: epoll_ctl add: ") +
                            strerror(errno));
    }

    void
    updateInterest(Conn &conn)
    {
        uint32_t events = 0;
        if (!conn.paused && !conn.closing)
            events |= EPOLLIN;
        if (conn.outstandingOut() > 0)
            events |= EPOLLOUT;
        if (events == conn.epoll_events)
            return;
        epoll_event ev{};
        ev.events = events;
        ev.data.u64 = conn.id;
        epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
        conn.epoll_events = events;
    }

    void
    wake()
    {
        uint64_t one = 1;
        [[maybe_unused]] ssize_t n = ::write(event_fd, &one, sizeof(one));
    }

    // --- connection lifecycle ----------------------------------------

    /** Adopt @p fd as a new connection (from accept or the shard feed).
     * Applies the net/accept-fail fault site. */
    void
    adoptConnection(int fd)
    {
        setNonBlocking(fd);
        uint64_t id = next_conn_id++;
        faultsim::TokenScope scope(id);
        if (faultsim::probe(faultsim::Site::NetAcceptFail).fired) {
            ::close(fd);
            counters.resets.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->id = id;
        conn->epoll_events = EPOLLIN;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = id;
        if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
            // Must not throw out of the loop thread; drop the conn.
            ::close(fd);
            return;
        }
        conns.emplace(id, std::move(conn));
        counters.accepted.fetch_add(1, std::memory_order_relaxed);
        counters.active.fetch_add(1, std::memory_order_relaxed);
    }

    /** Close @p conn, cancelling whatever is still in flight. @p abrupt
     * marks server-initiated teardown (counted as a reset). */
    void
    closeConn(Conn &conn, bool abrupt)
    {
        if (conn.inflight) {
            counters.cancelled_on_close.fetch_add(
                conn.inflight, std::memory_order_relaxed);
            for (uint64_t rid : conn.pending)
                svc->cancel(rid);
        }
        if (abrupt)
            counters.resets.fetch_add(1, std::memory_order_relaxed);
        ::close(conn.fd);
        counters.closed.fetch_add(1, std::memory_order_relaxed);
        counters.active.fetch_sub(1, std::memory_order_relaxed);
        conns.erase(conn.id); // invalidates conn
    }

    // --- outbound path ------------------------------------------------

    void
    enqueueOut(Conn &conn, std::string bytes)
    {
        counters.frames_out.fetch_add(1, std::memory_order_relaxed);
        if (conn.outstandingOut() == 0) {
            conn.out = std::move(bytes);
            conn.out_pos = 0;
        } else {
            conn.out += bytes;
        }
        // Every enqueue can cross the high-water mark, not just request
        // submission: a peer that floods pings or malformed frames
        // while never reading must also stop being read, or its
        // outbound buffer grows without bound.
        maybePause(conn);
    }

    /** Write until EAGAIN or drained; returns false when the
     * connection died (already closed). */
    bool
    flushWrites(Conn &conn)
    {
        faultsim::TokenScope scope(conn.id);
        for (;;) {
            while (conn.outstandingOut() > 0) {
                auto stall =
                    faultsim::probe(faultsim::Site::NetStalledWrite);
                if (stall.fired && stall.delay_us)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(stall.delay_us));
                size_t n = conn.outstandingOut();
                if (faultsim::probe(faultsim::Site::NetShortWrite).fired)
                    n = 1;
                ssize_t w =
                    ::write(conn.fd, conn.out.data() + conn.out_pos, n);
                if (w > 0) {
                    conn.out_pos += size_t(w);
                    counters.bytes_out.fetch_add(
                        uint64_t(w), std::memory_order_relaxed);
                    continue;
                }
                if (w < 0 && errno == EINTR)
                    continue;
                if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                    return true;
                closeConn(conn, /*abrupt=*/true);
                return false;
            }
            conn.out.clear();
            conn.out_pos = 0;
            // Fully drained: the in-flight stat response (if any) is on
            // the wire, so a coalesced poll can now be answered - with
            // a *fresh* snapshot, which is what the poller wants.
            if (conn.stat_inflight) {
                conn.stat_inflight = false;
                if (conn.stat_waiting) {
                    conn.stat_waiting = false;
                    conn.stat_inflight = true;
                    enqueueOut(conn,
                               statResponseBytes(conn,
                                                 conn.stat_waiting_id));
                    continue; // try to write it out right now
                }
            }
            break;
        }
        if (conn.closing) {
            closeConn(conn, /*abrupt=*/false);
            return false;
        }
        return true;
    }

    // --- backpressure -------------------------------------------------

    void
    maybePause(Conn &conn)
    {
        if (conn.paused)
            return;
        if (conn.inflight >= config.max_inflight_per_conn ||
            conn.outstandingOut() > config.write_high_water) {
            conn.paused = true;
            counters.backpressure_stalls.fetch_add(
                1, std::memory_order_relaxed);
        }
    }

    void
    maybeResume(Conn &conn)
    {
        if (conn.paused && conn.inflight < config.max_inflight_per_conn &&
            conn.outstandingOut() <= config.write_high_water)
            conn.paused = false;
    }

    // --- inbound path -------------------------------------------------

    /** Respond to a malformed-but-framed request: typed BadRequest, the
     * connection survives. */
    void
    sendBadRequest(Conn &conn, uint64_t wire_id, const std::string &msg)
    {
        counters.bad_requests.fetch_add(1, std::memory_order_relaxed);
        ScheduleResponse resp;
        resp.error = {ErrorCode::BadRequest, msg};
        std::string body = serializeResponse(wire_id, resp);
        if (conn.mode == Conn::Mode::Json) {
            enqueueOut(conn, body + "\n");
        } else {
            Frame f;
            f.type = FrameType::Error;
            f.id = wire_id;
            f.payload = std::move(body);
            enqueueOut(conn, encodeFrame(f));
        }
    }

    /** A framing violation: emit one typed Error frame naming the
     * ProtoError, then flush and close (the stream has no trustworthy
     * resync point). */
    void
    sendProtocolError(Conn &conn, ProtoError err)
    {
        counters.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        ScheduleResponse resp;
        resp.error = {ErrorCode::BadRequest,
                      std::string("protocol error: ") +
                          protoErrorName(err)};
        std::string body = serializeResponse(0, resp);
        if (conn.mode == Conn::Mode::Json) {
            enqueueOut(conn, body + "\n");
        } else {
            Frame f;
            f.type = FrameType::Error;
            f.payload = std::move(body);
            enqueueOut(conn, encodeFrame(f));
        }
        conn.closing = true;
    }

    void
    submitRequest(Conn &conn, uint64_t wire_id, ScheduleRequest req)
    {
        ++conn.inflight;
        bool json = conn.mode == Conn::Mode::Json;
        uint64_t conn_id = conn.id;
        Impl *self = this;
        // The completion may run before submit() returns (shed path).
        // The holder arbitrates: whichever side runs second sees what
        // the first left behind - the completion either reads the real
        // id or marks kRidFired so the submit side skips the pending
        // bookkeeping for an id that can never be removed.
        auto rid_holder = std::make_shared<std::atomic<uint64_t>>(0);
        uint64_t rid = svc->submit(
            std::move(req),
            [self, conn_id, wire_id, json, rid_holder](
                ScheduleResponse resp) {
                Completion c;
                c.conn_id = conn_id;
                c.request_id = rid_holder->exchange(
                    kRidFired, std::memory_order_acq_rel);
                c.code = resp.error.code;
                // A worker (or the loop, on the shed path) must never
                // unwind: fall back to a minimal typed error if the
                // response cannot be framed.
                try {
                    std::string body = serializeResponse(wire_id, resp);
                    if (json) {
                        c.bytes = body + "\n";
                    } else {
                        Frame f;
                        f.type = FrameType::Response;
                        f.id = wire_id;
                        f.payload = std::move(body);
                        c.bytes = encodeFrame(f);
                    }
                } catch (const std::exception &) {
                    ScheduleResponse min;
                    min.error = {ErrorCode::Internal,
                                 "response serialization failed"};
                    c.code = min.error.code;
                    std::string body = serializeResponse(wire_id, min);
                    if (json) {
                        c.bytes = body + "\n";
                    } else {
                        Frame f;
                        f.type = FrameType::Error;
                        f.id = wire_id;
                        f.payload = std::move(body);
                        c.bytes = encodeFrame(f);
                    }
                }
                {
                    std::lock_guard<std::mutex> lock(self->comp_mu);
                    self->completions.push_back(std::move(c));
                }
                self->wake();
            });
        if (rid_holder->exchange(rid, std::memory_order_acq_rel) !=
            kRidFired)
            conn.pending.push_back(rid);
        maybePause(conn);
    }

    /** Serialize one live stats answer for @p conn's wire mode. Binary
     * mode: a Response frame whose payload is the stats document; JSON
     * mode: the document itself with an "id" field prepended. */
    std::string
    statResponseBytes(const Conn &conn, uint64_t wire_id)
    {
        service::ServiceMetrics m = svc->metricsSnapshot();
        counters.fill(m.net);
        std::string doc =
            service::statsToJson(m, service::windowNowS());
        if (conn.mode == Conn::Mode::Json) {
            // Splice the id into the document so JSON-lines pollers get
            // the same schema as the frame payload, plus correlation.
            return "{\"id\":" + std::to_string(wire_id) + "," +
                   doc.substr(1) + "\n";
        }
        Frame f;
        f.type = FrameType::Response;
        f.id = wire_id;
        f.payload = std::move(doc);
        return encodeFrame(f);
    }

    /** One STAT poll (either wire mode). Serialized per connection:
     * while a stats response is still draining, further polls coalesce
     * into one pending answer with the latest id. */
    void
    handleStat(Conn &conn, uint64_t wire_id)
    {
        counters.stats_requests.fetch_add(1, std::memory_order_relaxed);
        if (conn.stat_inflight) {
            if (conn.stat_waiting)
                counters.stats_coalesced.fetch_add(
                    1, std::memory_order_relaxed);
            conn.stat_waiting = true;
            conn.stat_waiting_id = wire_id;
            return;
        }
        conn.stat_inflight = true;
        enqueueOut(conn, statResponseBytes(conn, wire_id));
    }

    /** Handle one decoded binary frame. Returns false when the
     * connection was torn down. */
    bool
    handleFrame(Conn &conn, Frame &frame)
    {
        counters.frames_in.fetch_add(1, std::memory_order_relaxed);
        faultsim::TokenScope scope(conn.id);
        switch (frame.type) {
        case FrameType::Ping: {
            Frame pong;
            pong.type = FrameType::Pong;
            pong.id = frame.id;
            enqueueOut(conn, encodeFrame(pong));
            return true;
        }
        case FrameType::Pong:
            return true;
        case FrameType::Stat:
            handleStat(conn, frame.id);
            return true;
        case FrameType::Response:
        case FrameType::Error:
            sendBadRequest(conn, frame.id,
                           "unexpected frame type from client");
            return true;
        case FrameType::Request:
            break;
        }
        // Injected peer reset: evaluated exactly once per decoded
        // request frame (a protocol event, not a syscall), so replays
        // of the same connection stream make the same decision.
        if (faultsim::probe(faultsim::Site::NetPeerReset).fired) {
            closeConn(conn, /*abrupt=*/true);
            return false;
        }
        ScheduleRequest req;
        try {
            service::RequestParseOptions opts;
            opts.allow_files = false;
            req = service::parseRequestLine(frame.payload, 0, opts);
        } catch (const MdesError &e) {
            sendBadRequest(conn, frame.id, e.what());
            return true;
        }
        if (frame.deadline_ms)
            req.deadline_ms = int64_t(frame.deadline_ms);
        submitRequest(conn, frame.id, std::move(req));
        return true;
    }

    /** Handle one newline-delimited JSON request. Returns false when
     * the connection was torn down. */
    bool
    handleJsonLine(Conn &conn, const std::string &line)
    {
        if (line.empty())
            return true;
        counters.frames_in.fetch_add(1, std::memory_order_relaxed);
        faultsim::TokenScope scope(conn.id);
        uint64_t wire_id = 0;
        std::string reqline;
        uint32_t deadline_ms = 0;
        bool is_stats = false;
        try {
            JsonValue doc = parseJson(line);
            if (doc.kind != JsonValue::Kind::Object)
                throw MdesError("request must be a JSON object");
            // jsonU64: the wire id is a full u64 and must not round
            // through the parser's double above 2^53.
            if (const JsonValue *id = doc.find("id"))
                wire_id = jsonU64(*id);
            if (const JsonValue *op = doc.find("op")) {
                if (op->kind != JsonValue::Kind::String ||
                    op->string != "stats")
                    throw MdesError("unknown op (only \"stats\")");
                is_stats = true;
            } else {
                const JsonValue *req = doc.find("req");
                if (!req || req->kind != JsonValue::Kind::String)
                    throw MdesError("missing string field 'req'");
                reqline = req->string;
                if (const JsonValue *dl = doc.find("deadline_ms"))
                    deadline_ms = uint32_t(jsonU64(*dl));
                // "route" is the shard acceptor's concern; ignored
                // here.
            }
        } catch (const MdesError &e) {
            sendBadRequest(conn, wire_id, e.what());
            return true;
        }
        if (is_stats) {
            handleStat(conn, wire_id);
            return true;
        }
        if (faultsim::probe(faultsim::Site::NetPeerReset).fired) {
            closeConn(conn, /*abrupt=*/true);
            return false;
        }
        ScheduleRequest req;
        try {
            service::RequestParseOptions opts;
            opts.allow_files = false;
            req = service::parseRequestLine(reqline, 0, opts);
        } catch (const MdesError &e) {
            sendBadRequest(conn, wire_id, e.what());
            return true;
        }
        if (deadline_ms)
            req.deadline_ms = int64_t(deadline_ms);
        submitRequest(conn, wire_id, std::move(req));
        return true;
    }

    /** Feed freshly read bytes through the mode-appropriate parser.
     * Returns false when the connection was torn down. */
    bool
    consume(Conn &conn, const char *data, size_t len)
    {
        if (conn.mode == Conn::Mode::Unknown && len > 0)
            conn.mode = data[0] == '{' ? Conn::Mode::Json
                                       : Conn::Mode::Binary;
        if (conn.mode == Conn::Mode::Json) {
            conn.jsonbuf.append(data, len);
            size_t start = 0;
            for (;;) {
                size_t nl = conn.jsonbuf.find('\n', start);
                if (nl == std::string::npos)
                    break;
                std::string line =
                    conn.jsonbuf.substr(start, nl - start);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                start = nl + 1;
                if (!handleJsonLine(conn, line))
                    return false;
            }
            conn.jsonbuf.erase(0, start);
            if (conn.jsonbuf.size() > kMaxPayload) {
                sendProtocolError(conn, ProtoError::OversizedPayload);
            }
            return true;
        }
        conn.decoder.feed(data, len);
        for (;;) {
            Frame frame;
            FrameDecoder::Status st = conn.decoder.next(&frame);
            if (st == FrameDecoder::Status::NeedMore)
                return true;
            if (st == FrameDecoder::Status::Error) {
                sendProtocolError(conn, conn.decoder.error());
                return true;
            }
            if (!handleFrame(conn, frame))
                return false;
            // Keep decoding even when paused: backpressure stops
            // *reading the socket*, not already-buffered frames -
            // otherwise a paused connection whose peer is done sending
            // would never see its remaining requests submitted.
            if (conn.closing)
                return true;
        }
    }

    void
    handleReadable(Conn &conn)
    {
        faultsim::TokenScope scope(conn.id);
        char buf[16384];
        for (;;) {
            size_t want = sizeof(buf);
            if (faultsim::probe(faultsim::Site::NetShortRead).fired)
                want = 1;
            ssize_t n = ::read(conn.fd, buf, want);
            if (n > 0) {
                counters.bytes_in.fetch_add(uint64_t(n),
                                            std::memory_order_relaxed);
                if (!consume(conn, buf, size_t(n)))
                    return; // conn gone
                if (conn.paused || conn.closing)
                    break;
                continue;
            }
            if (n == 0) {
                closeConn(conn, /*abrupt=*/false);
                return;
            }
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            closeConn(conn, /*abrupt=*/true);
            return;
        }
        if (!flushWrites(conn))
            return;
        // The flush may have drained a pause caused purely by output
        // (ping/bad-frame floods produce no completion to resume via
        // drainCompletions); re-evaluate here or the connection wedges
        // with no interest bits armed.
        maybeResume(conn);
        updateInterest(conn);
    }

    void
    handleAccept()
    {
        for (;;) {
            int fd = accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (fd < 0) {
                if (errno == EINTR)
                    continue;
                return; // EAGAIN or transient accept error
            }
            adoptConnection(fd);
        }
    }

    /** Shard child: answer the parent's stat poll ('s' + 8-byte seq)
     * with one datagram of seq + this shard's stats document. Sent
     * best-effort on the nonblocking channel: a full buffer just means
     * the parent reports this shard stale for that poll. */
    void
    answerStatPoll(const std::string &poll)
    {
        if (poll.size() < 9 || poll[0] != 's')
            return;
        service::ServiceMetrics m = svc->metricsSnapshot();
        counters.fill(m.net);
        std::string reply = poll.substr(1, 8);
        reply += service::statsToJson(m, service::windowNowS());
        [[maybe_unused]] ssize_t n = ::send(feed_fd, reply.data(),
                                            reply.size(), MSG_NOSIGNAL);
    }

    /** Shard child: drain connection fds (and stat polls) off the feed
     * channel. Returns false on channel EOF (graceful-shutdown cue). */
    bool
    handleFeed()
    {
        for (;;) {
            std::string data;
            int fd = recvFd(feed_fd, &data);
            if (fd == -1)
                return true; // EAGAIN
            if (fd == -2)
                return false; // EOF: parent is shutting down
            if (fd == -3) {
                answerStatPoll(data);
                continue;
            }
            adoptConnection(fd);
        }
    }

    void
    drainCompletions()
    {
        std::vector<Completion> batch;
        {
            std::lock_guard<std::mutex> lock(comp_mu);
            batch.swap(completions);
        }
        for (Completion &c : batch) {
            if (c.code == ErrorCode::Overloaded)
                counters.shed.fetch_add(1, std::memory_order_relaxed);
            else if (c.code == ErrorCode::DeadlineExceeded)
                counters.deadline_expired.fetch_add(
                    1, std::memory_order_relaxed);
            auto it = conns.find(c.conn_id);
            if (it == conns.end())
                continue; // connection closed first; already counted
            Conn &conn = *it->second;
            if (conn.inflight)
                --conn.inflight;
            if (c.request_id) {
                auto &p = conn.pending;
                for (size_t i = 0; i < p.size(); ++i) {
                    if (p[i] == c.request_id) {
                        p[i] = p.back();
                        p.pop_back();
                        break;
                    }
                }
            }
            enqueueOut(conn, std::move(c.bytes));
            // Resume only after the flush: the just-enqueued response
            // counts against the high-water mark until written, and a
            // pre-flush resume decision could strand a paused
            // connection whose buffer then drains completely.
            if (flushWrites(conn)) {
                maybeResume(conn);
                updateInterest(conn);
            }
        }
    }

    void
    run()
    {
        epoll_event evs[64];
        bool done = false;
        while (!done) {
            int n = epoll_wait(epoll_fd, evs, 64, -1);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            for (int i = 0; i < n && !done; ++i) {
                uint64_t id = evs[i].data.u64;
                if (id == kIdEvent) {
                    uint64_t junk;
                    [[maybe_unused]] ssize_t r =
                        ::read(event_fd, &junk, sizeof(junk));
                    drainCompletions();
                    if (stop_requested.load(std::memory_order_acquire))
                        done = true;
                } else if (id == kIdListen) {
                    handleAccept();
                } else if (id == kIdFeed) {
                    if (!handleFeed()) {
                        stop_requested.store(
                            true, std::memory_order_release);
                        done = true;
                    }
                } else {
                    auto it = conns.find(id);
                    if (it == conns.end())
                        continue; // closed earlier in this batch
                    uint32_t events = evs[i].events;
                    // Nothing may unwind the loop thread (that would
                    // std::terminate the process): an unexpected
                    // exception costs the offending connection only.
                    try {
                        Conn &conn = *it->second;
                        if (events & (EPOLLHUP | EPOLLERR)) {
                            closeConn(conn, /*abrupt=*/true);
                            continue;
                        }
                        if (events & EPOLLOUT) {
                            if (!flushWrites(conn))
                                continue;
                            maybeResume(conn);
                            updateInterest(conn);
                            // re-find: flush may have closed on
                            // `closing`
                            if (conns.find(id) == conns.end())
                                continue;
                        }
                        if (events & EPOLLIN)
                            handleReadable(conn);
                    } catch (const std::exception &) {
                        auto again = conns.find(id);
                        if (again != conns.end())
                            closeConn(*again->second, /*abrupt=*/true);
                    }
                }
            }
        }
        // Final drain so late completions are counted, then teardown.
        drainCompletions();
        std::vector<uint64_t> ids;
        ids.reserve(conns.size());
        for (auto &[id, conn] : conns)
            ids.push_back(id);
        for (uint64_t id : ids) {
            auto it = conns.find(id);
            if (it != conns.end())
                closeConn(*it->second, /*abrupt=*/false);
        }
        {
            std::lock_guard<std::mutex> lock(done_mu);
            loop_done = true;
        }
        done_cv.notify_all();
    }
};

Server::Server(ServerConfig config) : impl_(std::make_unique<Impl>())
{
    impl_->config = std::move(config);
}

Server::~Server()
{
    try {
        stop();
    } catch (...) {
        // Destructors must not throw; stop() failures are already
        // reflected in closed fds.
    }
}

void
Server::start()
{
    Impl &im = *impl_;
    if (im.started)
        return;
    im.epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    if (im.epoll_fd < 0)
        throw MdesError(std::string("net: epoll_create1: ") +
                        strerror(errno));
    im.event_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (im.event_fd < 0)
        throw MdesError(std::string("net: eventfd: ") + strerror(errno));
    im.epollAdd(im.event_fd, kIdEvent, EPOLLIN);

    if (im.config.conn_feed_fd >= 0) {
        im.feed_fd = im.config.conn_feed_fd;
        setNonBlocking(im.feed_fd);
        im.epollAdd(im.feed_fd, kIdFeed, EPOLLIN);
    } else if (im.config.inherit_listen_fd >= 0) {
        im.listen_fd = im.config.inherit_listen_fd;
        setNonBlocking(im.listen_fd);
        im.epollAdd(im.listen_fd, kIdListen, EPOLLIN);
    } else {
        im.listen_fd = makeListenSocket(im.config.host, im.config.port,
                                        &im.bound_port);
        im.epollAdd(im.listen_fd, kIdListen, EPOLLIN);
    }

    im.svc = std::make_unique<MdesService>(im.config.service);
    im.loop = std::thread([&im] { im.run(); });
    im.started = true;
}

void
Server::stop()
{
    Impl &im = *impl_;
    if (!im.started || im.stopped)
        return;
    im.stop_requested.store(true, std::memory_order_release);
    im.wake();
    im.loop.join();
    // Capture the final snapshot before the service goes away, so
    // metrics() keeps answering after shutdown.
    im.final_metrics = im.svc->metricsSnapshot();
    im.counters.fill(im.final_metrics.net);
    // Service teardown drains outstanding jobs; their completions still
    // push to the (now undrained) queue and poke the eventfd - both
    // stay valid until below.
    im.svc.reset();
    if (im.listen_fd >= 0)
        ::close(im.listen_fd);
    if (im.feed_fd >= 0)
        ::close(im.feed_fd);
    ::close(im.event_fd);
    ::close(im.epoll_fd);
    im.listen_fd = im.feed_fd = im.event_fd = im.epoll_fd = -1;
    im.stopped = true;
}

uint16_t
Server::port() const
{
    return impl_->bound_port;
}

service::ServiceMetrics
Server::metrics() const
{
    Impl &im = *impl_;
    if (!im.svc)
        return im.final_metrics;
    service::ServiceMetrics m = im.svc->metricsSnapshot();
    im.counters.fill(m.net);
    return m;
}

service::MdesService &
Server::service()
{
    return *impl_->svc;
}

bool
Server::stopping() const
{
    return impl_->stop_requested.load(std::memory_order_acquire);
}

void
Server::waitUntilStopped()
{
    Impl &im = *impl_;
    std::unique_lock<std::mutex> lock(im.done_mu);
    im.done_cv.wait(lock, [&im] { return im.loop_done; });
}

std::string
serializeResponse(uint64_t id, const ScheduleResponse &resp)
{
    JsonWriter w;
    w.beginObject();
    w.key("id").value(id);
    w.key("code").value(uint64_t(resp.error.code));
    w.key("error").value(service::errorCodeName(resp.error.code));
    if (resp.error)
        w.key("message").value(truncateErrorMessage(resp.error.message));
    if (!resp.machine.empty())
        w.key("machine").value(resp.machine);
    // Decimal string: a u64 does not survive a JSON double. Errors get
    // a literal 0 so no client mistakes the empty-schedule hash (the
    // FNV basis) for a real fingerprint.
    w.key("fingerprint")
        .value(std::to_string(
            resp.ok() ? service::scheduleFingerprint(resp) : 0));
    w.key("cache_hit").value(resp.cache_hit);
    w.key("disk_hit").value(resp.disk_hit);
    w.key("degraded").value(resp.degraded);
    w.key("total_cycles").value(resp.total_cycles);
    w.key("blocks").value(
        uint64_t(resp.schedules.size() + resp.modulo.size()));
    w.endObject();
    return w.str();
}

// ---------------------------------------------------------------------
// mdesc serve: signal-driven single-process and fork-per-shard modes.
// ---------------------------------------------------------------------

namespace {

/** Block SIGINT/SIGTERM in the calling thread (inherited by threads
 * spawned after); returns the set for sigwait/signalfd. */
sigset_t
blockTermSignals()
{
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
    return set;
}

void
dumpMetrics(const service::ServiceMetrics &m, bool json)
{
    if (json)
        std::cout << m.toJson() << "\n";
    else
        std::cout << m.toTable();
}

/** Arm the flight-recorder spool for this serving process (@p shard
 * >= 0 selects a per-shard subdirectory). No-op when disabled. */
void
armFlightRecorder(const ServeOptions &opts, int shard)
{
    if (opts.flightrec_dir.empty())
        return;
    flightrec::SpoolConfig cfg;
    cfg.dir = opts.flightrec_dir;
    if (shard >= 0)
        cfg.dir += "/shard-" + std::to_string(shard);
    cfg.max_bytes = opts.flightrec_max_bytes;
    cfg.slow_us = opts.flightrec_slow_ms * 1000;
    flightrec::armSpool(cfg);
    // Announce the disk side effect (opt-in, but say where it lands).
    std::cout << "mdesc serve: flight recorder spooling to " << cfg.dir
              << " (cap " << (cfg.max_bytes >> 20) << " MiB, slow >= "
              << opts.flightrec_slow_ms << " ms)\n";
}

int
runSingleServe(const ServeOptions &opts)
{
    sigset_t set = blockTermSignals();
    armFlightRecorder(opts, /*shard=*/-1);
    Server server(opts.server);
    server.start();
    std::cout << "mdesc serve: listening on " << opts.server.host << ":"
              << server.port() << " (pid " << getpid() << ", "
              << server.service().numWorkers() << " workers)\n"
              << std::flush;
    int sig = 0;
    sigwait(&set, &sig);
    std::cout << "mdesc serve: " << strsignal(sig)
              << ", shutting down\n";
    server.stop();
    dumpMetrics(server.metrics(), opts.json_metrics);
    return 0;
}

/** Shard child body: serve connections off @p feed_fd until EOF. Never
 * returns to the caller's stack - exits the process. */
[[noreturn]] void
runShardChild(const ServeOptions &opts, unsigned shard, int feed_fd)
{
    int code = 0;
    try {
        armFlightRecorder(opts, int(shard));
        ServerConfig cfg = opts.server;
        cfg.conn_feed_fd = feed_fd;
        cfg.inherit_listen_fd = -1;
        Server server(cfg);
        server.start();
        server.waitUntilStopped();
        server.stop();
        service::ServiceMetrics m = server.metrics();
        std::cerr << "mdesc serve: shard " << shard << " exiting ("
                  << m.requests << " requests, "
                  << m.net.frames_in << " frames in)\n";
    } catch (const std::exception &e) {
        std::cerr << "mdesc serve: shard " << shard << ": " << e.what()
                  << "\n";
        code = 1;
    }
    _exit(code);
}

/** A connection the shard parent is still routing: waiting to peek
 * enough bytes to read the binary header's route field. */
struct RoutingConn
{
    int fd = -1;
    /** When routing began; a peer that never completes the header is
     * closed after kRouteTimeout (slow-loris defense: otherwise one
     * stalled byte holds an acceptor fd until process shutdown). */
    std::chrono::steady_clock::time_point since;
};

constexpr std::chrono::seconds kRouteTimeout(5);

int
runShardedServe(const ServeOptions &opts)
{
    sigset_t set = blockTermSignals();
    unsigned nshards = opts.shards;

    uint16_t bound_port = 0;
    int listen_fd =
        makeListenSocket(opts.server.host, opts.server.port, &bound_port);

    // Fork first: children must exist before any threads do.
    std::vector<int> chans;     // parent ends of the feed pairs
    std::vector<pid_t> pids;
    for (unsigned i = 0; i < nshards; ++i) {
        int pair[2];
        if (socketpair(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0, pair) !=
            0)
            throw MdesError(std::string("net: socketpair: ") +
                            strerror(errno));
        pid_t pid = fork();
        if (pid < 0)
            throw MdesError(std::string("net: fork: ") + strerror(errno));
        if (pid == 0) {
            // Child: keep only its feed end. Signals stay blocked; the
            // shutdown cue is feed EOF, not SIGTERM.
            ::close(pair[0]);
            ::close(listen_fd);
            for (int fd : chans)
                ::close(fd);
            runShardChild(opts, i, pair[1]);
        }
        ::close(pair[1]);
        chans.push_back(pair[0]);
        pids.push_back(pid);
    }

    std::cout << "mdesc serve: listening on " << opts.server.host << ":"
              << bound_port << " (pid " << getpid() << ", " << nshards
              << " shards)\n"
              << std::flush;

    // The routing loop: accept, peek the route, hand the socket over.
    int ep = epoll_create1(EPOLL_CLOEXEC);
    int sfd = signalfd(-1, &set, SFD_CLOEXEC | SFD_NONBLOCK);
    constexpr uint64_t kListen = 1, kSignal = 2, kFirstRoute = 16;
    auto add = [&](int fd, uint64_t id, uint32_t events) {
        epoll_event ev{};
        ev.events = events;
        ev.data.u64 = id;
        epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev);
    };
    add(listen_fd, kListen, EPOLLIN);
    add(sfd, kSignal, EPOLLIN);

    std::unordered_map<uint64_t, RoutingConn> routing;
    uint64_t next_id = kFirstRoute;
    uint64_t round_robin = 0;

    auto handTo = [&](uint64_t shard, int fd) {
        // On a dead shard the send fails and closing the fd resets the
        // client, which retries (chaos treats that as transport loss).
        sendFd(chans[size_t(shard % nshards)], fd);
        ::close(fd);
    };

    // Fleet stats (DESIGN.md §14): poll every shard over its feed
    // channel ('s' + seq datagram), collect replies until @p timeout_ms,
    // and merge what answered. A shard that misses the deadline is
    // reported stale, never waited on - a partial fleet view beats a
    // blocked router. Replies carry the seq so a late answer from an
    // earlier poll is discarded instead of being mistaken for a fresh
    // one.
    uint64_t stat_seq = 0;
    auto pollFleet = [&](int timeout_ms) {
        uint64_t seq = ++stat_seq;
        std::string pollmsg(1, 's');
        for (int b = 0; b < 8; ++b)
            pollmsg.push_back(char((seq >> (8 * b)) & 0xff));
        std::vector<std::string> answers(chans.size());
        std::vector<bool> done_shard(chans.size(), false);
        size_t remaining = 0;
        for (size_t i = 0; i < chans.size(); ++i) {
            if (::send(chans[i], pollmsg.data(), pollmsg.size(),
                       MSG_NOSIGNAL) == ssize_t(pollmsg.size()))
                ++remaining;
            else
                done_shard[i] = true; // dead shard: stays stale
        }
        std::string buf(1 << 16, '\0');
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
        while (remaining > 0) {
            auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
            if (left <= 0)
                break;
            std::vector<pollfd> pfds(chans.size());
            for (size_t i = 0; i < chans.size(); ++i)
                pfds[i] = {chans[i],
                           short(done_shard[i] ? 0 : POLLIN), 0};
            int pr = ::poll(pfds.data(), nfds_t(pfds.size()), int(left));
            if (pr < 0 && errno == EINTR)
                continue;
            if (pr <= 0)
                break;
            for (size_t i = 0; i < chans.size(); ++i) {
                if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                    continue;
                ssize_t n = ::recv(chans[i], buf.data(), buf.size(), 0);
                if (n <= 0) {
                    if (n < 0 &&
                        (errno == EAGAIN || errno == EWOULDBLOCK ||
                         errno == EINTR))
                        continue;
                    done_shard[i] = true; // channel dead: stale
                    --remaining;
                    continue;
                }
                if (size_t(n) < 9)
                    continue; // runt datagram: discard
                uint64_t rseq = 0;
                for (int b = 0; b < 8; ++b)
                    rseq |= uint64_t(uint8_t(buf[b])) << (8 * b);
                if (rseq != seq)
                    continue; // late reply to an earlier poll
                answers[i].assign(buf.data() + 8, size_t(n) - 8);
                done_shard[i] = true;
                --remaining;
            }
        }
        return service::mergeShardStats(answers,
                                        service::windowNowS());
    };

    // Fleet STAT connections are never answered on the router thread:
    // pollFleet blocks up to its deadline and the response write can
    // stall on a peer that never reads, so answering inline would let
    // an unauthenticated client serialize multi-second stalls (one
    // bare STAT frame per connection is ~1 packet) and starve
    // accept/routing. The router only consumes the header and
    // enqueues the fd; a dedicated stats thread drains the queue in
    // batches - one fleet poll answers every connection that arrived
    // while the previous batch was in flight, so a flood coalesces
    // into one poll per round instead of queueing polls. The queue is
    // bounded; beyond the bound new STAT connections are shed
    // (closed), which a poller sees as a reset and retries.
    struct StatConn
    {
        int fd = -1;
        uint64_t id = 0; // frame id, echoed in the response
    };
    constexpr size_t kMaxQueuedStat = 64;
    std::mutex stat_mu;
    std::condition_variable stat_cv;
    std::deque<StatConn> stat_queue;
    bool stat_shutdown = false;

    // Write one batch's responses concurrently under a single shared
    // deadline, so N hostile peers that never read cost one deadline
    // total, not N of them. Every fd is closed on exit.
    auto answerStatBatch = [](std::vector<StatConn> &batch,
                              const std::string &payload) {
        struct Out
        {
            int fd;
            std::string wire;
            size_t off = 0;
        };
        std::vector<Out> outs;
        outs.reserve(batch.size());
        for (const StatConn &sc : batch) {
            Frame f;
            f.type = FrameType::Response;
            f.id = sc.id;
            f.payload = payload;
            outs.push_back({sc.fd, encodeFrame(f)});
        }
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(2);
        for (;;) {
            std::vector<pollfd> pending;
            for (Out &o : outs) {
                while (o.fd >= 0 && o.off < o.wire.size()) {
                    ssize_t w = ::send(o.fd, o.wire.data() + o.off,
                                       o.wire.size() - o.off,
                                       MSG_NOSIGNAL);
                    if (w > 0) {
                        o.off += size_t(w);
                        continue;
                    }
                    if (w < 0 && errno == EINTR)
                        continue;
                    if (w < 0 &&
                        (errno == EAGAIN || errno == EWOULDBLOCK)) {
                        pending.push_back({o.fd, POLLOUT, 0});
                        break;
                    }
                    ::close(o.fd); // peer reset: drop it
                    o.fd = -1;
                    break;
                }
                if (o.fd >= 0 && o.off == o.wire.size()) {
                    ::close(o.fd);
                    o.fd = -1;
                }
            }
            if (pending.empty())
                return;
            auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
            if (left <= 0)
                break;
            ::poll(pending.data(), nfds_t(pending.size()), int(left));
        }
        for (Out &o : outs)
            if (o.fd >= 0)
                ::close(o.fd); // deadline passed: peer not reading
    };

    // The stats thread is the only reader on the feed channels (the
    // router only ever sends), so its recv() in pollFleet never races
    // the routing loop; SOCK_SEQPACKET sends from two threads stay
    // atomic per datagram.
    std::thread stat_thread([&] {
        for (;;) {
            std::vector<StatConn> batch;
            {
                std::unique_lock<std::mutex> lock(stat_mu);
                stat_cv.wait(lock, [&] {
                    return stat_shutdown || !stat_queue.empty();
                });
                if (stat_shutdown)
                    return; // queued fds are closed by the owner
                batch.assign(stat_queue.begin(), stat_queue.end());
                stat_queue.clear();
            }
            const std::string payload = pollFleet(/*timeout_ms=*/300);
            answerStatBatch(batch, payload);
        }
    });

    // Decide a shard from peeked bytes. Returns false when more bytes
    // are needed (binary header incomplete).
    auto route = [&](RoutingConn &rc) {
        char hdr[kHeaderSize];
        ssize_t n = recv(rc.fd, hdr, sizeof(hdr), MSG_PEEK);
        if (n < 0)
            return errno == EAGAIN || errno == EWOULDBLOCK ||
                   errno == EINTR;
        if (n == 0) {
            ::close(rc.fd);
            rc.fd = -1;
            return false;
        }
        if (hdr[0] == kMagic[0]) {
            if (size_t(n) < kHeaderSize)
                return true; // wait for the full header
            uint32_t payload_len = 0;
            for (int i = 0; i < 4; ++i)
                payload_len |= uint32_t(uint8_t(hdr[8 + i])) << (8 * i);
            if (uint8_t(hdr[5]) == uint8_t(FrameType::Stat) &&
                payload_len == 0) {
                // Fleet stats: consume the frame and hand the fd to
                // the stats thread, which answers with all shards
                // merged. (A Stat with a payload is left to a shard,
                // which answers with its local view.)
                char sink[kHeaderSize];
                if (recv(rc.fd, sink, sizeof(sink), 0) !=
                    ssize_t(kHeaderSize)) {
                    ::close(rc.fd);
                    rc.fd = -1;
                    return false;
                }
                uint64_t wire_id = 0;
                for (int b = 0; b < 8; ++b)
                    wire_id |= uint64_t(uint8_t(hdr[16 + b]))
                               << (8 * b);
                bool queued = false;
                {
                    std::lock_guard<std::mutex> lock(stat_mu);
                    if (stat_queue.size() < kMaxQueuedStat) {
                        stat_queue.push_back({rc.fd, wire_id});
                        queued = true;
                    }
                }
                if (queued)
                    stat_cv.notify_one();
                else
                    ::close(rc.fd); // STAT flood: shed this one
                rc.fd = -1;
                return false;
            }
            uint64_t key = 0;
            for (int i = 0; i < 8; ++i)
                key |= uint64_t(uint8_t(hdr[24 + i])) << (8 * i);
            handTo(key ? key : round_robin++, rc.fd);
        } else {
            // JSON (or garbage the shard will reject): round-robin.
            handTo(round_robin++, rc.fd);
        }
        rc.fd = -1;
        return false;
    };

    bool done = false;
    epoll_event evs[64];
    while (!done) {
        // Finite timeout while connections are mid-routing so the
        // stale sweep below runs even when no fd becomes ready.
        int n = epoll_wait(ep, evs, 64, routing.empty() ? -1 : 1000);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        auto now = std::chrono::steady_clock::now();
        for (auto it = routing.begin(); it != routing.end();) {
            if (now - it->second.since > kRouteTimeout) {
                ::close(it->second.fd);
                it = routing.erase(it);
            } else {
                ++it;
            }
        }
        for (int i = 0; i < n; ++i) {
            uint64_t id = evs[i].data.u64;
            if (id == kSignal) {
                done = true;
                break;
            }
            if (id == kListen) {
                for (;;) {
                    int fd = accept4(listen_fd, nullptr, nullptr,
                                     SOCK_NONBLOCK | SOCK_CLOEXEC);
                    if (fd < 0)
                        break;
                    uint64_t cid = next_id++;
                    RoutingConn rc{fd,
                                   std::chrono::steady_clock::now()};
                    // Edge-triggered: MSG_PEEK leaves bytes readable,
                    // so level-triggered polling would spin while the
                    // header is still partial.
                    if (route(rc)) {
                        routing.emplace(cid, rc);
                        epoll_event ev{};
                        ev.events = EPOLLIN | EPOLLET;
                        ev.data.u64 = cid;
                        epoll_ctl(ep, EPOLL_CTL_ADD, rc.fd, &ev);
                    }
                }
                continue;
            }
            auto it = routing.find(id);
            if (it == routing.end())
                continue;
            if (!route(it->second))
                routing.erase(it);
        }
    }

    std::cout << "mdesc serve: shutting down " << nshards << " shards\n"
              << std::flush;
    ::close(listen_fd);
    ::close(sfd);
    ::close(ep);
    for (auto &[id, rc] : routing)
        if (rc.fd >= 0)
            ::close(rc.fd);
    // Stop the stats thread before closing the feed channels it polls
    // over; a batch in flight finishes first (bounded by its poll and
    // write deadlines).
    {
        std::lock_guard<std::mutex> lock(stat_mu);
        stat_shutdown = true;
        for (const StatConn &sc : stat_queue)
            ::close(sc.fd);
        stat_queue.clear();
    }
    stat_cv.notify_one();
    stat_thread.join();
    for (int fd : chans)
        ::close(fd); // children see feed EOF and drain
    int exit_code = 0;
    for (pid_t pid : pids) {
        int status = 0;
        if (waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
            WEXITSTATUS(status) != 0)
            exit_code = 1;
    }
    std::cout << "mdesc serve: shards exited "
              << (exit_code == 0 ? "cleanly" : "with errors") << "\n";
    return exit_code;
}

} // namespace

int
runServe(const ServeOptions &opts)
{
    if (opts.shards > 1)
        return runShardedServe(opts);
    return runSingleServe(opts);
}

} // namespace mdes::net
