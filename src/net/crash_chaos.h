#ifndef MDES_NET_CRASH_CHAOS_H
#define MDES_NET_CRASH_CHAOS_H

/**
 * @file
 * The crash-chaos harness (DESIGN.md §15): seeded process-level fault
 * injection against a live sharded fleet, asserting the supervision
 * plane's recovery invariants from the outside.
 *
 * Where `mdesc chaos` injects faults *inside* one process (syscall and
 * allocation sites via faultsim), this sweep kills whole shard
 * processes under live socket load: each seed launches a real
 * fork-per-shard fleet (`runServe` in a child process, port 0, the
 * bound port reported over a pipe), then uses the fleet's own stats
 * document to find shard pids and — driven by the seed's RNG — SIGKILLs
 * them, SIGSEGVs them (exercising the crash-capture handler), and
 * SIGSTOPs them (wedging, exercising the watchdog).
 *
 * Invariants asserted per seed (any violation fails the sweep):
 *  1. The fleet keeps serving through every kill: each request in the
 *     mix completes Ok within bounded transport retries, and its
 *     schedule fingerprint equals the seed's own fault-free first pass.
 *  2. Crashed shards come back, and never early: a restart is only
 *     ever observed after at least the base crash-loop backoff has
 *     elapsed since the kill, and the supervision counters account
 *     every injected crash and wedge (restarts >= kills, crashes >=
 *     kill+segv count, wedged_shards >= stops).
 *  3. A SIGSTOPped shard is detected by the watchdog (wedged_shards
 *     increments), SIGKILLed, and replaced.
 *  4. SIGTERM drains gracefully: every request written before the
 *     SIGTERM receives a typed response (Ok or Draining — never a
 *     silent EOF), and the supervisor exits 0 within the deadline.
 *  5. The store holds no residue after the drain: no quarantined
 *     (".bad") artifact and no orphaned publish temp (".tmp-*") — a
 *     restarted shard's open-time sweep must have cleaned up after
 *     every kill -9.
 *  6. Every seed that delivered a SIGSEGV leaves at least one ".mdcr"
 *     crash capture that `flightrec::decodeCrashCapture` accepts.
 *
 * A final quarantine probe (one per sweep, fast supervision knobs)
 * kills one slot's shard on every respawn until the supervisor
 * quarantines it, then asserts fleet health reads "degraded" over the
 * wire while the remaining shards still serve.
 *
 * The harness forks, so it must be called from a single-threaded
 * process (the `mdesc chaos --crash` and test_chaos entry points are).
 */

#include <cstdint>
#include <string>
#include <vector>

namespace mdes::net {

/** Sweep parameters (defaults tuned so a 15-seed CI sweep stays in
 * low single-digit minutes). */
struct CrashChaosConfig
{
    /** Shards per fleet under test. */
    unsigned shards = 3;
    /** Service worker threads per shard. */
    unsigned workers = 2;
    /** Requests in the mix (distinct transform-bit patterns). */
    unsigned requests = 6;
    /** First seed; the sweep covers [first_seed, first_seed+num_seeds). */
    uint64_t first_seed = 1;
    unsigned num_seeds = 15;
    /** Process-kill injections per seed (SIGKILL or SIGSEGV each). */
    unsigned kill_rounds = 2;
    /** Parent directory for per-seed store/flightrec directories. */
    std::string store_base_dir;
    /** Built-in machine driving the mix. */
    std::string machine = "K5";
    /** Synthetic workload size per request. */
    size_t synth_ops = 300;

    // Supervision knobs for the fleet under test (fast variants of the
    // ServeOptions defaults, so recovery is observable in seconds).
    // The backoff base is kept well above the harness's ~300 ms stats
    // polling granularity so "respawned before the backoff" is a
    // check with teeth, not one the measurement error swallows.
    uint64_t backoff_base_ms = 1000;
    uint64_t heartbeat_interval_ms = 100;
    uint64_t heartbeat_timeout_ms = 800;
    uint64_t drain_deadline_ms = 5000;

    /** Run the post-sweep quarantine/degraded-health probe. */
    bool quarantine_probe = true;
};

/** What one seed's run produced. */
struct CrashSeedResult
{
    uint64_t seed = 0;
    /** Human log of injected faults ("SIGKILL shard 2 pid 1234", ...). */
    std::vector<std::string> injected;
    uint64_t kills = 0;
    uint64_t segvs = 0;
    uint64_t stops = 0;
    /** Final supervision counters read from the fleet before drain. */
    uint64_t restarts_observed = 0;
    uint64_t crashes_observed = 0;
    uint64_t wedged_observed = 0;
    /** Decodable ".mdcr" crash captures found after the drain. */
    uint64_t crash_captures = 0;
    /** Human-readable invariant violations (empty = seed passed). */
    std::vector<std::string> violations;

    bool ok() const { return violations.empty(); }
};

/** The whole sweep's verdict. */
struct CrashSweepReport
{
    CrashChaosConfig config;
    std::vector<CrashSeedResult> seeds;
    /** Violations from the quarantine probe phase. */
    std::vector<std::string> quarantine_violations;

    bool ok() const;
    /** Machine-readable report (CI uploads this on failure). */
    std::string toJson() const;
    /** One-line-per-seed human summary. */
    std::string toText() const;
};

/** Run the full crash sweep. Creates per-seed directories under
 * config.store_base_dir; a passing seed's directory is removed, a
 * failing seed's is kept for post-mortem (CI uploads it). */
CrashSweepReport runCrashSweep(const CrashChaosConfig &config);

} // namespace mdes::net

#endif // MDES_NET_CRASH_CHAOS_H
