#ifndef MDES_NET_SERVER_H
#define MDES_NET_SERVER_H

/**
 * @file
 * mdes::net - the socket serving tier in front of MdesService.
 *
 * One epoll event loop owns every connection (no thread per
 * connection); scheduling work never runs on the loop. A decoded
 * request is handed to MdesService::submit() with a completion
 * callback, the worker thread serializes the response and pushes it to
 * a completion queue, and an eventfd wakes the loop to write it out.
 * The loop therefore only ever parses frames, moves bytes, and flips
 * epoll interest bits - it stays responsive under any scheduling load.
 *
 * Two wire modes share one connection handler, distinguished by the
 * first byte a client sends: 'M' (the frame magic) selects the binary
 * length-prefixed protocol (frame.h), '{' selects newline-delimited
 * JSON for humans and scripts. Responses use one serializer for both -
 * the JSON object is the binary frame's payload.
 *
 * Backpressure composes with the service's admission control rather
 * than duplicating it: a connection that exceeds its in-flight cap or
 * whose outbound buffer crosses the high-water mark stops being read
 * (EPOLLIN dropped) until it drains - per-connection flow control -
 * while the bounded admission queue sheds excess aggregate load with
 * typed Overloaded responses the client sees immediately. Nothing
 * stalls silently and nothing is dropped without an error frame.
 *
 * Shard mode (DESIGN.md §12): `mdesc serve --shards N` forks N workers
 * sharing one on-disk artifact store. The parent owns only the listen
 * socket and a tiny routing loop: it peeks (MSG_PEEK) at a new
 * connection's first bytes, extracts the binary header's route field
 * (the client's artifactKey hint), and passes the socket fd to shard
 * `route % N` over a SOCK_SEQPACKET pair via SCM_RIGHTS - the bytes
 * were never consumed, so the child reads the stream from the start.
 * JSON connections and route=0 round-robin. SIGTERM to the parent
 * closes the pairs; children treat feed EOF as graceful shutdown.
 *
 * Supervision plane (DESIGN.md §15): the shard parent reaps children
 * on SIGCHLD and restarts crashed shards with exponential crash-loop
 * backoff, quarantining a slot that crashes rapidly. A watchdog
 * heartbeats every shard over its feed channel and SIGKILLs one that
 * goes silent past a deadline (accounted as "wedged", distinct from
 * crashes). SIGTERM triggers a graceful drain instead of an abrupt
 * close: the listen socket stops accepting, in-flight requests finish
 * under a deadline, and new requests are shed with a typed Draining
 * response. Fatal signals dump the flight-recorder rings to a crash
 * capture decodable offline by `mdesc flight decode`.
 */

#include <cstdint>
#include <memory>
#include <string>

#include "service/service.h"

namespace mdes::net {

/** Server construction parameters. */
struct ServerConfig
{
    /** Listen address (single-process and shard-parent modes). */
    std::string host = "127.0.0.1";
    /** Listen port; 0 picks an ephemeral port (see Server::port()). */
    uint16_t port = 0;

    /** The backing service (workers, cache, store, admission bound). */
    service::ServiceConfig service;

    /** Per-connection in-flight request cap; reads pause above it. */
    uint32_t max_inflight_per_conn = 32;
    /** Outbound buffer bytes above which reads pause until drained. */
    size_t write_high_water = 256 * 1024;

    /** Pre-bound listening socket to adopt instead of binding
     * host:port (-1 = bind). The server takes ownership. */
    int inherit_listen_fd = -1;
    /** Shard-child mode: SOCK_SEQPACKET fd receiving connection fds
     * via SCM_RIGHTS instead of accepting (-1 = accept normally).
     * EOF on this fd triggers graceful shutdown. */
    int conn_feed_fd = -1;
};

/**
 * The epoll socket server. start() binds (or adopts the configured
 * fds), constructs the MdesService, and spawns the event-loop thread;
 * stop() shuts the loop down, drains the service, and joins. Safe to
 * construct before fork() - no threads exist until start().
 */
class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind/adopt sockets, build the service, start the loop thread.
     * Throws MdesError when the socket setup fails. */
    void start();

    /** Graceful shutdown: close connections, drain the service, join
     * the loop. Idempotent. */
    void stop();

    /** The bound listen port (after start(); resolves port 0). */
    uint16_t port() const;

    /** Service metrics snapshot with the net section filled in. */
    service::ServiceMetrics metrics() const;

    /** The backing service (valid between start() and stop()). */
    service::MdesService &service();

    /** True once the feed fd hit EOF / stop was requested - the serve
     * loop's cue that a graceful shutdown is underway. */
    bool stopping() const;

    /**
     * Flip into draining mode (DESIGN.md §15): stop accepting new
     * connections, shed every subsequently-arriving request with a
     * typed Draining response, let in-flight work finish, and exit the
     * event loop once the last in-flight response has been written (or
     * @p deadline_ms elapses, whichever is first — a stuck client must
     * not hold the process hostage). Idempotent; callable from any
     * thread (including a signal-watcher thread).
     */
    void beginDrain(uint64_t deadline_ms);

    /** True once beginDrain() was called (health reports "draining"). */
    bool draining() const;

    /** Block until the event loop exits (feed-fd EOF or stop()); the
     * caller still calls stop() to join and drain. */
    void waitUntilStopped();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Serialize one response as the single-line JSON object both wire
 * modes carry: {"id":..,"code":..,"error":..,"fingerprint":..,...}.
 * The numeric "code" is the authoritative machine-readable field;
 * "error" is its printable name. No trailing newline.
 */
std::string serializeResponse(uint64_t id,
                              const service::ScheduleResponse &resp);

/** `mdesc serve` options on top of the server itself. */
struct ServeOptions
{
    ServerConfig server;
    /** Fork this many shard workers (0/1 = single process). */
    unsigned shards = 0;
    /** Dump metrics as JSON instead of tables on shutdown. */
    bool json_metrics = false;

    /** Flight-recorder spool directory ("" - the default - disables
     * tail capture; opt in with `--flightrec <dir>`). Writing trace
     * files is a disk side effect deployments must ask for, never get
     * silently. Shard children append "/shard-N" so concurrent
     * processes never fight over one directory's byte-cap
     * accounting. */
    std::string flightrec_dir;
    /** Spool byte cap (oldest captures evicted first). */
    size_t flightrec_max_bytes = 8 << 20;
    /** Latency above which an otherwise-successful request's trace is
     * spooled (0 = only errors trigger capture). */
    uint64_t flightrec_slow_ms = 500;

    // ---- Supervision plane knobs (DESIGN.md §15) -------------------

    /** SIGTERM drain budget: in-flight requests get this long to
     * finish before the process exits anyway. */
    uint64_t drain_deadline_ms = 5000;
    /** First restart delay after a shard crash; doubles per rapid
     * crash (500ms, 1s, 2s, ...). */
    uint64_t restart_backoff_base_ms = 500;
    /** Backoff ceiling. */
    uint64_t restart_backoff_max_ms = 10000;
    /** A shard that dies younger than this is a "rapid" crash and
     * escalates the backoff; surviving longer resets the streak. */
    uint64_t rapid_crash_window_ms = 3000;
    /** Rapid crashes in a row before the slot is quarantined (no
     * further restarts; fleet health turns "degraded"). */
    uint32_t quarantine_after = 5;
    /** Watchdog heartbeat period (parent → shard 'h' probes). */
    uint64_t heartbeat_interval_ms = 500;
    /** A shard silent longer than this is SIGKILLed as wedged. */
    uint64_t heartbeat_timeout_ms = 3000;
    /** When >= 0, the bound listen port is written to this fd as
     * little-endian u16 once serving begins (then the fd is closed) —
     * the chaos harness's rendezvous with a port-0 server. */
    int port_notify_fd = -1;
};

/**
 * Run a server until SIGINT/SIGTERM, then shut down cleanly and dump
 * metrics; dispatches to the fork-per-shard acceptor when
 * opts.shards > 1. Returns a process exit code.
 */
int runServe(const ServeOptions &opts);

} // namespace mdes::net

#endif // MDES_NET_SERVER_H
