#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "machines/machines.h"
#include "net/frame.h"
#include "store/store.h"
#include "support/diagnostics.h"
#include "support/io_retry.h"
#include "support/json.h"

namespace mdes::net {

using service::ErrorCode;

NetResponse
parseResponseJson(const std::string &body)
{
    JsonValue doc = parseJson(body);
    if (doc.kind != JsonValue::Kind::Object)
        throw MdesError("net: response is not a JSON object");
    NetResponse r;
    r.transport_ok = true;
    // jsonU64 (not .number): ids and cycle counts are full u64s and
    // must not round through the parser's double above 2^53.
    if (const JsonValue *v = doc.find("id"))
        r.id = jsonU64(*v);
    if (const JsonValue *v = doc.find("code"))
        r.code = ErrorCode(int(v->number));
    if (const JsonValue *v = doc.find("error"))
        r.error = v->string;
    if (const JsonValue *v = doc.find("message"))
        r.message = v->string;
    if (const JsonValue *v = doc.find("machine"))
        r.machine = v->string;
    if (const JsonValue *v = doc.find("fingerprint")) {
        try {
            r.fingerprint = std::stoull(v->string);
        } catch (const std::exception &) {
            throw MdesError("net: bad fingerprint '" + v->string + "'");
        }
    }
    if (const JsonValue *v = doc.find("cache_hit"))
        r.cache_hit = v->boolean;
    if (const JsonValue *v = doc.find("disk_hit"))
        r.disk_hit = v->boolean;
    if (const JsonValue *v = doc.find("degraded"))
        r.degraded = v->boolean;
    if (const JsonValue *v = doc.find("total_cycles"))
        r.total_cycles = jsonU64(*v);
    if (const JsonValue *v = doc.find("blocks"))
        r.blocks = jsonU64(*v);
    return r;
}

uint64_t
routeKey(const service::ScheduleRequest &req)
{
    if (req.machine.empty() || !req.source.empty())
        return 0;
    const machines::MachineInfo *info = machines::byName(req.machine);
    if (!info)
        return 0;
    return store::artifactKey(info->source, req.transforms,
                              req.bit_vector);
}

BlockingClient::BlockingClient(const std::string &host, uint16_t port,
                               bool json_mode)
    : json_mode_(json_mode)
{
    int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    std::string numeric = host == "localhost" ? "127.0.0.1" : host;
    if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return;
    }
    for (;;) {
        if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr)) == 0)
            break;
        if (errno == EINTR)
            continue;
        ::close(fd);
        return;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    fd_ = fd;
}

BlockingClient::~BlockingClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

namespace {

/** Send all of @p data; false on connection loss. MSG_NOSIGNAL (via
 * io::sendRetry) turns a peer that closed mid-write into EPIPE instead
 * of a process-killing SIGPIPE - the chaos harness slams connections
 * shut constantly and the client must shrug, not die. */
bool
writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n =
            io::sendRetry(fd, data.data() + off, data.size() - off);
        if (n > 0) {
            off += size_t(n);
            continue;
        }
        return false;
    }
    return true;
}

} // namespace

NetResponse
BlockingClient::request(const std::string &line, uint32_t deadline_ms,
                        uint64_t route)
{
    NetResponse fail; // transport_ok == false
    if (fd_ < 0)
        return fail;
    uint64_t id = next_id_++;
    std::string wire;
    if (json_mode_) {
        JsonWriter w;
        w.beginObject();
        w.key("id").value(id);
        w.key("req").value(line);
        if (deadline_ms)
            w.key("deadline_ms").value(uint64_t(deadline_ms));
        if (route)
            w.key("route").value(route);
        w.endObject();
        wire = w.str() + "\n";
    } else {
        Frame f;
        f.type = FrameType::Request;
        f.id = id;
        f.deadline_ms = deadline_ms;
        f.route = route;
        f.payload = line;
        wire = encodeFrame(f);
    }
    if (!writeAll(fd_, wire)) {
        ::close(fd_);
        fd_ = -1;
        return fail;
    }
    return readResponse(id);
}

NetResponse
BlockingClient::readResponse(uint64_t want_id)
{
    NetResponse fail;
    FrameDecoder decoder;
    decoder.feed(inbuf_.data(), inbuf_.size());
    std::string jsonbuf = std::move(inbuf_);
    inbuf_.clear();
    char buf[16384];
    for (;;) {
        if (json_mode_) {
            size_t nl = jsonbuf.find('\n');
            if (nl != std::string::npos) {
                std::string body = jsonbuf.substr(0, nl);
                inbuf_ = jsonbuf.substr(nl + 1);
                try {
                    return parseResponseJson(body);
                } catch (const MdesError &) {
                    ::close(fd_);
                    fd_ = -1;
                    return fail;
                }
            }
        } else {
            Frame frame;
            FrameDecoder::Status st = decoder.next(&frame);
            if (st == FrameDecoder::Status::Error) {
                ::close(fd_);
                fd_ = -1;
                return fail;
            }
            if (st == FrameDecoder::Status::Ready) {
                if (frame.type == FrameType::Pong ||
                    frame.id != want_id)
                    continue; // not ours; keep reading
                // Bytes decoded past our frame (pipelined traffic)
                // go back to inbuf_ for the next reader.
                inbuf_ = decoder.takeResidue();
                try {
                    return parseResponseJson(frame.payload);
                } catch (const MdesError &) {
                    ::close(fd_);
                    fd_ = -1;
                    return fail;
                }
            }
        }
        ssize_t n = ::read(fd_, buf, sizeof(buf));
        if (n > 0) {
            if (json_mode_)
                jsonbuf.append(buf, size_t(n));
            else
                decoder.feed(buf, size_t(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        ::close(fd_);
        fd_ = -1;
        return fail; // EOF or reset before our response
    }
}

std::string
BlockingClient::stats()
{
    if (fd_ < 0)
        return "";
    uint64_t id = next_id_++;
    std::string wire;
    if (json_mode_) {
        wire = "{\"id\":" + std::to_string(id) + ",\"op\":\"stats\"}\n";
    } else {
        Frame f;
        f.type = FrameType::Stat;
        f.id = id;
        wire = encodeFrame(f);
    }
    if (!writeAll(fd_, wire)) {
        ::close(fd_);
        fd_ = -1;
        return "";
    }
    char buf[16384];
    if (json_mode_) {
        std::string jsonbuf = std::move(inbuf_);
        inbuf_.clear();
        for (;;) {
            size_t nl = jsonbuf.find('\n');
            if (nl != std::string::npos) {
                inbuf_ = jsonbuf.substr(nl + 1);
                return jsonbuf.substr(0, nl);
            }
            ssize_t n = ::read(fd_, buf, sizeof(buf));
            if (n > 0) {
                jsonbuf.append(buf, size_t(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            ::close(fd_);
            fd_ = -1;
            return "";
        }
    }
    FrameDecoder decoder;
    decoder.feed(inbuf_.data(), inbuf_.size());
    inbuf_.clear();
    for (;;) {
        Frame frame;
        FrameDecoder::Status st = decoder.next(&frame);
        if (st == FrameDecoder::Status::Error)
            break;
        if (st == FrameDecoder::Status::Ready) {
            if (frame.type != FrameType::Response || frame.id != id)
                continue; // a pong or an earlier response; keep reading
            // Restore any decoded-but-unconsumed bytes so a response
            // to a request still in flight is not dropped.
            inbuf_ = decoder.takeResidue();
            return frame.payload;
        }
        ssize_t n = ::read(fd_, buf, sizeof(buf));
        if (n > 0) {
            decoder.feed(buf, size_t(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        break;
    }
    ::close(fd_);
    fd_ = -1;
    return "";
}

std::string
BlockingClient::health()
{
    if (fd_ < 0)
        return "";
    uint64_t id = next_id_++;
    std::string wire;
    if (json_mode_) {
        wire = "{\"id\":" + std::to_string(id) + ",\"op\":\"health\"}\n";
    } else {
        Frame f;
        f.type = FrameType::Health;
        f.id = id;
        wire = encodeFrame(f);
    }
    if (!writeAll(fd_, wire)) {
        ::close(fd_);
        fd_ = -1;
        return "";
    }
    char buf[16384];
    if (json_mode_) {
        std::string jsonbuf = std::move(inbuf_);
        inbuf_.clear();
        for (;;) {
            size_t nl = jsonbuf.find('\n');
            if (nl != std::string::npos) {
                inbuf_ = jsonbuf.substr(nl + 1);
                return jsonbuf.substr(0, nl);
            }
            ssize_t n = ::read(fd_, buf, sizeof(buf));
            if (n > 0) {
                jsonbuf.append(buf, size_t(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            ::close(fd_);
            fd_ = -1;
            return "";
        }
    }
    FrameDecoder decoder;
    decoder.feed(inbuf_.data(), inbuf_.size());
    inbuf_.clear();
    for (;;) {
        Frame frame;
        FrameDecoder::Status st = decoder.next(&frame);
        if (st == FrameDecoder::Status::Error)
            break;
        if (st == FrameDecoder::Status::Ready) {
            if (frame.type != FrameType::Response || frame.id != id)
                continue; // a pong or an earlier response; keep reading
            inbuf_ = decoder.takeResidue();
            return frame.payload;
        }
        ssize_t n = ::read(fd_, buf, sizeof(buf));
        if (n > 0) {
            decoder.feed(buf, size_t(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        break;
    }
    ::close(fd_);
    fd_ = -1;
    return "";
}

bool
BlockingClient::ping()
{
    if (fd_ < 0 || json_mode_)
        return false;
    Frame f;
    f.type = FrameType::Ping;
    f.id = next_id_++;
    if (!writeAll(fd_, encodeFrame(f))) {
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    FrameDecoder decoder;
    decoder.feed(inbuf_.data(), inbuf_.size());
    inbuf_.clear();
    char buf[4096];
    for (;;) {
        Frame frame;
        FrameDecoder::Status st = decoder.next(&frame);
        if (st == FrameDecoder::Status::Error)
            break;
        if (st == FrameDecoder::Status::Ready) {
            inbuf_ = decoder.takeResidue();
            return frame.type == FrameType::Pong;
        }
        ssize_t n = ::read(fd_, buf, sizeof(buf));
        if (n > 0) {
            decoder.feed(buf, size_t(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        break;
    }
    ::close(fd_);
    fd_ = -1;
    return false;
}

} // namespace mdes::net
