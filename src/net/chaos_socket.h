#ifndef MDES_NET_CHAOS_SOCKET_H
#define MDES_NET_CHAOS_SOCKET_H

/**
 * @file
 * The chaos harness's socket driver: runs each seed's request mix
 * through a loopback mdes::net server instead of in-process runBatch,
 * so the five robustness invariants are asserted across the wire and
 * under the net fault sites (accept failure, short read/write, peer
 * reset, stalled write) with connection churn.
 *
 * Churn model: one fresh connection per request, sequential. A
 * transport failure (reset, EOF, refused) retries on a new connection
 * up to kMaxTransportRetries times; Plan::fuzz keeps the severing
 * sites sub-certain, so bounded retries always progress. A request
 * that exhausts retries reports ErrorCode::Internal, which the
 * invariant checks correctly flag as a violation - the server is never
 * allowed to make a request disappear without a typed outcome.
 *
 * Determinism (invariant 4) holds because everything the fault
 * decisions key on is reproduced per run: a fresh server numbers its
 * connections from the same first id, the sequential client produces
 * the same connection/request order, and the observable net sites are
 * evaluated at protocol events (per accept, per decoded request), not
 * per syscall.
 */

#include "service/chaos.h"

namespace mdes::net {

/** Bounded retries per request on transport failure. */
inline constexpr unsigned kMaxTransportRetries = 8;

/** The socket RunDriver (install into ChaosConfig::driver). */
service::chaos::RunDriver chaosSocketDriver();

} // namespace mdes::net

#endif // MDES_NET_CHAOS_SOCKET_H
