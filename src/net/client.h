#ifndef MDES_NET_CLIENT_H
#define MDES_NET_CLIENT_H

/**
 * @file
 * Blocking client for the mdes::net protocol - the counterpart the
 * tools (mdesc netbatch), the chaos harness, and the network bench
 * drive the server with. One connection, one outstanding request at a
 * time; pipelined load is produced by running several clients.
 *
 * Transport failures (connect refused, reset, EOF mid-response) are
 * not exceptions: they come back as NetResponse::transport_ok == false
 * so retry loops - the chaos harness's bounded-retry client - can tell
 * "the connection died" (retryable) from a typed service error
 * (definitive).
 */

#include <cstdint>
#include <string>

#include "service/service.h"

namespace mdes::net {

/** One request's outcome as observed through the socket. */
struct NetResponse
{
    /** False when the transport failed before a response arrived
     * (connect/reset/EOF); every other field is meaningless then. */
    bool transport_ok = false;

    uint64_t id = 0;
    service::ErrorCode code = service::ErrorCode::Internal;
    /** Printable code name as sent by the server ("ok", "overloaded"). */
    std::string error;
    std::string message;
    std::string machine;
    /** scheduleFingerprint() of the response, for cross-path equality
     * against an in-process run. */
    uint64_t fingerprint = 0;
    bool cache_hit = false;
    bool disk_hit = false;
    bool degraded = false;
    uint64_t total_cycles = 0;
    uint64_t blocks = 0;

    bool
    ok() const
    {
        return transport_ok && code == service::ErrorCode::Ok;
    }
};

/** Parse the server's response JSON body into a NetResponse (with
 * transport_ok set); throws MdesError on malformed JSON. */
NetResponse parseResponseJson(const std::string &body);

/**
 * Shard-routing hint for @p req: the artifactKey of its compiled
 * description when the client can compute it (built-in machine), else
 * 0 ("any shard"). Requests for the same description always land on
 * the same shard, so each shard's memory cache stays hot.
 */
uint64_t routeKey(const service::ScheduleRequest &req);

/** Blocking protocol client (binary frames or JSON-lines mode). */
class BlockingClient
{
  public:
    /** Connect to @p host:@p port; check connected() - a refused
     * connection is a state, not an exception. */
    BlockingClient(const std::string &host, uint16_t port,
                   bool json_mode = false);
    ~BlockingClient();

    BlockingClient(const BlockingClient &) = delete;
    BlockingClient &operator=(const BlockingClient &) = delete;

    bool connected() const { return fd_ >= 0; }

    /**
     * Send one request line (request_parse.h grammar) and block for
     * its response. @p deadline_ms rides in the frame header (JSON
     * mode: the "deadline_ms" field); @p route is the shard hint.
     */
    NetResponse request(const std::string &line, uint32_t deadline_ms = 0,
                        uint64_t route = 0);

    /** Binary-mode liveness probe (Ping/Pong round trip). */
    bool ping();

    /**
     * Fetch the live stats document (service/stats.h schema). Binary
     * mode sends a Stat frame; JSON mode sends {"op":"stats"}. Against
     * a sharded server the binary form returns the parent's merged
     * fleet view - and the parent closes the connection after
     * answering, so poll with a fresh client per refresh. Returns ""
     * on transport failure.
     */
    std::string stats();

    /**
     * Fetch the health document (DESIGN.md §15). Binary mode sends a
     * Health frame; JSON mode sends {"op":"health"}. A single server
     * (or a shard child via a routed JSON connection) answers
     * {"health":"ready"|"draining"}; a sharded parent intercepts the
     * binary form and answers its supervision view ("ready",
     * "draining", or "degraded" plus fleet counters, closing the
     * connection after answering like stats() does). Against a single
     * server the connection stays usable, so a drain flip is
     * observable by polling one long-lived connection. Returns "" on
     * transport failure.
     */
    std::string health();

  private:
    NetResponse readResponse(uint64_t want_id);

    int fd_ = -1;
    bool json_mode_ = false;
    uint64_t next_id_ = 1;
    std::string inbuf_;
};

} // namespace mdes::net

#endif // MDES_NET_CLIENT_H
