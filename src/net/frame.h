#ifndef MDES_NET_FRAME_H
#define MDES_NET_FRAME_H

/**
 * @file
 * mdes::net wire framing - the length-prefixed binary protocol.
 *
 * Every message is one frame: a fixed 32-byte little-endian header
 * followed by payload_len bytes of payload. The header (DESIGN.md §12):
 *
 *     offset  size  field
 *          0     4  magic "MDN1"
 *          4     1  version (currently 1)
 *          5     1  type (FrameType)
 *          6     2  flags (must be zero; reserved)
 *          8     4  payload_len (u32, capped at kMaxPayload)
 *         12     4  deadline_ms (u32; 0 = no deadline)
 *         16     8  id (u64; echoed verbatim in the response)
 *         24     8  route (u64 artifactKey shard hint; 0 = any shard)
 *
 * A Request payload is one request line in the batch grammar
 * (request_parse.h); Response/Error payloads are a JSON object - the
 * same object the newline-delimited JSON debug mode uses, so there is
 * exactly one response serializer.
 *
 * Decoding is incremental (FrameDecoder): bytes arrive in arbitrary
 * fragments from a nonblocking socket, the decoder buffers until a
 * whole frame is present, and every malformed input - bad magic, wrong
 * version, unknown type, nonzero flags, oversized length - yields a
 * typed ProtoError instead of a crash or an over-read. The fuzz test
 * (test_net.cpp) feeds truncations at every byte offset and flipped
 * length prefixes to hold that contract.
 */

#include <cstddef>
#include <cstdint>
#include <string>

namespace mdes::net {

/** Frame header magic, on the wire as 'M''D''N''1'. */
inline constexpr char kMagic[4] = {'M', 'D', 'N', '1'};
inline constexpr uint8_t kVersion = 1;
inline constexpr size_t kHeaderSize = 32;
/** Payload ceiling: request lines and response JSON are small; anything
 * larger is a framing error, not a legitimate message. */
inline constexpr uint32_t kMaxPayload = 1u << 20;

/** What a frame carries. */
enum class FrameType : uint8_t {
    Request = 1,
    Response = 2,
    /** A response that is an error at the protocol level (the payload
     * still carries the JSON error body). */
    Error = 3,
    Ping = 4,
    Pong = 5,
    /** Live stats poll (stats.h); answered with a Response frame whose
     * payload is the stats JSON document. In --shards mode the parent
     * answers these itself with the merged fleet view. */
    Stat = 6,
    /** Load-balancer health probe; answered with a Response frame
     * whose payload is {"health":"ready"|"draining"|"degraded",...}.
     * In --shards mode the parent answers from its supervision state
     * (DESIGN.md §15). Equivalent to the JSON {"op":"health"} op. */
    Health = 7,
};

/** True when @p t is a value FrameType names. */
bool frameTypeValid(uint8_t t);

/** One decoded (or to-be-encoded) frame. */
struct Frame
{
    FrameType type = FrameType::Request;
    /** Request deadline in ms from receipt (0 = none). */
    uint32_t deadline_ms = 0;
    /** Client-chosen correlation id, echoed in the response. */
    uint64_t id = 0;
    /** artifactKey shard-routing hint (0 = any shard). */
    uint64_t route = 0;
    std::string payload;
};

/** Typed framing violations (each maps to ErrorCode::BadRequest with a
 * message naming the ProtoError). */
enum class ProtoError : uint8_t {
    None = 0,
    BadMagic,
    BadVersion,
    BadType,
    BadFlags,
    OversizedPayload,
};

/** Stable printable name, e.g. "bad-magic". */
const char *protoErrorName(ProtoError e);

/** Serialize @p frame (header + payload) ready for the wire. Payloads
 * over kMaxPayload throw MdesError (caller bug, not peer input). */
std::string encodeFrame(const Frame &frame);

/**
 * Incremental frame decoder. Feed arbitrary byte fragments; next()
 * yields complete frames in order. After an Error the decoder is
 * poisoned (a byte stream with a framing violation has no trustworthy
 * resynchronization point) and the connection must be closed.
 */
class FrameDecoder
{
  public:
    enum class Status { NeedMore, Ready, Error };

    /** Append @p len raw bytes from the wire. */
    void feed(const char *data, size_t len);

    /**
     * Try to decode the next frame into @p out. Ready fills @p out and
     * consumes its bytes; NeedMore means feed() more; Error poisons the
     * decoder (see error()). Never reads past the buffered bytes.
     */
    Status next(Frame *out);

    /** The violation that poisoned the decoder (None before that). */
    ProtoError error() const { return error_; }

    /** Bytes buffered but not yet consumed by next(). */
    size_t buffered() const { return buf_.size() - pos_; }

    /**
     * Steal the buffered-but-unconsumed bytes and reset the decoder.
     * A caller that read past the frame it wanted (pipelined traffic)
     * restores these to the connection's input buffer instead of
     * dropping them, so the next reader still sees its frame.
     */
    std::string takeResidue();

  private:
    std::string buf_;
    /** Consumed prefix of buf_ (compacted opportunistically). */
    size_t pos_ = 0;
    ProtoError error_ = ProtoError::None;
};

} // namespace mdes::net

#endif // MDES_NET_FRAME_H
