#include "net/frame.h"

#include <cstring>

#include "support/diagnostics.h"

namespace mdes::net {

namespace {

/** Little-endian stores/loads; explicit so the wire format does not
 * depend on host byte order. */
void
put16(std::string &out, uint16_t v)
{
    out.push_back(char(v & 0xff));
    out.push_back(char((v >> 8) & 0xff));
}

void
put32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(char((v >> (8 * i)) & 0xff));
}

void
put64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(char((v >> (8 * i)) & 0xff));
}

uint16_t
get16(const char *p)
{
    return uint16_t(uint8_t(p[0])) | uint16_t(uint8_t(p[1])) << 8;
}

uint32_t
get32(const char *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= uint32_t(uint8_t(p[i])) << (8 * i);
    return v;
}

uint64_t
get64(const char *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(uint8_t(p[i])) << (8 * i);
    return v;
}

} // namespace

bool
frameTypeValid(uint8_t t)
{
    return t >= uint8_t(FrameType::Request) &&
           t <= uint8_t(FrameType::Health);
}

const char *
protoErrorName(ProtoError e)
{
    switch (e) {
    case ProtoError::None: return "none";
    case ProtoError::BadMagic: return "bad-magic";
    case ProtoError::BadVersion: return "bad-version";
    case ProtoError::BadType: return "bad-type";
    case ProtoError::BadFlags: return "bad-flags";
    case ProtoError::OversizedPayload: return "oversized-payload";
    }
    return "?";
}

std::string
encodeFrame(const Frame &frame)
{
    if (frame.payload.size() > kMaxPayload)
        throw MdesError("net: frame payload " +
                        std::to_string(frame.payload.size()) +
                        " bytes exceeds cap " + std::to_string(kMaxPayload));
    std::string out;
    out.reserve(kHeaderSize + frame.payload.size());
    out.append(kMagic, sizeof(kMagic));
    out.push_back(char(kVersion));
    out.push_back(char(uint8_t(frame.type)));
    put16(out, 0); // flags
    put32(out, uint32_t(frame.payload.size()));
    put32(out, frame.deadline_ms);
    put64(out, frame.id);
    put64(out, frame.route);
    out += frame.payload;
    return out;
}

void
FrameDecoder::feed(const char *data, size_t len)
{
    if (error_ != ProtoError::None)
        return;
    // Compact before growing once the consumed prefix dominates, so a
    // long-lived connection's buffer stays proportional to in-flight
    // bytes rather than total traffic.
    if (pos_ > 4096 && pos_ > buf_.size() / 2) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    buf_.append(data, len);
}

FrameDecoder::Status
FrameDecoder::next(Frame *out)
{
    if (error_ != ProtoError::None)
        return Status::Error;
    if (buf_.size() - pos_ < kHeaderSize)
        return Status::NeedMore;
    const char *h = buf_.data() + pos_;

    // Validate the fixed header before trusting any length it carries.
    if (std::memcmp(h, kMagic, sizeof(kMagic)) != 0) {
        error_ = ProtoError::BadMagic;
        return Status::Error;
    }
    if (uint8_t(h[4]) != kVersion) {
        error_ = ProtoError::BadVersion;
        return Status::Error;
    }
    if (!frameTypeValid(uint8_t(h[5]))) {
        error_ = ProtoError::BadType;
        return Status::Error;
    }
    if (get16(h + 6) != 0) {
        error_ = ProtoError::BadFlags;
        return Status::Error;
    }
    uint32_t payload_len = get32(h + 8);
    if (payload_len > kMaxPayload) {
        error_ = ProtoError::OversizedPayload;
        return Status::Error;
    }
    if (buf_.size() - pos_ < kHeaderSize + size_t(payload_len))
        return Status::NeedMore;

    out->type = FrameType(uint8_t(h[5]));
    out->deadline_ms = get32(h + 12);
    out->id = get64(h + 16);
    out->route = get64(h + 24);
    out->payload.assign(buf_, pos_ + kHeaderSize, payload_len);
    pos_ += kHeaderSize + payload_len;
    if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
    }
    return Status::Ready;
}

std::string
FrameDecoder::takeResidue()
{
    std::string out = buf_.substr(pos_);
    buf_.clear();
    pos_ = 0;
    return out;
}

} // namespace mdes::net
