#ifndef MDES_LMDES_LOW_MDES_H
#define MDES_LMDES_LOW_MDES_H

/**
 * @file
 * The low-level machine-description representation.
 *
 * This is what the compiler actually queries: flat, pointer-free arrays
 * tuned for the resource-constraint check loop. Sharing established in
 * the structured model (by the description writer or by the CSE
 * transformation) is preserved: entities with the same core id share one
 * low-level record.
 *
 * Check encoding (Section 6): every check is a (time, resource-set) pair
 * occupying two words. In scalar encoding each resource usage is its own
 * check; with bit-vector packing all of an option's usages in the same
 * cycle merge into a single check word, so one AND against the RU map
 * probes them all.
 *
 * Since format v7 a LowMdes has two backing modes, invisible to callers:
 *
 *  - *owned*: every pool lives in this object's heap vectors (the
 *    result of lower(), load(), or a deep copy);
 *  - *mapped*: the POD pools are spans straight into a refcounted
 *    position-independent image (typically an mmap'ed store artifact;
 *    see image.h), validated once at attach time. Only the small text
 *    pieces (machine name, resource names, op-class names/comments) are
 *    materialized, so attaching is O(validation), not O(image).
 *
 * Accessors return std::span either way; the span for an owned pool
 * views the member vector, so construction and mutation order never
 * leave a dangling view. Copies of a mapped LowMdes share the backing.
 *
 * Memory accounting model (documented in DESIGN.md §2.3): check entries
 * and descriptors are 8 bytes, membership list entries 4 bytes. The
 * absolute bytes differ from the paper's 1996 implementation; reduction
 * percentages and cross-representation ratios are the reproduction
 * target.
 */

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/mdes.h"

namespace mdes::lmdes {

/**
 * One resource-constraint probe.
 *
 * `slot` addresses the RU map in *slot* units: a machine with R resource
 * instances packs them into slot_words() = ceil(R/64) words per cycle,
 * and a usage at time t of a resource in word w probes slot
 * t * slot_words + w. For machines with at most 64 instances (all four
 * paper machines) slot_words is 1 and the slot equals the usage time.
 */
struct Check
{
    int32_t slot = 0;
    uint64_t mask = 0;

    bool operator==(const Check &) const = default;
};

/**
 * Per-tree probe summary, computed at lowering time and serialized with
 * the description (since format v6).
 *
 * `min_slot`/`max_slot` bound every check slot reachable from the tree,
 * letting the constraint checker address the RU map with one
 * normalization per scheduling attempt (and take an unchecked
 * direct-index fast path when the whole window is in range).
 *
 * The slice [first_prefilter, first_prefilter + num_prefilter) of
 * prefilter() is the tree's *collision-vector prefilter*: (slot, mask)
 * pairs where the mask bits are reserved by EVERY option of some OR
 * subtree - the forbidden-latency idea of Davidson-style collision
 * vectors applied to AND/OR trees. If any such bit is busy at probe
 * time, no option combination can fit, so the checker rejects the
 * attempt before touching a single option. Entries at the same slot are
 * merged and sorted by slot.
 */
struct TreeSummary
{
    int32_t min_slot = 0;
    int32_t max_slot = 0;
    uint32_t first_prefilter = 0;
    uint32_t num_prefilter = 0;

    bool operator==(const TreeSummary &) const = default;
};

/** A lowered reservation-table option: a slice of the check pool. */
struct LowOption
{
    uint32_t first_check = 0;
    uint16_t num_checks = 0;

    bool operator==(const LowOption &) const = default;
};

/** A lowered OR-tree: a slice of the option-reference pool. */
struct LowOrTree
{
    uint32_t first_option_ref = 0;
    uint16_t num_options = 0;

    bool operator==(const LowOrTree &) const = default;
};

/** A lowered AND/OR-tree: a slice of the OR-tree-reference pool. */
struct LowTree
{
    uint32_t first_or_ref = 0;
    uint16_t num_or_trees = 0;

    bool operator==(const LowTree &) const = default;
};

/** A lowered forwarding path (see core Bypass). */
struct LowBypass
{
    uint32_t from = kInvalidId;
    uint32_t to = kInvalidId;
    int32_t latency = 0;

    bool operator==(const LowBypass &) const = default;
};

/** A lowered operation class. */
struct LowOpClass
{
    std::string name;
    uint32_t tree = kInvalidId;
    uint32_t cascade_tree = kInvalidId;
    int32_t latency = 1;
    std::string comment;

    bool operator==(const LowOpClass &) const = default;
};

/** Byte accounting of the resource-constraint representation. */
struct MemoryBreakdown
{
    size_t check_bytes = 0;
    size_t option_bytes = 0;
    size_t option_ref_bytes = 0;
    size_t or_tree_bytes = 0;
    size_t or_ref_bytes = 0;
    size_t tree_bytes = 0;

    size_t
    total() const
    {
        return check_bytes + option_bytes + option_ref_bytes +
               or_tree_bytes + or_ref_bytes + tree_bytes;
    }
};

/** Lowering controls. */
struct LowerOptions
{
    /** Pack one cycle's usages per option into a single check word. */
    bool pack_bit_vector = false;
    /**
     * Compute per-tree collision-vector prefilters (TreeSummary). On by
     * default - the checker rejects most doomed attempts without walking
     * any option. The paper-reproduction benches lower with this off so
     * their options/checks-per-attempt accounting matches the engine
     * the paper measured (the prefilter changes counts, never
     * decisions).
     */
    bool prefilter = true;
};

/** How LowMdes::fromImage should relate to the caller's image bytes. */
struct ImageSource
{
    /**
     * Keeps the image alive for as long as any copy of the resulting
     * LowMdes exists (e.g. an munmap-on-release mapping handle). Null
     * means "the bytes are transient": the pools are deep-copied into
     * owned vectors instead of borrowed.
     */
    std::shared_ptr<const void> backing;
    /**
     * Verify Header::checksum before parsing. The store's mmap path
     * passes false because the whole-file trailer it just verified
     * already covers the image ("checksum verified once at open").
     */
    bool verify_checksum = true;
};

/**
 * The packed low-level MDES. Construct via lower(); query from the
 * constraint checker and the scheduler.
 */
class LowMdes
{
  public:
    /** Lower the structured model @p m. Machines wider than 64 resource
     * instances use several RU-map words per cycle (see Check::slot). */
    static LowMdes lower(const Mdes &m, const LowerOptions &opts = {});

    const std::string &machineName() const { return machine_name_; }
    uint32_t numResources() const { return num_resources_; }
    /** RU-map words per cycle: ceil(numResources / 64). */
    uint32_t slotWords() const { return slot_words_; }
    bool packed() const { return packed_; }

    /** True when the POD pools borrow a mapped image (see fromImage). */
    bool mapped() const { return backing_ != nullptr; }

    /** Per-instance resource names ("Name" or "Name[i]" in declaration
     * order), kept for conflict-profiling reports. Always materialized,
     * even in mapped mode. */
    const std::vector<std::string> &resourceNames() const
    {
        return resource_names_;
    }

    /** Name of resource instance @p r; "r<id>" when names are absent. */
    std::string resourceName(uint32_t r) const;

    std::span<const Check> checks() const
    {
        return mapped() ? view_.checks : std::span<const Check>(checks_);
    }
    std::span<const LowOption> options() const
    {
        return mapped() ? view_.options
                        : std::span<const LowOption>(options_);
    }
    std::span<const uint32_t> optionRefs() const
    {
        return mapped() ? view_.option_refs
                        : std::span<const uint32_t>(option_refs_);
    }
    std::span<const LowOrTree> orTrees() const
    {
        return mapped() ? view_.or_trees
                        : std::span<const LowOrTree>(or_trees_);
    }
    std::span<const uint32_t> orRefs() const
    {
        return mapped() ? view_.or_refs
                        : std::span<const uint32_t>(or_refs_);
    }
    std::span<const LowTree> trees() const
    {
        return mapped() ? view_.trees : std::span<const LowTree>(trees_);
    }
    /** Per-tree probe summaries, parallel to trees(). */
    std::span<const TreeSummary> treeSummaries() const
    {
        return mapped() ? view_.tree_summaries
                        : std::span<const TreeSummary>(tree_summaries_);
    }
    /** Collision-vector prefilter pool (see TreeSummary). */
    std::span<const Check> prefilter() const
    {
        return mapped() ? view_.prefilter
                        : std::span<const Check>(prefilter_);
    }
    /** Operation classes. Always materialized (they carry strings). */
    const std::vector<LowOpClass> &opClasses() const { return op_classes_; }
    std::span<const LowBypass> bypasses() const
    {
        return mapped() ? view_.bypasses
                        : std::span<const LowBypass>(bypasses_);
    }

    /**
     * Effective flow latency when @p consumer directly consumes
     * @p producer's result: the bypass latency when a forwarding path is
     * declared, else the producer's nominal latency.
     */
    int32_t flowLatency(uint32_t producer, uint32_t consumer) const;

    /** Find an operation class by name; kInvalidId if absent. */
    uint32_t findOpClass(const std::string &name) const;

    /** Number of options the flat OR-tree form of @p tree would have
     * (product of subtree option counts). */
    uint64_t expandedOptionCount(uint32_t tree) const;

    /** Sum of option counts across @p tree's OR subtrees. */
    uint64_t leafOptionCount(uint32_t tree) const;

    /** Byte accounting under the documented model. */
    MemoryBreakdown memory() const;

    /** Serialize as a v7 position-independent image (works in either
     * backing mode). */
    void save(std::ostream &os) const;

    /**
     * Deserialize into owned storage; throws MdesError on malformed
     * input and MdesVersionError (see image.h) on a version this build
     * does not speak. Counts as a full deserialization.
     */
    static LowMdes load(std::istream &is);

    /**
     * Attach to (or copy out of) a v7 image of @p size bytes at @p base,
     * which must be at least 8-byte aligned (mmap'ed files and
     * uint64_t-backed buffers both qualify). The image is bounds- and
     * cross-reference-validated before any span is published; throws
     * MdesError / MdesVersionError like load(). With src.backing set the
     * result borrows the image zero-copy; otherwise the pools are
     * deep-copied and the call counts as a full deserialization.
     */
    static LowMdes fromImage(const void *base, size_t size,
                             const ImageSource &src = {});

    /** Content equality, regardless of backing mode. */
    bool operator==(const LowMdes &other) const;

  private:
    /** Derive tree_summaries_/prefilter_ from the lowered pools (called
     * at the end of lower(); load() reads the serialized copies). With
     * @p prefilter false, slot windows are still computed but every
     * prefilter slice stays empty (see LowerOptions::prefilter). */
    void computeTreeSummaries(bool prefilter);

    /** Copy every borrowed pool into the owned vectors and drop the
     * backing (used by load() and the deep-copy path of fromImage). */
    void materialize();

    /** Spans into a borrowed image; meaningful only when backing_ is
     * non-null. */
    struct ImageView
    {
        std::span<const Check> checks;
        std::span<const LowOption> options;
        std::span<const uint32_t> option_refs;
        std::span<const LowOrTree> or_trees;
        std::span<const uint32_t> or_refs;
        std::span<const LowTree> trees;
        std::span<const TreeSummary> tree_summaries;
        std::span<const Check> prefilter;
        std::span<const LowBypass> bypasses;
    };

    std::string machine_name_;
    uint32_t num_resources_ = 0;
    uint32_t slot_words_ = 1;
    bool packed_ = false;
    std::vector<std::string> resource_names_;
    std::vector<Check> checks_;
    std::vector<LowOption> options_;
    std::vector<uint32_t> option_refs_;
    std::vector<LowOrTree> or_trees_;
    std::vector<uint32_t> or_refs_;
    std::vector<LowTree> trees_;
    std::vector<TreeSummary> tree_summaries_;
    std::vector<Check> prefilter_;
    std::vector<LowOpClass> op_classes_;
    std::vector<LowBypass> bypasses_;
    /** Null in owned mode; keeps the mapped image alive otherwise. */
    std::shared_ptr<const void> backing_;
    ImageView view_;
};

} // namespace mdes::lmdes

#endif // MDES_LMDES_LOW_MDES_H
