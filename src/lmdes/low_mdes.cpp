#include "lmdes/low_mdes.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "support/diagnostics.h"

namespace mdes::lmdes {

LowMdes
LowMdes::lower(const Mdes &m, const LowerOptions &opts)
{
    LowMdes low;
    low.machine_name_ = m.name();
    low.num_resources_ = m.numResources();
    low.slot_words_ = std::max(1u, (m.numResources() + 63) / 64);
    low.packed_ = opts.pack_bit_vector;
    low.resource_names_.reserve(m.numResources());
    for (uint32_t r = 0; r < m.numResources(); ++r)
        low.resource_names_.push_back(m.resourceName(r));
    const int32_t words = int32_t(low.slot_words_);

    // Options: one low record per core option (id-level sharing kept).
    for (const auto &opt : m.options()) {
        LowOption lo;
        lo.first_check = uint32_t(low.checks_.size());
        if (opts.pack_bit_vector) {
            // Merge all usages in the same RU-map slot (same time and
            // same 64-resource word) into one check, keeping the
            // position of each slot's first appearance so the
            // usage-sorting transformation's order survives packing.
            for (const auto &u : opt.usages) {
                int32_t slot =
                    u.time * words + int32_t(u.resource / 64);
                uint64_t bit = uint64_t(1) << (u.resource % 64);
                bool merged = false;
                for (uint32_t c = lo.first_check;
                     c < low.checks_.size(); ++c) {
                    if (low.checks_[c].slot == slot) {
                        low.checks_[c].mask |= bit;
                        merged = true;
                        break;
                    }
                }
                if (!merged)
                    low.checks_.push_back({slot, bit});
            }
        } else {
            for (const auto &u : opt.usages) {
                int32_t slot =
                    u.time * words + int32_t(u.resource / 64);
                low.checks_.push_back(
                    {slot, uint64_t(1) << (u.resource % 64)});
            }
        }
        size_t n = low.checks_.size() - lo.first_check;
        if (n > std::numeric_limits<uint16_t>::max())
            throw MdesError("option with more than 65535 checks");
        lo.num_checks = uint16_t(n);
        low.options_.push_back(lo);
    }

    for (const auto &ot : m.orTrees()) {
        LowOrTree lt;
        lt.first_option_ref = uint32_t(low.option_refs_.size());
        if (ot.options.size() > std::numeric_limits<uint16_t>::max())
            throw MdesError("OR-tree with more than 65535 options");
        lt.num_options = uint16_t(ot.options.size());
        for (OptionId o : ot.options)
            low.option_refs_.push_back(o);
        low.or_trees_.push_back(lt);
    }

    for (const auto &t : m.trees()) {
        LowTree lt;
        lt.first_or_ref = uint32_t(low.or_refs_.size());
        if (t.or_trees.size() > std::numeric_limits<uint16_t>::max())
            throw MdesError("AND/OR-tree with more than 65535 subtrees");
        lt.num_or_trees = uint16_t(t.or_trees.size());
        for (OrTreeId ot : t.or_trees)
            low.or_refs_.push_back(ot);
        low.trees_.push_back(lt);
    }

    for (const auto &oc : m.opClasses()) {
        LowOpClass lc;
        lc.name = oc.name;
        lc.tree = oc.tree;
        lc.cascade_tree = oc.cascade_tree;
        lc.latency = oc.latency;
        lc.comment = oc.comment;
        low.op_classes_.push_back(std::move(lc));
    }
    for (const auto &bp : m.bypasses())
        low.bypasses_.push_back({bp.from, bp.to, bp.latency});
    low.computeTreeSummaries(opts.prefilter);
    return low;
}

namespace {

/** Union @p mask into the entry for @p slot of a small (slot, mask)
 * accumulation list, appending when the slot is new. */
void
foldBySlot(std::vector<Check> &list, int32_t slot, uint64_t mask)
{
    for (auto &e : list) {
        if (e.slot == slot) {
            e.mask |= mask;
            return;
        }
    }
    list.push_back({slot, mask});
}

} // namespace

void
LowMdes::computeTreeSummaries(bool prefilter)
{
    tree_summaries_.clear();
    tree_summaries_.reserve(trees_.size());
    prefilter_.clear();

    std::vector<Check> inter;      // per-subtree mandatory accumulation
    std::vector<Check> opt_slots;  // one option's per-slot mask union
    std::vector<Check> tree_pf;    // this tree's merged prefilter

    for (const LowTree &t : trees_) {
        TreeSummary sum;
        sum.first_prefilter = uint32_t(prefilter_.size());
        tree_pf.clear();
        int32_t mn = INT32_MAX, mx = INT32_MIN;

        for (uint32_t s = 0; s < t.num_or_trees; ++s) {
            const LowOrTree &ot = or_trees_[or_refs_[t.first_or_ref + s]];
            if (ot.num_options == 0)
                continue; // unsatisfiable subtree; the walk rejects it
            if (!prefilter) {
                // Slot window only (needed for addressing); no
                // mandatory-bit intersection.
                for (uint32_t oi = 0; oi < ot.num_options; ++oi) {
                    const LowOption &opt =
                        options_[option_refs_[ot.first_option_ref + oi]];
                    for (uint32_t c = 0; c < opt.num_checks; ++c) {
                        const Check &check = checks_[opt.first_check + c];
                        mn = std::min(mn, check.slot);
                        mx = std::max(mx, check.slot);
                    }
                }
                continue;
            }
            // Intersect the options' per-slot resource sets: bits every
            // option of this subtree must reserve are mandatory for the
            // whole tree.
            inter.clear();
            bool alive = true;
            for (uint32_t oi = 0; oi < ot.num_options; ++oi) {
                const LowOption &opt =
                    options_[option_refs_[ot.first_option_ref + oi]];
                opt_slots.clear();
                for (uint32_t c = 0; c < opt.num_checks; ++c) {
                    const Check &check = checks_[opt.first_check + c];
                    mn = std::min(mn, check.slot);
                    mx = std::max(mx, check.slot);
                    foldBySlot(opt_slots, check.slot, check.mask);
                }
                if (!alive)
                    continue; // keep scanning for the min/max window
                if (oi == 0) {
                    inter = opt_slots;
                } else {
                    for (auto &e : inter) {
                        uint64_t other = 0;
                        for (const auto &o : opt_slots) {
                            if (o.slot == e.slot) {
                                other = o.mask;
                                break;
                            }
                        }
                        e.mask &= other;
                    }
                    std::erase_if(inter, [](const Check &e) {
                        return e.mask == 0;
                    });
                }
                alive = !inter.empty();
            }
            for (const auto &e : inter)
                foldBySlot(tree_pf, e.slot, e.mask);
        }

        std::sort(tree_pf.begin(), tree_pf.end(),
                  [](const Check &a, const Check &b) {
                      return a.slot < b.slot;
                  });
        prefilter_.insert(prefilter_.end(), tree_pf.begin(),
                          tree_pf.end());
        sum.num_prefilter = uint32_t(prefilter_.size()) -
                            sum.first_prefilter;
        sum.min_slot = mn == INT32_MAX ? 0 : mn;
        sum.max_slot = mx == INT32_MIN ? 0 : mx;
        tree_summaries_.push_back(sum);
    }
}

std::string
LowMdes::resourceName(uint32_t r) const
{
    if (r < resource_names_.size())
        return resource_names_[r];
    return "r" + std::to_string(r);
}

int32_t
LowMdes::flowLatency(uint32_t producer, uint32_t consumer) const
{
    for (const auto &bp : bypasses()) {
        if (bp.from == producer && bp.to == consumer)
            return bp.latency;
    }
    return op_classes_[producer].latency;
}

uint32_t
LowMdes::findOpClass(const std::string &name) const
{
    for (size_t i = 0; i < op_classes_.size(); ++i) {
        if (op_classes_[i].name == name)
            return uint32_t(i);
    }
    return kInvalidId;
}

uint64_t
LowMdes::expandedOptionCount(uint32_t tree) const
{
    const LowTree &t = trees()[tree];
    uint64_t product = 1;
    for (uint32_t i = 0; i < t.num_or_trees; ++i)
        product *= orTrees()[orRefs()[t.first_or_ref + i]].num_options;
    return product;
}

uint64_t
LowMdes::leafOptionCount(uint32_t tree) const
{
    const LowTree &t = trees()[tree];
    uint64_t sum = 0;
    for (uint32_t i = 0; i < t.num_or_trees; ++i)
        sum += orTrees()[orRefs()[t.first_or_ref + i]].num_options;
    return sum;
}

MemoryBreakdown
LowMdes::memory() const
{
    MemoryBreakdown mem;
    mem.check_bytes = checks().size() * 8;
    mem.option_bytes = options().size() * 8;
    mem.option_ref_bytes = optionRefs().size() * 4;
    mem.or_tree_bytes = orTrees().size() * 8;
    mem.or_ref_bytes = orRefs().size() * 4;
    mem.tree_bytes = trees().size() * 8;
    return mem;
}

bool
LowMdes::operator==(const LowMdes &other) const
{
    // Content equality through the accessors, so an mmap-backed object
    // compares equal to the owned copy it was serialized from.
    auto eq = [](auto a, auto b) {
        return std::equal(a.begin(), a.end(), b.begin(), b.end());
    };
    return machine_name_ == other.machine_name_ &&
           num_resources_ == other.num_resources_ &&
           slot_words_ == other.slot_words_ && packed_ == other.packed_ &&
           resource_names_ == other.resource_names_ &&
           op_classes_ == other.op_classes_ &&
           eq(checks(), other.checks()) && eq(options(), other.options()) &&
           eq(optionRefs(), other.optionRefs()) &&
           eq(orTrees(), other.orTrees()) && eq(orRefs(), other.orRefs()) &&
           eq(trees(), other.trees()) &&
           eq(treeSummaries(), other.treeSummaries()) &&
           eq(prefilter(), other.prefilter()) &&
           eq(bypasses(), other.bypasses());
}

} // namespace mdes::lmdes
