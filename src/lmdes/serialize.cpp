#include <algorithm>
#include <atomic>
#include <cstring>
#include <istream>
#include <ostream>

#include "lmdes/image.h"
#include "lmdes/low_mdes.h"
#include "support/diagnostics.h"

/**
 * @file
 * Binary serialization of the low-level representation, so a translated
 * and optimized MDES can be shipped to and loaded by the compiler without
 * reparsing or reoptimizing (the paper's "minimize the time required to
 * load the MDES into memory").
 *
 * Format v7 (layout in image.h): a position-independent image -
 *
 *   [Header: magic "LMDS", version, image_bytes, checksum,
 *    scalars, section table]  [pad to 256]  [64-byte-aligned sections]
 *
 * with every POD pool at a fixed stride and all text in one string pool,
 * so the image can be attached in place (LowMdes::fromImage borrowing an
 * mmap'ed artifact) as well as deep-copied (LowMdes::load from a
 * stream). Earlier formats (v4-v6) were length-prefixed byte streams
 * that always required a full deserialization; they are read by no one -
 * the store silently recompiles on version mismatch.
 *
 * Attaching is paranoid in the same spirit v4's ByteReader was: the
 * image size is bounded up front, the section table is checked for
 * entries that overlap, fall outside the image, or are misaligned for
 * their element stride, every cross-reference between pools is
 * validated, and - new in v7 - Check contents themselves are validated
 * (mask bits within num_resources for the check's RU-map word, slots
 * inside the owning tree's summary window) so a checksum-valid but
 * crafted image can never drive the flat checker out of bounds. Every
 * error message states what was found versus what was expected.
 */

namespace mdes::lmdes {

namespace {

std::atomic<uint64_t> g_full_deserializations{0};

uint64_t
fnv1a(const char *data, size_t n)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= uint8_t(data[i]);
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hex(uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx", (unsigned long long)v);
    return buf;
}

/** Render possibly-binary magic bytes for an error message. */
std::string
printableMagic(const char m[4])
{
    std::string out;
    for (int i = 0; i < 4; ++i) {
        unsigned char c = (unsigned char)m[i];
        if (c >= 0x20 && c < 0x7f) {
            out += char(c);
        } else {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\x%02x", c);
            out += buf;
        }
    }
    return out;
}

/** Element stride of each section, indexed by v7::SectionId. */
constexpr size_t kElemSize[v7::kNumSections] = {
    sizeof(Check),         // kChecks
    sizeof(LowOption),     // kOptions
    sizeof(uint32_t),      // kOptionRefs
    sizeof(LowOrTree),     // kOrTrees
    sizeof(uint32_t),      // kOrRefs
    sizeof(LowTree),       // kTrees
    sizeof(LowBypass),     // kBypasses
    sizeof(TreeSummary),   // kTreeSummaries
    sizeof(Check),         // kPrefilter
    sizeof(v7::OpClassRec),// kOpClasses
    sizeof(v7::StrRef),    // kResourceNames
    1,                     // kStringPool
};

constexpr const char *kSectionNames[v7::kNumSections] = {
    "checks",        "options",   "option-refs",    "or-trees",
    "or-refs",       "trees",     "bypasses",       "tree-summaries",
    "prefilter",     "op-classes","resource-names", "string-pool",
};

template <typename T>
std::span<const T>
sectionSpan(const char *base, const v7::Section &s)
{
    return {reinterpret_cast<const T *>(base + s.offset),
            size_t(s.bytes) / sizeof(T)};
}

/**
 * ByteReader-style paranoia for the v7 section table: every entry must
 * lie inside [kDataStart, image_bytes), start on a kAlign boundary, be a
 * whole number of elements, and no two non-empty sections may overlap.
 * A corrupt entry is reported with the offending values, never used.
 */
void
validateSectionTable(const v7::Header &hdr)
{
    struct Extent
    {
        uint64_t off, end;
        uint32_t id;
    };
    std::vector<Extent> extents;
    for (uint32_t i = 0; i < v7::kNumSections; ++i) {
        const v7::Section &s = hdr.sections[i];
        if (s.offset % v7::kAlign != 0)
            throw MdesError(std::string("LMDES section '") +
                            kSectionNames[i] + "' is misaligned: offset " +
                            std::to_string(s.offset) + " is not a multiple "
                            "of " + std::to_string(v7::kAlign));
        if (s.offset < v7::kDataStart || s.offset > hdr.image_bytes ||
            s.bytes > hdr.image_bytes - s.offset)
            throw MdesError(std::string("LMDES section '") +
                            kSectionNames[i] + "' falls outside the image: "
                            "offset " + std::to_string(s.offset) + " + " +
                            std::to_string(s.bytes) + " bytes vs image of " +
                            std::to_string(hdr.image_bytes));
        if (s.bytes % kElemSize[i] != 0)
            throw MdesError(std::string("LMDES section '") +
                            kSectionNames[i] + "' has " +
                            std::to_string(s.bytes) + " bytes, not a "
                            "multiple of its " +
                            std::to_string(kElemSize[i]) +
                            "-byte element");
        if (s.bytes)
            extents.push_back({s.offset, s.offset + s.bytes, i});
    }
    std::sort(extents.begin(), extents.end(),
              [](const Extent &a, const Extent &b) {
                  return a.off < b.off;
              });
    for (size_t i = 1; i < extents.size(); ++i) {
        if (extents[i].off < extents[i - 1].end)
            throw MdesError(
                std::string("LMDES sections '") +
                kSectionNames[extents[i - 1].id] + "' and '" +
                kSectionNames[extents[i].id] + "' overlap (at offset " +
                std::to_string(extents[i].off) + ")");
    }
}

/**
 * The v7 half of the load-path bugfix: validate Check *contents*, not
 * just pool cross-references. A checksum-valid image whose checks carry
 * resource bits >= num_resources (for the check's RU-map word) or wild
 * slots would otherwise load cleanly and index out of range inside the
 * flat checker.
 */
void
validateCheckFields(std::span<const Check> list, const char *what,
                    uint32_t num_resources, uint32_t slot_words)
{
    const int32_t words = int32_t(slot_words);
    for (size_t i = 0; i < list.size(); ++i) {
        const Check &c = list[i];
        if (c.slot > v7::kMaxSlotMagnitude ||
            c.slot < -v7::kMaxSlotMagnitude)
            throw MdesError(std::string("LMDES ") + what + " entry " +
                            std::to_string(i) + " has implausible slot " +
                            std::to_string(c.slot));
        int32_t w = c.slot % words;
        if (w < 0)
            w += words;
        const uint32_t base_r = uint32_t(w) * 64;
        uint64_t allowed = 0;
        if (num_resources > base_r) {
            uint32_t nbits = std::min<uint32_t>(64, num_resources - base_r);
            allowed = nbits == 64 ? ~uint64_t(0)
                                  : (uint64_t(1) << nbits) - 1;
        }
        if (c.mask & ~allowed)
            throw MdesError(std::string("LMDES ") + what + " entry " +
                            std::to_string(i) + " mask " + hex(c.mask) +
                            " selects resources beyond the " +
                            std::to_string(num_resources) +
                            " declared (RU-map word " + std::to_string(w) +
                            ")");
    }
}

} // namespace

uint64_t
fullDeserializations()
{
    return g_full_deserializations.load(std::memory_order_relaxed);
}

void
LowMdes::save(std::ostream &os) const
{
    // Gather the variable-length text into one pool so every other
    // section has a fixed stride.
    std::string pool;
    auto intern = [&pool](const std::string &s) {
        v7::StrRef r{uint32_t(pool.size()), uint32_t(s.size())};
        pool += s;
        return r;
    };
    const v7::StrRef mname = intern(machine_name_);
    std::vector<v7::OpClassRec> class_recs;
    class_recs.reserve(op_classes_.size());
    for (const auto &oc : op_classes_) {
        v7::OpClassRec rec;
        const v7::StrRef n = intern(oc.name);
        const v7::StrRef c = intern(oc.comment);
        rec.name_off = n.off;
        rec.name_len = n.len;
        rec.tree = oc.tree;
        rec.cascade_tree = oc.cascade_tree;
        rec.latency = oc.latency;
        rec.comment_off = c.off;
        rec.comment_len = c.len;
        class_recs.push_back(rec);
    }
    std::vector<v7::StrRef> name_refs;
    name_refs.reserve(resource_names_.size());
    for (const auto &name : resource_names_)
        name_refs.push_back(intern(name));

    // Lay the sections out back to back, each starting on a kAlign
    // boundary. Accessors (not members) so a mapped object re-saves.
    v7::Header hdr{};
    std::memcpy(hdr.magic, v7::kMagic, 4);
    hdr.version = v7::kVersion;
    hdr.num_resources = num_resources_;
    hdr.slot_words = slot_words_;
    hdr.packed = packed_ ? 1 : 0;
    hdr.machine_name_off = mname.off;
    hdr.machine_name_len = mname.len;
    hdr.section_count = v7::kNumSections;
    uint64_t off = v7::kDataStart;
    auto place = [&](v7::SectionId id, uint64_t bytes) {
        hdr.sections[id] = {off, bytes};
        off = (off + bytes + v7::kAlign - 1) / v7::kAlign * v7::kAlign;
    };
    place(v7::kChecks, checks().size() * sizeof(Check));
    place(v7::kOptions, options().size() * sizeof(LowOption));
    place(v7::kOptionRefs, optionRefs().size() * sizeof(uint32_t));
    place(v7::kOrTrees, orTrees().size() * sizeof(LowOrTree));
    place(v7::kOrRefs, orRefs().size() * sizeof(uint32_t));
    place(v7::kTrees, trees().size() * sizeof(LowTree));
    place(v7::kBypasses, bypasses().size() * sizeof(LowBypass));
    place(v7::kTreeSummaries, treeSummaries().size() * sizeof(TreeSummary));
    place(v7::kPrefilter, prefilter().size() * sizeof(Check));
    place(v7::kOpClasses, class_recs.size() * sizeof(v7::OpClassRec));
    place(v7::kResourceNames, name_refs.size() * sizeof(v7::StrRef));
    place(v7::kStringPool, pool.size());
    hdr.image_bytes = off;

    std::string img(size_t(off), '\0');
    auto put = [&](v7::SectionId id, const void *src, size_t bytes) {
        if (bytes)
            std::memcpy(img.data() + hdr.sections[id].offset, src, bytes);
    };
    put(v7::kChecks, checks().data(), hdr.sections[v7::kChecks].bytes);
    put(v7::kOptions, options().data(), hdr.sections[v7::kOptions].bytes);
    put(v7::kOptionRefs, optionRefs().data(),
        hdr.sections[v7::kOptionRefs].bytes);
    put(v7::kOrTrees, orTrees().data(), hdr.sections[v7::kOrTrees].bytes);
    put(v7::kOrRefs, orRefs().data(), hdr.sections[v7::kOrRefs].bytes);
    put(v7::kTrees, trees().data(), hdr.sections[v7::kTrees].bytes);
    put(v7::kBypasses, bypasses().data(),
        hdr.sections[v7::kBypasses].bytes);
    put(v7::kTreeSummaries, treeSummaries().data(),
        hdr.sections[v7::kTreeSummaries].bytes);
    put(v7::kPrefilter, prefilter().data(),
        hdr.sections[v7::kPrefilter].bytes);
    put(v7::kOpClasses, class_recs.data(),
        hdr.sections[v7::kOpClasses].bytes);
    put(v7::kResourceNames, name_refs.data(),
        hdr.sections[v7::kResourceNames].bytes);
    put(v7::kStringPool, pool.data(), hdr.sections[v7::kStringPool].bytes);

    hdr.checksum =
        fnv1a(img.data() + sizeof(hdr), img.size() - sizeof(hdr));
    std::memcpy(img.data(), &hdr, sizeof(hdr));
    os.write(img.data(), std::streamsize(img.size()));
}

LowMdes
LowMdes::fromImage(const void *vbase, size_t size, const ImageSource &src)
{
    const char *base = static_cast<const char *>(vbase);
    if (reinterpret_cast<uintptr_t>(vbase) % 8 != 0)
        throw MdesError("LMDES image base is not 8-byte aligned");
    if (size < sizeof(v7::Header))
        throw MdesError("truncated LMDES image: " + std::to_string(size) +
                        " bytes is smaller than the " +
                        std::to_string(sizeof(v7::Header)) +
                        "-byte header");
    v7::Header hdr;
    std::memcpy(&hdr, base, sizeof(hdr));
    if (std::memcmp(hdr.magic, v7::kMagic, 4) != 0)
        throw MdesError("not an LMDES image: magic is '" +
                        printableMagic(hdr.magic) + "', expected 'LMDS'");
    if (hdr.version != v7::kVersion)
        throw MdesVersionError("unsupported LMDES version " +
                               std::to_string(hdr.version) + ", expected " +
                               std::to_string(v7::kVersion));
    if (hdr.image_bytes != size)
        throw MdesError("LMDES image size mismatch: header claims " +
                        std::to_string(hdr.image_bytes) + " bytes, have " +
                        std::to_string(size));
    if (hdr.section_count != v7::kNumSections)
        throw MdesError("LMDES section count " +
                        std::to_string(hdr.section_count) + ", expected " +
                        std::to_string(v7::kNumSections));
    if (src.verify_checksum) {
        const uint64_t computed =
            fnv1a(base + sizeof(hdr), size - sizeof(hdr));
        if (hdr.checksum != computed)
            throw MdesError("LMDES checksum mismatch: stored " +
                            hex(hdr.checksum) + ", computed " +
                            hex(computed));
    }
    if (hdr.slot_words == 0 || hdr.slot_words > 64)
        throw MdesError("implausible slot_words " +
                        std::to_string(hdr.slot_words) +
                        " in LMDES image (expected 1..64)");
    if (hdr.num_resources > hdr.slot_words * 64)
        throw MdesError("LMDES resource count " +
                        std::to_string(hdr.num_resources) +
                        " does not fit " + std::to_string(hdr.slot_words) +
                        " RU-map word(s)");
    validateSectionTable(hdr);

    LowMdes low;
    low.num_resources_ = hdr.num_resources;
    low.slot_words_ = hdr.slot_words;
    low.packed_ = hdr.packed != 0;
    low.view_.checks = sectionSpan<Check>(base, hdr.sections[v7::kChecks]);
    low.view_.options =
        sectionSpan<LowOption>(base, hdr.sections[v7::kOptions]);
    low.view_.option_refs =
        sectionSpan<uint32_t>(base, hdr.sections[v7::kOptionRefs]);
    low.view_.or_trees =
        sectionSpan<LowOrTree>(base, hdr.sections[v7::kOrTrees]);
    low.view_.or_refs =
        sectionSpan<uint32_t>(base, hdr.sections[v7::kOrRefs]);
    low.view_.trees = sectionSpan<LowTree>(base, hdr.sections[v7::kTrees]);
    low.view_.tree_summaries =
        sectionSpan<TreeSummary>(base, hdr.sections[v7::kTreeSummaries]);
    low.view_.prefilter =
        sectionSpan<Check>(base, hdr.sections[v7::kPrefilter]);
    low.view_.bypasses =
        sectionSpan<LowBypass>(base, hdr.sections[v7::kBypasses]);
    // Publish the spans through the accessors for validation below. In
    // the deep-copy case the backing is a non-owning alias of the
    // caller's buffer, dropped by materialize() before returning.
    low.backing_ = src.backing
                       ? src.backing
                       : std::shared_ptr<const void>(
                             std::shared_ptr<const void>(), vbase);

    // Materialize the text: a (off, len) slice of the pool per string.
    const std::span<const char> pool =
        sectionSpan<char>(base, hdr.sections[v7::kStringPool]);
    auto poolStr = [&pool](uint32_t off, uint32_t len, const char *what) {
        if (uint64_t(off) + len > pool.size())
            throw MdesError(std::string("LMDES ") + what +
                            " string reference [" + std::to_string(off) +
                            ", +" + std::to_string(len) +
                            ") falls outside the " +
                            std::to_string(pool.size()) +
                            "-byte string pool");
        return std::string(pool.data() + off, len);
    };
    low.machine_name_ =
        poolStr(hdr.machine_name_off, hdr.machine_name_len, "machine-name");
    const auto name_refs =
        sectionSpan<v7::StrRef>(base, hdr.sections[v7::kResourceNames]);
    if (name_refs.size() != low.num_resources_)
        throw MdesError("LMDES resource-name count " +
                        std::to_string(name_refs.size()) +
                        " does not match resource count " +
                        std::to_string(low.num_resources_));
    low.resource_names_.reserve(name_refs.size());
    for (const auto &r : name_refs)
        low.resource_names_.push_back(poolStr(r.off, r.len,
                                              "resource-name"));
    const auto class_recs =
        sectionSpan<v7::OpClassRec>(base, hdr.sections[v7::kOpClasses]);
    low.op_classes_.reserve(class_recs.size());
    for (const auto &rec : class_recs) {
        LowOpClass oc;
        oc.name = poolStr(rec.name_off, rec.name_len, "op-class name");
        oc.tree = rec.tree;
        oc.cascade_tree = rec.cascade_tree;
        oc.latency = rec.latency;
        oc.comment =
            poolStr(rec.comment_off, rec.comment_len, "op-class comment");
        low.op_classes_.push_back(std::move(oc));
    }

    // Validate every cross-reference so a corrupt image cannot cause
    // out-of-range indexing later.
    const auto checks = low.checks();
    const auto options = low.options();
    const auto option_refs = low.optionRefs();
    const auto or_trees = low.orTrees();
    const auto or_refs = low.orRefs();
    const auto trees = low.trees();
    const auto summaries = low.treeSummaries();
    const auto prefilter = low.prefilter();
    for (const auto &o : options) {
        if (size_t(o.first_check) + o.num_checks > checks.size())
            throw MdesError("LMDES option references bad check range");
    }
    for (const auto &t : or_trees) {
        if (size_t(t.first_option_ref) + t.num_options >
            option_refs.size())
            throw MdesError("LMDES OR-tree references bad option range");
    }
    for (uint32_t r : option_refs) {
        if (r >= options.size())
            throw MdesError("LMDES option reference out of range");
    }
    for (const auto &t : trees) {
        if (size_t(t.first_or_ref) + t.num_or_trees > or_refs.size())
            throw MdesError("LMDES tree references bad OR range");
    }
    for (uint32_t r : or_refs) {
        if (r >= or_trees.size())
            throw MdesError("LMDES OR reference out of range");
    }
    for (const auto &oc : low.op_classes_) {
        if (oc.tree >= trees.size())
            throw MdesError("LMDES op class references bad tree");
        if (oc.cascade_tree != kInvalidId &&
            oc.cascade_tree >= trees.size())
            throw MdesError("LMDES op class references bad cascade tree");
    }
    for (const auto &bp : low.bypasses()) {
        if (bp.from >= low.op_classes_.size() ||
            bp.to >= low.op_classes_.size())
            throw MdesError("LMDES bypass references bad operation");
    }
    if (summaries.size() != trees.size())
        throw MdesError("LMDES tree-summary count " +
                        std::to_string(summaries.size()) +
                        " does not match tree count " +
                        std::to_string(trees.size()));
    for (const auto &sum : summaries) {
        if (sum.min_slot > sum.max_slot)
            throw MdesError("LMDES tree summary has inverted slot "
                            "window");
        if (sum.min_slot < -v7::kMaxSlotMagnitude ||
            sum.max_slot > v7::kMaxSlotMagnitude)
            throw MdesError("LMDES tree summary has implausible slot "
                            "window [" + std::to_string(sum.min_slot) +
                            ", " + std::to_string(sum.max_slot) + "]");
        if (size_t(sum.first_prefilter) + sum.num_prefilter >
            prefilter.size())
            throw MdesError("LMDES tree summary references bad "
                            "prefilter range");
    }
    validateCheckFields(checks, "check", low.num_resources_,
                        low.slot_words_);
    validateCheckFields(prefilter, "prefilter", low.num_resources_,
                        low.slot_words_);
    // The checker's direct-index fast path assumes every slot reachable
    // from a tree lies inside its summary window; enforce it rather
    // than trusting the image.
    for (size_t t = 0; t < trees.size(); ++t) {
        const TreeSummary &sum = summaries[t];
        auto inWindow = [&](int32_t slot) {
            return slot >= sum.min_slot && slot <= sum.max_slot;
        };
        const LowTree &tr = trees[t];
        for (uint32_t s = 0; s < tr.num_or_trees; ++s) {
            const LowOrTree &ot = or_trees[or_refs[tr.first_or_ref + s]];
            for (uint32_t oi = 0; oi < ot.num_options; ++oi) {
                const LowOption &opt =
                    options[option_refs[ot.first_option_ref + oi]];
                for (uint32_t c = 0; c < opt.num_checks; ++c) {
                    if (!inWindow(checks[opt.first_check + c].slot))
                        throw MdesError(
                            "LMDES tree " + std::to_string(t) +
                            " reaches a check outside its summary slot "
                            "window");
                }
            }
        }
        for (uint32_t p = 0; p < sum.num_prefilter; ++p) {
            if (!inWindow(prefilter[sum.first_prefilter + p].slot))
                throw MdesError("LMDES tree " + std::to_string(t) +
                                " has a prefilter entry outside its "
                                "summary slot window");
        }
    }

    if (!src.backing)
        low.materialize();
    return low;
}

void
LowMdes::materialize()
{
    checks_.assign(view_.checks.begin(), view_.checks.end());
    options_.assign(view_.options.begin(), view_.options.end());
    option_refs_.assign(view_.option_refs.begin(),
                        view_.option_refs.end());
    or_trees_.assign(view_.or_trees.begin(), view_.or_trees.end());
    or_refs_.assign(view_.or_refs.begin(), view_.or_refs.end());
    trees_.assign(view_.trees.begin(), view_.trees.end());
    tree_summaries_.assign(view_.tree_summaries.begin(),
                           view_.tree_summaries.end());
    prefilter_.assign(view_.prefilter.begin(), view_.prefilter.end());
    bypasses_.assign(view_.bypasses.begin(), view_.bypasses.end());
    view_ = ImageView{};
    backing_.reset();
    g_full_deserializations.fetch_add(1, std::memory_order_relaxed);
}

LowMdes
LowMdes::load(std::istream &is)
{
    char magic[4] = {};
    is.read(magic, 4);
    if (!is)
        throw MdesError("not an LMDES stream: ends before the 4-byte "
                        "magic (expected 'LMDS')");
    if (std::memcmp(magic, v7::kMagic, 4) != 0)
        throw MdesError("not an LMDES stream: magic is '" +
                        printableMagic(magic) + "', expected 'LMDS'");

    uint32_t version = 0;
    is.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (!is)
        throw MdesError("truncated LMDES stream: ends inside the "
                        "version field (expected version " +
                        std::to_string(v7::kVersion) + ")");
    if (version != v7::kVersion)
        throw MdesVersionError("unsupported LMDES version " +
                               std::to_string(version) + ", expected " +
                               std::to_string(v7::kVersion));

    uint64_t image_bytes = 0;
    is.read(reinterpret_cast<char *>(&image_bytes), sizeof(image_bytes));
    if (!is)
        throw MdesError("truncated LMDES stream: ends inside the "
                        "image-size field");
    if (image_bytes > v7::kMaxImageBytes)
        throw MdesError("implausible LMDES image size " +
                        std::to_string(image_bytes) + " bytes (limit " +
                        std::to_string(v7::kMaxImageBytes) + ")");
    if (image_bytes < sizeof(v7::Header))
        throw MdesError("implausible LMDES image size " +
                        std::to_string(image_bytes) +
                        " bytes: smaller than the " +
                        std::to_string(sizeof(v7::Header)) +
                        "-byte header");

    // uint64_t backing guarantees the 8-byte alignment fromImage needs.
    std::vector<uint64_t> buf((image_bytes + 7) / 8);
    char *bytes = reinterpret_cast<char *>(buf.data());
    std::memcpy(bytes, magic, 4);
    std::memcpy(bytes + 4, &version, 4);
    std::memcpy(bytes + 8, &image_bytes, 8);
    is.read(bytes + 16, std::streamsize(image_bytes - 16));
    if (size_t(is.gcount()) != image_bytes - 16)
        throw MdesError("truncated LMDES stream: image claims " +
                        std::to_string(image_bytes) +
                        " bytes, stream holds " +
                        std::to_string(16 + is.gcount()));

    return fromImage(bytes, size_t(image_bytes), ImageSource{});
}

} // namespace mdes::lmdes
