#include <cstring>
#include <istream>
#include <ostream>

#include "lmdes/low_mdes.h"
#include "support/diagnostics.h"

/**
 * @file
 * Binary serialization of the low-level representation, so a translated
 * and optimized MDES can be shipped to and loaded by the compiler without
 * reparsing or reoptimizing (the paper's "minimize the time required to
 * load the MDES into memory").
 *
 * Format: magic "LMDS", version u32, then length-prefixed sections. All
 * integers little-endian as written by the host (the format is meant for
 * same-host caching, not interchange).
 */

namespace mdes::lmdes {

namespace {

constexpr char kMagic[4] = {'L', 'M', 'D', 'S'};
constexpr uint32_t kVersion = 3;

void
writeU32(std::ostream &os, uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeStr(std::ostream &os, const std::string &s)
{
    writeU32(os, uint32_t(s.size()));
    os.write(s.data(), std::streamsize(s.size()));
}

template <typename T>
void
writePod(std::ostream &os, const std::vector<T> &v)
{
    writeU32(os, uint32_t(v.size()));
    os.write(reinterpret_cast<const char *>(v.data()),
             std::streamsize(v.size() * sizeof(T)));
}

uint32_t
readU32(std::istream &is)
{
    uint32_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        throw MdesError("truncated LMDES stream");
    return v;
}

std::string
readStr(std::istream &is)
{
    uint32_t n = readU32(is);
    if (n > (1u << 20))
        throw MdesError("implausible string length in LMDES stream");
    std::string s(n, '\0');
    is.read(s.data(), std::streamsize(n));
    if (!is)
        throw MdesError("truncated LMDES stream");
    return s;
}

template <typename T>
std::vector<T>
readPod(std::istream &is)
{
    uint32_t n = readU32(is);
    if (n > (1u << 26))
        throw MdesError("implausible section length in LMDES stream");
    std::vector<T> v(n);
    is.read(reinterpret_cast<char *>(v.data()),
            std::streamsize(size_t(n) * sizeof(T)));
    if (!is)
        throw MdesError("truncated LMDES stream");
    return v;
}

} // namespace

void
LowMdes::save(std::ostream &os) const
{
    os.write(kMagic, 4);
    writeU32(os, kVersion);
    writeStr(os, machine_name_);
    writeU32(os, num_resources_);
    writeU32(os, slot_words_);
    writeU32(os, packed_ ? 1 : 0);
    writePod(os, checks_);
    writePod(os, options_);
    writePod(os, option_refs_);
    writePod(os, or_trees_);
    writePod(os, or_refs_);
    writePod(os, trees_);
    writeU32(os, uint32_t(op_classes_.size()));
    for (const auto &oc : op_classes_) {
        writeStr(os, oc.name);
        writeU32(os, oc.tree);
        writeU32(os, oc.cascade_tree);
        writeU32(os, uint32_t(oc.latency));
        writeStr(os, oc.comment);
    }
    writePod(os, bypasses_);
}

LowMdes
LowMdes::load(std::istream &is)
{
    char magic[4] = {};
    is.read(magic, 4);
    if (!is || std::memcmp(magic, kMagic, 4) != 0)
        throw MdesError("not an LMDES stream (bad magic)");
    uint32_t version = readU32(is);
    if (version != kVersion)
        throw MdesError("unsupported LMDES version " +
                        std::to_string(version));

    LowMdes low;
    low.machine_name_ = readStr(is);
    low.num_resources_ = readU32(is);
    low.slot_words_ = readU32(is);
    if (low.slot_words_ == 0 || low.slot_words_ > 64)
        throw MdesError("implausible slot_words in LMDES stream");
    low.packed_ = readU32(is) != 0;
    low.checks_ = readPod<Check>(is);
    low.options_ = readPod<LowOption>(is);
    low.option_refs_ = readPod<uint32_t>(is);
    low.or_trees_ = readPod<LowOrTree>(is);
    low.or_refs_ = readPod<uint32_t>(is);
    low.trees_ = readPod<LowTree>(is);
    uint32_t num_classes = readU32(is);
    if (num_classes > (1u << 20))
        throw MdesError("implausible operation-class count");
    for (uint32_t i = 0; i < num_classes; ++i) {
        LowOpClass oc;
        oc.name = readStr(is);
        oc.tree = readU32(is);
        oc.cascade_tree = readU32(is);
        oc.latency = int32_t(readU32(is));
        oc.comment = readStr(is);
        low.op_classes_.push_back(std::move(oc));
    }
    low.bypasses_ = readPod<LowBypass>(is);

    // Validate every reference so a corrupt stream cannot cause
    // out-of-range indexing later.
    for (const auto &o : low.options_) {
        if (size_t(o.first_check) + o.num_checks > low.checks_.size())
            throw MdesError("LMDES option references bad check range");
    }
    for (const auto &t : low.or_trees_) {
        if (size_t(t.first_option_ref) + t.num_options >
            low.option_refs_.size())
            throw MdesError("LMDES OR-tree references bad option range");
    }
    for (uint32_t r : low.option_refs_) {
        if (r >= low.options_.size())
            throw MdesError("LMDES option reference out of range");
    }
    for (const auto &t : low.trees_) {
        if (size_t(t.first_or_ref) + t.num_or_trees > low.or_refs_.size())
            throw MdesError("LMDES tree references bad OR range");
    }
    for (uint32_t r : low.or_refs_) {
        if (r >= low.or_trees_.size())
            throw MdesError("LMDES OR reference out of range");
    }
    for (const auto &oc : low.op_classes_) {
        if (oc.tree >= low.trees_.size())
            throw MdesError("LMDES op class references bad tree");
        if (oc.cascade_tree != kInvalidId &&
            oc.cascade_tree >= low.trees_.size())
            throw MdesError("LMDES op class references bad cascade tree");
    }
    for (const auto &bp : low.bypasses_) {
        if (bp.from >= low.op_classes_.size() ||
            bp.to >= low.op_classes_.size())
            throw MdesError("LMDES bypass references bad operation");
    }
    return low;
}

} // namespace mdes::lmdes
