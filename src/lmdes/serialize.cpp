#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "lmdes/low_mdes.h"
#include "support/diagnostics.h"

/**
 * @file
 * Binary serialization of the low-level representation, so a translated
 * and optimized MDES can be shipped to and loaded by the compiler without
 * reparsing or reoptimizing (the paper's "minimize the time required to
 * load the MDES into memory").
 *
 * Format (version 6):
 *
 *   magic "LMDS" | version u32 | payload_size u64 | payload | checksum u64
 *
 * The payload holds the length-prefixed sections of version 3, plus (v5)
 * the per-instance resource names used by conflict profiling, plus (v6)
 * the per-tree probe summaries and the collision-vector prefilter pool
 * the flat query engine uses (see TreeSummary) - precomputed at lowering
 * time so a loaded description probes exactly as fast as a freshly
 * lowered one; the
 * trailer is FNV-1a64 over the payload bytes, verified before any
 * parsing so a flipped bit is reported as a checksum mismatch rather
 * than surfacing as a mysterious structural error. All integers are
 * little-endian as written by the host (the format is meant for
 * same-host caching, not interchange).
 *
 * Loading is paranoid: the payload size is bounded up front, every
 * length prefix inside the payload is capped by the bytes actually
 * remaining (a corrupt prefix can never trigger a multi-GB allocation),
 * and every error message states what was found versus what was
 * expected.
 */

namespace mdes::lmdes {

namespace {

constexpr char kMagic[4] = {'L', 'M', 'D', 'S'};
constexpr uint32_t kVersion = 6;
/** Upper bound on a sane payload; real descriptions are kilobytes. */
constexpr uint64_t kMaxPayloadBytes = uint64_t(1) << 30;

uint64_t
fnv1a(const char *data, size_t n)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= uint8_t(data[i]);
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hex(uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx", (unsigned long long)v);
    return buf;
}

/** Render possibly-binary magic bytes for an error message. */
std::string
printableMagic(const char m[4])
{
    std::string out;
    for (int i = 0; i < 4; ++i) {
        unsigned char c = (unsigned char)m[i];
        if (c >= 0x20 && c < 0x7f) {
            out += char(c);
        } else {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\x%02x", c);
            out += buf;
        }
    }
    return out;
}

void
writeU32(std::ostream &os, uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeU64(std::ostream &os, uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeStr(std::ostream &os, const std::string &s)
{
    writeU32(os, uint32_t(s.size()));
    os.write(s.data(), std::streamsize(s.size()));
}

template <typename T>
void
writePod(std::ostream &os, const std::vector<T> &v)
{
    writeU32(os, uint32_t(v.size()));
    os.write(reinterpret_cast<const char *>(v.data()),
             std::streamsize(v.size() * sizeof(T)));
}

/**
 * Bounds-checked cursor over the checksum-verified payload. Every read
 * is capped by the bytes remaining, so a corrupt length prefix is
 * reported (with the offending value and the remaining budget) instead
 * of driving an allocation.
 */
class ByteReader
{
  public:
    ByteReader(const char *data, size_t size) : data_(data), size_(size) {}

    size_t remaining() const { return size_ - off_; }

    uint32_t
    readU32()
    {
        if (remaining() < sizeof(uint32_t))
            throw MdesError("truncated LMDES payload: need 4 bytes at "
                            "offset " +
                            std::to_string(off_) + ", have " +
                            std::to_string(remaining()));
        uint32_t v = 0;
        std::memcpy(&v, data_ + off_, sizeof(v));
        off_ += sizeof(v);
        return v;
    }

    std::string
    readStr()
    {
        uint32_t n = readU32();
        if (n > remaining())
            throw MdesError("corrupt LMDES string length " +
                            std::to_string(n) + " at offset " +
                            std::to_string(off_) + ": only " +
                            std::to_string(remaining()) +
                            " payload bytes remain");
        std::string s(data_ + off_, n);
        off_ += n;
        return s;
    }

    template <typename T>
    std::vector<T>
    readPod()
    {
        uint32_t n = readU32();
        // Cap by the remaining stream size before sizing the vector: a
        // corrupt count must fail here, not in the allocator.
        if (uint64_t(n) * sizeof(T) > remaining())
            throw MdesError("corrupt LMDES section length " +
                            std::to_string(n) + " (" +
                            std::to_string(uint64_t(n) * sizeof(T)) +
                            " bytes) at offset " + std::to_string(off_) +
                            ": only " + std::to_string(remaining()) +
                            " payload bytes remain");
        std::vector<T> v(n);
        if (n)
            std::memcpy(v.data(), data_ + off_, size_t(n) * sizeof(T));
        off_ += size_t(n) * sizeof(T);
        return v;
    }

  private:
    const char *data_;
    size_t size_;
    size_t off_ = 0;
};

} // namespace

void
LowMdes::save(std::ostream &os) const
{
    // Build the payload first so the header can carry its size and the
    // trailer its checksum.
    std::ostringstream body;
    writeStr(body, machine_name_);
    writeU32(body, num_resources_);
    writeU32(body, slot_words_);
    writeU32(body, packed_ ? 1 : 0);
    writePod(body, checks_);
    writePod(body, options_);
    writePod(body, option_refs_);
    writePod(body, or_trees_);
    writePod(body, or_refs_);
    writePod(body, trees_);
    writeU32(body, uint32_t(op_classes_.size()));
    for (const auto &oc : op_classes_) {
        writeStr(body, oc.name);
        writeU32(body, oc.tree);
        writeU32(body, oc.cascade_tree);
        writeU32(body, uint32_t(oc.latency));
        writeStr(body, oc.comment);
    }
    writePod(body, bypasses_);
    writeU32(body, uint32_t(resource_names_.size()));
    for (const auto &name : resource_names_)
        writeStr(body, name);
    writePod(body, tree_summaries_);
    writePod(body, prefilter_);

    std::string payload = body.str();
    os.write(kMagic, 4);
    writeU32(os, kVersion);
    writeU64(os, payload.size());
    os.write(payload.data(), std::streamsize(payload.size()));
    writeU64(os, fnv1a(payload.data(), payload.size()));
}

LowMdes
LowMdes::load(std::istream &is)
{
    char magic[4] = {};
    is.read(magic, 4);
    if (!is)
        throw MdesError("not an LMDES stream: ends before the 4-byte "
                        "magic (expected 'LMDS')");
    if (std::memcmp(magic, kMagic, 4) != 0)
        throw MdesError("not an LMDES stream: magic is '" +
                        printableMagic(magic) + "', expected 'LMDS'");

    uint32_t version = 0;
    is.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (!is)
        throw MdesError("truncated LMDES stream: ends inside the "
                        "version field (expected version " +
                        std::to_string(kVersion) + ")");
    if (version != kVersion)
        throw MdesError("unsupported LMDES version " +
                        std::to_string(version) + ", expected " +
                        std::to_string(kVersion));

    uint64_t payload_size = 0;
    is.read(reinterpret_cast<char *>(&payload_size), sizeof(payload_size));
    if (!is)
        throw MdesError("truncated LMDES stream: ends inside the "
                        "payload-size field");
    if (payload_size > kMaxPayloadBytes)
        throw MdesError("implausible LMDES payload size " +
                        std::to_string(payload_size) + " bytes (limit " +
                        std::to_string(kMaxPayloadBytes) + ")");

    std::string payload(size_t(payload_size), '\0');
    is.read(payload.data(), std::streamsize(payload_size));
    if (size_t(is.gcount()) != payload_size)
        throw MdesError("truncated LMDES stream: payload claims " +
                        std::to_string(payload_size) +
                        " bytes, stream holds " +
                        std::to_string(is.gcount()));

    uint64_t stored_checksum = 0;
    is.read(reinterpret_cast<char *>(&stored_checksum),
            sizeof(stored_checksum));
    if (!is)
        throw MdesError("truncated LMDES stream: missing the 8-byte "
                        "checksum trailer");
    uint64_t computed = fnv1a(payload.data(), payload.size());
    if (stored_checksum != computed)
        throw MdesError("LMDES checksum mismatch: stored " +
                        hex(stored_checksum) + ", computed " +
                        hex(computed));

    ByteReader in(payload.data(), payload.size());
    LowMdes low;
    low.machine_name_ = in.readStr();
    low.num_resources_ = in.readU32();
    low.slot_words_ = in.readU32();
    if (low.slot_words_ == 0 || low.slot_words_ > 64)
        throw MdesError("implausible slot_words " +
                        std::to_string(low.slot_words_) +
                        " in LMDES stream (expected 1..64)");
    low.packed_ = in.readU32() != 0;
    low.checks_ = in.readPod<Check>();
    low.options_ = in.readPod<LowOption>();
    low.option_refs_ = in.readPod<uint32_t>();
    low.or_trees_ = in.readPod<LowOrTree>();
    low.or_refs_ = in.readPod<uint32_t>();
    low.trees_ = in.readPod<LowTree>();
    uint32_t num_classes = in.readU32();
    if (uint64_t(num_classes) * 20 > in.remaining())
        throw MdesError("corrupt operation-class count " +
                        std::to_string(num_classes) + ": only " +
                        std::to_string(in.remaining()) +
                        " payload bytes remain");
    for (uint32_t i = 0; i < num_classes; ++i) {
        LowOpClass oc;
        oc.name = in.readStr();
        oc.tree = in.readU32();
        oc.cascade_tree = in.readU32();
        oc.latency = int32_t(in.readU32());
        oc.comment = in.readStr();
        low.op_classes_.push_back(std::move(oc));
    }
    low.bypasses_ = in.readPod<LowBypass>();
    uint32_t num_names = in.readU32();
    if (num_names != low.num_resources_)
        throw MdesError("LMDES resource-name count " +
                        std::to_string(num_names) +
                        " does not match resource count " +
                        std::to_string(low.num_resources_));
    // Each name needs at least its 4-byte length prefix.
    if (uint64_t(num_names) * 4 > in.remaining())
        throw MdesError("corrupt resource-name count " +
                        std::to_string(num_names) + ": only " +
                        std::to_string(in.remaining()) +
                        " payload bytes remain");
    low.resource_names_.reserve(num_names);
    for (uint32_t i = 0; i < num_names; ++i)
        low.resource_names_.push_back(in.readStr());
    low.tree_summaries_ = in.readPod<TreeSummary>();
    low.prefilter_ = in.readPod<Check>();

    // Validate every reference so a corrupt stream cannot cause
    // out-of-range indexing later.
    for (const auto &o : low.options_) {
        if (size_t(o.first_check) + o.num_checks > low.checks_.size())
            throw MdesError("LMDES option references bad check range");
    }
    for (const auto &t : low.or_trees_) {
        if (size_t(t.first_option_ref) + t.num_options >
            low.option_refs_.size())
            throw MdesError("LMDES OR-tree references bad option range");
    }
    for (uint32_t r : low.option_refs_) {
        if (r >= low.options_.size())
            throw MdesError("LMDES option reference out of range");
    }
    for (const auto &t : low.trees_) {
        if (size_t(t.first_or_ref) + t.num_or_trees > low.or_refs_.size())
            throw MdesError("LMDES tree references bad OR range");
    }
    for (uint32_t r : low.or_refs_) {
        if (r >= low.or_trees_.size())
            throw MdesError("LMDES OR reference out of range");
    }
    for (const auto &oc : low.op_classes_) {
        if (oc.tree >= low.trees_.size())
            throw MdesError("LMDES op class references bad tree");
        if (oc.cascade_tree != kInvalidId &&
            oc.cascade_tree >= low.trees_.size())
            throw MdesError("LMDES op class references bad cascade tree");
    }
    for (const auto &bp : low.bypasses_) {
        if (bp.from >= low.op_classes_.size() ||
            bp.to >= low.op_classes_.size())
            throw MdesError("LMDES bypass references bad operation");
    }
    if (low.tree_summaries_.size() != low.trees_.size())
        throw MdesError("LMDES tree-summary count " +
                        std::to_string(low.tree_summaries_.size()) +
                        " does not match tree count " +
                        std::to_string(low.trees_.size()));
    for (const auto &sum : low.tree_summaries_) {
        if (sum.min_slot > sum.max_slot)
            throw MdesError("LMDES tree summary has inverted slot "
                            "window");
        if (size_t(sum.first_prefilter) + sum.num_prefilter >
            low.prefilter_.size())
            throw MdesError("LMDES tree summary references bad "
                            "prefilter range");
    }
    return low;
}

} // namespace mdes::lmdes
