#ifndef MDES_LMDES_IMAGE_H
#define MDES_LMDES_IMAGE_H

/**
 * @file
 * On-disk layout of the position-independent LMDES image (format v7).
 *
 * Unlike the v4-v6 byte stream (length-prefixed sections deserialized
 * into heap vectors), a v7 image is designed to be consumed *in place*:
 * a fixed header carries a section table of (offset, bytes) pairs, every
 * POD array is stored at a 64-byte-aligned offset so a Checker can index
 * it straight out of an mmap'ed file, and all variable-length text
 * (machine name, op-class names/comments, resource names) lives in one
 * offset-indexed string pool so nothing in the fixed-stride sections is
 * variable length. The whole image is relocatable: it contains offsets,
 * never pointers, so N server processes can map one physical copy.
 *
 * The layout is declared here (rather than buried in serialize.cpp) so
 * tests can craft and patch images precisely - the v7 analogue of
 * fuzzing v4's length prefixes.
 *
 * Layout:
 *
 *   [Header, 240 bytes]
 *   [pad to kDataStart = 256]
 *   [sections, each at a 64-byte-aligned offset, in table order]
 *
 * Header::checksum is FNV-1a64 over bytes [sizeof(Header), image_bytes)
 * - everything except the header itself - verified once at open. All
 * integers are little-endian as written by the host (same-host caching,
 * not interchange).
 */

#include <cstddef>
#include <cstdint>

#include "support/diagnostics.h"

namespace mdes::lmdes {

/**
 * Thrown when a stream/image carries a well-formed magic but a format
 * version this build does not speak. Distinct from MdesError so the
 * artifact store can tell "written by another release - silently
 * recompile" apart from "damaged - quarantine".
 */
class MdesVersionError : public MdesError
{
  public:
    explicit MdesVersionError(const std::string &what) : MdesError(what) {}
};

namespace v7 {

constexpr char kMagic[4] = {'L', 'M', 'D', 'S'};
constexpr uint32_t kVersion = 7;
/** Alignment of every section offset (cache line; divides page size). */
constexpr size_t kAlign = 64;
/** Upper bound on a sane image; real descriptions are kilobytes. */
constexpr uint64_t kMaxImageBytes = uint64_t(1) << 30;

/** Section-table indices, in file order. */
enum SectionId : uint32_t {
    kChecks = 0,        ///< Check[]        (16 B each)
    kOptions,           ///< LowOption[]    (8 B each)
    kOptionRefs,        ///< uint32_t[]
    kOrTrees,           ///< LowOrTree[]    (8 B each)
    kOrRefs,            ///< uint32_t[]
    kTrees,             ///< LowTree[]      (8 B each)
    kBypasses,          ///< LowBypass[]    (12 B each)
    kTreeSummaries,     ///< TreeSummary[]  (16 B each)
    kPrefilter,         ///< Check[]        (16 B each)
    kOpClasses,         ///< OpClassRec[]   (28 B each)
    kResourceNames,     ///< StrRef[], one per resource instance
    kStringPool,        ///< raw bytes indexed by StrRef / name offsets
    kNumSections
};

/** One section-table entry. `offset` is from the start of the image. */
struct Section
{
    uint64_t offset = 0;
    uint64_t bytes = 0;
};

/** A (offset, length) slice of the string pool section. */
struct StrRef
{
    uint32_t off = 0;
    uint32_t len = 0;
};

/**
 * Fixed-stride operation-class record; the strings LowOpClass carries
 * inline are indirected through the pool.
 */
struct OpClassRec
{
    uint32_t name_off = 0;
    uint32_t name_len = 0;
    uint32_t tree = 0;
    uint32_t cascade_tree = 0;
    int32_t latency = 1;
    uint32_t comment_off = 0;
    uint32_t comment_len = 0;
};

/** The fixed v7 image header. */
struct Header
{
    char magic[4];
    uint32_t version;
    /** Total image size in bytes, including this header and padding. */
    uint64_t image_bytes;
    /** FNV-1a64 over [sizeof(Header), image_bytes). */
    uint64_t checksum;
    uint32_t num_resources;
    uint32_t slot_words;
    uint32_t packed;
    /** Machine name as a (off, len) slice of the string pool. */
    uint32_t machine_name_off;
    uint32_t machine_name_len;
    /** Always kNumSections; rejects table-shape drift up front. */
    uint32_t section_count;
    Section sections[kNumSections];
};

static_assert(sizeof(Section) == 16);
static_assert(sizeof(StrRef) == 8);
static_assert(sizeof(OpClassRec) == 28);
static_assert(sizeof(Header) == 240);

/** First section offset: sizeof(Header) rounded up to kAlign. */
constexpr size_t kDataStart = (sizeof(Header) + kAlign - 1) / kAlign * kAlign;
static_assert(kDataStart == 256);

/** Sanity bound on TreeSummary slot windows: a crafted image must not be
 * able to drive a multi-GB RU-map overlay allocation in the checker. */
constexpr int64_t kMaxSlotMagnitude = int64_t(1) << 20;

} // namespace v7

/**
 * Process-wide count of *full* LMDES deserializations: loads that
 * materialized every pool into heap vectors (the v6-era cost the mmap
 * path exists to avoid). Zero-copy image attach does not count.
 * bench_store_coldstart asserts this stays flat across a disk-warm
 * sweep.
 */
uint64_t fullDeserializations();

} // namespace mdes::lmdes

#endif // MDES_LMDES_IMAGE_H
