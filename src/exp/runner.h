#ifndef MDES_EXP_RUNNER_H
#define MDES_EXP_RUNNER_H

/**
 * @file
 * The shared experiment driver behind every benchmark binary.
 *
 * One experiment = (machine, representation, transformation set,
 * bit-vector packing): compile the high-level description, optionally
 * preprocess it into the flat OR-tree form, run the selected
 * transformations, lower to the low-level representation, generate the
 * machine's synthetic workload, schedule it with the multi-platform list
 * scheduler, and report sizes and scheduling statistics.
 *
 * The workload for a given machine is identical across configurations
 * (same seed), and every configuration produces the identical schedule -
 * the paper's Section 4 invariant - so all differences between
 * configurations are purely representation efficiency.
 */

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/mdes.h"
#include "core/transforms.h"
#include "lmdes/low_mdes.h"
#include "machines/machines.h"
#include "sched/list_scheduler.h"

namespace mdes::exp {

/** Which resource-constraint representation to evaluate. */
enum class Rep { OrTree, AndOrTree };

/** Printable representation name. */
const char *repName(Rep rep);

/** One experiment configuration. */
struct RunConfig
{
    const machines::MachineInfo *machine = nullptr;
    Rep rep = Rep::AndOrTree;
    PipelineConfig transforms;
    bool bit_vector = false;
    /**
     * Lower with collision-vector prefilters (LowerOptions::prefilter).
     * The paper-reproduction benches turn this off so checks/options
     * per attempt are counted by the engine the paper measured;
     * decisions and schedules are identical either way.
     */
    bool prefilter = true;
    /** Override the machine's workload size (0 = use the default). */
    size_t num_ops_override = 0;
    /** Skip workload scheduling (size-only experiments). */
    bool schedule = true;
};

/** Everything an experiment produces. */
struct RunResult
{
    /** Structured model after representation choice + transformations. */
    Mdes mid;
    lmdes::LowMdes low;
    lmdes::MemoryBreakdown memory;
    sched::SchedStats stats;
    /** Per-block schedules (for cross-configuration identity checks). */
    std::vector<sched::BlockSchedule> schedules;
    PipelineStats pipeline;
};

/** Compile @p machine's description (uncached). */
Mdes compileMachine(const machines::MachineInfo &machine);

/**
 * Build the structured model for a configuration without scheduling:
 * compile, apply representation, run transformations.
 */
Mdes buildModel(const RunConfig &config);

/**
 * Compile high-level MDES @p source, run @p transforms, and lower with
 * @p bit_vector packing: the one-call compile pipeline behind both the
 * mdesc tool and the service's compiled-description cache. Throws
 * MdesError (with rendered diagnostics) on bad source.
 *
 * @param pipeline_stats when non-null, receives the transform pipeline's
 *        effect counters (the service accumulates them into its metrics).
 * @param degraded when non-null, enables graceful degradation: if a
 *        transform pass throws, the source is recompiled without any
 *        transforms and the unoptimized lowering is returned with
 *        *degraded set. (When null a pass failure propagates - the
 *        original strict behavior.) CancelledError always propagates.
 * @param cancel polled between transform passes; returning true aborts
 *        the compile with CancelledError.
 */
lmdes::LowMdes compileSourceToLow(std::string_view source,
                                  const PipelineConfig &transforms,
                                  bool bit_vector, Rep rep = Rep::AndOrTree,
                                  PipelineStats *pipeline_stats = nullptr,
                                  bool *degraded = nullptr,
                                  const std::function<bool()> &cancel = {});

/** Run the full experiment. */
RunResult run(const RunConfig &config);

/** Convenience: "original" (no transformations, no bit-vector) config. */
RunConfig originalConfig(const machines::MachineInfo &machine, Rep rep);

/** Convenience: fully optimized config (all transforms + bit-vector). */
RunConfig optimizedConfig(const machines::MachineInfo &machine, Rep rep);

} // namespace mdes::exp

#endif // MDES_EXP_RUNNER_H
