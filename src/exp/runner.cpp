#include "exp/runner.h"

#include <new>

#include "core/expand.h"
#include "hmdes/compile.h"
#include "support/diagnostics.h"
#include "support/faultsim.h"
#include "support/trace.h"
#include "workload/workload.h"

namespace mdes::exp {

const char *
repName(Rep rep)
{
    return rep == Rep::OrTree ? "OR-tree" : "AND/OR-tree";
}

Mdes
compileMachine(const machines::MachineInfo &machine)
{
    return hmdes::compileOrThrow(machine.source);
}

Mdes
buildModel(const RunConfig &config)
{
    Mdes model = compileMachine(*config.machine);
    if (config.rep == Rep::OrTree)
        model = expandToOrForm(model);
    runPipeline(model, config.transforms);
    return model;
}

lmdes::LowMdes
compileSourceToLow(std::string_view source,
                   const PipelineConfig &transforms, bool bit_vector,
                   Rep rep, PipelineStats *pipeline_stats,
                   bool *degraded, const std::function<bool()> &cancel)
{
    Mdes model;
    {
        TRACE_SPAN_F(span, "compile/hmdes");
        model = hmdes::compileOrThrow(source);
        span.label("machine", model.name());
    }
    if (rep == Rep::OrTree)
        model = expandToOrForm(model);
    PipelineStats stats;
    try {
        stats = runPipeline(model, transforms, cancel);
    } catch (const CancelledError &) {
        throw;
    } catch (const std::exception &e) {
        if (!degraded)
            throw;
        // Graceful degradation: a transform pass is an optimization, not
        // a requirement - every transform preserves scheduling semantics
        // (the Section 4 invariant), so the untransformed description is
        // a correct, merely slower, substitute. A pass may have left the
        // model half-rewritten, so recompile the source from scratch.
        TRACE_SPAN_F(span, "compile/degraded");
        span.label("cause", e.what());
        model = hmdes::compileOrThrow(source);
        if (rep == Rep::OrTree)
            model = expandToOrForm(model);
        stats = PipelineStats{};
        *degraded = true;
    }
    if (pipeline_stats)
        *pipeline_stats = stats;
    TRACE_SPAN_F(span, "compile/lower");
    if (faultsim::probe(faultsim::Site::CompileAllocFail).fired)
        throw std::bad_alloc();
    lmdes::LowerOptions lopts;
    lopts.pack_bit_vector = bit_vector;
    lmdes::LowMdes low = lmdes::LowMdes::lower(model, lopts);
    span.counter("checks", low.checks().size());
    return low;
}

RunResult
run(const RunConfig &config)
{
    RunResult result;
    result.mid = compileMachine(*config.machine);
    if (config.rep == Rep::OrTree)
        result.mid = expandToOrForm(result.mid);
    result.pipeline = runPipeline(result.mid, config.transforms);

    lmdes::LowerOptions lopts;
    lopts.pack_bit_vector = config.bit_vector;
    lopts.prefilter = config.prefilter;
    result.low = lmdes::LowMdes::lower(result.mid, lopts);
    result.memory = result.low.memory();

    if (config.schedule) {
        workload::WorkloadSpec spec = config.machine->workload;
        if (config.num_ops_override != 0)
            spec.num_ops = config.num_ops_override;
        sched::Program program = workload::generate(spec, result.low);
        sched::ListScheduler scheduler(result.low);
        result.schedules =
            scheduler.scheduleProgram(program, result.stats);
    }
    return result;
}

RunConfig
originalConfig(const machines::MachineInfo &machine, Rep rep)
{
    RunConfig config;
    config.machine = &machine;
    config.rep = rep;
    config.transforms = PipelineConfig::none();
    config.bit_vector = false;
    return config;
}

RunConfig
optimizedConfig(const machines::MachineInfo &machine, Rep rep)
{
    RunConfig config;
    config.machine = &machine;
    config.rep = rep;
    config.transforms = PipelineConfig::all();
    config.bit_vector = true;
    return config;
}

} // namespace mdes::exp
