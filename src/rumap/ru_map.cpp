#include "rumap/ru_map.h"

namespace mdes::rumap {

void
RuMap::ensure(int32_t cycle)
{
    if (words_.empty()) {
        base_ = cycle;
        words_.assign(16, 0);
        return;
    }
    if (cycle < base_) {
        // Grow downward with slack so repeated negative-time reservations
        // do not keep shifting the buffer.
        size_t extra = size_t(base_ - cycle) + 16;
        words_.insert(words_.begin(), extra, 0);
        base_ -= int32_t(extra);
    } else if (size_t(cycle - base_) >= words_.size()) {
        size_t needed = size_t(cycle - base_) + 1;
        size_t grown = words_.size() * 2;
        words_.resize(needed > grown ? needed + 16 : grown, 0);
    }
}

} // namespace mdes::rumap
