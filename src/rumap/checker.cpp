#include "rumap/checker.h"

#include <bit>

#include "support/trace.h"

namespace mdes::rumap {

void
CheckStats::sizeFor(const lmdes::LowMdes &low)
{
    if (attempts_per_tree.size() < low.trees().size())
        attempts_per_tree.resize(low.trees().size(), 0);
    // The conflict table is a tracing artifact: it must stay empty while
    // tracing is off (dormant probe hooks), so only pre-size it when the
    // conflict path can actually run.
    if (trace::enabled()) {
        size_t instances = size_t(low.slotWords()) * 64;
        if (conflicts_per_resource.size() < instances)
            conflicts_per_resource.resize(instances, 0);
    }
}

void
CheckStats::merge(const CheckStats &other)
{
    attempts += other.attempts;
    successes += other.successes;
    options_checked += other.options_checked;
    resource_checks += other.resource_checks;
    prefilter_hits += other.prefilter_hits;
    probe_fastpath += other.probe_fastpath;
    options_per_attempt.merge(other.options_per_attempt);
    options_per_success.merge(other.options_per_success);
    if (other.attempts_per_tree.size() > attempts_per_tree.size())
        attempts_per_tree.resize(other.attempts_per_tree.size(), 0);
    for (size_t i = 0; i < other.attempts_per_tree.size(); ++i)
        attempts_per_tree[i] += other.attempts_per_tree[i];
    if (other.conflicts_per_resource.size() >
        conflicts_per_resource.size())
        conflicts_per_resource.resize(other.conflicts_per_resource.size(),
                                      0);
    for (size_t i = 0; i < other.conflicts_per_resource.size(); ++i)
        conflicts_per_resource[i] += other.conflicts_per_resource[i];
}

void
Checker::recordConflict(CheckStats &stats, int32_t at, uint64_t busy)
    const
{
    // Slots interleave the machine's RU-map words per cycle, so the word
    // index is the slot modulo slotWords() (Euclidean: pre-shift usage
    // times can be negative).
    int32_t words = int32_t(low_.slotWords());
    int32_t word = at % words;
    if (word < 0)
        word += words;
    size_t base = size_t(word) * 64;
    if (stats.conflicts_per_resource.size() < base + 64)
        stats.conflicts_per_resource.resize(base + 64, 0);
    while (busy != 0) {
        unsigned bit = unsigned(std::countr_zero(busy));
        busy &= busy - 1;
        ++stats.conflicts_per_resource[base + bit];
    }
}

Checker::Checker(const lmdes::LowMdes &low) : low_(low)
{
    buildFlat();
}

void
Checker::buildFlat()
{
    const auto &trees = low_.trees();
    const auto &summaries = low_.treeSummaries();
    flat_trees_.reserve(trees.size());
    flat_pf_ = low_.prefilter();

    for (size_t ti = 0; ti < trees.size(); ++ti) {
        const lmdes::LowTree &t = trees[ti];
        const lmdes::TreeSummary &sum = summaries[ti];
        FlatTree ft;
        ft.first_sub = uint32_t(flat_subs_.size());
        ft.num_subs = t.num_or_trees;
        ft.first_pf = sum.first_prefilter;
        ft.num_pf = sum.num_prefilter;
        ft.min_slot = sum.min_slot;
        ft.max_slot = sum.max_slot;

        for (uint32_t s = 0; s < t.num_or_trees; ++s) {
            const lmdes::LowOrTree &ot =
                low_.orTrees()[low_.orRefs()[t.first_or_ref + s]];
            FlatSub fs;
            fs.first_opt = uint32_t(flat_opts_.size());
            fs.num_opts = ot.num_options;
            for (uint32_t oi = 0; oi < ot.num_options; ++oi) {
                uint32_t opt_id =
                    low_.optionRefs()[ot.first_option_ref + oi];
                const lmdes::LowOption &opt = low_.options()[opt_id];
                FlatOpt fo;
                fo.opt_id = opt_id;
                fo.first_check = uint32_t(flat_checks_.size());
                fo.num_checks = opt.num_checks;
                for (uint32_t c = 0; c < opt.num_checks; ++c)
                    flat_checks_.push_back(
                        low_.checks()[opt.first_check + c]);
                flat_opts_.push_back(fo);
                // First-check array, parallel to flat_opts_: failing
                // options almost always fail on their first probe, so
                // the option scan reads only this dense stream and
                // touches FlatOpt for surviving candidates. A checkless
                // option gets a never-busy probe at an in-window slot.
                if (opt.num_checks > 0)
                    flat_first_.push_back(
                        low_.checks()[opt.first_check]);
                else
                    flat_first_.push_back({sum.min_slot, 0});
            }
            flat_subs_.push_back(fs);
        }
        flat_trees_.push_back(ft);
    }
}

namespace {

/**
 * Addressing policies: how a check's tree-relative slot becomes a
 * map-normalized slot and how that slot's word is read. The probe picks
 * one per attempt from the tree's slot window (lmdes::TreeSummary), so
 * the window test and the normalization are paid once per attempt, not
 * once per check.
 */

/** Linear map with the tree's whole window allocated: unchecked direct
 * indexing off the raw window. */
struct DirectAddr
{
    const uint64_t *data; ///< windowData()
    int32_t wbase;        ///< windowBase()
    int32_t base;         ///< issue cycle in slot units

    int32_t norm(int32_t rel) const { return base + rel; }
    uint64_t
    word(int32_t at) const
    {
        return data[size_t(at - wbase)];
    }
};

/**
 * Modulo map whose slot window fits inside the initiation interval:
 * the issue cycle is normalized once, then each check wraps with a
 * single compare instead of a Euclidean division.
 */
struct WrapAddr
{
    const uint64_t *data; ///< the ii-slot modulo window (base 0)
    int32_t ii;
    int32_t nbase; ///< normalize(issue base), in [0, ii)

    int32_t
    norm(int32_t rel) const
    {
        int32_t at = nbase + rel;
        if (at >= ii)
            at -= ii;
        else if (at < 0)
            at += ii;
        return at;
    }
    uint64_t word(int32_t at) const { return data[size_t(at)]; }
};

/** Fallback: full normalization and a bounds-checked read per check. */
struct GeneralAddr
{
    const RuMap &ru;
    int32_t base;

    int32_t norm(int32_t rel) const { return ru.normalize(base + rel); }
    uint64_t word(int32_t at) const { return ru.wordSlot(at); }
};

} // namespace

// The multi-subtree (AND/OR) walk. Out of line on purpose: probe()
// handles the prefilter and the single-subtree scan - the most frequent
// attempt outcomes - in its own frame, and only AND-level attempts pay
// for this function's spills.
template <bool Commit, class Addr>
__attribute__((noinline)) bool
Checker::walk(const FlatTree &ft, const Addr &addr, RuMap *mut,
              CheckStats *stats, std::vector<uint32_t> *chosen_options,
              std::vector<Reservation> *reserved,
              int32_t overlay_base) const
{
    // Tracing gate, hoisted: the conflict path tests one local flag
    // instead of reloading the trace state per failed probe.
    const bool tracing = stats && trace::enabled();
    // Resource checks accumulate in a register and post to the stats
    // block once per attempt (every exit path below), not once per
    // probe. The prefilter probes already ran in probe().
    uint64_t checks_done = ft.num_pf;

    uint64_t options_this_attempt = 0;
    const FlatSub *subs = flat_subs_.data() + ft.first_sub;

    bool all_satisfied = true;
    for (uint32_t s = 0; s < ft.num_subs && all_satisfied; ++s) {
        const FlatOpt *opts = flat_opts_.data() + subs[s].first_opt;
        const lmdes::Check *first =
            flat_first_.data() + subs[s].first_opt;
        // The overlay only matters once an earlier subtree stamped
        // something; pending_ cannot change while this subtree's
        // options are walked, so the flag holds for the whole loop.
        // With nothing pending (every first subtree, and every tree
        // whose subtrees are disjoint in practice) the probe is a
        // single word load.
        const bool overlaid = !pending_.empty();
        bool found = false;
        for (uint32_t oi = 0; oi < subs[s].num_opts && !found; ++oi) {
            ++options_this_attempt;

            // Failing options almost always fail on their first probe:
            // scan the dense first-check stream and only load the full
            // option record once the first probe passes.
            int32_t at0 = addr.norm(first[oi].slot);
            uint64_t busy0 = addr.word(at0) & first[oi].mask;
            if (overlaid)
                busy0 |= pendingMask(at0, overlay_base) &
                         first[oi].mask;
            if (busy0 != 0) {
                ++checks_done;
                if (tracing) [[unlikely]]
                    recordConflict(*stats, at0, busy0);
                continue;
            }

            const FlatOpt &opt = opts[oi];
            const lmdes::Check *checks =
                flat_checks_.data() + opt.first_check;
            bool fits = true;
            uint32_t c = 1;
            for (; c < opt.num_checks; ++c) {
                int32_t at = addr.norm(checks[c].slot);
                uint64_t busy = addr.word(at) & checks[c].mask;
                if (overlaid)
                    busy |= pendingMask(at, overlay_base) &
                            checks[c].mask;
                if (busy != 0) {
                    fits = false;
                    if (tracing) [[unlikely]]
                        recordConflict(*stats, at, busy);
                    break;
                }
            }
            checks_done += fits ? opt.num_checks : c + 1;
            if (fits) {
                found = true;
                // Overlay stamps exist for later subtrees to read; the
                // last subtree's choices only need the commit list.
                if (s + 1 < ft.num_subs) {
                    for (uint32_t k = 0; k < opt.num_checks; ++k)
                        addPending(addr.norm(checks[k].slot),
                                   checks[k].mask, overlay_base);
                } else {
                    for (uint32_t k = 0; k < opt.num_checks; ++k)
                        pending_.push_back(
                            {addr.norm(checks[k].slot),
                             checks[k].mask});
                }
                if (chosen_options)
                    chosen_options->push_back(opt.opt_id);
            }
        }
        all_satisfied = found;
    }

    if (stats) {
        stats->resource_checks += checks_done;
        stats->options_checked += options_this_attempt;
        stats->options_per_attempt.add(options_this_attempt);
    }
    if (!all_satisfied)
        return false;

    if (stats) {
        ++stats->successes;
        stats->options_per_success.add(options_this_attempt);
    }
    if constexpr (Commit) {
        for (const auto &p : pending_) {
            mut->reserveSlot(p.slot, p.mask);
            if (reserved)
                reserved->push_back({p.slot, p.mask});
        }
    }
    return true;
}

template <bool Commit>
bool
Checker::probe(uint32_t tree, int32_t cycle, const RuMap &ru, RuMap *mut,
               CheckStats *stats, std::vector<uint32_t> *chosen_options,
               std::vector<Reservation> *reserved) const
{
    // Issue cycle in RU-map slot units (slotWords() words per cycle).
    const int32_t base = cycle * int32_t(low_.slotWords());
    const FlatTree &ft = flat_trees_[tree];

    if (stats) {
        ++stats->attempts;
        if (stats->attempts_per_tree.size() <= tree)
            stats->attempts_per_tree.resize(tree + 1, 0);
        ++stats->attempts_per_tree[tree];
    }
    if (chosen_options)
        chosen_options->clear();

    const int32_t ii = ru.initiationInterval();
    const int32_t lo = base + ft.min_slot;
    int32_t overlay_base = 0;
    // Single-subtree trees (the whole OR-tree representation) never
    // touch the overlay or the pending list - walk() commits the
    // winning option directly - so all attempt bookkeeping is skipped.
    if (ft.num_subs > 1) {
        // Starting a new attempt is one counter bump: overlay stamps
        // from earlier attempts (including pure wouldFit() probes) are
        // dead by epoch mismatch, never cleared.
        ++epoch_;
        pending_.clear();
        size_t overlay_size;
        if (ii > 0) {
            overlay_size = size_t(ii);
        } else {
            overlay_base = lo;
            overlay_size = size_t(ft.max_slot - ft.min_slot) + 1;
        }
        if (overlay_epoch_.size() < overlay_size) {
            overlay_epoch_.resize(overlay_size, 0);
            overlay_mask_.resize(overlay_size, 0);
        }
    }

    // The two most frequent attempt outcomes run right here, in
    // probe()'s own frame; only AND-level (multi-subtree) walks leave
    // for the out-of-line walk().
    //
    // First the collision-vector prefilter: these bits are reserved by
    // every option of some OR subtree, so one busy bit proves no option
    // combination can fit. pending_ is empty at this point, so no
    // overlay lookup is needed. Then, for single-subtree trees (the
    // whole OR-tree representation), the option scan itself: no other
    // subtree ever reads its probes, so the attempt needs no overlay
    // and no pending list - the winning option commits its own checks
    // directly.
    auto go = [&](const auto &addr) {
        const lmdes::Check *pf = flat_pf_.data() + ft.first_pf;
        for (uint32_t i = 0; i < ft.num_pf; ++i) {
            int32_t at = addr.norm(pf[i].slot);
            uint64_t busy = addr.word(at) & pf[i].mask;
            if (busy != 0) {
                if (stats) {
                    stats->resource_checks += i + 1;
                    ++stats->prefilter_hits;
                    stats->options_per_attempt.add(0);
                    if (trace::enabled()) [[unlikely]]
                        recordConflict(*stats, at, busy);
                }
                return false;
            }
        }
        if (ft.num_subs != 1)
            return walk<Commit>(ft, addr, mut, stats, chosen_options,
                                reserved, overlay_base);

        uint64_t checks_done = ft.num_pf;
        const FlatSub &sub = flat_subs_[ft.first_sub];
        const FlatOpt *opts = flat_opts_.data() + sub.first_opt;
        const lmdes::Check *first = flat_first_.data() + sub.first_opt;
        for (uint32_t oi = 0; oi < sub.num_opts; ++oi) {
            // Failing options almost always fail on their first probe:
            // scan the dense first-check stream and only load the full
            // option record once the first probe passes.
            int32_t at0 = addr.norm(first[oi].slot);
            uint64_t busy0 = addr.word(at0) & first[oi].mask;
            if (busy0 != 0) {
                ++checks_done;
                if (stats && trace::enabled()) [[unlikely]]
                    recordConflict(*stats, at0, busy0);
                continue;
            }
            const FlatOpt &opt = opts[oi];
            const lmdes::Check *checks =
                flat_checks_.data() + opt.first_check;
            uint32_t c = 1;
            for (; c < opt.num_checks; ++c) {
                int32_t at = addr.norm(checks[c].slot);
                uint64_t busy = addr.word(at) & checks[c].mask;
                if (busy != 0) {
                    if (stats && trace::enabled()) [[unlikely]]
                        recordConflict(*stats, at, busy);
                    break;
                }
            }
            if (c < opt.num_checks) { // some later probe was busy
                checks_done += c + 1;
                continue;
            }
            checks_done += opt.num_checks;
            if (chosen_options)
                chosen_options->push_back(opt.opt_id);
            if (stats) {
                stats->resource_checks += checks_done;
                stats->options_checked += oi + 1;
                stats->options_per_attempt.add(oi + 1);
                ++stats->successes;
                stats->options_per_success.add(oi + 1);
            }
            if constexpr (Commit) {
                for (uint32_t k = 0; k < opt.num_checks; ++k)
                    mut->reserveSlot(addr.norm(checks[k].slot),
                                     checks[k].mask);
                if (reserved)
                    for (uint32_t k = 0; k < opt.num_checks; ++k)
                        reserved->push_back(
                            {addr.norm(checks[k].slot),
                             checks[k].mask});
            }
            return true;
        }
        if (stats) {
            stats->resource_checks += checks_done;
            stats->options_checked += sub.num_opts;
            stats->options_per_attempt.add(sub.num_opts);
        }
        return false;
    };

    if (ii > 0) {
        // One wrap step suffices when the window fits inside the
        // interval; the window condition also guarantees the map's
        // storage spans [0, ii) exactly.
        if (ft.min_slot > -ii && ft.max_slot < ii &&
            ru.windowBase() == 0 && ru.windowSize() == size_t(ii)) {
            if (stats)
                ++stats->probe_fastpath;
            return go(WrapAddr{ru.windowData(), ii, ru.normalize(base)});
        }
    } else {
        const int32_t wbase = ru.windowBase();
        if (lo >= wbase &&
            base + ft.max_slot < wbase + int32_t(ru.windowSize())) {
            if (stats)
                ++stats->probe_fastpath;
            return go(DirectAddr{ru.windowData(), wbase, base});
        }
    }
    return go(GeneralAddr{ru, base});
}

bool
Checker::tryReserve(uint32_t tree, int32_t cycle, RuMap &ru,
                    CheckStats &stats,
                    std::vector<uint32_t> *chosen_options,
                    std::vector<Reservation> *reserved)
{
    return probe<true>(tree, cycle, ru, &ru, &stats, chosen_options,
                       reserved);
}

bool
Checker::wouldFit(uint32_t tree, int32_t cycle, const RuMap &ru,
                  CheckStats *stats) const
{
    return probe<false>(tree, cycle, ru, nullptr, stats, nullptr,
                        nullptr);
}

} // namespace mdes::rumap
