#include "rumap/checker.h"

#include <bit>

#include "support/trace.h"

namespace mdes::rumap {

void
CheckStats::merge(const CheckStats &other)
{
    attempts += other.attempts;
    successes += other.successes;
    options_checked += other.options_checked;
    resource_checks += other.resource_checks;
    options_per_attempt.merge(other.options_per_attempt);
    options_per_success.merge(other.options_per_success);
    if (other.attempts_per_tree.size() > attempts_per_tree.size())
        attempts_per_tree.resize(other.attempts_per_tree.size(), 0);
    for (size_t i = 0; i < other.attempts_per_tree.size(); ++i)
        attempts_per_tree[i] += other.attempts_per_tree[i];
    if (other.conflicts_per_resource.size() >
        conflicts_per_resource.size())
        conflicts_per_resource.resize(other.conflicts_per_resource.size(),
                                      0);
    for (size_t i = 0; i < other.conflicts_per_resource.size(); ++i)
        conflicts_per_resource[i] += other.conflicts_per_resource[i];
}

void
Checker::recordConflict(CheckStats &stats, int32_t at, uint64_t mask,
                        const RuMap &ru) const
{
    // Which of the probe's resources were actually busy: the RU-map word
    // plus any reservations pending from subtrees already satisfied in
    // this attempt.
    uint64_t busy = ru.word(at) & mask;
    for (const auto &p : pending_) {
        if (p.cycle == at)
            busy |= p.mask & mask;
    }
    if (busy == 0)
        return;
    // Slots interleave the machine's RU-map words per cycle, so the word
    // index is the slot modulo slotWords() (Euclidean: pre-shift usage
    // times can be negative).
    int32_t words = int32_t(low_.slotWords());
    int32_t word = at % words;
    if (word < 0)
        word += words;
    size_t base = size_t(word) * 64;
    if (stats.conflicts_per_resource.size() < base + 64)
        stats.conflicts_per_resource.resize(base + 64, 0);
    while (busy != 0) {
        unsigned bit = unsigned(std::countr_zero(busy));
        busy &= busy - 1;
        ++stats.conflicts_per_resource[base + bit];
    }
}

bool
Checker::pendingConflict(int32_t cycle, uint64_t mask) const
{
    for (const auto &p : pending_) {
        if (p.cycle == cycle && (p.mask & mask) != 0)
            return true;
    }
    return false;
}

bool
Checker::tryReserve(uint32_t tree, int32_t cycle, RuMap &ru,
                    CheckStats &stats,
                    std::vector<uint32_t> *chosen_options,
                    std::vector<Reservation> *reserved)
{
    // Issue cycle in RU-map slot units (slotWords() words per cycle).
    const int32_t base = cycle * int32_t(low_.slotWords());
    ++stats.attempts;
    if (stats.attempts_per_tree.size() <= tree)
        stats.attempts_per_tree.resize(tree + 1, 0);
    ++stats.attempts_per_tree[tree];
    if (chosen_options)
        chosen_options->clear();
    pending_.clear();

    uint64_t options_this_attempt = 0;
    const lmdes::LowTree &t = low_.trees()[tree];
    bool all_satisfied = true;

    for (uint32_t s = 0; s < t.num_or_trees && all_satisfied; ++s) {
        const lmdes::LowOrTree &ot =
            low_.orTrees()[low_.orRefs()[t.first_or_ref + s]];
        bool found = false;
        for (uint32_t oi = 0; oi < ot.num_options && !found; ++oi) {
            uint32_t opt_id =
                low_.optionRefs()[ot.first_option_ref + oi];
            const lmdes::LowOption &opt = low_.options()[opt_id];
            ++options_this_attempt;

            bool fits = true;
            for (uint32_t c = 0; c < opt.num_checks; ++c) {
                const lmdes::Check &check =
                    low_.checks()[opt.first_check + c];
                ++stats.resource_checks;
                int32_t at = ru.normalize(base + check.slot);
                if (!ru.available(at, check.mask) ||
                    pendingConflict(at, check.mask)) {
                    fits = false;
                    if (trace::enabled()) [[unlikely]]
                        recordConflict(stats, at, check.mask, ru);
                    break;
                }
            }
            if (fits) {
                found = true;
                for (uint32_t c = 0; c < opt.num_checks; ++c) {
                    const lmdes::Check &check =
                        low_.checks()[opt.first_check + c];
                    pending_.push_back(
                        {ru.normalize(base + check.slot), check.mask});
                }
                if (chosen_options)
                    chosen_options->push_back(opt_id);
            }
        }
        all_satisfied = found;
    }

    stats.options_checked += options_this_attempt;
    stats.options_per_attempt.add(options_this_attempt);
    if (!all_satisfied)
        return false;

    ++stats.successes;
    stats.options_per_success.add(options_this_attempt);
    for (const auto &p : pending_) {
        ru.reserve(p.cycle, p.mask);
        if (reserved)
            reserved->push_back({p.cycle, p.mask});
    }
    return true;
}

bool
Checker::wouldFit(uint32_t tree, int32_t cycle, const RuMap &ru)
{
    const int32_t base = cycle * int32_t(low_.slotWords());
    pending_.clear();
    const lmdes::LowTree &t = low_.trees()[tree];
    for (uint32_t s = 0; s < t.num_or_trees; ++s) {
        const lmdes::LowOrTree &ot =
            low_.orTrees()[low_.orRefs()[t.first_or_ref + s]];
        bool found = false;
        for (uint32_t oi = 0; oi < ot.num_options && !found; ++oi) {
            const lmdes::LowOption &opt =
                low_.options()[low_.optionRefs()[ot.first_option_ref +
                                                 oi]];
            bool fits = true;
            for (uint32_t c = 0; c < opt.num_checks; ++c) {
                const lmdes::Check &check =
                    low_.checks()[opt.first_check + c];
                int32_t at = ru.normalize(base + check.slot);
                if (!ru.available(at, check.mask) ||
                    pendingConflict(at, check.mask)) {
                    fits = false;
                    break;
                }
            }
            if (fits) {
                found = true;
                for (uint32_t c = 0; c < opt.num_checks; ++c) {
                    const lmdes::Check &check =
                        low_.checks()[opt.first_check + c];
                    pending_.push_back(
                        {ru.normalize(base + check.slot), check.mask});
                }
            }
        }
        if (!found)
            return false;
    }
    return true;
}

} // namespace mdes::rumap
