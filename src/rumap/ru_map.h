#ifndef MDES_RUMAP_RU_MAP_H
#define MDES_RUMAP_RU_MAP_H

/**
 * @file
 * The resource usage map (RU map).
 *
 * One machine word per cycle tracks which resource instances are already
 * reserved, so multiple resource usages can be checked (reserved) with a
 * single AND (OR) operation - the bit-vector design of Section 6. The map
 * grows on demand in both directions because usage times relative to an
 * operation's issue cycle may be negative (decode stages) before the
 * usage-time transformation runs.
 *
 * A map constructed with an initiation interval II operates *modulo II*
 * (a modulo reservation table): cycle c maps to slot c mod II. This is
 * the form iterative modulo scheduling uses, together with release() -
 * the "unscheduling is straightforward with reservation tables" property
 * the paper contrasts against finite-state-automata approaches.
 */

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mdes::rumap {

/**
 * Per-slot bit-vector of reserved resource instances. Machines with up
 * to 64 instances use one slot per cycle; wider machines use
 * LowMdes::slotWords() consecutive slots per cycle (the constraint
 * checker does the cycle -> slot arithmetic).
 */
class RuMap
{
  public:
    /** A linear (acyclic-schedule) map. */
    RuMap() = default;

    /**
     * A modulo reservation table wrapping every @p ii slots. Callers
     * with multi-word machines pass initiation-interval x slotWords()
     * so whole cycles wrap together.
     */
    explicit RuMap(int32_t ii) : ii_(ii)
    {
        if (ii > 0)
            words_.assign(size_t(ii), 0);
    }

    /** The wrap length in slots; 0 for a linear map. */
    int32_t initiationInterval() const { return ii_; }

    /** The slot @p cycle maps to (identity for linear maps). */
    int32_t
    normalize(int32_t cycle) const
    {
        if (ii_ == 0)
            return cycle;
        int32_t m = cycle % ii_;
        return m < 0 ? m + ii_ : m;
    }

    // ---- Slot-addressed raw accessors -------------------------------
    //
    // `slot` must already be map-normalized (slot == normalize(slot)).
    // The constraint checker normalizes an attempt's issue cycle exactly
    // once and then addresses the map through these, so a probe never
    // pays the Euclidean modulo twice (the pre-rebuild checker
    // normalized in tryReserve *and* again inside available/reserve).

    /** True if none of the resources in @p mask are reserved at
     * normalized @p slot. Slots outside a linear map's window are
     * free. */
    bool
    availableSlot(int32_t slot, uint64_t mask) const
    {
        assert(slot == normalize(slot));
        size_t idx = size_t(slot - base_);
        if (slot < base_ || idx >= words_.size())
            return true;
        return (words_[idx] & mask) == 0;
    }

    /** Reserve the resources in @p mask at normalized @p slot. */
    void
    reserveSlot(int32_t slot, uint64_t mask)
    {
        assert(slot == normalize(slot));
        ensure(slot);
        words_[size_t(slot - base_)] |= mask;
    }

    /** Release previously reserved resources at normalized @p slot. */
    void
    releaseSlot(int32_t slot, uint64_t mask)
    {
        assert(slot == normalize(slot));
        size_t idx = size_t(slot - base_);
        if (slot >= base_ && idx < words_.size())
            words_[idx] &= ~mask;
    }

    /** The reserved-resource word at normalized @p slot (0 outside the
     * window). */
    uint64_t
    wordSlot(int32_t slot) const
    {
        assert(slot == normalize(slot));
        size_t idx = size_t(slot - base_);
        if (slot < base_ || idx >= words_.size())
            return 0;
        return words_[idx];
    }

    // ---- Window introspection (checker fast path) -------------------

    /** First allocated slot. */
    int32_t windowBase() const { return base_; }
    /** Allocated slots starting at windowBase(). */
    size_t windowSize() const { return words_.size(); }
    /** The allocated words (windowSize() entries). */
    const uint64_t *windowData() const { return words_.data(); }

    // ---- Cycle-addressed convenience API ----------------------------

    /** True if none of the resources in @p mask are reserved at
     * @p cycle. Cycles outside a linear map's window are free. */
    bool
    available(int32_t cycle, uint64_t mask) const
    {
        return availableSlot(normalize(cycle), mask);
    }

    /** Reserve the resources in @p mask at @p cycle. */
    void
    reserve(int32_t cycle, uint64_t mask)
    {
        reserveSlot(normalize(cycle), mask);
    }

    /** Release previously reserved resources (modulo unscheduling). */
    void
    release(int32_t cycle, uint64_t mask)
    {
        releaseSlot(normalize(cycle), mask);
    }

    /** The reserved-resource word at @p cycle (0 outside the window). */
    uint64_t
    word(int32_t cycle) const
    {
        return wordSlot(normalize(cycle));
    }

    /** Forget all reservations (start a new scheduling region). */
    void
    clear()
    {
        if (ii_ > 0) {
            words_.assign(size_t(ii_), 0);
        } else {
            words_.clear();
        }
        base_ = 0;
    }

  private:
    void ensure(int32_t cycle);

    std::vector<uint64_t> words_;
    int32_t base_ = 0;
    int32_t ii_ = 0;
};

} // namespace mdes::rumap

#endif // MDES_RUMAP_RU_MAP_H
