#ifndef MDES_RUMAP_CHECKER_H
#define MDES_RUMAP_CHECKER_H

/**
 * @file
 * The resource-constraint checker.
 *
 * One algorithm serves both representations: an AND/OR-tree is processed
 * as an outer loop over its OR subtrees around the classic OR-tree check
 * (exactly the implementation the paper describes in Section 3), and the
 * traditional OR-tree representation is the one-subtree special case.
 *
 * Short-circuiting: within an option, probing stops at the first busy
 * usage; within an OR subtree, at the first available option; across the
 * AND level, at the first subtree with no available option.
 *
 * Statistics mirror the paper's metrics: scheduling attempts, options
 * checked per attempt, and resource checks (RU-map probes) per attempt.
 */

#include <cstdint>
#include <vector>

#include "lmdes/low_mdes.h"
#include "rumap/ru_map.h"
#include "support/histogram.h"

namespace mdes::rumap {

/** One reservation made by a successful attempt (map-normalized). */
struct Reservation
{
    int32_t cycle;
    uint64_t mask;
};

/** Counters accumulated across scheduling attempts. */
struct CheckStats
{
    uint64_t attempts = 0;
    uint64_t successes = 0;
    uint64_t options_checked = 0;
    uint64_t resource_checks = 0;

    /** Options checked in each attempt (the paper's Figure 2 series). */
    Histogram options_per_attempt;
    /** Options checked per *successful* attempt. */
    Histogram options_per_success;
    /** Scheduling attempts per AND/OR-tree (for the option-count
     * breakdowns of Tables 1-4); sized on first use. */
    std::vector<uint64_t> attempts_per_tree;
    /**
     * Conflict heat table: failed RU-map probes per resource instance
     * (indexed by ResourceId), identifying the contended resources.
     * Recorded only while trace::enabled() - the conflict path then pays
     * one mask decomposition per failed check; otherwise the probe loop
     * is untouched. Sized to the machine's resource count on first
     * conflict.
     */
    std::vector<uint64_t> conflicts_per_resource;

    double
    avgOptionsPerAttempt() const
    {
        return attempts ? double(options_checked) / double(attempts) : 0;
    }
    double
    avgChecksPerAttempt() const
    {
        return attempts ? double(resource_checks) / double(attempts) : 0;
    }

    void merge(const CheckStats &other);
};

/**
 * Checks and reserves resource constraints against an RU map.
 *
 * The checker accumulates the chosen options' probes during an attempt
 * and tests later subtrees against them as well as the RU map, so the
 * AND/OR evaluation stays exact even for descriptions whose subtrees
 * share resources (the four shipped machines keep subtrees disjoint, in
 * which case this has no effect on results).
 */
class Checker
{
  public:
    explicit Checker(const lmdes::LowMdes &low) : low_(low) {}

    /**
     * One scheduling attempt: try to place an operation using AND/OR-tree
     * @p tree with issue cycle @p cycle. On success the resources of the
     * chosen options are reserved in @p ru.
     *
     * @param chosen_options when non-null, receives the option id chosen
     *        for each OR subtree (in subtree order) on success.
     * @param reserved when non-null, receives the reservations made on
     *        success (for later release() - modulo-scheduling
     *        unscheduling).
     * @return true when the operation was placed.
     */
    bool tryReserve(uint32_t tree, int32_t cycle, RuMap &ru,
                    CheckStats &stats,
                    std::vector<uint32_t> *chosen_options = nullptr,
                    std::vector<Reservation> *reserved = nullptr);

    /**
     * Probe-only variant: like tryReserve() but never reserves, and
     * records no statistics. Used by schedule-validation replay.
     */
    bool wouldFit(uint32_t tree, int32_t cycle, const RuMap &ru);

    const lmdes::LowMdes &low() const { return low_; }

  private:
    struct PendingCheck
    {
        int32_t cycle;
        uint64_t mask;
    };

    bool pendingConflict(int32_t cycle, uint64_t mask) const;

    /** Attribute a failed probe at slot @p at to the busy resource
     * instances of @p mask (trace-enabled conflict profiling). */
    void recordConflict(CheckStats &stats, int32_t at, uint64_t mask,
                        const RuMap &ru) const;

    const lmdes::LowMdes &low_;
    /** Probes of options already chosen in the current attempt. */
    std::vector<PendingCheck> pending_;
};

} // namespace mdes::rumap

#endif // MDES_RUMAP_CHECKER_H
