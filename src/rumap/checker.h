#ifndef MDES_RUMAP_CHECKER_H
#define MDES_RUMAP_CHECKER_H

/**
 * @file
 * The resource-constraint checker, rebuilt as a flat query engine.
 *
 * One algorithm serves both representations: an AND/OR-tree is processed
 * as an outer loop over its OR subtrees around the classic OR-tree check
 * (exactly the implementation the paper describes in Section 3), and the
 * traditional OR-tree representation is the one-subtree special case.
 *
 * Short-circuiting: within an option, probing stops at the first busy
 * usage; within an OR subtree, at the first available option; across the
 * AND level, at the first subtree with no available option.
 *
 * The probe hot path is organized around three ideas:
 *
 *  1. *Slot addressing.* The issue cycle is normalized exactly once per
 *     attempt using the tree's precomputed slot window
 *     (lmdes::TreeSummary); individual checks then address the RU map
 *     through raw slot accessors - direct indexing when the window is
 *     fully in range (linear maps) or a single compare-and-wrap when the
 *     window fits inside the initiation interval (modulo maps). The
 *     general path still normalizes each check only once.
 *
 *  2. *Epoch-stamped pending overlay.* Probes of options already chosen
 *     in the current attempt live in a slot-indexed overlay whose
 *     entries are stamped with the attempt's epoch, so testing "does an
 *     earlier subtree already hold these resources?" is one word load -
 *     not a linear scan - and starting a new attempt is one counter
 *     increment, with no clearing.
 *
 *  3. *Collision-vector prefilter.* Before any option is walked, the
 *     tree's mandatory (slot, mask) pairs - resources every option of
 *     some OR subtree must reserve - are tested against the map; one
 *     busy bit proves no combination can fit and rejects the attempt
 *     outright (CheckStats::prefilter_hits).
 *
 * tryReserve() and wouldFit() are two instantiations of one template
 * probe, so the pure query can never diverge from the reserving one.
 *
 * Statistics mirror the paper's metrics: scheduling attempts, options
 * checked per attempt, and resource checks (RU-map probes, including
 * prefilter probes) per attempt.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "lmdes/low_mdes.h"
#include "rumap/ru_map.h"
#include "support/histogram.h"

namespace mdes::rumap {

/** One reservation made by a successful attempt (map-normalized). */
struct Reservation
{
    int32_t cycle;
    uint64_t mask;
};

/** Counters accumulated across scheduling attempts. */
struct CheckStats
{
    uint64_t attempts = 0;
    uint64_t successes = 0;
    uint64_t options_checked = 0;
    /** RU-map probes, prefilter probes included. */
    uint64_t resource_checks = 0;
    /** Attempts rejected by the collision-vector prefilter (no option
     * was walked; those attempts record zero options checked). */
    uint64_t prefilter_hits = 0;
    /** Attempts probed via the direct-index / single-wrap slot fast
     * path (the rest took the general normalize-per-check path). */
    uint64_t probe_fastpath = 0;

    /** Options checked in each attempt (the paper's Figure 2 series). */
    Histogram options_per_attempt;
    /** Options checked per *successful* attempt. */
    Histogram options_per_success;
    /** Scheduling attempts per AND/OR-tree (for the option-count
     * breakdowns of Tables 1-4). Pre-sized by sizeFor(); the checker
     * sizes it to the machine's tree count on first use otherwise. */
    std::vector<uint64_t> attempts_per_tree;
    /**
     * Conflict heat table: failed RU-map probes per resource instance
     * (indexed by ResourceId), identifying the contended resources.
     * Recorded only while trace::enabled() - the conflict path then pays
     * one mask decomposition per failed check; otherwise the probe loop
     * is untouched. Pre-sized by sizeFor(); sized to the machine's
     * resource words on first conflict otherwise.
     */
    std::vector<uint64_t> conflicts_per_resource;

    /** Pre-size the per-tree / per-resource tables from @p low (tree and
     * resource counts are known up front), so the probe loop never
     * grows them. */
    void sizeFor(const lmdes::LowMdes &low);

    double
    avgOptionsPerAttempt() const
    {
        return attempts ? double(options_checked) / double(attempts) : 0;
    }
    double
    avgChecksPerAttempt() const
    {
        return attempts ? double(resource_checks) / double(attempts) : 0;
    }

    void merge(const CheckStats &other);
};

/**
 * Checks and reserves resource constraints against an RU map.
 *
 * The checker accumulates the chosen options' probes during an attempt
 * and tests later subtrees against them as well as the RU map, so the
 * AND/OR evaluation stays exact even for descriptions whose subtrees
 * share resources (the four shipped machines keep subtrees disjoint, in
 * which case this has no effect on results).
 */
class Checker
{
  public:
    /** Builds the flat probe program for @p low (see FlatTree). */
    explicit Checker(const lmdes::LowMdes &low);

    /**
     * One scheduling attempt: try to place an operation using AND/OR-tree
     * @p tree with issue cycle @p cycle. On success the resources of the
     * chosen options are reserved in @p ru.
     *
     * @param chosen_options when non-null, receives the option id chosen
     *        for each OR subtree (in subtree order) on success.
     * @param reserved when non-null, receives the reservations made on
     *        success (for later releaseSlot() - modulo-scheduling
     *        unscheduling; Reservation::cycle is the map-normalized
     *        slot).
     * @return true when the operation was placed.
     */
    bool tryReserve(uint32_t tree, int32_t cycle, RuMap &ru,
                    CheckStats &stats,
                    std::vector<uint32_t> *chosen_options = nullptr,
                    std::vector<Reservation> *reserved = nullptr);

    /**
     * Probe-only variant: the same template probe as tryReserve(), but
     * it never reserves and leaves no trace in the checker or the map -
     * a wouldFit() call between two tryReserve()s changes nothing.
     * Pass @p stats to record the attempt with full accounting
     * (attempts, checks, conflict tracing); by default it records
     * nothing. Used by schedule-validation replay.
     */
    bool wouldFit(uint32_t tree, int32_t cycle, const RuMap &ru,
                  CheckStats *stats = nullptr) const;

    const lmdes::LowMdes &low() const { return low_; }

  private:
    struct PendingCheck
    {
        int32_t slot;
        uint64_t mask;
    };

    // ---- Flat probe program -----------------------------------------
    //
    // The low-level description shares options and OR subtrees between
    // trees (CSE), so a probe chases tree -> or_refs -> or_trees ->
    // option_refs -> options -> checks: five dependent loads before the
    // first resource word is tested. The constructor flattens each
    // tree's whole probe sequence into contiguous arrays - one record
    // load per tree, then strictly sequential scans - trading a few
    // kilobytes of duplication for a pointer-chase-free hot loop. The
    // serialized description (and its memory accounting) is untouched;
    // this is a per-checker runtime structure.

    /** Per-tree header: subtree and prefilter slices plus the slot
     * window (a denormalized lmdes::TreeSummary). */
    struct FlatTree
    {
        uint32_t first_sub;
        uint32_t num_subs;
        uint32_t first_pf;
        uint32_t num_pf;
        int32_t min_slot;
        int32_t max_slot;
    };
    /** One OR subtree: a slice of flat_opts_. */
    struct FlatSub
    {
        uint32_t first_opt;
        uint32_t num_opts;
    };
    /** One option: its original id (for chosen-option reporting) and a
     * slice of flat_checks_. */
    struct FlatOpt
    {
        uint32_t opt_id;
        uint32_t first_check;
        uint32_t num_checks;
    };

    void buildFlat();

    template <bool Commit, class Addr>
    bool walk(const FlatTree &ft, const Addr &addr, RuMap *mut,
              CheckStats *stats, std::vector<uint32_t> *chosen_options,
              std::vector<Reservation> *reserved,
              int32_t overlay_base) const;

    template <bool Commit>
    bool probe(uint32_t tree, int32_t cycle, const RuMap &ru,
               RuMap *mut, CheckStats *stats,
               std::vector<uint32_t> *chosen_options,
               std::vector<Reservation> *reserved) const;

    /** The pending mask stamped at normalized @p slot this attempt. */
    uint64_t
    pendingMask(int32_t slot, int32_t overlay_base) const
    {
        size_t idx = size_t(slot - overlay_base);
        return overlay_epoch_[idx] == epoch_ ? overlay_mask_[idx] : 0;
    }

    /** Stamp @p mask at normalized @p slot in the attempt overlay and
     * remember it for commit. */
    void
    addPending(int32_t slot, uint64_t mask, int32_t overlay_base) const
    {
        size_t idx = size_t(slot - overlay_base);
        overlay_mask_[idx] = overlay_epoch_[idx] == epoch_
                                 ? overlay_mask_[idx] | mask
                                 : mask;
        overlay_epoch_[idx] = epoch_;
        pending_.push_back({slot, mask});
    }

    /** Attribute a failed probe at normalized slot @p at to its busy
     * resource instances (trace-enabled conflict profiling). */
    void recordConflict(CheckStats &stats, int32_t at, uint64_t busy)
        const;

    const lmdes::LowMdes &low_;

    // Flat probe program, indexed by tree id (see FlatTree).
    std::vector<FlatTree> flat_trees_;
    std::vector<FlatSub> flat_subs_;
    std::vector<FlatOpt> flat_opts_;
    std::vector<lmdes::Check> flat_checks_;
    /** The description's prefilter pool, viewed in place: for an
     * mmap-backed LowMdes this points straight into the mapping (kept
     * alive by the shared_ptr holding low_), so building a Checker
     * copies no prefilter bytes. */
    std::span<const lmdes::Check> flat_pf_;
    /** Each option's first check, parallel to flat_opts_: failing
     * options almost always fail on their first probe (short-circuit),
     * so the option scan runs over this dense stream and only
     * surviving candidates touch FlatOpt / flat_checks_. */
    std::vector<lmdes::Check> flat_first_;

    // Per-attempt scratch (mutable: wouldFit() uses the same machinery
    // but is observably pure - the next attempt's epoch bump invalidates
    // everything it stamped).
    /** Probes of options already chosen in the current attempt. */
    mutable std::vector<PendingCheck> pending_;
    /** Epoch-stamped pending overlay, indexed by slot - overlay base;
     * entries from earlier attempts are dead by epoch mismatch, so
     * attempts never clear it. */
    mutable std::vector<uint64_t> overlay_epoch_;
    mutable std::vector<uint64_t> overlay_mask_;
    mutable uint64_t epoch_ = 0;
};

} // namespace mdes::rumap

#endif // MDES_RUMAP_CHECKER_H
