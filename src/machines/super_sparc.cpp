#include "machines/machines.h"

/**
 * @file
 * Sun SuperSPARC machine description (paper Section 2, Table 1).
 *
 * Modeled resources: 3 decoders, 4 integer register read ports, 2 integer
 * register write ports, 2 IALUs (IALU[1] also executes cascaded
 * operations), a barrel shifter, one memory unit (its dedicated address
 * generation unit has private register ports and is not modeled), one
 * branch unit, and one floating-point issue slot per cycle. Branches are
 * modeled as always using the last decoder to maximize scheduling freedom
 * (nothing may issue after a branch).
 *
 * Option counts per operation group (= paper Table 1):
 *   branches/serial 1, FP 3, loads 6, stores 12, shift/cascade 1-src 24,
 *   shift/cascade 2-src 36, IALU 1-src 48, IALU 2-src 72.
 */

namespace mdes::machines {

namespace {

const char *const kSource = R"MDES(
machine "SuperSPARC" {
    // ---- Modeled resources -------------------------------------------
    resource Decoder[3];
    resource RP[4];          // integer register-file read ports
    resource WrPt[2];        // integer register-file write ports
    resource IALU[2];        // IALU[1] also executes cascaded operations
    resource Shifter;
    resource M;              // memory unit (AGU ports are dedicated)
    resource BR;
    resource FPU;            // FP issue slot (1 FP op per cycle)
    resource FDIVU;          // FP divide unit (busy for the whole divide)

    let DEC = -1;            // decode stage precedes execute (time 0)
    let WB  = 1;             // integer results write back a cycle later

    // ---- Shared OR-trees ---------------------------------------------
    ortree AnyDecoder {
        for d in 0 .. 2 { option { use Decoder[d] at DEC; } }
    }
    ortree LastDecoder { option { use Decoder[2] at DEC; } }
    ortree AnyWrPt {
        for w in 0 .. 1 { option { use WrPt[w] at WB; } }
    }
    ortree OneRP {
        for r in 0 .. 3 { option { use RP[r] at 0; } }
    }
    ortree TwoRP {
        for r in 0 .. 3 { for s in r + 1 .. 3 {
            option { use RP[r] at 0; use RP[s] at 0; }
        } }
    }
    ortree AnyIalu {
        for i in 0 .. 1 { option { use IALU[i] at 0; } }
    }
    ortree CascadeIalu { option { use IALU[1] at 0; } }
    ortree ShiftUnit { option { use Shifter at 0; } }
    ortree MemUnit { option { use M at 0; } }
    ortree BrUnit { option { use BR at 0; } }
    ortree FpUnit { option { use FPU at 0; } }
    ortree FpDivUnit {
        option { for t in 0 .. 5 { use FDIVU at t; } }
    }

    // Serializing operations block the whole issue group.
    ortree SerialAll {
        option {
            for d in 0 .. 2 { use Decoder[d] at DEC; }
            for i in 0 .. 1 { use IALU[i] at 0; }
            use Shifter at 0; use M at 0; use BR at 0;
        }
    }

    // Copy-pasted duplicate of AnyDecoder left behind while the shift
    // tables were being debugged; redundant until CSE merges it.
    ortree AnyDecoderShift {
        for d in 0 .. 2 { option { use Decoder[d] at DEC; } }
    }

    // ---- Reservation tables ------------------------------------------
    table Branch   = and(BrUnit, LastDecoder);                     // 1
    table Serial   = SerialAll;                                    // 1
    table Fp       = and(FpUnit, AnyDecoder);                      // 3
    table FpDiv    = and(FpUnit, FpDivUnit, AnyDecoder);           // 3
    table Load     = and(MemUnit, AnyWrPt, AnyDecoder);            // 6
    table Store    = and(MemUnit, OneRP, AnyDecoder);              // 12
    table Shift1   = and(OneRP, ShiftUnit, AnyWrPt, AnyDecoderShift);
    table Shift2   = and(TwoRP, ShiftUnit, AnyWrPt, AnyDecoderShift);
    table Cascade1 = and(OneRP, CascadeIalu, AnyWrPt, AnyDecoder); // 24
    table Cascade2 = and(TwoRP, CascadeIalu, AnyWrPt, AnyDecoder); // 36
    table Ialu1    = and(OneRP, AnyIalu, AnyWrPt, AnyDecoder);     // 48
    table Ialu2    = and(TwoRP, AnyIalu, AnyWrPt, AnyDecoder);     // 72

    // Leftover from the pre-tapeout description: loads briefly needed a
    // read port for speculative address checks. Never referenced.
    table LegacyLoad = and(MemUnit, OneRP, AnyWrPt, AnyDecoder);

    // ---- Operations ---------------------------------------------------
    operation BA    { table Branch; latency 1; note "Branches and serial ops"; }
    operation BPCC  { table Branch; latency 1; note "Branches and serial ops"; }
    operation CALL  { table Branch; latency 1; note "Branches and serial ops"; }
    operation JMPL  { table Branch; latency 1; note "Branches and serial ops"; }
    operation LDSTUB { table Serial; latency 2; note "Branches and serial ops"; }
    operation SWAP   { table Serial; latency 2; note "Branches and serial ops"; }

    operation FADD  { table Fp; latency 3; note "Floating-point ops"; }
    operation FSUB  { table Fp; latency 3; note "Floating-point ops"; }
    operation FMUL  { table Fp; latency 3; note "Floating-point ops"; }
    operation FDIV  { table FpDiv; latency 6; note "Floating-point ops"; }

    operation LD    { table Load; latency 1; note "Load ops"; }
    operation LDUB  { table Load; latency 1; note "Load ops"; }
    operation LDSH  { table Load; latency 1; note "Load ops"; }

    operation ST    { table Store; latency 1; note "Store ops"; }
    operation STB   { table Store; latency 1; note "Store ops"; }
    operation STH   { table Store; latency 1; note "Store ops"; }

    operation SLL_I { table Shift1; latency 1;
                      note "Shifts and cascaded IALU ops, 1 read port"; }
    operation SRL_I { table Shift1; latency 1;
                      note "Shifts and cascaded IALU ops, 1 read port"; }
    operation SLL_R { table Shift2; latency 1;
                      note "Shifts and cascaded IALU ops, 2 read ports"; }
    operation SRA_R { table Shift2; latency 1;
                      note "Shifts and cascaded IALU ops, 2 read ports"; }

    operation ADD_I { table Ialu1; latency 1; cascade Cascade1;
                      note "IALU ops that use 1 read port"; }
    operation SUB_I { table Ialu1; latency 1; cascade Cascade1;
                      note "IALU ops that use 1 read port"; }
    operation AND_I { table Ialu1; latency 1; cascade Cascade1;
                      note "IALU ops that use 1 read port"; }
    operation OR_I  { table Ialu1; latency 1; cascade Cascade1;
                      note "IALU ops that use 1 read port"; }
    operation XOR_I { table Ialu1; latency 1; cascade Cascade1;
                      note "IALU ops that use 1 read port"; }
    operation SETHI { table Ialu1; latency 1;
                      note "IALU ops that use 1 read port"; }

    operation ADD_R { table Ialu2; latency 1; cascade Cascade2;
                      note "IALU ops that use 2 read ports"; }
    operation SUB_R { table Ialu2; latency 1; cascade Cascade2;
                      note "IALU ops that use 2 read ports"; }
    operation AND_R { table Ialu2; latency 1; cascade Cascade2;
                      note "IALU ops that use 2 read ports"; }
    operation OR_R  { table Ialu2; latency 1; cascade Cascade2;
                      note "IALU ops that use 2 read ports"; }
}
)MDES";

MachineInfo
makeInfo()
{
    MachineInfo info;
    info.name = "SuperSPARC";
    info.source = kSource;

    workload::WorkloadSpec &w = info.workload;
    w.seed = 0x55AA1996;
    w.num_ops = 200000;
    w.num_regs = 48; // prepass: virtual registers still plentiful
    w.min_block_size = 4;
    w.max_block_size = 11;
    w.src_locality = 0.5;
    // Weights follow Table 1's per-group scheduling-attempt shares,
    // split evenly across each group's member opcodes.
    w.classes = {
        {"BA", 1.0, 0, 0, false, true},
        {"BPCC", 1.5, 1, 0, false, true},
        {"CALL", 0.8, 0, 0, false, true},
        {"JMPL", 0.4, 1, 0, false, true},
        {"LDSTUB", 1.4, 1, 1, false, false},
        {"SWAP", 0.9, 2, 1, false, false},
        {"FADD", 0.25, 2, 1, false, false},
        {"FSUB", 0.15, 2, 1, false, false},
        {"FMUL", 0.25, 2, 1, false, false},
        {"FDIV", 0.07, 2, 1, false, false},
        {"LD", 8.0, 1, 1, false, false},
        {"LDUB", 3.5, 1, 1, false, false},
        {"LDSH", 2.9, 1, 1, false, false},
        {"ST", 2.8, 2, 0, false, false},
        {"STB", 1.2, 2, 0, false, false},
        {"STH", 0.9, 2, 0, false, false},
        {"SLL_I", 4.5, 1, 1, false, false},
        {"SRL_I", 3.6, 1, 1, false, false},
        {"SLL_R", 1.5, 2, 1, false, false},
        {"SRA_R", 1.1, 2, 1, false, false},
        {"ADD_I", 17.0, 1, 1, true, false},
        {"SUB_I", 9.0, 1, 1, true, false},
        {"AND_I", 7.0, 1, 1, true, false},
        {"OR_I", 6.5, 1, 1, true, false},
        {"XOR_I", 4.0, 1, 1, true, false},
        {"SETHI", 7.0, 0, 1, false, false},
        {"ADD_R", 1.6, 2, 1, true, false},
        {"SUB_R", 1.0, 2, 1, true, false},
        {"AND_R", 0.8, 2, 1, true, false},
        {"OR_R", 0.7, 2, 1, true, false},
    };
    return info;
}

} // namespace

const MachineInfo &
superSparc()
{
    static const MachineInfo info = makeInfo();
    return info;
}

} // namespace mdes::machines
