#include "machines/machines.h"

/**
 * @file
 * Intel Pentium Pro machine description - the paper's forward-looking
 * extension. Section 9 closes: "We expect the K5 MDES results to be
 * representative of the latest generation of microprocessors, such as
 * the Intel Pentium Pro and the HP PA8000." This description tests that
 * prediction with the same modeling approach used for the K5.
 *
 * Modeled structure (P6 core, scheduled as in-order decode/dispatch like
 * the paper models the K5's buffering):
 *  - 3 decoders with the 4-1-1 template: decoder 0 handles any x86
 *    operation; decoders 1 and 2 only single-uop operations;
 *  - uops dispatch through 5 ports: port0/port1 ALUs (port0 also hosts
 *    the multiplier and shifter), port2 load, port3 store-address,
 *    port4 store-data;
 *  - the retirement stage accepts 3 uops per cycle (3 retire slots);
 *  - multi-uop operations may split their dispatch across two cycles,
 *    holding the uop-queue token, exactly like the K5's two-cycle
 *    tables.
 *
 * The description leans on AND/OR factoring throughout - the paper's
 * point is precisely that this machine class explodes in OR form.
 */

namespace mdes::machines {

namespace {

const char *const kSource = R"MDES(
machine "PentiumPro" {
    resource Dec0;           // complex decoder (any x86 op)
    resource DecS[2];        // simple decoders (single-uop ops only)
    resource P01[2];         // ALU dispatch ports 0 and 1
    resource P0X;            // port-0 multiplier/shifter pipeline
    resource P2;             // load port
    resource P3;             // store-address port
    resource P4;             // store-data port
    resource RAT[3];         // rename/allocate slots (3 uops per cycle)
    resource Ret[3];         // retirement slots
    resource UQ;             // uop-queue token for split dispatch

    let DEC = -1;
    let RET = 2;

    // Single-uop operations may use any decoder; multi-uop operations
    // are restricted to the complex decoder (the 4-1-1 template).
    ortree AnyDec {
        option { use Dec0 at DEC; }
        for d in 0 .. 1 { option { use DecS[d] at DEC; } }
    }
    ortree ComplexDec { option { use Dec0 at DEC; } }
    ortree AnyAluPort {
        for p in 0 .. 1 { option { use P01[p] at 0; } }
    }
    ortree Port0Mul { option { use P01[0] at 0; use P0X at 0; } }
    ortree LoadPort { option { use P2 at 0; } }
    ortree StaPort { option { use P3 at 0; } }
    ortree StdPort { option { use P4 at 0; } }
    ortree StaPortLate { option { use P3 at 1; } }
    ortree StdPortLate { option { use P4 at 1; } }
    ortree AnyAluLate {
        for p in 0 .. 1 { option { use P01[p] at 1; } }
    }
    ortree AnyRat {
        for r in 0 .. 2 { option { use RAT[r] at 0; } }
    }
    ortree RatPair {
        for a in 0 .. 2 { for b in a + 1 .. 2 {
            option { use RAT[a] at 0; use RAT[b] at 0; }
        } }
    }
    ortree RatAll {
        option { use RAT[0] at 0; use RAT[1] at 0; use RAT[2] at 0; }
    }
    ortree AnyRet {
        for r in 0 .. 2 { option { use Ret[r] at RET; } }
    }
    ortree RetPair {
        for a in 0 .. 2 { for b in a + 1 .. 2 {
            option { use Ret[a] at RET; use Ret[b] at RET; }
        } }
    }
    ortree QueueTok { option { use UQ at 0; use UQ at 1; } }

    // ---- Tables (expanded option counts in comments) -------------------
    table Alu1      = and(AnyDec, AnyRat, AnyAluPort, AnyRet);  // 3*3*2*3=54
    table Mul1      = and(AnyDec, AnyRat, Port0Mul, AnyRet);    // 3*3*1*3=27
    table Load1     = and(AnyDec, AnyRat, LoadPort, AnyRet);    // 27
    table Store2    = and(ComplexDec, RatPair, StaPort, StdPort,
                          RetPair);                             // 1*3*1*1*3=9
    table LoadOp2   = and(ComplexDec, RatPair, LoadPort, AnyAluLate,
                          RetPair);                             // 3*2*3=18
    table Rmw4      = and(ComplexDec, RatAll, QueueTok, LoadPort,
                          AnyAluLate, StaPortLate, StdPortLate,
                          RetPair);                             // 2*3=6
    table CmpBr2    = and(ComplexDec, RatPair, AnyAluPort, RetPair); // 18
    table FpMul1    = and(AnyDec, AnyRat, Port0Mul, AnyRet);    // 27

    // ---- Operations -----------------------------------------------------
    operation MOV_RR { table Alu1; latency 1; note "1-uop ALU"; }
    operation ALU_RR { table Alu1; latency 1; note "1-uop ALU"; }
    operation ALU_RI { table Alu1; latency 1; note "1-uop ALU"; }
    operation LEA    { table Alu1; latency 1; note "1-uop ALU"; }
    operation SHL    { table Mul1; latency 1; note "1-uop port-0 only"; }
    operation IMUL   { table Mul1; latency 4; note "1-uop port-0 only"; }
    operation FMUL_X87 { table FpMul1; latency 5; note "1-uop port-0 only"; }
    operation MOV_RM { table Load1; latency 3; note "1-uop load"; }
    operation MOV_MR { table Store2; latency 1; note "2-uop store (sta+std)"; }
    operation LOAD_OP { table LoadOp2; latency 4; note "2-uop load+alu"; }
    operation RMW    { table Rmw4; latency 5;
                       note "4-uop read-modify-write, split dispatch"; }
    operation CMP_BR { table CmpBr2; latency 1; note "fused cmp+branch"; }

    bypass MOV_RM MOV_MR latency 2;
}
)MDES";

MachineInfo
makeInfo()
{
    MachineInfo info;
    info.name = "PentiumPro";
    info.source = kSource;

    workload::WorkloadSpec &w = info.workload;
    w.seed = 0x6A1996;
    w.num_ops = 200000;
    w.num_regs = 32; // registers + disambiguated memory slots (postpass)
    w.min_block_size = 8;
    w.max_block_size = 18;
    w.src_locality = 0.25;
    w.classes = {
        {"CMP_BR", 1.0, 2, 0, false, true},
        {"MOV_RR", 14.0, 1, 1, false, false},
        {"ALU_RR", 16.0, 2, 1, false, false},
        {"ALU_RI", 11.0, 1, 1, false, false},
        {"LEA", 5.0, 1, 1, false, false},
        {"SHL", 6.0, 1, 1, false, false},
        {"IMUL", 1.3, 2, 1, false, false},
        {"FMUL_X87", 1.0, 2, 1, false, false},
        {"MOV_RM", 22.0, 1, 1, false, false},
        {"MOV_MR", 12.0, 2, 0, false, false},
        {"LOAD_OP", 7.0, 2, 1, false, false},
        {"RMW", 3.0, 2, 0, false, false},
    };
    return info;
}

} // namespace

const MachineInfo &
pentiumPro()
{
    static const MachineInfo info = makeInfo();
    return info;
}

} // namespace mdes::machines
