#include "machines/machines.h"

namespace mdes::machines {

std::vector<const MachineInfo *>
all()
{
    // The four machines the paper evaluates, in its table order. The
    // forward-looking PentiumPro extension is exposed separately via
    // pentiumPro()/byName() so the Table 1-15 reproductions keep the
    // paper's exact machine set.
    return {&pa7100(), &pentium(), &superSparc(), &k5()};
}

std::vector<const MachineInfo *>
extensions()
{
    return {&pentiumPro(), &pa8000()};
}

const MachineInfo *
byName(const std::string &name)
{
    for (const MachineInfo *m : all()) {
        if (m->name == name)
            return m;
    }
    for (const MachineInfo *m : extensions()) {
        if (m->name == name)
            return m;
    }
    return nullptr;
}

} // namespace mdes::machines
