#include "machines/machines.h"

/**
 * @file
 * HP PA8000 machine description - the second machine named by the
 * paper's closing prediction ("the Intel Pentium Pro and the HP
 * PA8000"). Like the K5 and the P6 description, the out-of-order core
 * is modeled as an in-order front end with buffering:
 *
 *  - 4-wide fetch/insert: an operation takes one of 4 instruction
 *    positions and one of 4 reorder-buffer insert slots (the 56-entry
 *    IRB is split between ALU and memory sides; memory operations hold
 *    an extra address-reorder-buffer token);
 *  - execution units: 2 integer ALUs, 2 shift/merge units, 2 FP
 *    multiply-accumulate units, 2 divide/sqrt units (busy multi-cycle),
 *    2 load/store ports feeding a dual-ported cache;
 *  - retirement: 4 slots per cycle, two cycles after execute.
 *
 * All trees are AND/OR-factored; the flat OR form of this description
 * explodes the same way the K5's does, which is the prediction under
 * test in bench_extension_pentiumpro.
 */

namespace mdes::machines {

namespace {

const char *const kSource = R"MDES(
machine "PA8000" {
    resource Pos[4];         // fetch positions
    resource Ins[4];         // IRB insert slots
    resource IALU[2];
    resource SMU[2];         // shift/merge units
    resource FMAC[2];
    resource DIV[2];         // divide/sqrt, busy 8 cycles
    resource LSP[2];         // load/store ports
    resource ARB;            // address-reorder-buffer token
    resource Ret[4];         // retire slots

    let FETCH = -1;
    let RET = 2;

    ortree AnyPos {
        for p in 0 .. 3 { option { use Pos[p] at FETCH; } }
    }
    ortree LastPos { option { use Pos[3] at FETCH; } }
    ortree AnyIns {
        for i in 0 .. 3 { option { use Ins[i] at 0; } }
    }
    ortree AnyIalu {
        for u in 0 .. 1 { option { use IALU[u] at 0; } }
    }
    ortree AnySmu {
        for u in 0 .. 1 { option { use SMU[u] at 0; } }
    }
    ortree AnyFmac {
        for u in 0 .. 1 { option { use FMAC[u] at 0; } }
    }
    ortree AnyDiv {
        for u in 0 .. 1 {
            option { for t in 0 .. 7 { use DIV[u] at t; } }
        }
    }
    ortree AnyLsp {
        for u in 0 .. 1 { option { use LSP[u] at 0; } }
    }
    ortree ArbTok { option { use ARB at 0; } }
    ortree AnyRet {
        for r in 0 .. 3 { option { use Ret[r] at RET; } }
    }

    table Ialu  = and(AnyPos, AnyIns, AnyIalu, AnyRet);   // 4*4*2*4=128
    table Shift = and(AnyPos, AnyIns, AnySmu, AnyRet);    // 128
    table Fp    = and(AnyPos, AnyIns, AnyFmac, AnyRet);   // 128
    table FpDiv = and(AnyPos, AnyIns, AnyDiv, AnyRet);    // 128
    table Mem   = and(AnyPos, AnyIns, ArbTok, AnyLsp, AnyRet); // 128
    table Br    = and(LastPos, AnyIns, AnyIalu, AnyRet);  // 32

    operation ADD   { table Ialu; latency 1; note "integer ALU"; }
    operation SUB   { table Ialu; latency 1; note "integer ALU"; }
    operation LDO   { table Ialu; latency 1; note "integer ALU"; }
    operation SHLADD { table Shift; latency 1; note "shift/merge"; }
    operation EXTRU { table Shift; latency 1; note "shift/merge"; }
    operation FMPYADD { table Fp; latency 3; note "FP multiply-accumulate"; }
    operation FADD  { table Fp; latency 3; note "FP multiply-accumulate"; }
    operation FDIV  { table FpDiv; latency 17; note "FP divide/sqrt"; }
    operation LDW   { table Mem; latency 2; note "memory"; }
    operation STW   { table Mem; latency 1; note "memory"; }
    operation COMBT { table Br; latency 1; note "branch"; }

    // The FMAC forwards a multiply result into a dependent accumulate.
    bypass FMPYADD FADD latency 2;
}
)MDES";

MachineInfo
makeInfo()
{
    MachineInfo info;
    info.name = "PA8000";
    info.source = kSource;

    workload::WorkloadSpec &w = info.workload;
    w.seed = 0x8A001996;
    w.num_ops = 200000;
    w.num_regs = 48; // prepass, plentiful virtual registers
    w.min_block_size = 8;
    w.max_block_size = 18;
    w.src_locality = 0.3;
    w.classes = {
        {"COMBT", 1.0, 2, 0, false, true},
        {"ADD", 22.0, 2, 1, false, false},
        {"SUB", 10.0, 2, 1, false, false},
        {"LDO", 12.0, 1, 1, false, false},
        {"SHLADD", 8.0, 2, 1, false, false},
        {"EXTRU", 5.0, 2, 1, false, false},
        {"FMPYADD", 4.0, 2, 1, false, false},
        {"FADD", 3.0, 2, 1, false, false},
        {"FDIV", 0.2, 2, 1, false, false},
        {"LDW", 20.0, 1, 1, false, false},
        {"STW", 9.0, 2, 0, false, false},
    };
    return info;
}

} // namespace

const MachineInfo &
pa8000()
{
    static const MachineInfo info = makeInfo();
    return info;
}

} // namespace mdes::machines
