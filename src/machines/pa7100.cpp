#include "machines/machines.h"

/**
 * @file
 * HP PA7100 machine description (paper Section 4, Tables 2 and 8).
 *
 * Two-issue in-order superscalar: one integer-or-memory operation may
 * execute in parallel with one floating-point operation, and the relative
 * order of the two does not matter, so most operations have two options
 * (one per decoder). Branches are modeled as using the last decoder only
 * (nothing may issue after a branch), giving them a single option.
 *
 * Historical detail reproduced from the paper: this description was
 * derived from an earlier HP PA description, and during the retargeting
 * two reservation-table options of the memory operations became
 * identical. The MDES author never noticed, because the compiler output
 * stayed correct; the redundant-option transformation removes the
 * duplicate (Table 8).
 */

namespace mdes::machines {

namespace {

const char *const kSource = R"MDES(
machine "PA7100" {
    resource Decoder[2];
    resource INT;            // integer/memory issue slot
    resource MEM;            // data cache port
    resource FPU;            // FP issue slot
    resource FDIVU;          // FP divide/sqrt unit

    let DEC = -1;

    ortree AnyDecoder {
        for d in 0 .. 1 { option { use Decoder[d] at DEC; } }
    }
    ortree LastDecoder { option { use Decoder[1] at DEC; } }
    ortree IntUnit { option { use INT at 0; } }
    ortree FpUnit { option { use FPU at 0; } }
    ortree FpDivUnit {
        option { for t in 0 .. 7 { use FDIVU at t; } }
    }

    // Memory pipe options enumerated long-hand in the PA-RISC ancestor
    // of this description; the second and third became identical when
    // the PA7100 dropped the ancestor's second cache port, and nobody
    // noticed because correct schedules were still produced (Table 8).
    ortree MemPipe {
        option { use Decoder[0] at DEC; use INT at 0; use MEM at 0; }
        option { use Decoder[1] at DEC; use INT at 0; use MEM at 0; }
        option { use Decoder[1] at DEC; use INT at 0; use MEM at 0; }
    }

    // Copy-paste decay: a private duplicate of IntUnit made while tuning
    // shift-and-add sequences.
    ortree IntUnitShift { option { use INT at 0; } }

    table Branch = and(IntUnit, LastDecoder);        // 1 option
    table Ialu   = and(IntUnit, AnyDecoder);         // 2 options
    table Shift  = and(IntUnitShift, AnyDecoder);    // 2 options
    table Mem    = MemPipe;                          // 3 (2 + duplicate)
    table Fp     = and(FpUnit, AnyDecoder);          // 2 options
    table FpDiv  = and(FpUnit, FpDivUnit, AnyDecoder);

    // Unused leftovers from the ancestor description: the PA7100 has no
    // second memory pipe, but the tables were never deleted.
    ortree SecondMemPipe {
        option { use Decoder[0] at DEC; use MEM at 0; }
        option { use Decoder[1] at DEC; use MEM at 0; }
    }
    table LegacyMem2 = and(IntUnit, SecondMemPipe);

    operation B      { table Branch; latency 1; note "Branch ops"; }
    operation BL     { table Branch; latency 1; note "Branch ops"; }
    operation COMBT  { table Branch; latency 1; note "Branch ops"; }

    operation ADD    { table Ialu; latency 1; note "Ops that can use either decoder"; }
    operation SUB    { table Ialu; latency 1; note "Ops that can use either decoder"; }
    operation OR     { table Ialu; latency 1; note "Ops that can use either decoder"; }
    operation AND    { table Ialu; latency 1; note "Ops that can use either decoder"; }
    operation XOR    { table Ialu; latency 1; note "Ops that can use either decoder"; }
    operation LDO    { table Ialu; latency 1; note "Ops that can use either decoder"; }
    operation SHLADD { table Shift; latency 1; note "Ops that can use either decoder"; }
    operation EXTRU  { table Shift; latency 1; note "Ops that can use either decoder"; }

    operation LDW    { table Mem; latency 2; note "Ops that can use either decoder"; }
    operation LDH    { table Mem; latency 2; note "Ops that can use either decoder"; }
    operation LDB    { table Mem; latency 2; note "Ops that can use either decoder"; }
    operation STW    { table Mem; latency 1; note "Ops that can use either decoder"; }
    operation STH    { table Mem; latency 1; note "Ops that can use either decoder"; }

    operation FADD   { table Fp; latency 2; note "Ops that can use either decoder"; }
    operation FSUB   { table Fp; latency 2; note "Ops that can use either decoder"; }
    operation FMUL   { table Fp; latency 2; note "Ops that can use either decoder"; }
    operation FDIV   { table FpDiv; latency 8; note "Ops that can use either decoder"; }

    // The PA7100's FMAC pipeline forwards a multiply result into a
    // dependent add one cycle early (footnote-1 bypass modeling).
    bypass FMUL FADD latency 1;
    bypass FMUL FSUB latency 1;
}
)MDES";

MachineInfo
makeInfo()
{
    MachineInfo info;
    info.name = "PA7100";
    info.source = kSource;

    workload::WorkloadSpec &w = info.workload;
    w.seed = 0x7A711996;
    w.num_ops = 201011; // paper: 201011 static PA7100 operations
    w.num_regs = 32;    // prepass scheduling
    w.min_block_size = 2;
    w.max_block_size = 6;
    w.src_locality = 0.7;
    w.classes = {
        {"B", 1.2, 0, 0, false, true},
        {"BL", 0.5, 0, 0, false, true},
        {"COMBT", 1.3, 2, 0, false, true},
        {"ADD", 14.0, 2, 1, false, false},
        {"SUB", 7.0, 2, 1, false, false},
        {"OR", 6.0, 2, 1, false, false},
        {"AND", 4.0, 2, 1, false, false},
        {"XOR", 2.0, 2, 1, false, false},
        {"LDO", 12.0, 1, 1, false, false},
        {"SHLADD", 6.0, 2, 1, false, false},
        {"EXTRU", 4.0, 2, 1, false, false},
        {"LDW", 12.0, 1, 1, false, false},
        {"LDH", 3.0, 1, 1, false, false},
        {"LDB", 2.0, 1, 1, false, false},
        {"STW", 6.0, 2, 0, false, false},
        {"STH", 1.5, 2, 0, false, false},
        {"FADD", 0.4, 2, 1, false, false},
        {"FSUB", 0.2, 2, 1, false, false},
        {"FMUL", 0.3, 2, 1, false, false},
        {"FDIV", 0.05, 2, 1, false, false},
    };
    return info;
}

} // namespace

const MachineInfo &
pa7100()
{
    static const MachineInfo info = makeInfo();
    return info;
}

} // namespace mdes::machines
