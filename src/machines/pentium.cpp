#include "machines/machines.h"

/**
 * @file
 * Intel Pentium machine description (paper Section 4, Table 3).
 *
 * Two-pipe in-order x86: the detailed pairing rules boil down to three
 * shapes - operations that may execute in either pipe (two options),
 * operations restricted to the U pipe but still pairable (one option),
 * and non-pairable operations that issue alone (one option using both
 * issue slots). The compiler bundles each branch with its
 * condition-code-setting operation; the bundle's reservation table models
 * the resources of both operations.
 *
 * As the paper notes, the Pentium's execution constraints lack the
 * flexibility that benefits from AND/OR-trees, so every table's AND level
 * points at a single OR-tree - and this description shows the long-hand,
 * per-opcode copy-pasted style such descriptions accrete (each opcode
 * family enumerating its own identical OR-tree), which is why the
 * Pentium benefits most from the Section 5 redundancy elimination.
 */

namespace mdes::machines {

namespace {

const char *const kSource = R"MDES(
machine "Pentium" {
    resource D1;             // first (U) issue slot
    resource D2;             // second (V) issue slot
    resource U;              // U pipe
    resource V;              // V pipe
    resource UALU;
    resource VALU;
    resource DC[2];          // data-cache ports
    resource WB[2];          // writeback slots

    let DEC = -1;
    let WBT = 1;

    // Register-to-register moves: either pipe.
    ortree MovRRPipe {
        option { use D1 at DEC; use U at 0; use UALU at 0; use WB[0] at WBT; }
        option { use D2 at DEC; use V at 0; use VALU at 0; use WB[1] at WBT; }
    }
    // Loads: either pipe plus a cache port.
    ortree MovRMPipe {
        option { use D1 at DEC; use U at 0; use UALU at 0; use DC[0] at 0;
                 use WB[0] at WBT; }
        option { use D2 at DEC; use V at 0; use VALU at 0; use DC[1] at 0;
                 use WB[1] at WBT; }
    }
    // Stores: copy-pasted from the load OR-tree when stores were split
    // out; structurally identical to MovRMPipe.
    ortree MovMRPipe {
        option { use D1 at DEC; use U at 0; use UALU at 0; use DC[0] at 0;
                 use WB[0] at WBT; }
        option { use D2 at DEC; use V at 0; use VALU at 0; use DC[1] at 0;
                 use WB[1] at WBT; }
    }
    // ALU reg,reg - another verbatim copy of the MOV shape.
    ortree AluRRPipe {
        option { use D1 at DEC; use U at 0; use UALU at 0; use WB[0] at WBT; }
        option { use D2 at DEC; use V at 0; use VALU at 0; use WB[1] at WBT; }
    }
    // ALU reg,imm - and another.
    ortree AluRIPipe {
        option { use D1 at DEC; use U at 0; use UALU at 0; use WB[0] at WBT; }
        option { use D2 at DEC; use V at 0; use VALU at 0; use WB[1] at WBT; }
    }
    // LEA computes in the address path, leaving the ALU free.
    ortree LeaPipe {
        option { use D1 at DEC; use U at 0; use WB[0] at WBT; }
        option { use D2 at DEC; use V at 0; use WB[1] at WBT; }
    }
    // Stack operations touch memory: copy of the load shape.
    ortree StackPipe {
        option { use D1 at DEC; use U at 0; use UALU at 0; use DC[0] at 0;
                 use WB[0] at WBT; }
        option { use D2 at DEC; use V at 0; use VALU at 0; use DC[1] at 0;
                 use WB[1] at WBT; }
    }

    // ALU with carry and unary ALU forms - each family re-enumerated
    // its own identical OR-tree when it was added.
    ortree AdcSbbPipe {
        option { use D1 at DEC; use U at 0; use UALU at 0; use WB[0] at WBT; }
        option { use D2 at DEC; use V at 0; use VALU at 0; use WB[1] at WBT; }
    }
    ortree UnaryAluPipe {
        option { use D1 at DEC; use U at 0; use UALU at 0; use WB[0] at WBT; }
        option { use D2 at DEC; use V at 0; use VALU at 0; use WB[1] at WBT; }
    }
    // Compares set flags only - no writeback slot.
    ortree CmpPipe {
        option { use D1 at DEC; use U at 0; use UALU at 0; }
        option { use D2 at DEC; use V at 0; use VALU at 0; }
    }
    ortree MovExtPipe {
        option { use D1 at DEC; use U at 0; use UALU at 0; use WB[0] at WBT; }
        option { use D2 at DEC; use V at 0; use VALU at 0; use WB[1] at WBT; }
    }
    // ALU with a memory operand: copy of the load shape.
    ortree AluRMPipe {
        option { use D1 at DEC; use U at 0; use UALU at 0; use DC[0] at 0;
                 use WB[0] at WBT; }
        option { use D2 at DEC; use V at 0; use VALU at 0; use DC[1] at 0;
                 use WB[1] at WBT; }
    }

    // Shifts and rotates: U pipe only (still pairable with a V-pipe op).
    ortree ShiftPipe {
        option { use D1 at DEC; use U at 0; use UALU at 0; use WB[0] at WBT; }
    }
    ortree RotPipe {
        option { use D1 at DEC; use U at 0; use UALU at 0; use WB[0] at WBT; }
    }
    ortree SetccPipe {
        option { use D1 at DEC; use U at 0; use UALU at 0; use WB[0] at WBT; }
    }

    // Non-pairable operations issue alone: both slots, both pipes.
    ortree AlonePipe {
        option { use D1 at DEC; use D2 at DEC; use U at 0; use V at 0;
                 use UALU at 0; use VALU at 0;
                 use WB[0] at WBT; use WB[1] at WBT; }
    }
    // Calls and returns issue alone and touch the stack cache port.
    ortree CallRetPipe {
        option { use D1 at DEC; use D2 at DEC; use U at 0; use V at 0;
                 use UALU at 0; use VALU at 0; use DC[0] at 0;
                 use WB[0] at WBT; use WB[1] at WBT; }
    }
    // Frame setup/teardown: alone, both cache ports for several moves.
    ortree FramePipe {
        option { use D1 at DEC; use D2 at DEC; use U at 0; use V at 0;
                 use UALU at 0; use VALU at 0; use DC[0] at 0;
                 use DC[1] at 0; use WB[0] at WBT; use WB[1] at WBT; }
    }
    // Multiply keeps the U ALU busy while it iterates.
    ortree MulPipe {
        option { use D1 at DEC; use D2 at DEC; use U at 0; use V at 0;
                 use VALU at 0; for t in 0 .. 3 { use UALU at t; }
                 use WB[0] at WBT; use WB[1] at WBT; }
    }
    // Divide keeps it busy much longer.
    ortree DivPipe {
        option { use D1 at DEC; use D2 at DEC; use U at 0; use V at 0;
                 use VALU at 0; for t in 0 .. 9 { use UALU at t; }
                 use WB[0] at WBT; use WB[1] at WBT; }
    }
    // Bundled compare+branch: models the resources of both operations
    // (the cmp pairs in U, the branch in V).
    ortree CmpBrPipe {
        option { use D1 at DEC; use D2 at DEC; use U at 0; use V at 0;
                 use UALU at 0; use VALU at 0;
                 use WB[0] at WBT; use WB[1] at WBT; }
    }

    // Unused leftover: an experimental FPU pairing table from when FXCH
    // scheduling was being prototyped. No operation references it.
    ortree FxchPipe {
        option { use D1 at DEC; use U at 0; use WB[0] at WBT; }
        option { use D2 at DEC; use V at 0; use WB[1] at WBT; }
    }
    table LegacyFxch = FxchPipe;

    table AdcSbb = AdcSbbPipe;
    table Unary  = UnaryAluPipe;
    table Cmp    = CmpPipe;
    table MovExt = MovExtPipe;
    table AluRM  = AluRMPipe;
    table Setcc  = SetccPipe;
    table CallRet = CallRetPipe;
    table Frame  = FramePipe;
    table MovRR  = MovRRPipe;
    table MovRM  = MovRMPipe;
    table MovMR  = MovMRPipe;
    table AluRR  = AluRRPipe;
    table AluRI  = AluRIPipe;
    table Lea    = LeaPipe;
    table Stack  = StackPipe;
    table Shift  = ShiftPipe;
    table Rot    = RotPipe;
    table Alone  = AlonePipe;
    table Mul    = MulPipe;
    table Div    = DivPipe;
    table CmpBr  = CmpBrPipe;

    operation MOV_RR { table MovRR; latency 1; note "Ops that can execute in either pipe"; }
    operation MOV_RM { table MovRM; latency 2; note "Ops that can execute in either pipe"; }
    operation MOV_MR { table MovMR; latency 1; note "Ops that can execute in either pipe"; }
    operation ALU_RR { table AluRR; latency 1; note "Ops that can execute in either pipe"; }
    operation ALU_RI { table AluRI; latency 1; note "Ops that can execute in either pipe"; }
    operation LEA    { table Lea; latency 1; note "Ops that can execute in either pipe"; }
    operation PUSH   { table Stack; latency 1; note "Ops that can execute in either pipe"; }
    operation POP    { table Stack; latency 2; note "Ops that can execute in either pipe"; }
    operation INC    { table AluRR; latency 1; note "Ops that can execute in either pipe"; }
    operation TEST   { table AluRR; latency 1; note "Ops that can execute in either pipe"; }

    operation SHL    { table Shift; latency 1; note "Ops that can execute in only 1 pipe"; }
    operation SHR    { table Shift; latency 1; note "Ops that can execute in only 1 pipe"; }
    operation ROL    { table Rot; latency 1; note "Ops that can execute in only 1 pipe"; }
    operation XCHG   { table Alone; latency 2; note "Ops that can execute in only 1 pipe"; }
    operation CDQ    { table Alone; latency 1; note "Ops that can execute in only 1 pipe"; }
    operation IMUL   { table Mul; latency 4; note "Ops that can execute in only 1 pipe"; }
    operation IDIV   { table Div; latency 10; note "Ops that can execute in only 1 pipe"; }
    operation MOVS   { table Alone; latency 2; note "Ops that can execute in only 1 pipe"; }

    operation ADC    { table AdcSbb; latency 1; note "Ops that can execute in either pipe"; }
    operation SBB    { table AdcSbb; latency 1; note "Ops that can execute in either pipe"; }
    operation NEG    { table Unary; latency 1; note "Ops that can execute in either pipe"; }
    operation NOT    { table Unary; latency 1; note "Ops that can execute in either pipe"; }
    operation CMP_RR { table Cmp; latency 1; note "Ops that can execute in either pipe"; }
    operation CMP_RI { table Cmp; latency 1; note "Ops that can execute in either pipe"; }
    operation MOVZX  { table MovExt; latency 1; note "Ops that can execute in either pipe"; }
    operation MOVSX  { table MovExt; latency 1; note "Ops that can execute in either pipe"; }
    operation ALU_RM { table AluRM; latency 2; note "Ops that can execute in either pipe"; }
    operation ALU_MR { table AluRM; latency 2; note "Ops that can execute in either pipe"; }

    operation SAR    { table Shift; latency 1; note "Ops that can execute in only 1 pipe"; }
    operation RCL    { table Rot; latency 1; note "Ops that can execute in only 1 pipe"; }
    operation SETCC  { table Setcc; latency 1; note "Ops that can execute in only 1 pipe"; }
    operation CALL   { table CallRet; latency 1; note "Ops that can execute in only 1 pipe"; }
    operation RET    { table CallRet; latency 2; note "Ops that can execute in only 1 pipe"; }
    operation ENTER  { table Frame; latency 3; note "Ops that can execute in only 1 pipe"; }
    operation LEAVE  { table Frame; latency 2; note "Ops that can execute in only 1 pipe"; }
    operation LODS   { table Alone; latency 2; note "Ops that can execute in only 1 pipe"; }
    operation STOS   { table Alone; latency 2; note "Ops that can execute in only 1 pipe"; }
    operation CBW    { table Unary; latency 1; note "Ops that can execute in either pipe"; }

    operation CMP_BR { table CmpBr; latency 1; note "Ops that can execute in only 1 pipe"; }
}
)MDES";

MachineInfo
makeInfo()
{
    MachineInfo info;
    info.name = "Pentium";
    info.source = kSource;

    workload::WorkloadSpec &w = info.workload;
    w.seed = 0x5861996;
    w.num_ops = 207341; // paper: 207341 static Pentium operations
    w.num_regs = 8;     // postpass x86: architectural registers only
    w.min_block_size = 3;
    w.max_block_size = 9;
    w.src_locality = 0.45;
    w.classes = {
        {"CMP_BR", 1.0, 2, 0, false, true},
        {"MOV_RR", 9.0, 1, 1, false, false},
        {"MOV_RM", 13.0, 1, 1, false, false},
        {"MOV_MR", 8.0, 2, 0, false, false},
        {"ALU_RR", 12.0, 2, 1, false, false},
        {"ALU_RI", 10.0, 1, 1, false, false},
        {"LEA", 4.0, 1, 1, false, false},
        {"PUSH", 4.5, 1, 0, false, false},
        {"POP", 3.5, 0, 1, false, false},
        {"INC", 3.5, 1, 1, false, false},
        {"TEST", 3.0, 2, 0, false, false},
        {"SHL", 11.0, 1, 1, false, false},
        {"SHR", 7.0, 1, 1, false, false},
        {"ROL", 2.0, 1, 1, false, false},
        {"XCHG", 3.0, 2, 2, false, false},
        {"CDQ", 2.5, 1, 2, false, false},
        {"IMUL", 1.2, 2, 1, false, false},
        {"IDIV", 0.4, 2, 2, false, false},
        {"MOVS", 1.4, 2, 1, false, false},
        {"ADC", 1.5, 2, 1, false, false},
        {"SBB", 0.8, 2, 1, false, false},
        {"NEG", 1.0, 1, 1, false, false},
        {"NOT", 0.7, 1, 1, false, false},
        {"CMP_RR", 3.0, 2, 0, false, false},
        {"CMP_RI", 2.5, 1, 0, false, false},
        {"MOVZX", 1.5, 1, 1, false, false},
        {"MOVSX", 0.8, 1, 1, false, false},
        {"ALU_RM", 3.0, 2, 1, false, false},
        {"ALU_MR", 1.8, 2, 0, false, false},
        {"SAR", 2.5, 1, 1, false, false},
        {"RCL", 0.6, 1, 1, false, false},
        {"SETCC", 1.8, 0, 1, false, false},
        {"CALL", 2.2, 0, 0, false, false},
        {"RET", 1.8, 0, 0, false, false},
        {"ENTER", 0.4, 0, 1, false, false},
        {"LEAVE", 0.5, 0, 1, false, false},
        {"LODS", 0.4, 1, 1, false, false},
        {"STOS", 0.4, 2, 0, false, false},
        {"CBW", 0.6, 1, 1, false, false},
    };
    return info;
}

} // namespace

const MachineInfo &
pentium()
{
    static const MachineInfo info = makeInfo();
    return info;
}

} // namespace mdes::machines
