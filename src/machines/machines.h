#ifndef MDES_MACHINES_MACHINES_H
#define MDES_MACHINES_MACHINES_H

/**
 * @file
 * The four machine descriptions evaluated by the paper - HP PA7100,
 * Intel Pentium, Sun SuperSPARC, AMD K5 - written in the high-level MDES
 * language, each paired with the synthetic-workload parameters that
 * stand in for its SPEC CINT92 assembly stream.
 *
 * The descriptions deliberately contain the kind of decay the paper's
 * Section 5 targets: copy-pasted OR-trees ("it is typically easier to
 * just make a local copy than to do the careful analysis required to
 * safely modify existing information") and leftover unused tables from
 * earlier description generations. The PA7100 additionally carries the
 * historical duplicated memory-operation option (Table 8).
 *
 * Option-count breakdowns match the paper's Tables 1-4 exactly; the
 * machine-description tests assert this.
 */

#include <string>
#include <vector>

#include "workload/workload.h"

namespace mdes::machines {

/** A machine description plus its workload parameters. */
struct MachineInfo
{
    std::string name;
    /** High-level MDES source text. */
    const char *source = nullptr;
    /** Synthetic workload tuned to the paper's published mix. */
    workload::WorkloadSpec workload;
};

/** Sun SuperSPARC (3-issue in-order; Table 1, prepass scheduling). */
const MachineInfo &superSparc();

/** HP PA7100 (2-issue in-order; Table 2, prepass scheduling). */
const MachineInfo &pa7100();

/** Intel Pentium (2-pipe in-order x86; Table 3, postpass scheduling). */
const MachineInfo &pentium();

/** AMD K5 (4-issue x86, decode/dispatch buffering; Table 4, postpass). */
const MachineInfo &k5();

/**
 * Intel Pentium Pro - not evaluated in the paper, but named in its
 * conclusion as the machine class the K5 results should generalize to;
 * shipped here as the forward-looking extension (see
 * bench_extension_pentiumpro).
 */
const MachineInfo &pentiumPro();

/**
 * HP PA8000 - the other machine named by the paper's closing
 * prediction; modeled out-of-order core as a buffered in-order front
 * end, like the K5.
 */
const MachineInfo &pa8000();

/** The two forward-looking extension machines (PentiumPro, PA8000). */
std::vector<const MachineInfo *> extensions();

/** All four machines in the paper's table order
 * (PA7100, Pentium, SuperSPARC, K5). */
std::vector<const MachineInfo *> all();

/** Look up a machine by name; nullptr when unknown. */
const MachineInfo *byName(const std::string &name);

} // namespace mdes::machines

#endif // MDES_MACHINES_MACHINES_H
