#include "machines/machines.h"

/**
 * @file
 * AMD K5 machine description (paper Section 4, Table 4).
 *
 * Four-issue out-of-order x86, modeled (as in the paper) as an in-order
 * processor that can buffer operations between decode and execution: an
 * x86 operation occupies one of 4 decode positions the cycle before
 * dispatch, converts into 1-3 Rops, and each Rop takes a dispatch slot
 * (4 per cycle) plus an execution unit (two per Rop type) in its dispatch
 * cycle. Multi-Rop operations whose Rops do not fit in one cycle dispatch
 * over two cycles - the AnyDisp1/unit-Late OR-trees probe the *next*
 * cycle's slots. Compare+branch pairs are bundled, and the bundle's
 * reservation table models all Rops of the bundle.
 *
 * Option counts per group match Table 4 exactly:
 *   16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 768.
 */

namespace mdes::machines {

namespace {

const char *const kSource = R"MDES(
machine "K5" {
    resource Dec[4];         // x86 decode positions
    resource Disp[4];        // Rop dispatch slots (per cycle)
    resource ALU[2];
    resource LSU[2];         // load/store units
    resource AGU[2];         // address-generation units
    resource BRU;
    resource FPU;
    resource DBuf;           // decode->dispatch spill-buffer token

    let DEC = -1;

    // ---- Decode and dispatch -----------------------------------------
    ortree AnyDec {
        for d in 0 .. 3 { option { use Dec[d] at DEC; } }
    }
    ortree AnyDisp0 {
        for s in 0 .. 3 { option { use Disp[s] at 0; } }
    }
    // A second-cycle dispatch also holds the decode/dispatch spill
    // buffer; every option needs the same token, which the Section 8
    // hoisting transformation factors out (its rule-1 case).
    ortree AnyDisp1 {
        for s in 0 .. 3 { option { use Disp[s] at 1; use DBuf at 1; } }
    }
    ortree DispPair0 {
        for a in 0 .. 3 { for b in a + 1 .. 3 {
            option { use Disp[a] at 0; use Disp[b] at 0; }
        } }
    }
    // Three of the four slots in one cycle (4 unordered triples).
    ortree DispTriple0 {
        option { use Disp[0] at 0; use Disp[1] at 0; use Disp[2] at 0; }
        option { use Disp[0] at 0; use Disp[1] at 0; use Disp[3] at 0; }
        option { use Disp[0] at 0; use Disp[2] at 0; use Disp[3] at 0; }
        option { use Disp[1] at 0; use Disp[2] at 0; use Disp[3] at 0; }
    }

    // ---- Execution units ----------------------------------------------
    ortree AnyAlu {
        for i in 0 .. 1 { option { use ALU[i] at 0; } }
    }
    ortree AnyAluLate {
        for i in 0 .. 1 { option { use ALU[i] at 1; } }
    }
    ortree AnyLsu {
        for i in 0 .. 1 { option { use LSU[i] at 0; } }
    }
    ortree AnyAguLate {
        for i in 0 .. 1 { option { use AGU[i] at 1; } }
    }
    ortree Alu0 { option { use ALU[0] at 0; } }
    ortree Lsu0 { option { use LSU[0] at 0; } }
    ortree BrUnit { option { use BRU at 0; } }
    ortree BrLate { option { use BRU at 1; } }
    ortree FpUnit { option { use FPU at 0; } }
    // A second-cycle Rop that may go to either ALU or to LSU[0]
    // (the paper's "subset of" variant of the two-unit-choice tables).
    ortree AluOrLsu0Late {
        option { use ALU[0] at 1; }
        option { use ALU[1] at 1; }
        option { use LSU[0] at 1; }
    }

    // Copy-paste decay: the ALU-op tables were retuned late and got a
    // private duplicate of the decode OR-tree.
    ortree AnyDecAlu {
        for d in 0 .. 3 { option { use Dec[d] at DEC; } }
    }

    // ---- Reservation tables (expanded option count in comments) -------
    table Rop1Fp      = and(AnyDec, AnyDisp0, FpUnit);              // 16
    table Rop1Mul     = and(AnyDec, AnyDisp0, Alu0);                // 16
    table Rop2Xchg    = and(AnyDec, DispPair0, Alu0, Lsu0);         // 24
    table Rop1Alu     = and(AnyDecAlu, AnyDisp0, AnyAlu);           // 32
    table Rop1Load    = and(AnyDec, AnyDisp0, AnyLsu);              // 32
    table Rop1Store   = and(AnyDec, AnyDisp0, AnyLsu);              // 32 (dup of Rop1Load)
    table CmpBr2      = and(AnyDec, DispPair0, AnyAlu, BrUnit);     // 48
    table CmpMBr3     = and(AnyDec, DispTriple0, AnyAlu, AnyLsu, BrUnit); // 64
    table LoadOp2     = and(AnyDec, DispPair0, AnyAlu, AnyLsu);     // 96
    table CmpBr2Far   = and(AnyDec, AnyDisp0, AnyDisp1, AnyAlu, BrLate); // 128
    table PushMem2    = and(AnyDec, AnyDisp0, AnyDisp1, Alu0, AluOrLsu0Late); // 192
    table LoadOpW2    = and(AnyDec, AnyDisp0, AnyDisp1, AnyLsu, AnyAluLate); // 256
    table CmpMBr3Far  = and(AnyDec, DispPair0, AnyDisp1, AnyAlu, AnyLsu, BrLate); // 384
    table Rmw3        = and(AnyDec, DispPair0, AnyDisp1, AnyAlu, AnyLsu, AnyAguLate); // 768

    // Unused leftover: a prototype table for 4-Rop string operations
    // that were ultimately handled by microcode expansion instead.
    table LegacyString4 = and(AnyDec, DispTriple0, AnyDisp1, AnyAlu, AnyLsu);

    // ---- Operations ----------------------------------------------------
    operation FADD_X87 { table Rop1Fp; latency 3;
                         note "1-Rop ops with 1 unit choice"; }
    operation FMUL_X87 { table Rop1Fp; latency 3;
                         note "1-Rop ops with 1 unit choice"; }
    operation IMUL     { table Rop1Mul; latency 4;
                         note "1-Rop ops with 1 unit choice"; }
    operation XCHG     { table Rop2Xchg; latency 2;
                         note "2-Rop ops dispatched in 1 cycle (1 unit choice)"; }
    operation MOV_RR   { table Rop1Alu; latency 1;
                         note "1-Rop ops with 2 unit choices"; }
    operation ALU_RR   { table Rop1Alu; latency 1;
                         note "1-Rop ops with 2 unit choices"; }
    operation ALU_RI   { table Rop1Alu; latency 1;
                         note "1-Rop ops with 2 unit choices"; }
    operation INC      { table Rop1Alu; latency 1;
                         note "1-Rop ops with 2 unit choices"; }
    operation TEST     { table Rop1Alu; latency 1;
                         note "1-Rop ops with 2 unit choices"; }
    operation MOV_RM   { table Rop1Load; latency 2;
                         note "1-Rop ops with 2 unit choices"; }
    operation MOV_MR   { table Rop1Store; latency 1;
                         note "1-Rop ops with 2 unit choices"; }
    operation CMP_BR   { table CmpBr2; latency 1;
                         note "2-Rop bundled cmp+br dispatched in 1 cycle"; }
    operation CMPM_BR  { table CmpMBr3; latency 1;
                         note "3-Rop bundled cmp+br dispatched in 1 cycle"; }
    operation LOAD_OP  { table LoadOp2; latency 2;
                         note "2-Rop ops dispatched in 1 cycle (2 unit choices)"; }
    operation CMP_BR_FAR { table CmpBr2Far; latency 2;
                         note "2-Rop bundled cmp+br dispatched over 2 cycles"; }
    operation PUSH_MEM { table PushMem2; latency 2;
                         note "2-Rop ops dispatched over 2 cycles (subset of)"; }
    operation LOAD_OP_W { table LoadOpW2; latency 3;
                         note "2-Rop ops dispatched over 2 cycles (2 unit choices)"; }
    operation CMPM_BR_FAR { table CmpMBr3Far; latency 2;
                         note "3-Rop bundled cmp+br dispatched over 2 cycles"; }
    operation RMW      { table Rmw3; latency 3;
                         note "3-Rop ops dispatched over 2 cycles (subset of)"; }

    // Load data forwards directly into a dependent store's data Rop a
    // cycle before the architectural result is ready.
    bypass MOV_RM MOV_MR latency 1;
}
)MDES";

MachineInfo
makeInfo()
{
    MachineInfo info;
    info.name = "K5";
    info.source = kSource;

    workload::WorkloadSpec &w = info.workload;
    w.seed = 0xAD051996; // deterministic stream seed
    w.num_ops = 203094; // paper: 203094 static K5 operations
    // Postpass x86 names: 0-7 model the architectural registers, the
    // rest stand for disambiguated stack/memory slots - most values in
    // register-starved x86 code live in memory, and independent memory
    // references carry no dependence the scheduler must honor.
    w.num_regs = 32;
    w.min_block_size = 10;
    w.max_block_size = 22;
    w.src_locality = 0.18;
    w.classes = {
        {"CMP_BR", 5.91, 2, 0, false, true},
        {"CMPM_BR", 2.56, 2, 0, false, true},
        {"CMP_BR_FAR", 0.66, 2, 0, false, true},
        {"CMPM_BR_FAR", 0.43, 2, 0, false, true},
        {"FADD_X87", 6.5, 2, 1, false, false},
        {"FMUL_X87", 3.5, 2, 1, false, false},
        {"IMUL", 4.7, 2, 1, false, false},
        {"XCHG", 0.14, 2, 2, false, false},
        {"MOV_RR", 15.0, 1, 1, false, false},
        {"ALU_RR", 15.0, 2, 1, false, false},
        {"ALU_RI", 10.0, 1, 1, false, false},
        {"INC", 3.0, 1, 1, false, false},
        {"TEST", 2.0, 2, 0, false, false},
        {"MOV_RM", 20.0, 1, 1, false, false},
        {"MOV_MR", 9.7, 2, 0, false, false},
        {"LOAD_OP", 0.19, 2, 1, false, false},
        {"PUSH_MEM", 0.15, 1, 0, false, false},
        {"LOAD_OP_W", 0.37, 2, 1, false, false},
        {"RMW", 0.15, 2, 0, false, false},
    };
    return info;
}

} // namespace

const MachineInfo &
k5()
{
    static const MachineInfo info = makeInfo();
    return info;
}

} // namespace mdes::machines
