#include "sched/dep_graph.h"

#include <algorithm>
#include <map>

namespace mdes::sched {

DepGraph
DepGraph::build(const Block &block, const lmdes::LowMdes &low)
{
    DepGraph g;
    const size_t n = block.instrs.size();
    g.pred_edges_.resize(n);
    g.succ_edges_.resize(n);

    auto addEdge = [&](uint32_t pred, uint32_t succ, int32_t dist,
                       bool relax) {
        // An instruction never depends on itself (e.g. a double write to
        // one register, or reading a register it also writes).
        if (pred == succ)
            return;
        // Keep only the strongest edge per (pred, succ) pair; a
        // non-relaxable edge dominates a relaxable one of equal length.
        for (uint32_t e : g.succ_edges_[pred]) {
            DepEdge &edge = g.edges_[e];
            if (edge.succ == succ) {
                if (dist > edge.min_dist) {
                    edge.min_dist = dist;
                    edge.cascade_relax = relax;
                } else if (dist == edge.min_dist && !relax) {
                    edge.cascade_relax = false;
                }
                return;
            }
        }
        g.edges_.push_back({pred, succ, dist, relax});
        uint32_t idx = uint32_t(g.edges_.size() - 1);
        g.succ_edges_[pred].push_back(idx);
        g.pred_edges_[succ].push_back(idx);
    };

    // Last writer and readers-since-last-write per register.
    std::map<int32_t, uint32_t> last_writer;
    std::map<int32_t, std::vector<uint32_t>> readers;

    for (uint32_t i = 0; i < n; ++i) {
        const Instr &in = block.instrs[i];
        for (int32_t r : in.srcs) {
            auto w = last_writer.find(r);
            if (w != last_writer.end()) {
                const Instr &producer = block.instrs[w->second];
                int32_t lat =
                    low.flowLatency(producer.op_class, in.op_class);
                bool relax = in.cascadable && lat == 1;
                addEdge(w->second, i, lat, relax);
            }
            readers[r].push_back(i);
        }
        for (int32_t r : in.dsts) {
            auto w = last_writer.find(r);
            if (w != last_writer.end())
                addEdge(w->second, i, 1, false); // WAW
            for (uint32_t reader : readers[r]) {
                if (reader != i)
                    addEdge(reader, i, 0, false); // WAR
            }
            readers[r].clear();
            last_writer[r] = i;
        }
    }

    // Control: the terminating branch issues no earlier than anything.
    if (n > 0 && block.instrs[n - 1].is_branch) {
        for (uint32_t i = 0; i + 1 < n; ++i)
            addEdge(i, uint32_t(n - 1), 0, false);
    }

    // Critical-path priorities, computed backwards (the IR is a DAG in
    // program order, so a reverse scan sees all successors first).
    g.priorities_.assign(n, 0);
    for (size_t i = n; i > 0; --i) {
        uint32_t u = uint32_t(i - 1);
        int32_t h = low.opClasses()[block.instrs[u].op_class].latency;
        for (uint32_t e : g.succ_edges_[u]) {
            const DepEdge &edge = g.edges_[e];
            h = std::max(h, edge.min_dist + g.priorities_[edge.succ]);
        }
        g.priorities_[u] = h;
    }
    return g;
}

} // namespace mdes::sched
