#include "sched/dep_graph.h"

#include <algorithm>

namespace mdes::sched {

DepGraph
DepGraph::build(const Block &block, const lmdes::LowMdes &low)
{
    DepGraph g;
    g.rebuild(block, low);
    return g;
}

DepGraph::RegState &
DepGraph::regState(int32_t r)
{
    for (size_t i = 0; i < reg_live_; ++i) {
        if (reg_scratch_[i].reg == r)
            return reg_scratch_[i];
    }
    if (reg_live_ == reg_scratch_.size())
        reg_scratch_.emplace_back();
    RegState &st = reg_scratch_[reg_live_++];
    st.reg = r;
    st.has_writer = false;
    st.readers.clear();
    return st;
}

void
DepGraph::rebuild(const Block &block, const lmdes::LowMdes &low)
{
    const size_t n = block.instrs.size();
    edges_.clear();
    if (pred_edges_.size() < n) {
        pred_edges_.resize(n);
        succ_edges_.resize(n);
    }
    for (size_t i = 0; i < n; ++i) {
        pred_edges_[i].clear();
        succ_edges_[i].clear();
    }
    reg_live_ = 0;

    auto addEdge = [&](uint32_t pred, uint32_t succ, int32_t dist,
                       bool relax) {
        // An instruction never depends on itself (e.g. a double write to
        // one register, or reading a register it also writes).
        if (pred == succ)
            return;
        // Keep only the strongest edge per (pred, succ) pair; a
        // non-relaxable edge dominates a relaxable one of equal length.
        for (uint32_t e : succ_edges_[pred]) {
            DepEdge &edge = edges_[e];
            if (edge.succ == succ) {
                if (dist > edge.min_dist) {
                    edge.min_dist = dist;
                    edge.cascade_relax = relax;
                } else if (dist == edge.min_dist && !relax) {
                    edge.cascade_relax = false;
                }
                return;
            }
        }
        edges_.push_back({pred, succ, dist, relax});
        uint32_t idx = uint32_t(edges_.size() - 1);
        succ_edges_[pred].push_back(idx);
        pred_edges_[succ].push_back(idx);
    };

    for (uint32_t i = 0; i < n; ++i) {
        const Instr &in = block.instrs[i];
        for (int32_t r : in.srcs) {
            RegState &st = regState(r);
            if (st.has_writer) {
                const Instr &producer = block.instrs[st.last_writer];
                int32_t lat =
                    low.flowLatency(producer.op_class, in.op_class);
                bool relax = in.cascadable && lat == 1;
                addEdge(st.last_writer, i, lat, relax);
            }
            st.readers.push_back(i);
        }
        for (int32_t r : in.dsts) {
            RegState &st = regState(r);
            if (st.has_writer)
                addEdge(st.last_writer, i, 1, false); // WAW
            for (uint32_t reader : st.readers) {
                if (reader != i)
                    addEdge(reader, i, 0, false); // WAR
            }
            st.readers.clear();
            st.last_writer = i;
            st.has_writer = true;
        }
    }

    // Control: the terminating branch issues no earlier than anything.
    if (n > 0 && block.instrs[n - 1].is_branch) {
        for (uint32_t i = 0; i + 1 < n; ++i)
            addEdge(i, uint32_t(n - 1), 0, false);
    }

    // Critical-path priorities, computed backwards (the IR is a DAG in
    // program order, so a reverse scan sees all successors first).
    priorities_.assign(n, 0);
    for (size_t i = n; i > 0; --i) {
        uint32_t u = uint32_t(i - 1);
        int32_t h = low.opClasses()[block.instrs[u].op_class].latency;
        for (uint32_t e : succ_edges_[u]) {
            const DepEdge &edge = edges_[e];
            h = std::max(h, edge.min_dist + priorities_[edge.succ]);
        }
        priorities_[u] = h;
    }
}

} // namespace mdes::sched
