#ifndef MDES_SCHED_IR_H
#define MDES_SCHED_IR_H

/**
 * @file
 * The minimal compiler IR the scheduler operates on: operations with
 * register operands grouped into basic blocks. This is the substrate
 * standing in for the paper's per-platform SPEC CINT92 assembly (see
 * DESIGN.md §2.5): resource-constraint checking only cares about each
 * operation's class (reservation alternatives + latency) and its
 * dependences, both of which this IR carries.
 */

#include <cstdint>
#include <vector>

namespace mdes::sched {

/** One operation instance in a basic block. */
struct Instr
{
    /** Index into the LowMdes operation-class table. */
    uint32_t op_class = 0;
    /** Registers read. */
    std::vector<int32_t> srcs;
    /** Registers written. */
    std::vector<int32_t> dsts;
    /**
     * May use its class's cascade reservation table to execute in the
     * same cycle as a flow-dependent producer (SuperSPARC cascaded IALU).
     */
    bool cascadable = false;
    /** Block-terminating branch: must not be scheduled before any other
     * operation of the block completes issue ordering constraints. */
    bool is_branch = false;
};

/** A basic block: the unit of local list scheduling. */
struct Block
{
    std::vector<Instr> instrs;
};

/** A whole synthetic program. */
struct Program
{
    std::vector<Block> blocks;

    size_t
    numOps() const
    {
        size_t n = 0;
        for (const auto &b : blocks)
            n += b.instrs.size();
        return n;
    }
};

} // namespace mdes::sched

#endif // MDES_SCHED_IR_H
