#ifndef MDES_SCHED_BACKWARD_SCHEDULER_H
#define MDES_SCHED_BACKWARD_SCHEDULER_H

/**
 * @file
 * Backward (bottom-up) list scheduler.
 *
 * Schedules a basic block from its exit toward its entry: an operation
 * becomes ready once all of its *successors* are placed, and is tried at
 * the latest cycle its outgoing dependences allow, walking earlier one
 * cycle at a time on resource conflicts. Useful when the consumers'
 * timing is what matters (e.g. scheduling toward a branch).
 *
 * This is the scheduler flavor Section 7 of the paper parameterizes
 * differently: the usage-time shift should make each resource's *latest*
 * usage time zero and the usage checks should be probed
 * latest-time-first (SchedDirection::Backward), since for a backward
 * scheduler the conflicts concentrate at the latest usage times. The
 * direction-tuning ablation bench measures exactly this effect.
 *
 * Cascade reservation tables are not used when scheduling backward (the
 * producer is not yet placed when the consumer is scheduled).
 */

#include "lmdes/low_mdes.h"
#include "rumap/checker.h"
#include "sched/dep_graph.h"
#include "sched/ir.h"
#include "sched/list_scheduler.h"

namespace mdes::sched {

/** Bottom-up cycle-driven list scheduler. */
class BackwardListScheduler
{
  public:
    explicit BackwardListScheduler(const lmdes::LowMdes &low)
        : low_(low), checker_(low)
    {
    }

    /**
     * Schedule one basic block with a fresh RU map. The returned cycles
     * are normalized so the earliest operation issues at cycle 0.
     */
    BlockSchedule scheduleBlock(const Block &block, SchedStats &stats);

    /** Schedule every block of @p program. */
    std::vector<BlockSchedule> scheduleProgram(const Program &program,
                                               SchedStats &stats);

  private:
    const lmdes::LowMdes &low_;
    rumap::Checker checker_;

    // Per-block scratch, reused across scheduleBlock() calls (see
    // ListScheduler).
    DepGraph graph_;
    rumap::RuMap ru_;
    std::vector<int32_t> depth_;
    std::vector<uint32_t> ready_;
    std::vector<uint32_t> unscheduled_succs_;
    std::vector<uint32_t> op_attempts_;
};

} // namespace mdes::sched

#endif // MDES_SCHED_BACKWARD_SCHEDULER_H
