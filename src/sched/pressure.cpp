#include "sched/pressure.h"

#include <algorithm>

namespace mdes::sched {

namespace {

/** Add one operation class's guaranteed demand into @p demand. */
void
addDemand(const lmdes::LowMdes &low, uint32_t op_class,
          std::vector<double> &demand)
{
    const auto &cls = low.opClasses()[op_class];
    const lmdes::LowTree &tree = low.trees()[cls.tree];
    const int32_t words = int32_t(low.slotWords());
    for (uint32_t s = 0; s < tree.num_or_trees; ++s) {
        const lmdes::LowOrTree &ot =
            low.orTrees()[low.orRefs()[tree.first_or_ref + s]];
        std::vector<uint32_t> min_uses(low.numResources(), UINT32_MAX);
        for (uint32_t oi = 0; oi < ot.num_options; ++oi) {
            const lmdes::LowOption &opt =
                low.options()[low.optionRefs()[ot.first_option_ref +
                                               oi]];
            std::vector<uint32_t> uses(low.numResources(), 0);
            for (uint32_t c = 0; c < opt.num_checks; ++c) {
                const lmdes::Check &check =
                    low.checks()[opt.first_check + c];
                uint32_t word =
                    uint32_t(((check.slot % words) + words) % words);
                for (uint32_t b = 0; b < 64; ++b) {
                    uint32_t r = word * 64 + b;
                    if (r < low.numResources() &&
                        (check.mask & (uint64_t(1) << b)))
                        ++uses[r];
                }
            }
            for (uint32_t r = 0; r < low.numResources(); ++r)
                min_uses[r] = std::min(min_uses[r], uses[r]);
        }
        for (uint32_t r = 0; r < low.numResources(); ++r) {
            if (min_uses[r] != UINT32_MAX)
                demand[r] += min_uses[r];
        }
    }
}

int32_t
boundOf(const std::vector<double> &demand, uint32_t *bottleneck)
{
    int32_t bound = 0;
    uint32_t best = 0;
    for (uint32_t r = 0; r < demand.size(); ++r) {
        int32_t whole = int32_t(demand[r]);
        int32_t cycles =
            demand[r] > double(whole) ? whole + 1 : whole;
        if (cycles > bound ||
            (cycles == bound && demand[r] > demand[best])) {
            bound = cycles;
            best = r;
        }
    }
    if (bottleneck)
        *bottleneck = best;
    return bound;
}

} // namespace

ResourcePressure
analyzePressure(const Block &block, const lmdes::LowMdes &low)
{
    ResourcePressure result;
    result.demand.assign(low.numResources(), 0.0);
    for (const auto &instr : block.instrs)
        addDemand(low, instr.op_class, result.demand);
    result.resource_bound =
        boundOf(result.demand, &result.bottleneck);
    return result;
}

bool
wouldOversubscribe(const Block &block, const lmdes::LowMdes &low,
                   uint32_t op_class, int extra, int32_t budget)
{
    ResourcePressure base = analyzePressure(block, low);
    std::vector<double> demand = base.demand;
    for (int i = 0; i < extra; ++i)
        addDemand(low, op_class, demand);
    return boundOf(demand, nullptr) > budget;
}

} // namespace mdes::sched
