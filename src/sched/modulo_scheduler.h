#ifndef MDES_SCHED_MODULO_SCHEDULER_H
#define MDES_SCHED_MODULO_SCHEDULER_H

/**
 * @file
 * Iterative modulo scheduling (software pipelining) driven by the MDES.
 *
 * This is the paper's reference [12] (Rau, MICRO-27 1994), cited twice:
 * as the advanced scheduling technique that significantly *increases*
 * scheduling attempts per operation - making efficient constraint
 * checking even more important - and as the consumer of the
 * "unscheduling" capability that is straightforward with reservation
 * tables but unclear with finite-state automata (Section 10).
 *
 * The implementation follows Rau's algorithm: compute the minimum
 * initiation interval (the larger of the resource-bound ResMII and the
 * recurrence-bound RecMII), then, for each candidate II, run
 * budget-limited list scheduling against a *modulo reservation table*
 * (an RU map indexed modulo II). An operation that cannot be placed in
 * any of the II slots of its window is force-placed, displacing
 * (unscheduling) the operations it conflicts with; when the budget runs
 * out the II is increased and scheduling restarts.
 */

#include <cstdint>
#include <vector>

#include "lmdes/low_mdes.h"
#include "rumap/checker.h"
#include "sched/ir.h"
#include "sched/list_scheduler.h"

namespace mdes::sched {

/** A dependence edge of a loop body, with iteration distance. */
struct LoopEdge
{
    uint32_t pred = 0;
    uint32_t succ = 0;
    /** Latency: succ.time >= pred.time + latency - II * omega. */
    int32_t latency = 0;
    /** Iteration distance (0 = same iteration, 1 = next iteration). */
    int32_t omega = 0;
};

/** The loop dependence graph (intra- plus loop-carried edges). */
class LoopDepGraph
{
  public:
    /**
     * Build from a loop body: intra-iteration RAW/WAR/WAW edges as in
     * DepGraph, plus omega-1 loop-carried edges for registers that are
     * live across the back edge (read before their last write; written
     * again next iteration).
     */
    static LoopDepGraph build(const Block &body,
                              const lmdes::LowMdes &low);

    const std::vector<LoopEdge> &edges() const { return edges_; }

  private:
    std::vector<LoopEdge> edges_;
};

/** Result of modulo-scheduling one loop body. */
struct ModuloSchedule
{
    bool success = false;
    /** Achieved initiation interval. */
    int32_t ii = 0;
    /** The lower bounds that constrained it. */
    int32_t res_mii = 0;
    int32_t rec_mii = 0;
    /** Issue time of each operation (within the flat schedule). */
    std::vector<int32_t> times;
    /** Reservations per operation (modulo-II slots), for validation. */
    std::vector<std::vector<rumap::Reservation>> reservations;
    /** Operations displaced (unscheduled) during the search. */
    uint64_t evictions = 0;
};

/** Budget-limited iterative modulo scheduler. */
class ModuloScheduler
{
  public:
    explicit ModuloScheduler(const lmdes::LowMdes &low)
        : low_(low), checker_(low)
    {
    }

    /** Resource-bound lower limit on II for @p body. */
    int32_t resMii(const Block &body) const;

    /** Recurrence-bound lower limit on II for @p graph. */
    int32_t recMii(const Block &body, const LoopDepGraph &graph,
                   int32_t max_ii = 256) const;

    /**
     * Modulo-schedule @p body. Scheduling attempts, option and resource
     * checks accumulate into @p stats, exactly as for the list
     * schedulers. @p budget_ratio bounds the operations tried per II to
     * ratio * |body|.
     */
    ModuloSchedule schedule(const Block &body, SchedStats &stats,
                            int32_t max_ii = 128, int budget_ratio = 8);

  private:
    const lmdes::LowMdes &low_;
    rumap::Checker checker_;
};

/**
 * Validate a modulo schedule: every loop edge satisfied at the achieved
 * II, and no two operations' recorded reservations collide in the modulo
 * reservation table. @return empty string when valid.
 */
std::string verifyModuloSchedule(const Block &body,
                                 const LoopDepGraph &graph,
                                 const ModuloSchedule &sched);

} // namespace mdes::sched

#endif // MDES_SCHED_MODULO_SCHEDULER_H
