#ifndef MDES_SCHED_DEP_GRAPH_H
#define MDES_SCHED_DEP_GRAPH_H

/**
 * @file
 * Dependence-graph construction for one basic block.
 *
 * Edges:
 *  - RAW (flow): consumer no earlier than producer + producer latency.
 *    When the consumer is cascadable and the producer is a single-cycle
 *    operation, the edge may *relax to distance zero* provided the
 *    consumer is scheduled with its cascade reservation table (the
 *    SuperSPARC's cascaded-IALU feature; the paper selects the table
 *    "based on an operation's incoming dependence distances").
 *  - WAR (anti): writer no earlier than reader (distance 0).
 *  - WAW (output): writer no earlier than previous writer + 1.
 *  - Control: a block-terminating branch is kept last (distance 0 from
 *    every other operation).
 */

#include <cstdint>
#include <vector>

#include "lmdes/low_mdes.h"
#include "sched/ir.h"

namespace mdes::sched {

/** One dependence edge. */
struct DepEdge
{
    uint32_t pred = 0;
    uint32_t succ = 0;
    /** Minimum scheduled-cycle distance succ - pred. */
    int32_t min_dist = 0;
    /** RAW edge that shrinks to 0 when the successor cascades. */
    bool cascade_relax = false;
};

/** The dependence graph of one basic block. */
class DepGraph
{
  public:
    /** Build the graph for @p block using latencies from @p low. */
    static DepGraph build(const Block &block, const lmdes::LowMdes &low);

    /**
     * Rebuild this graph for @p block in place, reusing edge, adjacency
     * and register-tracking storage from earlier builds. Schedulers keep
     * one DepGraph per scheduler and rebuild it per block (blocks are
     * small, so the allocations dominate a from-scratch build).
     */
    void rebuild(const Block &block, const lmdes::LowMdes &low);

    const std::vector<DepEdge> &edges() const { return edges_; }

    /** Edge indices entering each instruction. Sized to at least the
     * block's instruction count (rebuild() keeps larger storage). */
    const std::vector<std::vector<uint32_t>> &predEdges() const
    {
        return pred_edges_;
    }

    /** Edge indices leaving each instruction. */
    const std::vector<std::vector<uint32_t>> &succEdges() const
    {
        return succ_edges_;
    }

    /**
     * Critical-path priority of each instruction: the longest distance
     * (by min_dist, plus the op's own latency at the leaves) to any
     * graph sink. Higher schedules first.
     */
    const std::vector<int32_t> &priorities() const { return priorities_; }

  private:
    /** Last writer and readers-since-last-write of one register. Blocks
     * touch a handful of registers, so a linearly scanned flat list
     * beats a node-allocating map; entries (and their readers vectors)
     * are recycled across rebuilds. */
    struct RegState
    {
        int32_t reg = 0;
        uint32_t last_writer = 0;
        bool has_writer = false;
        std::vector<uint32_t> readers;
    };

    RegState &regState(int32_t r);

    std::vector<DepEdge> edges_;
    std::vector<std::vector<uint32_t>> pred_edges_;
    std::vector<std::vector<uint32_t>> succ_edges_;
    std::vector<int32_t> priorities_;
    std::vector<RegState> reg_scratch_;
    size_t reg_live_ = 0;
};

} // namespace mdes::sched

#endif // MDES_SCHED_DEP_GRAPH_H
