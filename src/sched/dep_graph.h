#ifndef MDES_SCHED_DEP_GRAPH_H
#define MDES_SCHED_DEP_GRAPH_H

/**
 * @file
 * Dependence-graph construction for one basic block.
 *
 * Edges:
 *  - RAW (flow): consumer no earlier than producer + producer latency.
 *    When the consumer is cascadable and the producer is a single-cycle
 *    operation, the edge may *relax to distance zero* provided the
 *    consumer is scheduled with its cascade reservation table (the
 *    SuperSPARC's cascaded-IALU feature; the paper selects the table
 *    "based on an operation's incoming dependence distances").
 *  - WAR (anti): writer no earlier than reader (distance 0).
 *  - WAW (output): writer no earlier than previous writer + 1.
 *  - Control: a block-terminating branch is kept last (distance 0 from
 *    every other operation).
 */

#include <cstdint>
#include <vector>

#include "lmdes/low_mdes.h"
#include "sched/ir.h"

namespace mdes::sched {

/** One dependence edge. */
struct DepEdge
{
    uint32_t pred = 0;
    uint32_t succ = 0;
    /** Minimum scheduled-cycle distance succ - pred. */
    int32_t min_dist = 0;
    /** RAW edge that shrinks to 0 when the successor cascades. */
    bool cascade_relax = false;
};

/** The dependence graph of one basic block. */
class DepGraph
{
  public:
    /** Build the graph for @p block using latencies from @p low. */
    static DepGraph build(const Block &block, const lmdes::LowMdes &low);

    const std::vector<DepEdge> &edges() const { return edges_; }

    /** Edge indices entering each instruction. */
    const std::vector<std::vector<uint32_t>> &predEdges() const
    {
        return pred_edges_;
    }

    /** Edge indices leaving each instruction. */
    const std::vector<std::vector<uint32_t>> &succEdges() const
    {
        return succ_edges_;
    }

    /**
     * Critical-path priority of each instruction: the longest distance
     * (by min_dist, plus the op's own latency at the leaves) to any
     * graph sink. Higher schedules first.
     */
    const std::vector<int32_t> &priorities() const { return priorities_; }

  private:
    std::vector<DepEdge> edges_;
    std::vector<std::vector<uint32_t>> pred_edges_;
    std::vector<std::vector<uint32_t>> succ_edges_;
    std::vector<int32_t> priorities_;
};

} // namespace mdes::sched

#endif // MDES_SCHED_DEP_GRAPH_H
