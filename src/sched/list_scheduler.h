#ifndef MDES_SCHED_LIST_SCHEDULER_H
#define MDES_SCHED_LIST_SCHEDULER_H

/**
 * @file
 * The MDES-driven, multi-platform forward list scheduler.
 *
 * The scheduler never hard-codes machine behavior: all execution
 * constraints come from the low-level MDES via the constraint checker,
 * which is exactly the paper's experimental setup (a generic list
 * scheduler driven by per-machine descriptions). Each TrySchedule of one
 * operation at one cycle is one *scheduling attempt*; the checker
 * tallies attempts, options checked, and resource checks.
 */

#include <cstdint>
#include <vector>

#include "lmdes/low_mdes.h"
#include "rumap/checker.h"
#include "sched/dep_graph.h"
#include "sched/ir.h"
#include "support/histogram.h"

namespace mdes::sched {

/** The schedule of one basic block. */
struct BlockSchedule
{
    /** Issue cycle per instruction. */
    std::vector<int32_t> cycles;
    /** Whether each instruction used its cascade reservation table. */
    std::vector<uint8_t> used_cascade;
    /** Schedule length (one past the last issue cycle). */
    int32_t length = 0;
    /**
     * Instructions in the order their reservations were made. Schedule
     * validation replays reservations in this order so the checker's
     * greedy option choices match the scheduler's; left empty, replay
     * uses (cycle, critical-path priority) order.
     */
    std::vector<uint32_t> issue_order;

    bool operator==(const BlockSchedule &) const = default;
};

/** Aggregated scheduling results and statistics. */
struct SchedStats
{
    uint64_t ops_scheduled = 0;
    uint64_t total_schedule_length = 0;
    rumap::CheckStats checks;
    /** Scheduling attempts each operation needed before it was placed.
     * Filled by the schedulers' probe hooks only while a trace span is
     * active (tracing enabled), so the hot loop pays nothing when off. */
    Histogram attempts_per_op;

    double
    avgAttemptsPerOp() const
    {
        return ops_scheduled
                   ? double(checks.attempts) / double(ops_scheduled)
                   : 0;
    }
};

/** Forward cycle-driven list scheduler. */
class ListScheduler
{
  public:
    explicit ListScheduler(const lmdes::LowMdes &low)
        : low_(low), checker_(low)
    {
    }

    /**
     * Schedule one basic block with a fresh RU map, accumulating
     * statistics into @p stats.
     */
    BlockSchedule scheduleBlock(const Block &block, SchedStats &stats);

    /** Schedule every block of @p program; returns per-block schedules. */
    std::vector<BlockSchedule> scheduleProgram(const Program &program,
                                               SchedStats &stats);

  private:
    const lmdes::LowMdes &low_;
    rumap::Checker checker_;

    // Per-block scratch, reused across scheduleBlock() calls: blocks are
    // a handful of operations, so allocation (dep graph adjacency, ready
    // list, RU map window) costs more than the scheduling itself.
    DepGraph graph_;
    rumap::RuMap ru_;
    std::vector<uint32_t> ready_;
    std::vector<uint32_t> unscheduled_preds_;
    std::vector<uint32_t> op_attempts_;
};

} // namespace mdes::sched

#endif // MDES_SCHED_LIST_SCHEDULER_H
