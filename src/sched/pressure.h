#ifndef MDES_SCHED_PRESSURE_H
#define MDES_SCHED_PRESSURE_H

/**
 * @file
 * Resource-pressure analysis for non-scheduler MDES clients.
 *
 * The paper's introduction motivates giving *every* compiler module
 * access to execution constraints: "transformations such as predication
 * and height reduction also need to use execution constraints to avoid
 * over-subscription of processor resources." This module is that query
 * interface: given a set of operations (no schedule yet), report how
 * many cycles each resource instance is guaranteed to be busy and the
 * resulting lower bound on any schedule's length - the quantity an
 * if-converter or height-reduction pass compares against the critical
 * path before deciding to add instructions.
 *
 * Demand is a sound per-operation lower bound: for each AND subtree of
 * the operation's tree, the minimum usage count of each instance over
 * the subtree's options (the same bound iterative modulo scheduling
 * uses for ResMII).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "lmdes/low_mdes.h"
#include "sched/ir.h"

namespace mdes::sched {

/** Pressure report for one operation set. */
struct ResourcePressure
{
    /** Guaranteed busy-cycle demand per resource instance. */
    std::vector<double> demand;
    /** The instance with the highest demand. */
    uint32_t bottleneck = 0;
    /**
     * Lower bound implied by resources alone (max over instances of
     * ceil(demand)): no schedule can have a *busy makespan* - first to
     * last occupied cycle, including multi-cycle unit tails - shorter
     * than this, and no modulo schedule an II below it. Dependences may
     * bound higher.
     */
    int32_t resource_bound = 0;
};

/** Compute the pressure of the operations in @p block under @p low. */
ResourcePressure analyzePressure(const Block &block,
                                 const lmdes::LowMdes &low);

/**
 * Would adding @p extra copies of operation class @p op_class push the
 * resource bound of @p block beyond @p budget cycles? The
 * over-subscription test a predication/height-reduction client runs
 * before speculating more work into a region.
 */
bool wouldOversubscribe(const Block &block, const lmdes::LowMdes &low,
                        uint32_t op_class, int extra, int32_t budget);

} // namespace mdes::sched

#endif // MDES_SCHED_PRESSURE_H
