#include "sched/verify.h"

#include <algorithm>
#include <sstream>

#include "rumap/checker.h"
#include "sched/dep_graph.h"

namespace mdes::sched {

const char *
verifyFaultName(VerifyFault fault)
{
    switch (fault) {
    case VerifyFault::None:
        return "none";
    case VerifyFault::SizeMismatch:
        return "size_mismatch";
    case VerifyFault::Unscheduled:
        return "unscheduled";
    case VerifyFault::DependenceViolated:
        return "dependence_violated";
    case VerifyFault::BadIssueOrder:
        return "bad_issue_order";
    case VerifyFault::MissingCascadeTree:
        return "missing_cascade_tree";
    case VerifyFault::ResourceConflict:
        return "resource_conflict";
    }
    return "unknown";
}

namespace {

VerifyResult
fail(VerifyFault fault, uint32_t instr, std::string message)
{
    VerifyResult r;
    r.fault = fault;
    r.instr = instr;
    r.message = std::move(message);
    return r;
}

} // namespace

VerifyResult
verifyScheduleEx(const Block &block, const BlockSchedule &sched,
                 const lmdes::LowMdes &low)
{
    const size_t n = block.instrs.size();
    std::ostringstream os;
    if (sched.cycles.size() != n || sched.used_cascade.size() != n)
        return fail(VerifyFault::SizeMismatch, kInvalidId,
                    "schedule size does not match block size");

    for (size_t i = 0; i < n; ++i) {
        if (sched.cycles[i] < 0) {
            os << "instruction " << i << " was never scheduled";
            return fail(VerifyFault::Unscheduled, uint32_t(i), os.str());
        }
    }

    // Dependence distances.
    DepGraph graph = DepGraph::build(block, low);
    for (const auto &edge : graph.edges()) {
        int32_t dist = edge.min_dist;
        if (edge.cascade_relax && sched.used_cascade[edge.succ])
            dist = 0;
        if (sched.cycles[edge.succ] - sched.cycles[edge.pred] < dist) {
            os << "dependence violated: instruction " << edge.succ
               << " at cycle " << sched.cycles[edge.succ]
               << " is closer than " << dist << " to instruction "
               << edge.pred << " at cycle " << sched.cycles[edge.pred];
            return fail(VerifyFault::DependenceViolated, edge.succ,
                        os.str());
        }
    }

    // Resource feasibility: replay placements in the order the scheduler
    // made its reservations, so the checker's greedy option choices
    // coincide with the original ones. Without a recorded issue order,
    // fall back to (cycle, critical-path priority) - the forward
    // scheduler's attempt order.
    std::vector<uint32_t> order;
    if (sched.issue_order.size() == n) {
        order = sched.issue_order;
        std::vector<bool> seen(n, false);
        for (uint32_t u : order) {
            if (u >= n || seen[u])
                return fail(VerifyFault::BadIssueOrder, u,
                            "issue order is not a permutation of the "
                            "block");
            seen[u] = true;
        }
    } else {
        order.resize(n);
        for (uint32_t i = 0; i < n; ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](uint32_t a, uint32_t b) {
                             if (sched.cycles[a] != sched.cycles[b])
                                 return sched.cycles[a] < sched.cycles[b];
                             return graph.priorities()[a] >
                                    graph.priorities()[b];
                         });
    }

    rumap::RuMap ru;
    rumap::Checker checker(low);
    rumap::CheckStats scratch;
    for (uint32_t u : order) {
        const auto &cls = low.opClasses()[block.instrs[u].op_class];
        uint32_t tree =
            sched.used_cascade[u] ? cls.cascade_tree : cls.tree;
        if (tree == kInvalidId) {
            os << "instruction " << u
               << " claims cascade but has no cascade tree";
            return fail(VerifyFault::MissingCascadeTree, u, os.str());
        }
        if (!checker.tryReserve(tree, sched.cycles[u], ru, scratch)) {
            os << "resource conflict replaying instruction " << u
               << " at cycle " << sched.cycles[u];
            return fail(VerifyFault::ResourceConflict, u, os.str());
        }
    }
    return {};
}

std::string
verifySchedule(const Block &block, const BlockSchedule &sched,
               const lmdes::LowMdes &low)
{
    return verifyScheduleEx(block, sched, low).message;
}

} // namespace mdes::sched
