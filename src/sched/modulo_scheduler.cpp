#include "sched/modulo_scheduler.h"

#include "sched/pressure.h"

#include <algorithm>
#include <map>

#include "support/diagnostics.h"
#include "support/trace.h"

namespace mdes::sched {

LoopDepGraph
LoopDepGraph::build(const Block &body, const lmdes::LowMdes &low)
{
    LoopDepGraph g;
    const size_t n = body.instrs.size();

    auto addEdge = [&](uint32_t pred, uint32_t succ, int32_t latency,
                       int32_t omega) {
        if (pred == succ && omega == 0)
            return;
        g.edges_.push_back({pred, succ, latency, omega});
    };

    // Per-register bookkeeping over one iteration of the body.
    std::map<int32_t, std::vector<uint32_t>> writers, readers;
    for (uint32_t i = 0; i < n; ++i) {
        for (int32_t r : body.instrs[i].srcs)
            readers[r].push_back(i);
        for (int32_t r : body.instrs[i].dsts)
            writers[r].push_back(i);
    }
    auto flowLat = [&](uint32_t producer, uint32_t consumer) {
        return low.flowLatency(body.instrs[producer].op_class,
                               body.instrs[consumer].op_class);
    };

    for (const auto &[reg, ws] : writers) {
        const auto &rs = readers.count(reg) ? readers.at(reg)
                                            : std::vector<uint32_t>{};
        // Intra-iteration RAW: each read from the nearest earlier write.
        for (uint32_t read : rs) {
            uint32_t best = UINT32_MAX;
            for (uint32_t w : ws) {
                if (w < read)
                    best = w;
            }
            if (best != UINT32_MAX)
                addEdge(best, read, flowLat(best, read), 0);
        }
        // Loop-carried RAW: reads at or before the last write consume
        // the previous iteration's value.
        uint32_t last_w = ws.back();
        for (uint32_t read : rs) {
            if (read <= last_w)
                addEdge(last_w, read, flowLat(last_w, read), 1);
        }
        // WAR: a write must not overtake this iteration's earlier reads
        // (omega 0) and the next write must wait for this iteration's
        // later reads (omega 1).
        uint32_t first_w = ws.front();
        for (uint32_t read : rs) {
            uint32_t next_w = UINT32_MAX;
            for (uint32_t w : ws) {
                if (w > read) {
                    next_w = w;
                    break;
                }
            }
            if (next_w != UINT32_MAX)
                addEdge(read, next_w, 0, 0);
            else
                addEdge(read, first_w, 0, 1);
        }
        // WAW within and across iterations.
        for (size_t k = 0; k + 1 < ws.size(); ++k)
            addEdge(ws[k], ws[k + 1], 1, 0);
        addEdge(last_w, first_w, 1, 1);
    }
    return g;
}

int32_t
ModuloScheduler::resMii(const Block &body) const
{
    // The per-iteration resource demand bound is exactly the
    // resource-pressure analysis other MDES clients use; see
    // sched/pressure.h for the demand definition.
    return std::max(analyzePressure(body, low_).resource_bound, 1);
}

int32_t
ModuloScheduler::recMii(const Block &body, const LoopDepGraph &graph,
                        int32_t max_ii) const
{
    const size_t n = body.instrs.size();
    // Smallest II such that no dependence cycle has positive total
    // weight under edge weight (latency - II*omega): checked with
    // Bellman-Ford-style longest-path relaxation; still relaxing after
    // n rounds means a positive cycle exists.
    auto feasible = [&](int32_t ii) {
        std::vector<int64_t> dist(n, 0);
        for (size_t round = 0; round <= n; ++round) {
            bool changed = false;
            for (const auto &e : graph.edges()) {
                int64_t w = int64_t(e.latency) - int64_t(ii) * e.omega;
                if (dist[e.pred] + w > dist[e.succ]) {
                    dist[e.succ] = dist[e.pred] + w;
                    changed = true;
                }
            }
            if (!changed)
                return true;
        }
        return false;
    };
    int32_t lo = 1, hi = max_ii;
    if (feasible(lo))
        return lo;
    while (lo < hi) {
        int32_t mid = lo + (hi - lo) / 2;
        if (feasible(mid))
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

ModuloSchedule
ModuloScheduler::schedule(const Block &body, SchedStats &stats,
                          int32_t max_ii, int budget_ratio)
{
    const size_t n = body.instrs.size();
    ModuloSchedule result;
    LoopDepGraph graph = LoopDepGraph::build(body, low_);
    result.res_mii = resMii(body);
    result.rec_mii = recMii(body, graph, max_ii);
    if (n == 0) {
        result.success = true;
        result.ii = 1;
        return result;
    }

    // Probe hook: per-op attempt counts across every II tried, live only
    // under an active span (see SchedStats::attempts_per_op).
    TRACE_SPAN_F(span, "sched/modulo");
    std::vector<uint32_t> op_attempts;
    if (span.active())
        op_attempts.assign(n, 0);
    stats.checks.sizeFor(low_);

    std::vector<std::vector<uint32_t>> pred_edges(n), succ_edges(n);
    for (uint32_t e = 0; e < graph.edges().size(); ++e) {
        pred_edges[graph.edges()[e].succ].push_back(e);
        succ_edges[graph.edges()[e].pred].push_back(e);
    }

    constexpr int32_t kUnscheduled = INT32_MIN;

    for (int32_t ii = std::max(result.res_mii, result.rec_mii);
         ii <= max_ii; ++ii) {
        const int32_t words = int32_t(low_.slotWords());
        rumap::RuMap ru(ii * words); // modulo over whole cycles
        std::vector<int32_t> times(n, kUnscheduled);
        std::vector<int32_t> prev_time(n, kUnscheduled);
        std::vector<std::vector<rumap::Reservation>> reservations(n);

        // Height priority under this II (converges: recMii <= ii).
        std::vector<int64_t> height(n, 0);
        for (size_t round = 0; round <= n; ++round) {
            bool changed = false;
            for (const auto &e : graph.edges()) {
                int64_t h = height[e.succ] + e.latency -
                            int64_t(ii) * e.omega;
                if (h > height[e.pred]) {
                    height[e.pred] = h;
                    changed = true;
                }
            }
            if (!changed)
                break;
        }

        auto nextOp = [&]() -> uint32_t {
            uint32_t best = kInvalidId;
            for (uint32_t u = 0; u < n; ++u) {
                if (times[u] != kUnscheduled)
                    continue;
                if (best == kInvalidId || height[u] > height[best])
                    best = u;
            }
            return best;
        };

        auto unschedule = [&](uint32_t u) {
            // Reservation cycles are already map-normalized slots.
            for (const auto &r : reservations[u])
                ru.releaseSlot(r.cycle, r.mask);
            reservations[u].clear();
            times[u] = kUnscheduled;
            ++result.evictions;
        };

        int64_t budget = int64_t(budget_ratio) * int64_t(n);
        bool ok = true;
        for (;;) {
            uint32_t u = nextOp();
            if (u == kInvalidId)
                break; // everything placed
            if (--budget < 0) {
                ok = false;
                break;
            }
            const auto &cls = low_.opClasses()[body.instrs[u].op_class];

            int32_t estart = 0;
            for (uint32_t e : pred_edges[u]) {
                const LoopEdge &edge = graph.edges()[e];
                if (edge.succ != u || times[edge.pred] == kUnscheduled)
                    continue;
                estart = std::max(estart, times[edge.pred] +
                                              edge.latency -
                                              ii * edge.omega);
            }

            bool placed = false;
            for (int32_t t = estart; t < estart + ii && !placed; ++t) {
                if (span.active())
                    ++op_attempts[u];
                if (checker_.tryReserve(cls.tree, t, ru, stats.checks,
                                        nullptr, &reservations[u])) {
                    times[u] = t;
                    placed = true;
                }
            }
            if (!placed) {
                // Force placement, displacing whatever conflicts: first
                // choice combination (highest-priority option of every
                // OR subtree), as the reservation-table unscheduling the
                // paper describes.
                int32_t t_force =
                    (prev_time[u] == kUnscheduled ||
                     estart > prev_time[u])
                        ? estart
                        : prev_time[u] + 1;
                std::vector<rumap::Reservation> needed;
                const lmdes::LowTree &tree = low_.trees()[cls.tree];
                for (uint32_t s = 0; s < tree.num_or_trees; ++s) {
                    const lmdes::LowOrTree &ot =
                        low_.orTrees()
                            [low_.orRefs()[tree.first_or_ref + s]];
                    const lmdes::LowOption &opt =
                        low_.options()
                            [low_.optionRefs()[ot.first_option_ref]];
                    for (uint32_t c = 0; c < opt.num_checks; ++c) {
                        const lmdes::Check &check =
                            low_.checks()[opt.first_check + c];
                        needed.push_back(
                            {ru.normalize(t_force * words + check.slot),
                             check.mask});
                    }
                }
                // If the combination conflicts with itself at this II
                // (two usages landing on the same modulo slot and
                // resource), the operation cannot execute at this II at
                // all - abandon it and move to the next II.
                bool self_conflict = false;
                for (size_t x = 0; x < needed.size(); ++x) {
                    for (size_t y = x + 1; y < needed.size(); ++y) {
                        self_conflict |=
                            needed[x].cycle == needed[y].cycle &&
                            (needed[x].mask & needed[y].mask) != 0;
                    }
                }
                if (self_conflict) {
                    ok = false;
                    break;
                }
                for (uint32_t v = 0; v < n; ++v) {
                    if (v == u || times[v] == kUnscheduled)
                        continue;
                    bool conflicts = false;
                    for (const auto &rv : reservations[v]) {
                        for (const auto &rn : needed) {
                            conflicts |= rv.cycle == rn.cycle &&
                                         (rv.mask & rn.mask) != 0;
                        }
                    }
                    if (conflicts)
                        unschedule(v);
                }
                for (const auto &rn : needed)
                    ru.reserveSlot(rn.cycle, rn.mask);
                reservations[u] = needed;
                times[u] = t_force;
            }
            prev_time[u] = times[u];

            // Displace scheduled successors whose dependence from u is
            // now violated (they will be rescheduled later).
            for (uint32_t e : succ_edges[u]) {
                const LoopEdge &edge = graph.edges()[e];
                uint32_t v = edge.succ;
                if (v == u || times[v] == kUnscheduled)
                    continue;
                if (times[v] <
                    times[u] + edge.latency - ii * edge.omega) {
                    unschedule(v);
                }
            }
        }

        if (ok) {
            result.success = true;
            result.ii = ii;
            result.times = std::move(times);
            result.reservations = std::move(reservations);
            // Normalize so the earliest time is zero.
            int32_t min_t = *std::min_element(result.times.begin(),
                                              result.times.end());
            for (auto &t : result.times)
                t -= min_t;
            stats.ops_scheduled += n;
            stats.total_schedule_length += uint64_t(ii);
            if (span.active()) {
                for (uint32_t a : op_attempts)
                    stats.attempts_per_op.add(a);
                span.counter("ops", n);
                span.counter("ii", uint64_t(ii));
                span.counter("res_mii", uint64_t(result.res_mii));
                span.counter("rec_mii", uint64_t(result.rec_mii));
                span.counter("evictions", result.evictions);
            }
            return result;
        }
    }
    return result; // success == false: no II within max_ii worked
}

std::string
verifyModuloSchedule(const Block &body, const LoopDepGraph &graph,
                     const ModuloSchedule &sched)
{
    if (!sched.success)
        return "schedule did not succeed";
    const size_t n = body.instrs.size();
    if (sched.times.size() != n || sched.reservations.size() != n)
        return "schedule size mismatch";
    if (sched.ii < std::max(sched.res_mii, sched.rec_mii))
        return "II below its lower bounds";

    for (const auto &e : graph.edges()) {
        if (sched.times[e.succ] - sched.times[e.pred] <
            e.latency - sched.ii * e.omega) {
            return "dependence violated between operations " +
                   std::to_string(e.pred) + " and " +
                   std::to_string(e.succ);
        }
    }
    // No two operations may collide in the modulo reservation table.
    for (uint32_t a = 0; a < n; ++a) {
        for (uint32_t b = a + 1; b < n; ++b) {
            for (const auto &ra : sched.reservations[a]) {
                for (const auto &rb : sched.reservations[b]) {
                    if (ra.cycle == rb.cycle &&
                        (ra.mask & rb.mask) != 0) {
                        return "modulo resource collision between "
                               "operations " +
                               std::to_string(a) + " and " +
                               std::to_string(b);
                    }
                }
            }
        }
    }
    return "";
}

} // namespace mdes::sched
