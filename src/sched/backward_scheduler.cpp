#include "sched/backward_scheduler.h"

#include <algorithm>

#include "support/diagnostics.h"
#include "support/trace.h"

namespace mdes::sched {

BlockSchedule
BackwardListScheduler::scheduleBlock(const Block &block, SchedStats &stats)
{
    const size_t n = block.instrs.size();
    BlockSchedule sched;
    sched.cycles.assign(n, 1); // sentinel: backward cycles are <= 0
    sched.used_cascade.assign(n, 0);
    if (n == 0)
        return sched;

    TRACE_SPAN_F(span, "sched/block");
    if (span.active())
        op_attempts_.assign(n, 0);
    const uint64_t attempts_before = stats.checks.attempts;
    const uint64_t prefilter_before = stats.checks.prefilter_hits;

    stats.checks.sizeFor(low_);
    graph_.rebuild(block, low_);
    ru_.clear();

    // Depth = latency-weighted longest path from the block entry; ops
    // deepest in the block schedule first when walking backward.
    depth_.assign(n, 0);
    for (uint32_t u = 0; u < n; ++u) {
        for (uint32_t e : graph_.predEdges()[u]) {
            const DepEdge &edge = graph_.edges()[e];
            depth_[u] = std::max(depth_[u],
                                 depth_[edge.pred] + edge.min_dist);
        }
    }
    ready_.resize(n);
    for (uint32_t i = 0; i < n; ++i)
        ready_[i] = i;
    std::stable_sort(ready_.begin(), ready_.end(),
                     [&](uint32_t a, uint32_t b) {
                         return depth_[a] > depth_[b];
                     });

    unscheduled_succs_.assign(n, 0);
    for (const auto &e : graph_.edges())
        ++unscheduled_succs_[e.pred];

    size_t remaining = n;
    int64_t cycle_bound = 64;
    for (const auto &in : block.instrs)
        cycle_bound += 2 + low_.opClasses()[in.op_class].latency;

    for (int32_t cycle = 0; remaining > 0; --cycle) {
        if (-int64_t(cycle) > cycle_bound) {
            throw MdesError(
                "backward list scheduler exceeded cycle bound; the "
                "machine description cannot issue some operation");
        }
        // One compacting pass over the ready list (order-preserving, as
        // in the forward scheduler).
        size_t w = 0;
        for (size_t i = 0; i < ready_.size(); ++i) {
            uint32_t u = ready_[i];
            ready_[w++] = u;
            if (unscheduled_succs_[u] > 0)
                continue;
            const Instr &in = block.instrs[u];
            const lmdes::LowOpClass &cls = low_.opClasses()[in.op_class];

            // The latest cycle all outgoing dependences allow.
            int32_t latest = 0;
            for (uint32_t e : graph_.succEdges()[u]) {
                const DepEdge &edge = graph_.edges()[e];
                latest = std::min(latest, sched.cycles[edge.succ] -
                                              edge.min_dist);
            }
            if (cycle > latest)
                continue;

            if (span.active())
                ++op_attempts_[u];
            if (checker_.tryReserve(cls.tree, cycle, ru_,
                                    stats.checks)) {
                sched.cycles[u] = cycle;
                sched.issue_order.push_back(u);
                --remaining;
                for (uint32_t e : graph_.predEdges()[u])
                    --unscheduled_succs_[graph_.edges()[e].pred];
                --w; // drop u from the ready list
            }
        }
        ready_.resize(w);
    }

    // Normalize so the earliest issue cycle becomes 0.
    int32_t min_cycle = *std::min_element(sched.cycles.begin(),
                                          sched.cycles.end());
    for (auto &c : sched.cycles)
        c -= min_cycle;
    sched.length = *std::max_element(sched.cycles.begin(),
                                     sched.cycles.end()) +
                   1;
    // issue_order deliberately stays in true reservation order (latest
    // cycles first): replaying in any other order could make different
    // greedy option choices. Cycle normalization is a uniform shift, so
    // replaying the shifted cycles reproduces the same choices.

    stats.ops_scheduled += n;
    stats.total_schedule_length += uint64_t(sched.length);
    if (span.active()) {
        for (uint32_t a : op_attempts_)
            stats.attempts_per_op.add(a);
        span.counter("ops", n);
        span.counter("length", uint64_t(sched.length));
        span.counter("attempts", stats.checks.attempts - attempts_before);
        span.counter("prefilter_hits",
                     stats.checks.prefilter_hits - prefilter_before);
    }
    return sched;
}

std::vector<BlockSchedule>
BackwardListScheduler::scheduleProgram(const Program &program,
                                       SchedStats &stats)
{
    std::vector<BlockSchedule> schedules;
    schedules.reserve(program.blocks.size());
    for (const auto &block : program.blocks)
        schedules.push_back(scheduleBlock(block, stats));
    return schedules;
}

} // namespace mdes::sched
