#include "sched/list_scheduler.h"

#include <algorithm>
#include <stdexcept>

#include "support/diagnostics.h"
#include "support/trace.h"

namespace mdes::sched {

BlockSchedule
ListScheduler::scheduleBlock(const Block &block, SchedStats &stats)
{
    const size_t n = block.instrs.size();
    BlockSchedule sched;
    sched.cycles.assign(n, -1);
    sched.used_cascade.assign(n, 0);
    if (n == 0)
        return sched;

    // Probe hook: per-op attempt counts, collected only under a live
    // span so the untraced loop pays a flag test and nothing more.
    TRACE_SPAN_F(span, "sched/block");
    if (span.active())
        op_attempts_.assign(n, 0);
    const uint64_t attempts_before = stats.checks.attempts;
    const uint64_t prefilter_before = stats.checks.prefilter_hits;

    stats.checks.sizeFor(low_);
    graph_.rebuild(block, low_);
    ru_.clear();

    // Instruction order for the ready list: critical path first, then
    // source order (deterministic across representations/transforms).
    ready_.resize(n);
    for (uint32_t i = 0; i < n; ++i)
        ready_[i] = i;
    std::stable_sort(ready_.begin(), ready_.end(),
                     [&](uint32_t a, uint32_t b) {
                         return graph_.priorities()[a] >
                                graph_.priorities()[b];
                     });

    unscheduled_preds_.assign(n, 0);
    for (const auto &e : graph_.edges())
        ++unscheduled_preds_[e.succ];

    size_t remaining = n;
    // Generous safety bound: every op needs at least one cycle, plus
    // dependence spans bounded by per-op latency sums.
    int64_t cycle_bound = 64;
    for (const auto &in : block.instrs)
        cycle_bound += 2 + low_.opClasses()[in.op_class].latency;

    for (int32_t cycle = 0; remaining > 0; ++cycle) {
        if (cycle > cycle_bound) {
            throw MdesError(
                "list scheduler exceeded cycle bound; the machine "
                "description cannot issue some operation");
        }
        // One pass over the ready list, compacting out the operations
        // placed this cycle (order-preserving, so priority ties keep
        // resolving by source order).
        size_t w = 0;
        for (size_t i = 0; i < ready_.size(); ++i) {
            uint32_t u = ready_[i];
            ready_[w++] = u;
            if (unscheduled_preds_[u] > 0)
                continue;
            const Instr &in = block.instrs[u];
            const lmdes::LowOpClass &cls = low_.opClasses()[in.op_class];

            // Earliest cycle with all dependences honored, and the
            // earlier cycle reachable by cascading relaxable RAW edges.
            int32_t normal_ready = 0;
            int32_t cascade_ready = 0;
            for (uint32_t e : graph_.predEdges()[u]) {
                const DepEdge &edge = graph_.edges()[e];
                int32_t at = sched.cycles[edge.pred] + edge.min_dist;
                normal_ready = std::max(normal_ready, at);
                int32_t relaxed = edge.cascade_relax
                                      ? sched.cycles[edge.pred]
                                      : at;
                cascade_ready = std::max(cascade_ready, relaxed);
            }

            bool can_cascade = in.cascadable &&
                               cls.cascade_tree != kInvalidId;
            if (cycle < (can_cascade ? cascade_ready : normal_ready))
                continue;
            bool use_cascade = can_cascade && cycle < normal_ready;
            uint32_t tree = use_cascade ? cls.cascade_tree : cls.tree;

            if (span.active())
                ++op_attempts_[u];
            if (checker_.tryReserve(tree, cycle, ru_, stats.checks)) {
                sched.cycles[u] = cycle;
                sched.used_cascade[u] = use_cascade ? 1 : 0;
                sched.length = std::max(sched.length, cycle + 1);
                sched.issue_order.push_back(u);
                --remaining;
                for (uint32_t e : graph_.succEdges()[u])
                    --unscheduled_preds_[graph_.edges()[e].succ];
                --w; // drop u from the ready list
            }
        }
        ready_.resize(w);
    }

    stats.ops_scheduled += n;
    stats.total_schedule_length += uint64_t(sched.length);
    if (span.active()) {
        for (uint32_t a : op_attempts_)
            stats.attempts_per_op.add(a);
        span.counter("ops", n);
        span.counter("length", uint64_t(sched.length));
        span.counter("attempts", stats.checks.attempts - attempts_before);
        span.counter("prefilter_hits",
                     stats.checks.prefilter_hits - prefilter_before);
    }
    return sched;
}

std::vector<BlockSchedule>
ListScheduler::scheduleProgram(const Program &program, SchedStats &stats)
{
    std::vector<BlockSchedule> schedules;
    schedules.reserve(program.blocks.size());
    for (const auto &block : program.blocks)
        schedules.push_back(scheduleBlock(block, stats));
    return schedules;
}

} // namespace mdes::sched
