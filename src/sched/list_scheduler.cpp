#include "sched/list_scheduler.h"

#include <algorithm>
#include <stdexcept>

#include "support/diagnostics.h"
#include "support/trace.h"

namespace mdes::sched {

BlockSchedule
ListScheduler::scheduleBlock(const Block &block, SchedStats &stats)
{
    const size_t n = block.instrs.size();
    BlockSchedule sched;
    sched.cycles.assign(n, -1);
    sched.used_cascade.assign(n, 0);
    if (n == 0)
        return sched;

    // Probe hook: per-op attempt counts, collected only under a live
    // span so the untraced loop pays a flag test and nothing more.
    TRACE_SPAN_F(span, "sched/block");
    std::vector<uint32_t> op_attempts;
    if (span.active())
        op_attempts.assign(n, 0);
    const uint64_t attempts_before = stats.checks.attempts;

    DepGraph graph = DepGraph::build(block, low_);
    rumap::RuMap ru;

    // Instruction order for the ready list: critical path first, then
    // source order (deterministic across representations/transforms).
    std::vector<uint32_t> order(n);
    for (uint32_t i = 0; i < n; ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                         return graph.priorities()[a] >
                                graph.priorities()[b];
                     });

    std::vector<uint32_t> unscheduled_preds(n, 0);
    for (const auto &e : graph.edges())
        ++unscheduled_preds[e.succ];

    size_t remaining = n;
    // Generous safety bound: every op needs at least one cycle, plus
    // dependence spans bounded by per-op latency sums.
    int64_t cycle_bound = 64;
    for (const auto &in : block.instrs)
        cycle_bound += 2 + low_.opClasses()[in.op_class].latency;

    for (int32_t cycle = 0; remaining > 0; ++cycle) {
        if (cycle > cycle_bound) {
            throw MdesError(
                "list scheduler exceeded cycle bound; the machine "
                "description cannot issue some operation");
        }
        for (uint32_t u : order) {
            if (sched.cycles[u] >= 0 || unscheduled_preds[u] > 0)
                continue;
            const Instr &in = block.instrs[u];
            const lmdes::LowOpClass &cls = low_.opClasses()[in.op_class];

            // Earliest cycle with all dependences honored, and the
            // earlier cycle reachable by cascading relaxable RAW edges.
            int32_t normal_ready = 0;
            int32_t cascade_ready = 0;
            for (uint32_t e : graph.predEdges()[u]) {
                const DepEdge &edge = graph.edges()[e];
                int32_t at = sched.cycles[edge.pred] + edge.min_dist;
                normal_ready = std::max(normal_ready, at);
                int32_t relaxed = edge.cascade_relax
                                      ? sched.cycles[edge.pred]
                                      : at;
                cascade_ready = std::max(cascade_ready, relaxed);
            }

            bool can_cascade = in.cascadable &&
                               cls.cascade_tree != kInvalidId;
            if (cycle < (can_cascade ? cascade_ready : normal_ready))
                continue;
            bool use_cascade = can_cascade && cycle < normal_ready;
            uint32_t tree = use_cascade ? cls.cascade_tree : cls.tree;

            if (span.active())
                ++op_attempts[u];
            if (checker_.tryReserve(tree, cycle, ru, stats.checks)) {
                sched.cycles[u] = cycle;
                sched.used_cascade[u] = use_cascade ? 1 : 0;
                sched.length = std::max(sched.length, cycle + 1);
                sched.issue_order.push_back(u);
                --remaining;
                for (uint32_t e : graph.succEdges()[u])
                    --unscheduled_preds[graph.edges()[e].succ];
            }
        }
    }

    stats.ops_scheduled += n;
    stats.total_schedule_length += uint64_t(sched.length);
    if (span.active()) {
        for (uint32_t a : op_attempts)
            stats.attempts_per_op.add(a);
        span.counter("ops", n);
        span.counter("length", uint64_t(sched.length));
        span.counter("attempts", stats.checks.attempts - attempts_before);
    }
    return sched;
}

std::vector<BlockSchedule>
ListScheduler::scheduleProgram(const Program &program, SchedStats &stats)
{
    std::vector<BlockSchedule> schedules;
    schedules.reserve(program.blocks.size());
    for (const auto &block : program.blocks)
        schedules.push_back(scheduleBlock(block, stats));
    return schedules;
}

} // namespace mdes::sched
