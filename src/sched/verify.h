#ifndef MDES_SCHED_VERIFY_H
#define MDES_SCHED_VERIFY_H

/**
 * @file
 * Independent schedule validation: replays a block schedule against the
 * dependence graph and a fresh RU map, proving (a) every dependence
 * distance is honored (cascaded operations may shrink relaxable RAW
 * edges to zero) and (b) the machine's resource constraints admit the
 * schedule. Used by tests and by the property suite to show that every
 * representation/transformation combination produced a legal schedule.
 *
 * verifyScheduleEx() returns a typed verdict so callers can branch on
 * the failure class (the exact/portfolio paths distinguish a resource
 * replay mismatch from a dependence bug); verifySchedule() keeps the
 * original string contract - empty means valid.
 */

#include <cstdint>
#include <string>

#include "lmdes/low_mdes.h"
#include "sched/ir.h"
#include "sched/list_scheduler.h"

namespace mdes::sched {

/** The first violation class a schedule replay hit. */
enum class VerifyFault : uint8_t
{
    None = 0,
    /** cycles/used_cascade arrays do not match the block size. */
    SizeMismatch,
    /** An instruction has no issue cycle. */
    Unscheduled,
    /** A dependence edge's minimum distance is violated. */
    DependenceViolated,
    /** issue_order is present but not a permutation of the block. */
    BadIssueOrder,
    /** used_cascade set for a class without a cascade table. */
    MissingCascadeTree,
    /** The RU-map replay could not re-reserve an instruction. */
    ResourceConflict,
};

/** Stable lowercase name for @p fault (metrics / CLI output). */
const char *verifyFaultName(VerifyFault fault);

/** Typed verdict of one schedule validation. */
struct VerifyResult
{
    VerifyFault fault = VerifyFault::None;
    /** Offending instruction, kInvalidId when not instruction-specific. */
    uint32_t instr = kInvalidId;
    /** Human-readable description; empty when the schedule is valid. */
    std::string message;

    bool ok() const { return fault == VerifyFault::None; }
};

/**
 * Validate @p sched for @p block under @p low. The resource replay
 * follows the schedule's recorded issue_order when present (the exact
 * search issues out of (cycle, priority) order), else (cycle,
 * critical-path priority) order.
 */
VerifyResult verifyScheduleEx(const Block &block, const BlockSchedule &sched,
                              const lmdes::LowMdes &low);

/**
 * Validate @p sched for @p block under @p low.
 * @return an empty string when valid, else a description of the first
 *         violation found.
 */
std::string verifySchedule(const Block &block, const BlockSchedule &sched,
                           const lmdes::LowMdes &low);

} // namespace mdes::sched

#endif // MDES_SCHED_VERIFY_H
