#ifndef MDES_SCHED_VERIFY_H
#define MDES_SCHED_VERIFY_H

/**
 * @file
 * Independent schedule validation: replays a block schedule against the
 * dependence graph and a fresh RU map, proving (a) every dependence
 * distance is honored (cascaded operations may shrink relaxable RAW
 * edges to zero) and (b) the machine's resource constraints admit the
 * schedule. Used by tests and by the property suite to show that every
 * representation/transformation combination produced a legal schedule.
 */

#include <string>

#include "lmdes/low_mdes.h"
#include "sched/ir.h"
#include "sched/list_scheduler.h"

namespace mdes::sched {

/**
 * Validate @p sched for @p block under @p low.
 * @return an empty string when valid, else a description of the first
 *         violation found.
 */
std::string verifySchedule(const Block &block, const BlockSchedule &sched,
                           const lmdes::LowMdes &low);

} // namespace mdes::sched

#endif // MDES_SCHED_VERIFY_H
