#ifndef MDES_CORE_MINIMIZE_H
#define MDES_CORE_MINIMIZE_H

/**
 * @file
 * Eichenberger/Davidson-style reservation-table minimization - the
 * paper's primary related-work comparison (Section 10).
 *
 * Eichenberger & Davidson (PLDI'96) generate, for each reservation
 * table option, an equivalent option with a minimum number of resource
 * usages, which minimizes both the memory per option and the resource
 * checks per option - but, as the paper notes, "do not address the
 * problem of reducing the number of option checks per scheduling
 * attempt", which is what the AND/OR-tree representation attacks.
 *
 * This module implements the usage-minimization side of that work as a
 * baseline: a usage is removed from an option whenever removal leaves
 * every ordered-pair collision vector in the MDES unchanged. Since a
 * schedule is resource-conflict-free iff no operation pair violates its
 * collision vector (Section 7's theory), and the constraint checker's
 * accept/reject behavior at any RU-map state built from these same
 * options is fully determined by those collision vectors, minimization
 * preserves every schedule bit-for-bit - a property the tests assert.
 *
 * The resource-renaming half of Eichenberger & Davidson (compacting the
 * resource set itself) is not reproduced; dropping usages already
 * leaves orphaned resources unused, which the RU-map word simply never
 * tests.
 */

#include <cstddef>

#include "core/mdes.h"

namespace mdes {

/**
 * Minimize every reservation-table option of @p m: greedily remove
 * usages whose removal preserves all pairwise collision vectors
 * (including each option against itself). Options always keep at least
 * one usage.
 *
 * @return number of usages removed.
 */
size_t minimizeUsages(Mdes &m);

} // namespace mdes

#endif // MDES_CORE_MINIMIZE_H
