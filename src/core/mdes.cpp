#include "core/mdes.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

namespace mdes {

bool
Option::covers(const Option &other) const
{
    for (const auto &u : other.usages) {
        if (std::find(usages.begin(), usages.end(), u) == usages.end())
            return false;
    }
    return true;
}

ResourceId
Mdes::addResourceClass(const std::string &name, uint32_t count)
{
    assert(count >= 1);
    ResourceClass rc;
    rc.name = name;
    rc.count = count;
    rc.first_instance = num_resources_;
    resource_classes_.push_back(rc);
    num_resources_ += count;
    return rc.first_instance;
}

OptionId
Mdes::addOption(Option option)
{
    options_.push_back(std::move(option));
    return OptionId(options_.size() - 1);
}

OrTreeId
Mdes::addOrTree(OrTree tree)
{
    or_trees_.push_back(std::move(tree));
    return OrTreeId(or_trees_.size() - 1);
}

TreeId
Mdes::addTree(AndOrTree tree)
{
    trees_.push_back(std::move(tree));
    return TreeId(trees_.size() - 1);
}

OpClassId
Mdes::addOpClass(OperationClass op)
{
    op_classes_.push_back(std::move(op));
    return OpClassId(op_classes_.size() - 1);
}

std::string
Mdes::resourceName(ResourceId id) const
{
    for (const auto &rc : resource_classes_) {
        if (id >= rc.first_instance && id < rc.first_instance + rc.count) {
            if (rc.count == 1)
                return rc.name;
            std::ostringstream os;
            os << rc.name << "[" << (id - rc.first_instance) << "]";
            return os.str();
        }
    }
    return "<bad-resource>";
}

ResourceId
Mdes::findResource(const std::string &cls, uint32_t index) const
{
    for (const auto &rc : resource_classes_) {
        if (rc.name == cls && index < rc.count)
            return rc.first_instance + index;
    }
    return kInvalidId;
}

OpClassId
Mdes::findOpClass(const std::string &name) const
{
    for (size_t i = 0; i < op_classes_.size(); ++i) {
        if (op_classes_[i].name == name)
            return OpClassId(i);
    }
    return kInvalidId;
}

TreeId
Mdes::findTree(const std::string &name) const
{
    for (size_t i = 0; i < trees_.size(); ++i) {
        if (trees_[i].name == name)
            return TreeId(i);
    }
    return kInvalidId;
}

OrTreeId
Mdes::findOrTree(const std::string &name) const
{
    for (size_t i = 0; i < or_trees_.size(); ++i) {
        if (or_trees_[i].name == name)
            return OrTreeId(i);
    }
    return kInvalidId;
}

uint64_t
Mdes::expandedOptionCount(TreeId tree) const
{
    uint64_t product = 1;
    for (OrTreeId ot : trees_[tree].or_trees)
        product *= or_trees_[ot].options.size();
    return product;
}

uint64_t
Mdes::leafOptionCount(TreeId tree) const
{
    uint64_t sum = 0;
    for (OrTreeId ot : trees_[tree].or_trees)
        sum += or_trees_[ot].options.size();
    return sum;
}

int32_t
Mdes::earliestTime(OptionId id) const
{
    int32_t best = std::numeric_limits<int32_t>::max();
    for (const auto &u : options_[id].usages)
        best = std::min(best, u.time);
    return best;
}

int32_t
Mdes::earliestTimeOr(OrTreeId id) const
{
    int32_t best = std::numeric_limits<int32_t>::max();
    for (OptionId o : or_trees_[id].options)
        best = std::min(best, earliestTime(o));
    return best;
}

int32_t
Mdes::earliestTimeTree(TreeId id) const
{
    int32_t best = std::numeric_limits<int32_t>::max();
    for (OrTreeId ot : trees_[id].or_trees)
        best = std::min(best, earliestTimeOr(ot));
    return best;
}

std::vector<uint32_t>
Mdes::orTreeShareCounts() const
{
    std::vector<uint32_t> counts(or_trees_.size(), 0);
    std::set<TreeId> live;
    for (const auto &oc : op_classes_) {
        if (oc.tree != kInvalidId)
            live.insert(oc.tree);
        if (oc.cascade_tree != kInvalidId)
            live.insert(oc.cascade_tree);
    }
    for (TreeId t : live) {
        for (OrTreeId ot : trees_[t].or_trees)
            ++counts[ot];
    }
    return counts;
}

std::string
Mdes::validate() const
{
    std::ostringstream os;
    for (size_t i = 0; i < options_.size(); ++i) {
        const auto &opt = options_[i];
        if (opt.usages.empty()) {
            os << "option " << i << " has no usages";
            return os.str();
        }
        auto sorted = opt.usages;
        std::sort(sorted.begin(), sorted.end());
        for (size_t j = 0; j + 1 < sorted.size(); ++j) {
            if (sorted[j] == sorted[j + 1]) {
                os << "option " << i << " uses "
                   << resourceName(sorted[j].resource) << " at time "
                   << sorted[j].time << " more than once";
                return os.str();
            }
        }
        for (const auto &u : opt.usages) {
            if (u.resource >= num_resources_) {
                os << "option " << i << " references resource "
                   << u.resource << " out of range";
                return os.str();
            }
        }
    }
    for (size_t i = 0; i < or_trees_.size(); ++i) {
        if (or_trees_[i].options.empty()) {
            os << "OR-tree '" << or_trees_[i].name << "' has no options";
            return os.str();
        }
        for (OptionId o : or_trees_[i].options) {
            if (o >= options_.size()) {
                os << "OR-tree '" << or_trees_[i].name
                   << "' references bad option " << o;
                return os.str();
            }
        }
    }
    for (size_t i = 0; i < trees_.size(); ++i) {
        if (trees_[i].or_trees.empty()) {
            os << "AND/OR-tree '" << trees_[i].name << "' has no subtrees";
            return os.str();
        }
        for (OrTreeId ot : trees_[i].or_trees) {
            if (ot >= or_trees_.size()) {
                os << "AND/OR-tree '" << trees_[i].name
                   << "' references bad OR-tree " << ot;
                return os.str();
            }
        }
    }
    for (const auto &oc : op_classes_) {
        if (oc.tree == kInvalidId || oc.tree >= trees_.size()) {
            os << "operation '" << oc.name << "' references bad tree";
            return os.str();
        }
        if (oc.cascade_tree != kInvalidId &&
            oc.cascade_tree >= trees_.size()) {
            os << "operation '" << oc.name
               << "' references bad cascade tree";
            return os.str();
        }
        if (oc.latency < 0) {
            os << "operation '" << oc.name << "' has negative latency";
            return os.str();
        }
    }
    return "";
}

size_t
Mdes::removeDeadEntities()
{
    // Mark phase: walk op classes -> trees -> OR-trees -> options.
    std::vector<bool> tree_live(trees_.size(), false);
    std::vector<bool> or_live(or_trees_.size(), false);
    std::vector<bool> opt_live(options_.size(), false);
    for (const auto &oc : op_classes_) {
        if (oc.tree != kInvalidId)
            tree_live[oc.tree] = true;
        if (oc.cascade_tree != kInvalidId)
            tree_live[oc.cascade_tree] = true;
    }
    for (size_t t = 0; t < trees_.size(); ++t) {
        if (!tree_live[t])
            continue;
        for (OrTreeId ot : trees_[t].or_trees)
            or_live[ot] = true;
    }
    for (size_t ot = 0; ot < or_trees_.size(); ++ot) {
        if (!or_live[ot])
            continue;
        for (OptionId o : or_trees_[ot].options)
            opt_live[o] = true;
    }

    // Sweep phase: compact each pool, building id remaps.
    auto compact = [](auto &pool, const std::vector<bool> &live,
                      std::vector<uint32_t> &remap) {
        remap.assign(pool.size(), kInvalidId);
        size_t out = 0;
        for (size_t i = 0; i < pool.size(); ++i) {
            if (!live[i])
                continue;
            remap[i] = uint32_t(out);
            if (out != i)
                pool[out] = std::move(pool[i]);
            ++out;
        }
        size_t removed = pool.size() - out;
        pool.resize(out);
        return removed;
    };

    std::vector<uint32_t> opt_remap, or_remap, tree_remap;
    size_t removed = 0;
    removed += compact(options_, opt_live, opt_remap);
    removed += compact(or_trees_, or_live, or_remap);
    removed += compact(trees_, tree_live, tree_remap);

    for (auto &ot : or_trees_) {
        for (auto &o : ot.options)
            o = opt_remap[o];
    }
    for (auto &t : trees_) {
        for (auto &ot : t.or_trees)
            ot = or_remap[ot];
    }
    for (auto &oc : op_classes_) {
        if (oc.tree != kInvalidId)
            oc.tree = tree_remap[oc.tree];
        if (oc.cascade_tree != kInvalidId)
            oc.cascade_tree = tree_remap[oc.cascade_tree];
    }
    return removed;
}

} // namespace mdes
