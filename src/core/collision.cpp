#include "core/collision.h"

#include <algorithm>

namespace mdes {

std::set<int32_t>
forbiddenLatencies(const Mdes &m, OptionId a, OptionId b)
{
    std::set<int32_t> forbidden;
    for (const auto &ua : m.option(a).usages) {
        for (const auto &ub : m.option(b).usages) {
            if (ua.resource == ub.resource && ua.time >= ub.time)
                forbidden.insert(ua.time - ub.time);
        }
    }
    return forbidden;
}

BitVector
collisionVector(const Mdes &m, OptionId a, OptionId b, int max_latency)
{
    BitVector cv(size_t(max_latency) + 1);
    for (int32_t t : forbiddenLatencies(m, a, b)) {
        if (t <= max_latency)
            cv.set(size_t(t));
    }
    return cv;
}

int32_t
maxUsageSpan(const Mdes &m)
{
    int32_t span = 0;
    for (const auto &opt : m.options()) {
        if (opt.usages.empty())
            continue;
        int32_t lo = opt.usages[0].time, hi = opt.usages[0].time;
        for (const auto &u : opt.usages) {
            lo = std::min(lo, u.time);
            hi = std::max(hi, u.time);
        }
        span = std::max(span, hi - lo);
    }
    return span;
}

} // namespace mdes
