#include <algorithm>

#include "core/transforms.h"

/**
 * @file
 * Redundant reservation-table option removal (Section 5).
 *
 * An option can be removed from an OR-tree if its resource usages are
 * identical to, or a superset of, the usages of a higher-priority option:
 * whenever the lower-priority option would be available, the
 * higher-priority one is too and is selected first. Such options appear
 * when preprocessor-style enumeration overlaps, or as descriptions evolve
 * (the paper's PA7100 MDES inherited a duplicated memory-operation option
 * from an earlier HP PA description).
 */

namespace mdes {

size_t
removeRedundantOptions(Mdes &m)
{
    size_t removed = 0;
    for (OrTreeId t = 0; t < m.orTrees().size(); ++t) {
        auto &options = m.orTree(t).options;
        std::vector<OptionId> kept;
        kept.reserve(options.size());
        for (OptionId candidate : options) {
            bool redundant = false;
            for (OptionId higher : kept) {
                if (m.option(candidate).covers(m.option(higher))) {
                    redundant = true;
                    break;
                }
            }
            if (redundant)
                ++removed;
            else
                kept.push_back(candidate);
        }
        options = std::move(kept);
    }
    if (removed > 0)
        m.removeDeadEntities();
    return removed;
}

} // namespace mdes
