#include <algorithm>
#include <limits>
#include <numeric>

#include "core/transforms.h"

/**
 * @file
 * AND/OR-tree optimizations for early resource-conflict detection
 * (Section 8): OR-subtree sorting and common-usage hoisting.
 */

namespace mdes {

size_t
sortOrSubtrees(Mdes &m)
{
    auto shares = m.orTreeShareCounts();
    size_t changed = 0;

    for (TreeId t = 0; t < m.trees().size(); ++t) {
        auto &subtrees = m.tree(t).or_trees;
        if (subtrees.size() < 2)
            continue;

        struct Key
        {
            int32_t earliest;
            size_t num_options;
            uint32_t shares;
            size_t original;
            OrTreeId id;
        };
        std::vector<Key> keys;
        keys.reserve(subtrees.size());
        for (size_t i = 0; i < subtrees.size(); ++i) {
            OrTreeId ot = subtrees[i];
            keys.push_back({m.earliestTimeOr(ot),
                            m.orTree(ot).options.size(), shares[ot], i,
                            ot});
        }
        // Heuristic sort criteria from Section 8, most significant first:
        // earliest usage time (most conflicts occur at time zero after the
        // usage-time transformation), fewest options, most shared (a proxy
        // for heavily used resources), original order.
        std::stable_sort(keys.begin(), keys.end(),
                         [](const Key &a, const Key &b) {
                             if (a.earliest != b.earliest)
                                 return a.earliest < b.earliest;
                             if (a.num_options != b.num_options)
                                 return a.num_options < b.num_options;
                             if (a.shares != b.shares)
                                 return a.shares > b.shares;
                             return a.original < b.original;
                         });
        bool moved = false;
        for (size_t i = 0; i < keys.size(); ++i) {
            if (keys[i].original != i)
                moved = true;
            subtrees[i] = keys[i].id;
        }
        if (moved)
            ++changed;
    }
    return changed;
}

namespace {

constexpr size_t kNoPos = std::numeric_limits<size_t>::max();

/** Usages present (exact time and resource) in every option of @p s. */
std::vector<ResourceUsage>
commonUsages(const Mdes &m, OrTreeId s)
{
    std::vector<ResourceUsage> common;
    const auto &options = m.orTree(s).options;
    for (const auto &u : m.option(options[0]).usages) {
        bool in_all = true;
        for (size_t i = 1; i < options.size() && in_all; ++i) {
            const auto &us = m.option(options[i]).usages;
            in_all = std::find(us.begin(), us.end(), u) != us.end();
        }
        if (in_all)
            common.push_back(u);
    }
    return common;
}

/** Number of usages in @p o at time @p time. */
size_t
usagesAtTime(const Mdes &m, OptionId o, int32_t time)
{
    size_t n = 0;
    for (const auto &u : m.option(o).usages) {
        if (u.time == time)
            ++n;
    }
    return n;
}

} // namespace

size_t
hoistCommonUsages(Mdes &m)
{
    size_t hoisted = 0;

    for (TreeId t = 0; t < m.trees().size(); ++t) {
        for (size_t p = 0; p < m.tree(t).or_trees.size(); ++p) {
            OrTreeId s = m.tree(t).or_trees[p];
            if (m.orTree(s).options.size() < 2)
                continue;
            auto common = commonUsages(m, s);
            if (common.empty())
                continue;

            // Whether subtree position p already points at a private
            // clone this pass owns (entities may be shared with other
            // AND/OR-trees, so we clone before the first mutation and let
            // a following CSE pass re-merge anything that stayed equal).
            bool owned = false;

            for (const auto &u : common) {
                // Never create an empty option.
                bool would_empty = false;
                for (OptionId o : m.orTree(m.tree(t).or_trees[p]).options)
                    would_empty |= m.option(o).usages.size() == 1;
                if (would_empty)
                    continue;

                // Heuristic 1: an existing one-option subtree with a
                // usage at the same time. With bit-vector packing the
                // moved usage merges into that subtree's existing check.
                size_t target_pos = kNoPos;
                for (size_t q = 0; q < m.tree(t).or_trees.size(); ++q) {
                    if (q == p)
                        continue;
                    OrTreeId qt = m.tree(t).or_trees[q];
                    if (m.orTree(qt).options.size() != 1)
                        continue;
                    OptionId qo = m.orTree(qt).options[0];
                    bool same_time = std::any_of(
                        m.option(qo).usages.begin(),
                        m.option(qo).usages.end(),
                        [&](const ResourceUsage &v) {
                            return v.time == u.time;
                        });
                    if (same_time) {
                        target_pos = q;
                        break;
                    }
                }

                // Heuristic 2: the common usage is the only usage at its
                // time in every option, so each option loses one check in
                // exchange for the single added check.
                if (target_pos == kNoPos) {
                    bool only_at_time = true;
                    for (OptionId o :
                         m.orTree(m.tree(t).or_trees[p]).options) {
                        only_at_time &= usagesAtTime(m, o, u.time) == 1;
                    }
                    if (!only_at_time)
                        continue;
                }

                // Clone the subtree (and its options) before mutating.
                if (!owned) {
                    OrTree clone = m.orTree(m.tree(t).or_trees[p]);
                    for (auto &o : clone.options) {
                        Option opt_clone = m.option(o);
                        o = m.addOption(std::move(opt_clone));
                    }
                    clone.name += ".hoisted";
                    OrTreeId clone_id = m.addOrTree(std::move(clone));
                    m.tree(t).or_trees[p] = clone_id;
                    owned = true;
                }

                // Remove the common usage from every (owned) option.
                for (OptionId o :
                     m.orTree(m.tree(t).or_trees[p]).options) {
                    auto &us = m.option(o).usages;
                    us.erase(std::find(us.begin(), us.end(), u));
                }

                if (target_pos != kNoPos) {
                    // Clone the target one-option subtree and append the
                    // usage to its option.
                    OrTree clone = m.orTree(m.tree(t).or_trees[target_pos]);
                    Option opt_clone = m.option(clone.options[0]);
                    opt_clone.usages.push_back(u);
                    clone.options[0] = m.addOption(std::move(opt_clone));
                    OrTreeId clone_id = m.addOrTree(std::move(clone));
                    m.tree(t).or_trees[target_pos] = clone_id;
                } else {
                    // New one-option subtree, placed first so the common
                    // conflict is detected before any option fan-out.
                    Option lone;
                    lone.usages = {u};
                    OptionId lone_id = m.addOption(std::move(lone));
                    OrTree fresh;
                    fresh.name =
                        m.orTree(m.tree(t).or_trees[p]).name + ".common";
                    fresh.options = {lone_id};
                    OrTreeId fresh_id = m.addOrTree(std::move(fresh));
                    auto &subtrees = m.tree(t).or_trees;
                    subtrees.insert(subtrees.begin(), fresh_id);
                    ++p;
                }
                ++hoisted;
            }
        }
    }
    return hoisted;
}

} // namespace mdes
