#ifndef MDES_CORE_TRANSFORMS_H
#define MDES_CORE_TRANSFORMS_H

/**
 * @file
 * The MDES transformation suite.
 *
 * These are the paper's bridge between the easy-to-maintain high-level
 * description and the efficient low-level representation:
 *
 *  - Section 5: common-subexpression elimination + copy propagation +
 *    dead-code removal adapted to the MDES domain, plus the MDES-specific
 *    redundant-option removal (an option identical to, or a superset of,
 *    a higher-priority option can never be selected).
 *  - Section 7: per-resource usage-time shifting (concentrate usages at
 *    time zero) and usage-check sorting (check time zero first), justified
 *    by collision-vector theory (see core/collision.h).
 *  - Section 8: OR-subtree sorting inside AND/OR-trees and common-usage
 *    hoisting, both aimed at detecting resource conflicts earlier.
 *
 * Every transformation preserves scheduling semantics exactly: the same
 * scheduler input produces the identical schedule before and after (the
 * paper's Section 4 invariant, enforced by the property tests).
 */

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/mdes.h"

namespace mdes {

/** Which way the list scheduler walks cycles; selects shift constants and
 * usage-check sort order (Section 7). */
enum class SchedDirection { Forward, Backward };

/** Effect counters returned by eliminateRedundantInfo(). */
struct CseStats
{
    size_t merged_options = 0;
    size_t merged_or_trees = 0;
    size_t merged_trees = 0;
    size_t removed_dead = 0;
};

/**
 * MDES-domain CSE + copy propagation + dead-code removal: structurally
 * identical options (same usage list, same order), OR-trees (same option
 * list), and AND/OR-trees (same subtree list) are merged so every
 * reference points at one copy, then unreferenced entities are removed.
 * Idempotent.
 */
CseStats eliminateRedundantInfo(Mdes &m);

/**
 * Remove every reservation-table option whose usages are identical to or
 * a superset of a higher-priority option in the same OR-tree: the
 * higher-priority option is always selected when such an option would be
 * available. Catches duplicated options left behind as descriptions
 * evolve (the paper's PA7100 memory-operation case, Table 8).
 * @return number of options removed from OR-trees.
 */
size_t removeRedundantOptions(Mdes &m);

/**
 * Subtract a per-resource constant from all usage times so usages
 * concentrate in as few time slots as possible: for a forward scheduler
 * each resource's earliest usage time becomes zero; for a backward
 * scheduler its latest becomes zero. Collision vectors - hence schedules
 * - are unchanged.
 * @return the constant subtracted for each resource instance.
 */
std::vector<int32_t> shiftUsageTimes(Mdes &m,
                                     SchedDirection direction =
                                         SchedDirection::Forward);

/**
 * Reorder each option's usage checks so the conflict-prone time-zero
 * usages are probed first (ascending time for a forward scheduler,
 * descending for backward; ties by resource id). Run after
 * shiftUsageTimes().
 */
void sortUsageChecks(Mdes &m,
                     SchedDirection direction = SchedDirection::Forward);

/**
 * Sort the OR subtrees of every AND/OR-tree so the subtree most likely to
 * reveal a resource conflict is checked first. Heuristic keys, in order
 * (Section 8): earliest usage time in the subtree; fewest options; shared
 * by the most AND/OR-trees; original position.
 * @return number of AND/OR-trees whose subtree order changed.
 */
size_t sortOrSubtrees(Mdes &m);

/**
 * Hoist resource usages common to all options of an OR subtree into a
 * one-option OR-tree of the same AND/OR-tree, so a conflict on the common
 * resource is detected once instead of per option. Application heuristics
 * (Section 8): (1) hoist into an existing one-option subtree that already
 * has a usage at the same time (free under bit-vector packing); else
 * (2) hoist into a new one-option subtree when the common usage is the
 * only usage at its time in every option. Entities shared with other
 * trees are cloned before modification (run eliminateRedundantInfo()
 * afterwards to re-merge).
 * @return number of usages hoisted.
 */
size_t hoistCommonUsages(Mdes &m);

/** Which transformations to run, in the paper's order. */
struct PipelineConfig
{
    bool cse = false;
    bool redundant_options = false;
    /** Related-work baseline (off in all()): Eichenberger/Davidson-style
     * per-option usage minimization (see core/minimize.h). */
    bool minimize = false;
    bool time_shift = false;
    bool sort_usages = false;
    bool hoist = false;
    bool sort_or_trees = false;
    SchedDirection direction = SchedDirection::Forward;

    /** All transformations on (the paper's fully optimized setting). */
    static PipelineConfig all();

    /** No transformations (the paper's "original" setting). */
    static PipelineConfig none() { return {}; }
};

/** Counters aggregated over one pipeline run. */
struct PipelineStats
{
    CseStats cse;
    size_t redundant_options_removed = 0;
    size_t trees_reordered = 0;
    size_t usages_hoisted = 0;
    /** Resource instances the time-shift pass actually moved (nonzero
     * shift constants returned by shiftUsageTimes()). */
    size_t resources_shifted = 0;
};

/**
 * Run the selected transformations on @p m in the canonical order.
 *
 * @p cancel, when provided, is polled between passes; if it returns true
 * the pipeline throws CancelledError so a caller whose deadline expired
 * releases its worker without finishing the compile. Faultsim's
 * compile/pass-throw site is probed at the same checkpoints.
 */
PipelineStats runPipeline(Mdes &m, const PipelineConfig &config,
                          const std::function<bool()> &cancel = {});

} // namespace mdes

#endif // MDES_CORE_TRANSFORMS_H
