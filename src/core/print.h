#ifndef MDES_CORE_PRINT_H
#define MDES_CORE_PRINT_H

/**
 * @file
 * Human-readable rendering of reservation tables and trees.
 *
 * Reproduces the visual form of the paper's Figures 1, 3, 5, and 6:
 * reservation-table grids (cycle rows x resource columns, 'X' marks) and
 * tree structure dumps.
 */

#include <string>
#include <vector>

#include "core/mdes.h"

namespace mdes {

/**
 * Render one reservation-table option as a grid. Columns are limited to
 * @p columns (resource instances) when non-empty; otherwise to the
 * resources the option uses.
 */
std::string printOption(const Mdes &m, OptionId option,
                        const std::vector<ResourceId> &columns = {});

/**
 * Render an OR-tree as its prioritized list of option grids
 * (Figure 1 / Figure 3a style). All options share one column set so the
 * grids line up.
 */
std::string printOrTree(const Mdes &m, OrTreeId tree);

/**
 * Render an AND/OR-tree: each OR subtree in AND order with its options
 * (Figure 3b style).
 */
std::string printTree(const Mdes &m, TreeId tree);

/** Collect the distinct resource instances used anywhere in an OR-tree,
 * in ResourceId order. */
std::vector<ResourceId> orTreeColumns(const Mdes &m, OrTreeId tree);

} // namespace mdes

#endif // MDES_CORE_PRINT_H
