#include <map>

#include "core/transforms.h"

/**
 * @file
 * MDES-domain CSE, copy propagation, and dead-code removal (Section 5).
 *
 * The classical optimizations map onto the MDES like this: CSE and copy
 * propagation combine into "find redundant MDES information and point all
 * references to one particular copy"; dead-code removal eliminates
 * whatever is no longer referenced afterwards.
 *
 * Options are merged only when their usage lists match *including order*:
 * usage order determines check order in the low-level representation, so
 * merging differently-ordered but set-equal options would silently apply
 * the Section 7 sorting transformation. Copy-pasted duplicates - the case
 * the paper targets - match exactly.
 */

namespace mdes {

CseStats
eliminateRedundantInfo(Mdes &m)
{
    CseStats stats;

    // --- Merge structurally identical options. -----------------------
    std::map<std::vector<ResourceUsage>, OptionId> option_canon;
    std::vector<OptionId> opt_remap(m.options().size());
    for (OptionId i = 0; i < m.options().size(); ++i) {
        auto [it, inserted] =
            option_canon.emplace(m.option(i).usages, i);
        opt_remap[i] = it->second;
        if (!inserted)
            ++stats.merged_options;
    }
    for (OrTreeId t = 0; t < m.orTrees().size(); ++t) {
        for (auto &o : m.orTree(t).options)
            o = opt_remap[o];
    }

    // --- Merge OR-trees with identical (remapped) option lists. ------
    std::map<std::vector<OptionId>, OrTreeId> or_canon;
    std::vector<OrTreeId> or_remap(m.orTrees().size());
    for (OrTreeId i = 0; i < m.orTrees().size(); ++i) {
        auto [it, inserted] = or_canon.emplace(m.orTree(i).options, i);
        or_remap[i] = it->second;
        if (!inserted)
            ++stats.merged_or_trees;
    }
    for (TreeId t = 0; t < m.trees().size(); ++t) {
        for (auto &ot : m.tree(t).or_trees)
            ot = or_remap[ot];
    }

    // --- Merge AND/OR-trees with identical subtree lists. ------------
    std::map<std::vector<OrTreeId>, TreeId> tree_canon;
    std::vector<TreeId> tree_remap(m.trees().size());
    for (TreeId i = 0; i < m.trees().size(); ++i) {
        auto [it, inserted] = tree_canon.emplace(m.tree(i).or_trees, i);
        tree_remap[i] = it->second;
        if (!inserted)
            ++stats.merged_trees;
    }
    for (OpClassId c = 0; c < m.opClasses().size(); ++c) {
        auto &oc = m.opClass(c);
        if (oc.tree != kInvalidId)
            oc.tree = tree_remap[oc.tree];
        if (oc.cascade_tree != kInvalidId)
            oc.cascade_tree = tree_remap[oc.cascade_tree];
    }

    // --- Dead-code removal. ------------------------------------------
    stats.removed_dead = m.removeDeadEntities();
    return stats;
}

} // namespace mdes
