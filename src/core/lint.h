#ifndef MDES_CORE_LINT_H
#define MDES_CORE_LINT_H

/**
 * @file
 * Machine-description linting.
 *
 * Section 5 of the paper documents how descriptions decay: writers copy
 * rather than refactor, retargeting leaves duplicated options behind
 * ("the MDES author never realized this since correct output was still
 * generated"), and unused information accumulates. The transformations
 * silently *fix* these at translation time; this module instead
 * *reports* them to the description writer, so the source text itself
 * can be cleaned - the tool that would have caught the paper's PA7100
 * accident when it happened.
 *
 * Findings mirror the transformation suite:
 *  - RedundantOption: an option identical to or a superset of a
 *    higher-priority option in the same OR-tree (Table 8's case);
 *  - DuplicateOption / DuplicateOrTree / DuplicateTable: structurally
 *    identical entities with distinct identities (CSE fodder);
 *  - UnusedEntity: options/OR-trees/tables no operation can reach;
 *  - OverlappingSubtrees: AND subtrees able to claim the same resource
 *    instance at the same time (greedy-vs-cross-product divergence);
 *  - UselessBypass: a forwarding path no faster than the producer's
 *    nominal latency;
 *  - RemovableUsage: a usage whose removal provably preserves every
 *    collision vector (Eichenberger/Davidson-redundant modeling).
 */

#include <string>
#include <vector>

#include "core/mdes.h"

namespace mdes {

/** Categories of lint findings. */
enum class LintKind {
    RedundantOption,
    DuplicateOption,
    DuplicateOrTree,
    DuplicateTable,
    UnusedEntity,
    OverlappingSubtrees,
    UselessBypass,
    RemovableUsage,
};

/** Printable name of a finding category. */
const char *lintKindName(LintKind kind);

/** One finding, anchored to named entities where possible. */
struct LintFinding
{
    LintKind kind;
    std::string message;
};

/** Which (potentially expensive) checks to run. */
struct LintOptions
{
    bool redundant_options = true;
    bool duplicates = true;
    bool unused = true;
    bool overlapping_subtrees = true;
    bool useless_bypasses = true;
    /** Collision-vector analysis is O(options^2 * usages^2); off for
     * huge expanded OR forms unless requested. */
    bool removable_usages = false;
};

/** Analyze @p m without modifying it. */
std::vector<LintFinding> lint(const Mdes &m,
                              const LintOptions &options = {});

} // namespace mdes

#endif // MDES_CORE_LINT_H
