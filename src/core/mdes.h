#ifndef MDES_CORE_MDES_H
#define MDES_CORE_MDES_H

/**
 * @file
 * The structured (mid-level) machine-description model.
 *
 * This is the representation the high-level MDES language is translated
 * into and that all transformations operate on. Resource constraints are
 * modeled exactly as in Gyllenhaal/Hwu/Rau (MICRO-29, 1996):
 *
 *  - A *reservation table option* is a set of resource usages, each a
 *    (time, resource-instance) pair relative to time zero = the first
 *    stage of the execution pipeline (decode stages have negative times).
 *  - An *OR-tree* is a prioritized list of options; an operation may be
 *    scheduled if any option's resources are available.
 *  - An *AND/OR-tree* is an AND of OR-trees: one option from every OR
 *    subtree must be satisfiable simultaneously. The traditional OR-tree
 *    representation is the degenerate AND/OR-tree with one OR subtree.
 *
 * Sharing is expressed at the id level: two AND/OR-trees that reference
 * the same OrTreeId share that subtree (what the description writer
 * specified as shared); structurally identical but distinct-id entities
 * are duplicates until the CSE transformation merges them.
 */

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mdes {

/** Index of a resource *instance* (a single decoder, port, unit...). */
using ResourceId = uint32_t;
/** Index of a reservation-table option in the Mdes option pool. */
using OptionId = uint32_t;
/** Index of an OR-tree in the Mdes OR-tree pool. */
using OrTreeId = uint32_t;
/** Index of an AND/OR-tree in the Mdes tree pool. */
using TreeId = uint32_t;
/** Index of an operation class. */
using OpClassId = uint32_t;

/** Sentinel for "no entity". */
constexpr uint32_t kInvalidId = std::numeric_limits<uint32_t>::max();

/**
 * A named group of identical resource instances, e.g. "Decoder" x3.
 * Instances receive dense ResourceIds in declaration order.
 */
struct ResourceClass
{
    std::string name;
    uint32_t count = 1;
    ResourceId first_instance = 0;
};

/** One resource usage: resource instance @c resource busy at @c time. */
struct ResourceUsage
{
    int32_t time = 0;
    ResourceId resource = 0;

    auto operator<=>(const ResourceUsage &) const = default;
};

/**
 * A reservation table option: one particular way an operation may use the
 * processor's resources as it executes. Usage order is significant for
 * the constraint checker (checks short-circuit on the first busy usage);
 * the usage-sorting transformation reorders it.
 */
struct Option
{
    std::vector<ResourceUsage> usages;

    bool operator==(const Option &) const = default;

    /** True if every usage of @p other also appears in this option. */
    bool covers(const Option &other) const;
};

/** A prioritized list of reservation table options (highest first). */
struct OrTree
{
    std::string name;
    std::vector<OptionId> options;
};

/**
 * An AND of OR-trees. All subtrees must simultaneously find an available
 * option for the operation to be schedulable.
 */
struct AndOrTree
{
    std::string name;
    std::vector<OrTreeId> or_trees;
};

/**
 * An operation class: the scheduling-relevant behavior of a group of
 * opcodes (reservation alternatives + latency). The optional cascade
 * tree models features like the SuperSPARC's cascaded IALU: the
 * scheduler selects it, based on incoming dependence distances, when the
 * operation executes in the same cycle as its flow-dependent producer.
 */
struct OperationClass
{
    std::string name;
    TreeId tree = kInvalidId;
    int latency = 1;
    TreeId cascade_tree = kInvalidId;
    /** Human description, used by the option-breakdown benches. */
    std::string comment;
};

/**
 * A forwarding path: when operation class @c to directly consumes the
 * result of class @c from, the effective flow latency is @c latency
 * instead of @c from's nominal latency.
 */
struct Bypass
{
    OpClassId from = kInvalidId;
    OpClassId to = kInvalidId;
    int latency = 0;

    bool operator==(const Bypass &) const = default;
};

/**
 * A complete machine description: resource declarations plus the pools of
 * options, OR-trees, AND/OR-trees, and operation classes.
 *
 * Value semantics: copying an Mdes snapshots it, which the experiment
 * harness uses to compare transformation stages.
 */
class Mdes
{
  public:
    /** Create an empty description for machine @p name. */
    explicit Mdes(std::string name = "unnamed") : name_(std::move(name)) {}

    /** Machine name, e.g. "SuperSPARC". */
    const std::string &name() const { return name_; }

    // --- Construction -----------------------------------------------

    /** Declare @p count instances of resource class @p name. */
    ResourceId addResourceClass(const std::string &name, uint32_t count);

    /** Add an option to the pool (no structural dedup; see CSE pass). */
    OptionId addOption(Option option);

    /** Add an OR-tree referencing existing options. */
    OrTreeId addOrTree(OrTree tree);

    /** Add an AND/OR-tree referencing existing OR-trees. */
    TreeId addTree(AndOrTree tree);

    /** Add an operation class referencing an existing tree. */
    OpClassId addOpClass(OperationClass op);

    /** Declare a forwarding path between two operation classes. */
    void addBypass(Bypass bypass) { bypasses_.push_back(bypass); }

    // --- Access ------------------------------------------------------

    uint32_t numResources() const { return num_resources_; }
    const std::vector<ResourceClass> &resourceClasses() const
    {
        return resource_classes_;
    }

    /** Render a resource instance as "Name" or "Name[i]". */
    std::string resourceName(ResourceId id) const;

    /** Find a resource instance by class name and index; kInvalidId if
     * absent. */
    ResourceId findResource(const std::string &cls, uint32_t index) const;

    const std::vector<Option> &options() const { return options_; }
    const std::vector<OrTree> &orTrees() const { return or_trees_; }
    const std::vector<AndOrTree> &trees() const { return trees_; }
    const std::vector<OperationClass> &opClasses() const
    {
        return op_classes_;
    }
    const std::vector<Bypass> &bypasses() const { return bypasses_; }

    Option &option(OptionId id) { return options_[id]; }
    const Option &option(OptionId id) const { return options_[id]; }
    OrTree &orTree(OrTreeId id) { return or_trees_[id]; }
    const OrTree &orTree(OrTreeId id) const { return or_trees_[id]; }
    AndOrTree &tree(TreeId id) { return trees_[id]; }
    const AndOrTree &tree(TreeId id) const { return trees_[id]; }
    OperationClass &opClass(OpClassId id) { return op_classes_[id]; }
    const OperationClass &opClass(OpClassId id) const
    {
        return op_classes_[id];
    }

    /** Find an operation class by name; kInvalidId if absent. */
    OpClassId findOpClass(const std::string &name) const;

    /** Find an AND/OR-tree by name; kInvalidId if absent. */
    TreeId findTree(const std::string &name) const;

    /** Find an OR-tree by name; kInvalidId if absent. */
    OrTreeId findOrTree(const std::string &name) const;

    // --- Structural queries -----------------------------------------

    /**
     * Number of reservation-table options the traditional (flat OR-tree)
     * representation needs for @p tree: the product of the subtree option
     * counts (minus internally conflicting combinations, which the four
     * shipped machines do not have).
     */
    uint64_t expandedOptionCount(TreeId tree) const;

    /** Sum of option counts across @p tree's OR subtrees. */
    uint64_t leafOptionCount(TreeId tree) const;

    /** Earliest usage time in an option / OR-tree / AND-OR tree. */
    int32_t earliestTime(OptionId id) const;
    int32_t earliestTimeOr(OrTreeId id) const;
    int32_t earliestTimeTree(TreeId id) const;

    /**
     * Number of AND/OR-trees (reachable from operation classes) that
     * reference each OR-tree; used by the OR-tree sorting heuristic.
     */
    std::vector<uint32_t> orTreeShareCounts() const;

    // --- Maintenance -------------------------------------------------

    /**
     * Validate internal consistency (all references in range, no empty
     * trees, no duplicate usage in an option). @return a description of
     * the first problem or an empty string when valid.
     */
    std::string validate() const;

    /**
     * Drop options/OR-trees/trees not reachable from any operation class
     * and compact the pools (dead-code removal; also run as part of the
     * redundancy-elimination transformation).
     * @return number of entities removed.
     */
    size_t removeDeadEntities();

  private:
    std::string name_;
    std::vector<ResourceClass> resource_classes_;
    uint32_t num_resources_ = 0;
    std::vector<Option> options_;
    std::vector<OrTree> or_trees_;
    std::vector<AndOrTree> trees_;
    std::vector<OperationClass> op_classes_;
    std::vector<Bypass> bypasses_;
};

} // namespace mdes

#endif // MDES_CORE_MDES_H
