#include "core/expand.h"

#include <algorithm>
#include <map>

namespace mdes {

namespace {

/**
 * Merge the usage lists of one option per OR subtree into a single flat
 * option. @return false if the combination conflicts internally (same
 * resource instance used twice at the same time).
 */
bool
mergeUsages(const Mdes &m, const std::vector<OptionId> &choice,
            Option &out)
{
    out.usages.clear();
    for (OptionId o : choice) {
        for (const auto &u : m.option(o).usages)
            out.usages.push_back(u);
    }
    auto sorted = out.usages;
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i + 1 < sorted.size(); ++i) {
        if (sorted[i] == sorted[i + 1])
            return false;
    }
    return true;
}

} // namespace

Mdes
expandToOrForm(const Mdes &input)
{
    Mdes out(input.name());
    for (const auto &rc : input.resourceClasses())
        out.addResourceClass(rc.name, rc.count);

    // Expand each AND/OR-tree once; operation classes referencing the same
    // tree share the expansion (writer-specified sharing).
    std::map<TreeId, TreeId> expanded;
    auto expandTree = [&](TreeId tid) -> TreeId {
        auto it = expanded.find(tid);
        if (it != expanded.end())
            return it->second;

        const AndOrTree &tree = input.tree(tid);
        std::vector<OptionId> flat_options;
        // Odometer enumeration; the last OR subtree varies fastest so that
        // priority order matches the original description's intent.
        std::vector<size_t> idx(tree.or_trees.size(), 0);
        bool done = tree.or_trees.empty();
        while (!done) {
            std::vector<OptionId> choice;
            choice.reserve(tree.or_trees.size());
            for (size_t s = 0; s < tree.or_trees.size(); ++s)
                choice.push_back(
                    input.orTree(tree.or_trees[s]).options[idx[s]]);
            Option merged;
            if (mergeUsages(input, choice, merged))
                flat_options.push_back(out.addOption(std::move(merged)));
            // Advance the odometer (last digit fastest).
            size_t d = tree.or_trees.size();
            for (;;) {
                if (d == 0) {
                    done = true;
                    break;
                }
                --d;
                if (++idx[d] <
                    input.orTree(tree.or_trees[d]).options.size())
                    break;
                idx[d] = 0;
            }
        }

        OrTree flat;
        flat.name = tree.name + ".expanded";
        flat.options = std::move(flat_options);
        OrTreeId or_id = out.addOrTree(std::move(flat));

        AndOrTree wrapper;
        wrapper.name = tree.name;
        wrapper.or_trees = {or_id};
        TreeId new_id = out.addTree(std::move(wrapper));
        expanded.emplace(tid, new_id);
        return new_id;
    };

    // Expand every tree in the pool - including tables no operation
    // references - so unused information survives into the OR-tree form
    // exactly as it does in the AND/OR form (Section 5's dead-code
    // removal must have the same work to do in both representations).
    for (TreeId t = 0; t < input.trees().size(); ++t)
        expandTree(t);

    for (const auto &oc : input.opClasses()) {
        OperationClass copy = oc;
        copy.tree = expandTree(oc.tree);
        if (oc.cascade_tree != kInvalidId)
            copy.cascade_tree = expandTree(oc.cascade_tree);
        out.addOpClass(std::move(copy));
    }
    // Operation-class ids are preserved 1:1, so forwarding paths carry
    // over verbatim.
    for (const auto &bypass : input.bypasses())
        out.addBypass(bypass);
    return out;
}

} // namespace mdes
