#ifndef MDES_CORE_EXPAND_H
#define MDES_CORE_EXPAND_H

/**
 * @file
 * The MDES preprocessor: AND/OR-tree to flat OR-tree expansion.
 *
 * The paper's experiments generate the traditional OR-tree representation
 * by "running each MDES that uses AND/OR-trees through an MDES
 * preprocessor that expanded out each AND/OR-tree specification into the
 * corresponding OR-tree specification" (Section 4). This module is that
 * preprocessor.
 */

#include "core/mdes.h"

namespace mdes {

/**
 * Produce the flat OR-tree form of @p input: every operation class's
 * AND/OR-tree is replaced by a single-OR-subtree AND/OR-tree whose options
 * enumerate the cross product of the original OR subtrees' options.
 *
 * Priority order is preserved: the last OR subtree varies fastest, so for
 * the SuperSPARC integer load AND(M, WrPt, Decoder) the expansion yields
 * options in exactly the order of the paper's Figure 1 (lowest-numbered
 * decoder first, then lowest-numbered write port).
 *
 * Cross-product combinations whose merged usage lists would use the same
 * resource instance at the same time twice (an internal conflict) are
 * dropped; the four shipped machine descriptions keep AND subtrees
 * resource-disjoint, so nothing is dropped for them.
 *
 * Trees referenced by several operation classes are expanded once and
 * shared, mirroring writer-specified sharing in the original.
 */
Mdes expandToOrForm(const Mdes &input);

} // namespace mdes

#endif // MDES_CORE_EXPAND_H
