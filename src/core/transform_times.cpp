#include <algorithm>
#include <limits>

#include "core/transforms.h"

/**
 * @file
 * Resource-usage-time transformations (Section 7).
 *
 * In computing a forbidden latency only the *difference* between two
 * usage times of the same resource matters, so a common per-resource
 * constant can be added to all of that resource's usage times without
 * altering any collision vector - and therefore without altering any
 * schedule. The paper's heuristic picks, for each resource, the earliest
 * usage time across all reservation-table options (forward scheduling),
 * concentrating usages at time zero where the bit-vector packing is most
 * effective and where a forward scheduler sees most conflicts.
 */

namespace mdes {

std::vector<int32_t>
shiftUsageTimes(Mdes &m, SchedDirection direction)
{
    constexpr int32_t kNoUsage = std::numeric_limits<int32_t>::min();
    std::vector<int32_t> shift(m.numResources(), kNoUsage);

    for (const auto &opt : m.options()) {
        for (const auto &u : opt.usages) {
            if (shift[u.resource] == kNoUsage) {
                shift[u.resource] = u.time;
            } else if (direction == SchedDirection::Forward) {
                shift[u.resource] = std::min(shift[u.resource], u.time);
            } else {
                shift[u.resource] = std::max(shift[u.resource], u.time);
            }
        }
    }
    for (auto &s : shift) {
        if (s == kNoUsage)
            s = 0;
    }

    for (OptionId i = 0; i < m.options().size(); ++i) {
        for (auto &u : m.option(i).usages)
            u.time -= shift[u.resource];
    }
    return shift;
}

void
sortUsageChecks(Mdes &m, SchedDirection direction)
{
    for (OptionId i = 0; i < m.options().size(); ++i) {
        auto &usages = m.option(i).usages;
        std::stable_sort(
            usages.begin(), usages.end(),
            [direction](const ResourceUsage &a, const ResourceUsage &b) {
                if (a.time != b.time) {
                    return direction == SchedDirection::Forward
                               ? a.time < b.time
                               : a.time > b.time;
                }
                return a.resource < b.resource;
            });
    }
}

} // namespace mdes
