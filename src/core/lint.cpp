#include "core/lint.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "core/collision.h"
#include "core/minimize.h"
#include "core/transforms.h"

namespace mdes {

const char *
lintKindName(LintKind kind)
{
    switch (kind) {
      case LintKind::RedundantOption: return "redundant-option";
      case LintKind::DuplicateOption: return "duplicate-option";
      case LintKind::DuplicateOrTree: return "duplicate-ortree";
      case LintKind::DuplicateTable: return "duplicate-table";
      case LintKind::UnusedEntity: return "unused";
      case LintKind::OverlappingSubtrees: return "overlapping-subtrees";
      case LintKind::UselessBypass: return "useless-bypass";
      case LintKind::RemovableUsage: return "removable-usage";
    }
    return "?";
}

namespace {

void
lintRedundantOptions(const Mdes &m, std::vector<LintFinding> &findings)
{
    for (OrTreeId t = 0; t < m.orTrees().size(); ++t) {
        const auto &options = m.orTree(t).options;
        for (size_t j = 1; j < options.size(); ++j) {
            for (size_t i = 0; i < j; ++i) {
                if (!m.option(options[j]).covers(m.option(options[i])))
                    continue;
                std::ostringstream os;
                bool identical =
                    m.option(options[i]) == m.option(options[j]);
                os << "ortree '" << m.orTree(t).name << "': option "
                   << (j + 1) << " is "
                   << (identical ? "identical to"
                                 : "a superset of higher-priority")
                   << " option " << (i + 1)
                   << " and can never be selected";
                findings.push_back(
                    {LintKind::RedundantOption, os.str()});
                break; // one report per option is enough
            }
        }
    }
}

void
lintDuplicates(const Mdes &m, std::vector<LintFinding> &findings)
{
    // Duplicate options (report per OR-tree pair of distinct ids).
    std::map<std::vector<ResourceUsage>, OptionId> canon_opt;
    std::set<OptionId> dup_options;
    for (OptionId o = 0; o < m.options().size(); ++o) {
        auto [it, inserted] = canon_opt.emplace(m.option(o).usages, o);
        if (!inserted)
            dup_options.insert(o);
    }
    if (!dup_options.empty()) {
        std::ostringstream os;
        os << dup_options.size()
           << " option(s) are verbatim copies of earlier options "
              "(copy-paste decay; CSE will merge them)";
        findings.push_back({LintKind::DuplicateOption, os.str()});
    }

    std::map<std::vector<ResourceUsage>, const OrTree *> dummy;
    std::map<std::string, OrTreeId> by_content;
    for (OrTreeId t = 0; t < m.orTrees().size(); ++t) {
        // Content key: the usage lists of the options, in order.
        std::ostringstream key;
        for (OptionId o : m.orTree(t).options) {
            for (const auto &u : m.option(o).usages)
                key << u.time << ":" << u.resource << ",";
            key << "|";
        }
        auto [it, inserted] = by_content.emplace(key.str(), t);
        if (!inserted) {
            std::ostringstream os;
            os << "ortree '" << m.orTree(t).name
               << "' is structurally identical to ortree '"
               << m.orTree(it->second).name << "'";
            findings.push_back({LintKind::DuplicateOrTree, os.str()});
        }
    }

    std::map<std::string, TreeId> tables_by_content;
    for (TreeId t = 0; t < m.trees().size(); ++t) {
        std::ostringstream key;
        for (OrTreeId ot : m.tree(t).or_trees)
            key << ot << ",";
        auto [it, inserted] = tables_by_content.emplace(key.str(), t);
        if (!inserted) {
            std::ostringstream os;
            os << "table '" << m.tree(t).name
               << "' references exactly the same OR-trees as table '"
               << m.tree(it->second).name << "'";
            findings.push_back({LintKind::DuplicateTable, os.str()});
        }
    }
}

void
lintUnused(const Mdes &m, std::vector<LintFinding> &findings)
{
    std::vector<bool> tree_live(m.trees().size(), false);
    std::vector<bool> or_live(m.orTrees().size(), false);
    for (const auto &oc : m.opClasses()) {
        if (oc.tree != kInvalidId)
            tree_live[oc.tree] = true;
        if (oc.cascade_tree != kInvalidId)
            tree_live[oc.cascade_tree] = true;
    }
    for (TreeId t = 0; t < m.trees().size(); ++t) {
        if (!tree_live[t]) {
            findings.push_back(
                {LintKind::UnusedEntity,
                 "table '" + m.tree(t).name +
                     "' is not referenced by any operation"});
            continue;
        }
        for (OrTreeId ot : m.tree(t).or_trees)
            or_live[ot] = true;
    }
    for (OrTreeId t = 0; t < m.orTrees().size(); ++t) {
        if (!or_live[t]) {
            // Only report OR-trees that are not reachable even through
            // unused tables (those are covered by the table finding).
            bool in_any_table = false;
            for (const auto &tree : m.trees()) {
                in_any_table |=
                    std::find(tree.or_trees.begin(),
                              tree.or_trees.end(),
                              t) != tree.or_trees.end();
            }
            if (!in_any_table) {
                findings.push_back(
                    {LintKind::UnusedEntity,
                     "ortree '" + m.orTree(t).name +
                         "' is not referenced by any table"});
            }
        }
    }
}

void
lintOverlaps(const Mdes &m, std::vector<LintFinding> &findings)
{
    std::set<TreeId> live;
    for (const auto &oc : m.opClasses()) {
        if (oc.tree != kInvalidId)
            live.insert(oc.tree);
        if (oc.cascade_tree != kInvalidId)
            live.insert(oc.cascade_tree);
    }
    for (TreeId t : live) {
        const auto &subtrees = m.tree(t).or_trees;
        for (size_t i = 0; i < subtrees.size(); ++i) {
            for (size_t j = i + 1; j < subtrees.size(); ++j) {
                bool overlap = false;
                for (OptionId oi : m.orTree(subtrees[i]).options) {
                    for (OptionId oj : m.orTree(subtrees[j]).options) {
                        for (const auto &ui : m.option(oi).usages) {
                            for (const auto &uj :
                                 m.option(oj).usages) {
                                overlap |= ui == uj;
                            }
                        }
                    }
                }
                if (overlap) {
                    findings.push_back(
                        {LintKind::OverlappingSubtrees,
                         "table '" + m.tree(t).name +
                             "': AND subtrees '" +
                             m.orTree(subtrees[i]).name + "' and '" +
                             m.orTree(subtrees[j]).name +
                             "' can claim the same resource at the "
                             "same time"});
                }
            }
        }
    }
}

void
lintBypasses(const Mdes &m, std::vector<LintFinding> &findings)
{
    for (const auto &bp : m.bypasses()) {
        if (bp.latency >= m.opClass(bp.from).latency) {
            findings.push_back(
                {LintKind::UselessBypass,
                 "bypass " + m.opClass(bp.from).name + " -> " +
                     m.opClass(bp.to).name +
                     " is not faster than the producer's nominal "
                     "latency"});
        }
    }
}

void
lintRemovableUsages(const Mdes &m, std::vector<LintFinding> &findings)
{
    // Run the Eichenberger/Davidson minimization on a copy and report
    // what it would strip.
    Mdes copy = m;
    size_t removable = minimizeUsages(copy);
    if (removable > 0) {
        std::ostringstream os;
        os << removable
           << " resource usage(s) add no scheduling constraint (their "
              "removal preserves every collision vector)";
        findings.push_back({LintKind::RemovableUsage, os.str()});
    }
}

} // namespace

std::vector<LintFinding>
lint(const Mdes &m, const LintOptions &options)
{
    std::vector<LintFinding> findings;
    if (options.redundant_options)
        lintRedundantOptions(m, findings);
    if (options.duplicates)
        lintDuplicates(m, findings);
    if (options.unused)
        lintUnused(m, findings);
    if (options.overlapping_subtrees)
        lintOverlaps(m, findings);
    if (options.useless_bypasses)
        lintBypasses(m, findings);
    if (options.removable_usages)
        lintRemovableUsages(m, findings);
    return findings;
}

} // namespace mdes
