#include "core/minimize.h"

#include <algorithm>
#include <vector>

namespace mdes {

namespace {

/**
 * True if some pair (x in @p first, y in @p second) with a common
 * resource has x.time - y.time == @p latency, i.e. latency is forbidden
 * for initiating `second` that many cycles after `first`.
 */
bool
forbids(const std::vector<ResourceUsage> &first,
        const std::vector<ResourceUsage> &second, int32_t latency)
{
    for (const auto &x : first) {
        for (const auto &y : second) {
            if (x.resource == y.resource && x.time - y.time == latency)
                return true;
        }
    }
    return false;
}

} // namespace

size_t
minimizeUsages(Mdes &m)
{
    size_t removed = 0;

    // Options that use each resource instance - the only options whose
    // collision vectors a removal on that resource can touch.
    std::vector<std::vector<OptionId>> users(m.numResources());
    for (OptionId o = 0; o < m.options().size(); ++o) {
        std::vector<bool> seen(m.numResources(), false);
        for (const auto &u : m.option(o).usages) {
            if (!seen[u.resource]) {
                seen[u.resource] = true;
                users[u.resource].push_back(o);
            }
        }
    }

    for (OptionId a = 0; a < m.options().size(); ++a) {
        auto &usages = m.option(a).usages;
        for (size_t i = 0; i < usages.size() && usages.size() > 1;) {
            const ResourceUsage u = usages[i];

            // Candidate usage list with u removed.
            std::vector<ResourceUsage> without;
            without.reserve(usages.size() - 1);
            for (size_t k = 0; k < usages.size(); ++k) {
                if (k != i)
                    without.push_back(usages[k]);
            }

            bool safe = true;
            for (OptionId b : users[u.resource]) {
                // When checking against itself, the removal applies to
                // both sides of the pair.
                const std::vector<ResourceUsage> &b_usages =
                    b == a ? without : m.option(b).usages;

                // Latencies u contributed to CV(a, b): u as the earlier
                // operation's usage, b's usages of the same resource at
                // or before u.time.
                for (const auto &bu : b_usages) {
                    if (bu.resource != u.resource)
                        continue;
                    if (u.time >= bu.time &&
                        !forbids(without, b_usages, u.time - bu.time)) {
                        safe = false;
                        break;
                    }
                    // Latencies u contributed to CV(b, a): u as the
                    // later operation's usage.
                    if (bu.time >= u.time &&
                        !forbids(b_usages, without, bu.time - u.time)) {
                        safe = false;
                        break;
                    }
                }
                if (!safe)
                    break;
            }

            if (safe) {
                usages.erase(usages.begin() + std::ptrdiff_t(i));
                ++removed;
            } else {
                ++i;
            }
        }
    }
    return removed;
}

} // namespace mdes
