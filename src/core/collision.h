#ifndef MDES_CORE_COLLISION_H
#define MDES_CORE_COLLISION_H

/**
 * @file
 * Forbidden latencies and collision vectors.
 *
 * Section 7 of the paper grounds the resource-usage-time transformation in
 * the theory of pipelined multi-function unit design (Davidson et al.):
 * for an ordered pair of reservation-table options (A, B), latency t >= 0
 * is *forbidden* iff A and B use some common resource at times i and j
 * with i >= j and i - j = t (an operation using B cannot be initiated t
 * cycles after one using A). A schedule is conflict-free iff no pair of
 * operations violates the collision vector of its option pair, and the
 * collision vector depends only on usage-time *differences per resource*
 * - which is exactly why adding a per-resource constant preserves
 * scheduling semantics.
 *
 * This module is used by tests to prove the time-shift transformation is
 * semantics-preserving, and by the hazard-analysis example.
 */

#include <set>

#include "core/mdes.h"
#include "support/bit_vector.h"

namespace mdes {

/**
 * The set of forbidden latencies t >= 0 for initiating an operation using
 * option @p b t cycles after one using option @p a.
 */
std::set<int32_t> forbiddenLatencies(const Mdes &m, OptionId a, OptionId b);

/**
 * The collision vector for the ordered pair (@p a, @p b): bit t set means
 * latency t is forbidden. Sized @p max_latency + 1 bits; latencies beyond
 * the options' usage spans are never forbidden.
 */
BitVector collisionVector(const Mdes &m, OptionId a, OptionId b,
                          int max_latency);

/**
 * Largest usage-time span (latest - earliest usage time) over all options
 * in @p m; an upper bound on any forbidden latency.
 */
int32_t maxUsageSpan(const Mdes &m);

} // namespace mdes

#endif // MDES_CORE_COLLISION_H
