#include "core/print.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/text_table.h"

namespace mdes {

namespace {

std::vector<ResourceId>
optionColumns(const Mdes &m, OptionId option)
{
    std::set<ResourceId> used;
    for (const auto &u : m.option(option).usages)
        used.insert(u.resource);
    return {used.begin(), used.end()};
}

std::string
gridFor(const Mdes &m, OptionId option,
        const std::vector<ResourceId> &columns)
{
    const Option &opt = m.option(option);
    int32_t lo = 0, hi = 0;
    for (const auto &u : opt.usages) {
        lo = std::min(lo, u.time);
        hi = std::max(hi, u.time);
    }

    TextTable table;
    std::vector<std::string> header = {"Cycle"};
    for (ResourceId r : columns)
        header.push_back(m.resourceName(r));
    table.setHeader(std::move(header));

    for (int32_t t = lo; t <= hi; ++t) {
        std::vector<std::string> row = {std::to_string(t)};
        for (ResourceId r : columns) {
            bool used = std::any_of(
                opt.usages.begin(), opt.usages.end(),
                [&](const ResourceUsage &u) {
                    return u.time == t && u.resource == r;
                });
            row.push_back(used ? "X" : "");
        }
        table.addRow(std::move(row));
    }
    return table.toString();
}

} // namespace

std::vector<ResourceId>
orTreeColumns(const Mdes &m, OrTreeId tree)
{
    std::set<ResourceId> used;
    for (OptionId o : m.orTree(tree).options) {
        for (const auto &u : m.option(o).usages)
            used.insert(u.resource);
    }
    return {used.begin(), used.end()};
}

std::string
printOption(const Mdes &m, OptionId option,
            const std::vector<ResourceId> &columns)
{
    return gridFor(m, option,
                   columns.empty() ? optionColumns(m, option) : columns);
}

std::string
printOrTree(const Mdes &m, OrTreeId tree)
{
    std::ostringstream os;
    const OrTree &ot = m.orTree(tree);
    auto columns = orTreeColumns(m, tree);
    os << "OR-tree '" << ot.name << "' (" << ot.options.size()
       << " option" << (ot.options.size() == 1 ? "" : "s")
       << ", priority order):\n";
    int n = 1;
    for (OptionId o : ot.options) {
        os << "Option " << n++ << ":\n";
        os << gridFor(m, o, columns);
    }
    return os.str();
}

std::string
printTree(const Mdes &m, TreeId tree)
{
    std::ostringstream os;
    const AndOrTree &t = m.tree(tree);
    os << "AND/OR-tree '" << t.name << "' (AND of " << t.or_trees.size()
       << " OR-tree" << (t.or_trees.size() == 1 ? "" : "s") << "):\n";
    int n = 1;
    for (OrTreeId ot : t.or_trees) {
        os << "-- AND input " << n++ << " --\n";
        os << printOrTree(m, ot);
    }
    return os.str();
}

} // namespace mdes
