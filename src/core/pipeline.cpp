#include "core/minimize.h"
#include "core/transforms.h"

/**
 * @file
 * The canonical transformation pipeline, in the paper's section order:
 * redundancy elimination (5), usage-time shifting (7), hoisting and
 * OR-subtree sorting (8), with usage-check sorting applied once options
 * have reached their final shape. A second CSE pass re-merges entities
 * cloned by hoisting.
 */

namespace mdes {

PipelineConfig
PipelineConfig::all()
{
    PipelineConfig c;
    c.cse = true;
    c.redundant_options = true;
    c.time_shift = true;
    c.sort_usages = true;
    c.hoist = true;
    c.sort_or_trees = true;
    return c;
}

PipelineStats
runPipeline(Mdes &m, const PipelineConfig &config)
{
    PipelineStats stats;
    if (config.cse)
        stats.cse = eliminateRedundantInfo(m);
    if (config.redundant_options)
        stats.redundant_options_removed = removeRedundantOptions(m);
    if (config.minimize)
        minimizeUsages(m);
    if (config.time_shift)
        shiftUsageTimes(m, config.direction);
    if (config.hoist) {
        stats.usages_hoisted = hoistCommonUsages(m);
        if (stats.usages_hoisted > 0) {
            // Re-merge clones created by hoisting and drop the originals
            // they replaced.
            auto cse = eliminateRedundantInfo(m);
            stats.cse.merged_options += cse.merged_options;
            stats.cse.merged_or_trees += cse.merged_or_trees;
            stats.cse.merged_trees += cse.merged_trees;
            stats.cse.removed_dead += cse.removed_dead;
        }
    }
    if (config.sort_usages)
        sortUsageChecks(m, config.direction);
    if (config.sort_or_trees)
        stats.trees_reordered = sortOrSubtrees(m);
    return stats;
}

} // namespace mdes
