#include "core/minimize.h"
#include "core/transforms.h"
#include "support/diagnostics.h"
#include "support/faultsim.h"
#include "support/trace.h"

/**
 * @file
 * The canonical transformation pipeline, in the paper's section order:
 * redundancy elimination (5), usage-time shifting (7), hoisting and
 * OR-subtree sorting (8), with usage-check sorting applied once options
 * have reached their final shape. A second CSE pass re-merges entities
 * cloned by hoisting.
 *
 * Each pass runs under a trace span carrying its effect counters, so a
 * Chrome trace of a compile shows where pipeline time goes and what each
 * pass changed.
 */

namespace mdes {

PipelineConfig
PipelineConfig::all()
{
    PipelineConfig c;
    c.cse = true;
    c.redundant_options = true;
    c.time_shift = true;
    c.sort_usages = true;
    c.hoist = true;
    c.sort_or_trees = true;
    return c;
}

PipelineStats
runPipeline(Mdes &m, const PipelineConfig &config,
            const std::function<bool()> &cancel)
{
    // A pass leaves the description valid, so between passes is the safe
    // place both to abandon an expired request and to let faultsim model
    // a pass blowing up (the degradation path in compileSourceToLow).
    auto checkpoint = [&] {
        if (cancel && cancel())
            throw CancelledError("pipeline cancelled between passes");
        faultsim::maybeThrow(faultsim::Site::CompilePassThrow,
                             "transform pass failed");
    };

    PipelineStats stats;
    if (config.cse) {
        checkpoint();
        TRACE_SPAN_F(span, "pass/cse");
        stats.cse = eliminateRedundantInfo(m);
        span.counter("merged_options", stats.cse.merged_options);
        span.counter("merged_or_trees", stats.cse.merged_or_trees);
        span.counter("merged_trees", stats.cse.merged_trees);
        span.counter("removed_dead", stats.cse.removed_dead);
    }
    if (config.redundant_options) {
        checkpoint();
        TRACE_SPAN_F(span, "pass/redundant-options");
        stats.redundant_options_removed = removeRedundantOptions(m);
        span.counter("options_removed", stats.redundant_options_removed);
    }
    if (config.minimize) {
        checkpoint();
        TRACE_SPAN_F(span, "pass/minimize");
        minimizeUsages(m);
    }
    if (config.time_shift) {
        checkpoint();
        TRACE_SPAN_F(span, "pass/time-shift");
        const std::vector<int32_t> shifts =
            shiftUsageTimes(m, config.direction);
        for (int32_t s : shifts) {
            if (s != 0)
                ++stats.resources_shifted;
        }
        span.counter("resources_shifted", stats.resources_shifted);
    }
    if (config.hoist) {
        checkpoint();
        TRACE_SPAN_F(span, "pass/hoist");
        stats.usages_hoisted = hoistCommonUsages(m);
        span.counter("usages_hoisted", stats.usages_hoisted);
        if (stats.usages_hoisted > 0) {
            // Re-merge clones created by hoisting and drop the originals
            // they replaced.
            auto cse = eliminateRedundantInfo(m);
            stats.cse.merged_options += cse.merged_options;
            stats.cse.merged_or_trees += cse.merged_or_trees;
            stats.cse.merged_trees += cse.merged_trees;
            stats.cse.removed_dead += cse.removed_dead;
        }
    }
    if (config.sort_usages) {
        checkpoint();
        TRACE_SPAN_F(span, "pass/sort-usages");
        sortUsageChecks(m, config.direction);
    }
    if (config.sort_or_trees) {
        checkpoint();
        TRACE_SPAN_F(span, "pass/sort-or-trees");
        stats.trees_reordered = sortOrSubtrees(m);
        span.counter("trees_reordered", stats.trees_reordered);
    }
    return stats;
}

} // namespace mdes
