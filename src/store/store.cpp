#include "store/store.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <sstream>
#include <thread>

#include "lmdes/image.h"
#include "support/diagnostics.h"
#include "support/faultsim.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/trace.h"

namespace mdes::store {

namespace fs = std::filesystem;

namespace {

constexpr char kStoreMagic[4] = {'M', 'D', 'S', 'T'};
// Version 2 appended the whole-file integrity trailer. Version 3 pads
// the header to kImageAlign and stores the LMDES payload as the
// position-independent v7 image, so a load can mmap the file and serve
// it in place with zero deserialization.
constexpr uint32_t kStoreVersion = 3;
/** The v7 image starts on this boundary so its 64-byte-aligned internal
 * sections stay aligned within the file (and within any page-aligned
 * mapping of it). */
constexpr size_t kImageAlign = lmdes::v7::kAlign;
/** Bytes of the FNV-1a trailer covering header + payload. Without it a
 * bit flip inside the header's unvalidated fields (timestamps, label
 * strings) would be served silently; with it any flipped or missing
 * byte anywhere in the artifact reads as Corrupt. */
constexpr size_t kTrailerBytes = 8;
/** Header strings (creator, machine) are short labels, not payloads. */
constexpr uint32_t kMaxHeaderString = 4096;

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void
fnvBytes(uint64_t &h, const void *data, size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void
fnvByte(uint64_t &h, unsigned char b)
{
    fnvBytes(h, &b, 1);
}

std::string
hexKey(uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)key);
    return buf;
}

uint64_t
nowUnix()
{
    return uint64_t(std::chrono::duration_cast<std::chrono::seconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count());
}

/** file_time_type -> unix seconds (portable pre-clock_cast dance). */
int64_t
fileTimeToUnix(fs::file_time_type t)
{
    using namespace std::chrono;
    auto sys = time_point_cast<system_clock::duration>(
        t - fs::file_time_type::clock::now() + system_clock::now());
    return duration_cast<seconds>(sys.time_since_epoch()).count();
}

void
writeU32(std::ostream &os, uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeU64(std::ostream &os, uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeStr(std::ostream &os, const std::string &s)
{
    writeU32(os, uint32_t(s.size()));
    os.write(s.data(), std::streamsize(s.size()));
}

uint32_t
readU32(std::istream &is, const char *what)
{
    uint32_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        throw MdesError(std::string("truncated store header reading ") +
                        what);
    return v;
}

uint64_t
readU64(std::istream &is, const char *what)
{
    uint64_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        throw MdesError(std::string("truncated store header reading ") +
                        what);
    return v;
}

std::string
readStr(std::istream &is, const char *what)
{
    uint32_t n = readU32(is, what);
    if (n > kMaxHeaderString)
        throw MdesError(std::string("implausible store header string (") +
                        what + "): " + std::to_string(n) + " bytes");
    std::string s(n, '\0');
    is.read(s.data(), std::streamsize(n));
    if (!is)
        throw MdesError(std::string("truncated store header reading ") +
                        what);
    return s;
}

/**
 * A refcounted MAP_PRIVATE read-only mapping of one artifact file.
 * Handed to LowMdes::fromImage as the backing, so the munmap happens
 * exactly when the last LowMdes (or Checker holding one) releases it -
 * even if the file was pruned, quarantined, or republished meanwhile
 * (the mapping pins the old inode).
 */
struct Mapping
{
    const char *data = nullptr;
    size_t size = 0;

    Mapping() = default;
    Mapping(const Mapping &) = delete;
    Mapping &operator=(const Mapping &) = delete;
    ~Mapping()
    {
        if (data)
            ::munmap(const_cast<char *>(data), size);
    }
};

/** Bounds-checked cursor over an in-memory artifact (the mmap'ed file
 * or a fault-mangled copy); mirrors the istream helpers above. */
class MemReader
{
  public:
    MemReader(const char *data, size_t size) : data_(data), size_(size) {}

    size_t offset() const { return off_; }

    void
    readBytes(void *out, size_t n, const char *what)
    {
        if (size_ - off_ < n)
            throw MdesError(
                std::string("truncated store header reading ") + what);
        std::memcpy(out, data_ + off_, n);
        off_ += n;
    }

    uint32_t
    readU32(const char *what)
    {
        uint32_t v = 0;
        readBytes(&v, sizeof(v), what);
        return v;
    }

    uint64_t
    readU64(const char *what)
    {
        uint64_t v = 0;
        readBytes(&v, sizeof(v), what);
        return v;
    }

    std::string
    readStr(const char *what)
    {
        uint32_t n = readU32(what);
        if (n > kMaxHeaderString)
            throw MdesError(
                std::string("implausible store header string (") + what +
                "): " + std::to_string(n) + " bytes");
        std::string s(n, '\0');
        readBytes(s.data(), n, what);
        return s;
    }

  private:
    const char *data_;
    size_t size_;
    size_t off_ = 0;
};

} // namespace

uint64_t
configFingerprint(const PipelineConfig &transforms, bool bit_vector,
                  exp::Rep rep)
{
    // Every field that changes the compiled artifact must feed the
    // fingerprint; keep in sync with PipelineConfig.
    uint64_t h = kFnvOffset;
    fnvByte(h, transforms.cse);
    fnvByte(h, transforms.redundant_options);
    fnvByte(h, transforms.minimize);
    fnvByte(h, transforms.time_shift);
    fnvByte(h, transforms.sort_usages);
    fnvByte(h, transforms.hoist);
    fnvByte(h, transforms.sort_or_trees);
    fnvByte(h, static_cast<unsigned char>(transforms.direction));
    fnvByte(h, bit_vector);
    fnvByte(h, static_cast<unsigned char>(rep));
    return h;
}

uint64_t
artifactKey(std::string_view source, const PipelineConfig &transforms,
            bool bit_vector, exp::Rep rep)
{
    uint64_t h = kFnvOffset;
    fnvBytes(h, source.data(), source.size());
    uint64_t fp = configFingerprint(transforms, bit_vector, rep);
    fnvBytes(h, &fp, sizeof(fp));
    return h;
}

std::string
artifactFileName(uint64_t key)
{
    return hexKey(key) + ".lmdes";
}

std::string
metaFileName(uint64_t key)
{
    return hexKey(key) + ".meta";
}

std::string
quarantineFileName(uint64_t key)
{
    return hexKey(key) + ".bad";
}

/** The self-describing artifact header preceding the LMDES stream. */
struct ArtifactStore::Header
{
    uint64_t key = 0;
    uint64_t config_fingerprint = 0;
    uint64_t created_unix = 0;
    std::string creator;
    std::string machine;

    void
    write(std::ostream &os) const
    {
        os.write(kStoreMagic, 4);
        writeU32(os, kStoreVersion);
        writeU64(os, key);
        writeU64(os, config_fingerprint);
        writeU64(os, created_unix);
        writeStr(os, creator);
        writeStr(os, machine);
    }

    /**
     * Throws MdesError when the header is not a valid store header for
     * @p expected_key. With @p version_out, headers of *older* known
     * versions (whose field layout is unchanged) parse too and report
     * their version, so list() can flag stale entries; without it the
     * read is strict about the current version.
     */
    static Header
    read(std::istream &is, uint64_t expected_key,
         uint32_t *version_out = nullptr)
    {
        char magic[4] = {};
        is.read(magic, 4);
        if (!is || std::memcmp(magic, kStoreMagic, 4) != 0)
            throw MdesError("not a store artifact (bad MDST magic)");
        uint32_t version = readU32(is, "version");
        const bool known_old =
            version_out && version >= 1 && version < kStoreVersion;
        if (version != kStoreVersion && !known_old)
            throw MdesError("store artifact version " +
                            std::to_string(version) + ", expected " +
                            std::to_string(kStoreVersion));
        if (version_out)
            *version_out = version;
        Header h;
        h.key = readU64(is, "key");
        if (h.key != expected_key)
            throw MdesError("store artifact labeled with key " +
                            hexKey(h.key) + ", expected " +
                            hexKey(expected_key));
        h.config_fingerprint = readU64(is, "config fingerprint");
        h.created_unix = readU64(is, "creation time");
        h.creator = readStr(is, "creator");
        h.machine = readStr(is, "machine");
        return h;
    }
};

ArtifactStore::ArtifactStore(StoreConfig config)
    : config_(std::move(config))
{
    std::error_code ec;
    fs::create_directories(config_.dir, ec);
    if (ec || !fs::is_directory(config_.dir))
        throw MdesError("cannot create store directory '" + config_.dir +
                        "': " + ec.message());
    // A writer killed between temp-write and rename (kill -9, OOM,
    // crash) leaves a ".tmp-*" orphan that the sscanf-keyed walks in
    // prune()/list() skip forever. Sweep them at open: any live
    // publisher whose temp we race loses one rename, retries with a
    // fresh temp name, and succeeds.
    const uint64_t swept = sweepResidue();
    if (swept > 0) {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.residue_swept += swept;
    }
}

uint64_t
ArtifactStore::sweepResidue()
{
    uint64_t removed = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(config_.dir, ec)) {
        if (!de.is_regular_file(ec))
            continue;
        const std::string name = de.path().filename().string();
        if (name.rfind(".tmp-", 0) != 0)
            continue;
        std::error_code rmec;
        if (fs::remove(de.path(), rmec) && !rmec)
            ++removed;
    }
    return removed;
}

std::string
ArtifactStore::pathFor(const std::string &name) const
{
    return (fs::path(config_.dir) / name).string();
}

void
ArtifactStore::backoff(uint64_t key, uint32_t attempt,
                       const std::function<bool()> &cancel)
{
    if (cancel && cancel())
        throw CancelledError("store retry abandoned");
    uint64_t delay = uint64_t(config_.retry.base_delay_us) << attempt;
    if (delay > config_.retry.max_delay_us)
        delay = config_.retry.max_delay_us;
    // Deterministic jitter: concurrent retriers of different keys
    // de-correlate, while replays of one key reproduce exactly.
    Rng rng(key ^ (uint64_t(attempt) << 48));
    delay = delay / 2 + rng.below(delay / 2 + 1);
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.retries;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
}

ArtifactStore::LoadOutcome
ArtifactStore::parseArtifact(const char *data, size_t size, uint64_t key,
                             const std::shared_ptr<const void> &backing,
                             std::shared_ptr<const lmdes::LowMdes> *out,
                             Header *header_out)
{
    // Verify the integrity trailer before touching the contents: the
    // last 8 bytes checksum everything before them. This is the one
    // whole-artifact scan a load performs ("checksum verified once at
    // open"); the LMDES image's own checksum is skipped because the
    // trailer already covers those bytes.
    if (size < kTrailerBytes)
        return LoadOutcome::Corrupt;
    uint64_t stored_sum = 0;
    std::memcpy(&stored_sum, data + size - kTrailerBytes, kTrailerBytes);
    uint64_t sum = kFnvOffset;
    fnvBytes(sum, data, size - kTrailerBytes);
    if (sum != stored_sum)
        return LoadOutcome::Corrupt;
    const size_t body_size = size - kTrailerBytes;
    try {
        MemReader r(data, body_size);
        char magic[4] = {};
        r.readBytes(magic, 4, "magic");
        if (std::memcmp(magic, kStoreMagic, 4) != 0)
            return LoadOutcome::Corrupt;
        const uint32_t version = r.readU32("version");
        if (version != kStoreVersion)
            return LoadOutcome::Stale;
        Header h;
        h.key = r.readU64("key");
        if (h.key != key)
            return LoadOutcome::Corrupt;
        h.config_fingerprint = r.readU64("config fingerprint");
        h.created_unix = r.readU64("creation time");
        h.creator = r.readStr("creator");
        h.machine = r.readStr("machine");
        const size_t img_off =
            (r.offset() + kImageAlign - 1) / kImageAlign * kImageAlign;
        if (img_off > body_size)
            return LoadOutcome::Corrupt;
        lmdes::LowMdes low = lmdes::LowMdes::fromImage(
            data + img_off, body_size - img_off,
            lmdes::ImageSource{backing, /*verify_checksum=*/false});
        *out = std::make_shared<const lmdes::LowMdes>(std::move(low));
        if (header_out)
            *header_out = std::move(h);
        return LoadOutcome::Hit;
    } catch (const lmdes::MdesVersionError &) {
        // The container is current but the image inside speaks another
        // LMDES version: still "written by another release", not damage.
        return LoadOutcome::Stale;
    } catch (const std::exception &) {
        return LoadOutcome::Corrupt;
    }
}

ArtifactStore::LoadOutcome
ArtifactStore::loadOnce(uint64_t key,
                        std::shared_ptr<const lmdes::LowMdes> *out)
{
    std::string path = pathFor(artifactFileName(key));
    if (faultsim::probe(faultsim::Site::StoreOpenRead).fired)
        return LoadOutcome::TransientIo;
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        // Distinguish "not there" (a plain miss) from "there but
        // unreadable" (worth a retry: NFS hiccup, EMFILE, ...).
        return errno == ENOENT ? LoadOutcome::Miss
                               : LoadOutcome::TransientIo;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        return LoadOutcome::TransientIo;
    }
    const size_t size = size_t(st.st_size);
    if (size < kTrailerBytes) {
        ::close(fd);
        return LoadOutcome::Corrupt;
    }
    if (faultsim::probe(faultsim::Site::StoreMap).fired) {
        ::close(fd);
        return LoadOutcome::TransientIo;
    }
    void *base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping holds its own reference to the inode
    if (base == MAP_FAILED)
        return LoadOutcome::TransientIo;
    auto mapping = std::make_shared<Mapping>();
    mapping->data = static_cast<const char *>(base);
    mapping->size = size;

    // Simulated bit rot / truncation: mangle an in-memory copy only, so
    // the parser (and the trailer check) sees what a damaged disk would
    // feed it without physically rewriting the artifact. The copy is
    // transient, so it gets no backing (were it ever to parse, the
    // pools would be deep-copied).
    std::vector<uint64_t> mangled;
    size_t mangled_size = 0;
    auto mangle = [&]() -> char * {
        if (mangled.empty()) {
            mangled_size = size;
            mangled.assign((size + 7) / 8, 0);
            std::memcpy(mangled.data(), mapping->data, size);
        }
        return reinterpret_cast<char *>(mangled.data());
    };
    {
        faultsim::FireInfo fi =
            faultsim::probe(faultsim::Site::StoreShortRead);
        if (fi.fired && size > 0) {
            mangle();
            mangled_size = fi.value % size;
        }
    }
    {
        faultsim::FireInfo fi =
            faultsim::probe(faultsim::Site::StoreCorruptByte);
        if (fi.fired) {
            char *bytes = mangle();
            if (mangled_size > 0)
                bytes[fi.value % mangled_size] ^=
                    char(1u << ((fi.value >> 32) % 8));
        }
    }

    Header header;
    LoadOutcome outcome =
        mangled.empty()
            ? parseArtifact(mapping->data, size, key, mapping, out,
                            &header)
            : parseArtifact(reinterpret_cast<const char *>(mangled.data()),
                            mangled_size, key, nullptr, out, &header);
    if (outcome == LoadOutcome::Hit) {
        // Touch the access-time sidecar (recreating it if lost) so the
        // eviction sweep sees this entry as recently used.
        std::error_code ec;
        std::string meta = pathFor(metaFileName(key));
        fs::last_write_time(meta, fs::file_time_type::clock::now(), ec);
        if (ec)
            writeMeta(key, header);
    }
    return outcome;
}

std::shared_ptr<const lmdes::LowMdes>
ArtifactStore::load(uint64_t key, const std::function<bool()> &cancel)
{
    TRACE_SPAN("store/load");
    for (uint32_t attempt = 0;; ++attempt) {
        std::shared_ptr<const lmdes::LowMdes> low;
        switch (loadOnce(key, &low)) {
        case LoadOutcome::Hit: {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.hits;
            if (low->mapped())
                ++stats_.mapped_hits;
            return low;
        }
        case LoadOutcome::Miss: {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.misses;
            return nullptr;
        }
        case LoadOutcome::Corrupt:
            // Corrupt, truncated, or mislabeled: a miss, never an
            // error, and never retried - damage does not heal.
            // Quarantine so the next publish starts clean and the bad
            // bytes stay inspectable.
            quarantine(key);
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.corrupt;
                ++stats_.misses;
            }
            return nullptr;
        case LoadOutcome::Stale:
            // Written by another format version: perfectly healthy
            // bytes this build cannot use. Evict silently (no .bad
            // residue, no corrupt count) so an upgrade reads as a cache
            // flush, then let the caller recompile and republish.
            removeStale(key);
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.stale_evicted;
                ++stats_.misses;
            }
            return nullptr;
        case LoadOutcome::TransientIo:
            if (attempt + 1 >= config_.retry.max_attempts) {
                // Out of patience: a miss - the caller recompiles, the
                // next publish refreshes the entry.
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.misses;
                return nullptr;
            }
            backoff(key, attempt, cancel);
            break;
        }
    }
}

bool
ArtifactStore::storeOnce(uint64_t key, const lmdes::LowMdes &low,
                         uint64_t config_fingerprint)
{
    static std::atomic<uint64_t> tmp_counter{0};
    std::string tmp =
        pathFor(".tmp-" + hexKey(key) + "-" +
                std::to_string(uint64_t(::getpid())) + "-" +
                std::to_string(tmp_counter.fetch_add(1)));
    Header header;
    header.key = key;
    header.config_fingerprint = config_fingerprint;
    header.created_unix = nowUnix();
    header.creator = config_.creator;
    header.machine = low.machineName();
    try {
        {
            faultsim::maybeThrow(faultsim::Site::StoreOpenWrite,
                                 "cannot open temp file");
            std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
            if (!out)
                throw MdesError("cannot open temp file");
            // Serialize to memory first so the integrity trailer can
            // cover header and payload alike. The header is zero-padded
            // to kImageAlign so the v7 image's 64-byte-aligned sections
            // land aligned in the file - and therefore in any
            // page-aligned mapping of it.
            std::ostringstream body;
            header.write(body);
            const size_t header_end = size_t(body.tellp());
            const size_t img_off = (header_end + kImageAlign - 1) /
                                   kImageAlign * kImageAlign;
            static const char zeros[kImageAlign] = {};
            body.write(zeros, std::streamsize(img_off - header_end));
            low.save(body);
            const std::string payload = body.str();
            uint64_t sum = kFnvOffset;
            fnvBytes(sum, payload.data(), payload.size());
            out.write(payload.data(),
                      std::streamsize(payload.size()));
            writeU64(out, sum);
            faultsim::maybeThrow(faultsim::Site::StoreWrite,
                                 "short write");
            out.flush();
            if (!out)
                throw MdesError("short write");
            faultsim::maybeThrow(faultsim::Site::StoreFsync,
                                 "fsync failed");
        }
        // The publish: readers see nothing or everything.
        faultsim::maybeThrow(faultsim::Site::StoreRename,
                             "rename failed");
        fs::rename(tmp, pathFor(artifactFileName(key)));
        // A fresh publish supersedes any quarantined predecessor.
        std::error_code ec;
        fs::remove(pathFor(quarantineFileName(key)), ec);
        writeMeta(key, header);
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.stores;
        }
        if (config_.max_bytes > 0)
            prune(config_.max_bytes);
        return true;
    } catch (const std::exception &) {
        std::error_code ec;
        fs::remove(tmp, ec);
        return false;
    }
}

bool
ArtifactStore::store(uint64_t key, const lmdes::LowMdes &low,
                     uint64_t config_fingerprint,
                     const std::function<bool()> &cancel)
{
    TRACE_SPAN("store/publish");
    for (uint32_t attempt = 0;; ++attempt) {
        if (storeOnce(key, low, config_fingerprint))
            return true;
        if (attempt + 1 >= config_.retry.max_attempts)
            break;
        try {
            backoff(key, attempt, cancel);
        } catch (const CancelledError &) {
            // Publishing is best-effort; an abandoned publish is a
            // failure, not an error the caller must handle.
            break;
        }
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.store_failures;
    return false;
}

void
ArtifactStore::writeMeta(uint64_t key, const Header &header)
{
    // Best-effort: the sidecar only exists to carry an access time and
    // a human-readable summary; a lost sidecar just ages the entry.
    JsonWriter w;
    w.beginObject();
    w.key("key").value("0x" + hexKey(key));
    w.key("machine").value(header.machine);
    w.key("config_fingerprint").value("0x" + hexKey(header.config_fingerprint));
    w.key("created_unix").value(header.created_unix);
    w.key("creator").value(header.creator);
    w.endObject();
    std::ofstream out(pathFor(metaFileName(key)),
                      std::ios::binary | std::ios::trunc);
    out << w.str() << "\n";
}

void
ArtifactStore::removeStale(uint64_t key)
{
    std::error_code ec;
    fs::remove(pathFor(artifactFileName(key)), ec);
    fs::remove(pathFor(metaFileName(key)), ec);
}

void
ArtifactStore::quarantine(uint64_t key)
{
    std::error_code ec;
    fs::remove(pathFor(quarantineFileName(key)), ec);
    fs::rename(pathFor(artifactFileName(key)),
               pathFor(quarantineFileName(key)), ec);
    if (ec)
        fs::remove(pathFor(artifactFileName(key)), ec);
    fs::remove(pathFor(metaFileName(key)), ec);
}

PruneResult
ArtifactStore::prune(uint64_t max_bytes)
{
    struct Entry
    {
        uint64_t key;
        uint64_t bytes;
        /** Missing sidecar sorts first (0 = never accessed). */
        int64_t last_access;
    };
    PruneResult result;
    std::vector<Entry> entries;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(config_.dir, ec)) {
        if (!de.is_regular_file(ec))
            continue;
        fs::path p = de.path();
        const std::string name = p.filename().string();
        if (name.rfind(".tmp-", 0) == 0) {
            // Orphaned publish temp (crashed writer); same rationale
            // as the open-time sweep in the constructor.
            std::error_code rmec;
            if (fs::remove(p, rmec) && !rmec)
                ++result.residue_removed;
            continue;
        }
        uint64_t key = 0;
        if (std::sscanf(name.c_str(), "%16llx",
                        (unsigned long long *)&key) != 1)
            continue;
        if (p.extension() == ".bad") {
            // Quarantined artifacts never survive a sweep.
            fs::remove(p, ec);
            continue;
        }
        if (p.extension() == ".meta") {
            // An orphaned sidecar — its artifact pruned or quarantined
            // between the artifact's removal and this scan — is garbage.
            // Removing it can at worst race a concurrent republish and
            // forget that artifact's last-access time.
            if (!fs::exists(pathFor(artifactFileName(key)), ec))
                fs::remove(p, ec);
            continue;
        }
        if (p.extension() != ".lmdes")
            continue;
        Entry e;
        e.key = key;
        e.bytes = uint64_t(de.file_size(ec));
        e.last_access = 0;
        auto mtime =
            fs::last_write_time(pathFor(metaFileName(key)), ec);
        if (!ec)
            e.last_access = fileTimeToUnix(mtime);
        entries.push_back(e);
        result.bytes_before += e.bytes;
    }
    result.scanned = entries.size();
    result.bytes_after = result.bytes_before;

    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.last_access != b.last_access
                             ? a.last_access < b.last_access
                             : a.key < b.key;
              });
    for (const Entry &e : entries) {
        if (result.bytes_after <= max_bytes)
            break;
        fs::remove(pathFor(artifactFileName(e.key)), ec);
        fs::remove(pathFor(metaFileName(e.key)), ec);
        result.bytes_after -= e.bytes;
        ++result.removed;
    }
    if (result.removed || result.residue_removed) {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.evictions += result.removed;
        stats_.residue_swept += result.residue_removed;
    }
    return result;
}

std::vector<ArtifactInfo>
ArtifactStore::list() const
{
    std::vector<ArtifactInfo> infos;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(config_.dir, ec)) {
        if (!de.is_regular_file(ec))
            continue;
        fs::path p = de.path();
        bool bad = p.extension() == ".bad";
        if (!bad && p.extension() != ".lmdes")
            continue;
        ArtifactInfo info;
        if (std::sscanf(p.filename().string().c_str(), "%16llx",
                        (unsigned long long *)&info.key) != 1)
            continue;
        info.bytes = uint64_t(de.file_size(ec));
        info.quarantined = bad;
        std::ifstream in(p, std::ios::binary);
        if (in) {
            try {
                uint32_t version = 0;
                Header h = Header::read(in, info.key, &version);
                info.config_fingerprint = h.config_fingerprint;
                info.created_unix = h.created_unix;
                info.creator = h.creator;
                info.machine = h.machine;
                info.stale = !bad && version != kStoreVersion;
            } catch (const std::exception &) {
                // Unreadable header: report the file with bare sizes.
            }
        }
        auto mtime = fs::last_write_time(
            (fs::path(config_.dir) / metaFileName(info.key)), ec);
        if (!ec)
            info.last_access_unix = fileTimeToUnix(mtime);
        infos.push_back(std::move(info));
    }
    return infos;
}

StoreStats
ArtifactStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace mdes::store
