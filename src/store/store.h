#ifndef MDES_STORE_STORE_H
#define MDES_STORE_STORE_H

/**
 * @file
 * The persistent compiled-description store.
 *
 * The paper pays the MDES translation/optimization cost once so that
 * every later use is cheap — including "minimize the time required to
 * load the MDES into memory". The in-memory DescriptionCache realizes
 * that within one process; this store extends it across process
 * restarts: a content-addressed directory of serialized `LowMdes`
 * artifacts, layered under the memory cache to form a two-tier lookup
 * (memory → disk → compile).
 *
 * Layout (one directory, flat):
 *
 *   <key>.lmdes   the artifact: a self-describing store header (magic
 *                 "MDST", store format version, key, transform-config
 *                 fingerprint, creation metadata), zero-padded to a
 *                 64-byte boundary, followed by the position-independent
 *                 LMDES v7 image of serialize.cpp, followed by an 8-byte
 *                 whole-file FNV-1a trailer
 *   <key>.meta    small JSON sidecar; its mtime is the entry's
 *                 last-access time (touched on every hit), which drives
 *                 LRU eviction
 *   <key>.bad     a quarantined artifact that failed to load (corrupt,
 *                 truncated, or mislabeled); kept for post-mortem,
 *                 replaced on the next publish. Artifacts that are merely
 *                 *stale* (written by another format version) are NOT
 *                 quarantined: they are silently removed and recompiled
 *                 (see StoreStats::stale_evicted)
 *
 * Since store version 3 a load does not deserialize the artifact at
 * all: the file is mmap(2)'ed MAP_PRIVATE read-only, the trailer is
 * verified with one pass at open, and the returned LowMdes borrows the
 * mapping zero-copy (LowMdes::fromImage), released by munmap when the
 * last shared_ptr owner drops. Because the mapping pins the inode,
 * prune() and quarantine() can unlink or rename the file while readers
 * hold live views — the views stay valid until release, and N sharded
 * server processes mapping one artifact share a single physical copy
 * through the page cache.
 *
 * where <key> is the 16-hex-digit content hash of (hmdes source,
 * transform config, bit-vector flag, representation) — the same key the
 * service's memory tier uses, so the tiers always agree on identity.
 *
 * Crash-safety protocol: publishes write to a `.tmp-` file in the store
 * directory and atomically rename(2) it over the final name, so readers
 * (including other processes) observe either nothing or a complete
 * artifact, never a torn write. A reader that still finds garbage — a
 * partial artifact from a crashed writer's tmp file is impossible, but
 * bit rot and truncation are not — treats it as a miss: the file is
 * quarantined, the description recompiled, and the slot republished.
 * Loading NEVER throws for bad on-disk state; only misconfiguration
 * (an uncreatable store directory) is an error.
 *
 * Concurrency: within a process the service's single-flight collapses
 * all lookups of one key into one disk probe/compile; across processes
 * the atomic rename makes concurrent publishes of the same key converge
 * on one winner (equal content either way). Counters are mutex-guarded;
 * filesystem operations run unlocked.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/transforms.h"
#include "exp/runner.h"
#include "lmdes/low_mdes.h"

namespace mdes::store {

/**
 * Fingerprint of everything besides the source that changes the
 * compiled artifact: every pipeline flag, the bit-vector choice, and
 * the representation. Stored in the artifact header so a cached file
 * can be audited against the config that produced it.
 */
uint64_t configFingerprint(const PipelineConfig &transforms,
                           bool bit_vector,
                           exp::Rep rep = exp::Rep::AndOrTree);

/**
 * Content-addressed artifact key: FNV-1a over the hmdes source bytes
 * folded with configFingerprint(). Equal inputs produce equal keys in
 * every process, which is what makes the disk tier shareable.
 */
uint64_t artifactKey(std::string_view source,
                     const PipelineConfig &transforms, bool bit_vector,
                     exp::Rep rep = exp::Rep::AndOrTree);

/** "<16 hex digits>.lmdes" — the artifact file name for @p key. */
std::string artifactFileName(uint64_t key);

/** "<16 hex digits>.meta" — the access-time sidecar for @p key. */
std::string metaFileName(uint64_t key);

/** "<16 hex digits>.bad" — the quarantine name for @p key. */
std::string quarantineFileName(uint64_t key);

/** Monotonic store counters. */
struct StoreStats
{
    uint64_t hits = 0;
    /** Hits served zero-copy from a live mmap of the artifact (the
     * normal case; a subset of hits). */
    uint64_t mapped_hits = 0;
    uint64_t misses = 0;
    /** Loads that found a file but quarantined it (corrupt, truncated,
     * or mislabeled). Such loads also count as misses, so hits + misses
     * is always the total lookup count. */
    uint64_t corrupt = 0;
    /** Loads that found an artifact written by a different store/LMDES
     * format version: not damage, so it is silently removed (no .bad
     * residue, no corrupt count) and the caller recompiles. Also counts
     * as a miss. This is what makes a format upgrade a clean cache
     * flush instead of a mass quarantine. */
    uint64_t stale_evicted = 0;
    uint64_t stores = 0;
    uint64_t store_failures = 0;
    uint64_t evictions = 0;
    /** Backoff retries taken after transient I/O failures (loads and
     * publishes combined). */
    uint64_t retries = 0;
    /** Orphaned publish temp files (".tmp-*") removed at open or by
     * prune() — residue of a writer killed between temp-write and
     * rename (the supervision plane's kill -9 restarts make this a
     * routine occurrence, not a curiosity; DESIGN.md §15). */
    uint64_t residue_swept = 0;
};

/** One store entry as reported by list() / `mdesc store stat`. */
struct ArtifactInfo
{
    uint64_t key = 0;
    uint64_t bytes = 0;
    uint64_t config_fingerprint = 0;
    uint64_t created_unix = 0;
    std::string creator;
    std::string machine;
    /** Last access (meta-sidecar mtime) as a unix timestamp; 0 when the
     * sidecar is missing. */
    int64_t last_access_unix = 0;
    /** True for quarantined (.bad) entries. */
    bool quarantined = false;
    /** True when the artifact was written by an older store format and
     * will be silently evicted + recompiled on its next load. */
    bool stale = false;
};

/** What an eviction sweep did. */
struct PruneResult
{
    uint64_t scanned = 0;
    uint64_t removed = 0;
    uint64_t bytes_before = 0;
    uint64_t bytes_after = 0;
    /** Orphaned publish temp files removed by the sweep. */
    uint64_t residue_removed = 0;
};

/**
 * How transient I/O failures are retried: exponential backoff from
 * base_delay_us, capped at max_delay_us, with deterministic jitter
 * (derived from the artifact key) to de-correlate concurrent retriers.
 */
struct RetryPolicy
{
    /** Total tries per operation, first included. 1 = no retries. */
    uint32_t max_attempts = 3;
    uint32_t base_delay_us = 200;
    uint32_t max_delay_us = 20000;
};

/** Store construction parameters. */
struct StoreConfig
{
    /** Store directory (created on construction if absent). */
    std::string dir;
    /**
     * Size budget in bytes; every publish that pushes the store over
     * the budget triggers an LRU eviction sweep. 0 = unbounded (sweep
     * only via prune()).
     */
    uint64_t max_bytes = 0;
    /** Recorded in each artifact's creation metadata. */
    std::string creator = "mdes";
    /** Backoff schedule for transient I/O failures. */
    RetryPolicy retry;
};

/** The persistent content-addressed artifact store. */
class ArtifactStore
{
  public:
    /** Open (creating if needed) the store directory; throws MdesError
     * when the directory cannot be created. */
    explicit ArtifactStore(StoreConfig config);

    const std::string &dir() const { return config_.dir; }

    /**
     * Tolerant lookup: the artifact for @p key, or nullptr on a miss.
     * A hit is served zero-copy: the returned LowMdes borrows an
     * mmap'ed, trailer-verified view of the file, munmapped when the
     * last owner releases it (so it stays valid even if the entry is
     * pruned or republished meanwhile). A file that exists but cannot
     * be loaded — corrupt, truncated, or labeled with a different key —
     * counts as a miss: it is quarantined (renamed to .bad) so the
     * caller recompiles and republishes. A file written by a different
     * format version is *stale*, not corrupt: silently removed, counted
     * under stale_evicted, and likewise reported as a miss. A
     * transiently-unreadable file (I/O error on open/stat/mmap) is
     * retried per the RetryPolicy, then treated as a miss. Never throws
     * for bad on-disk state; only CancelledError escapes, when
     * @p cancel reports the caller gave up mid-retry. A hit touches the
     * entry's access-time sidecar.
     */
    std::shared_ptr<const lmdes::LowMdes>
    load(uint64_t key, const std::function<bool()> &cancel = {});

    /**
     * Atomically publish @p low under @p key (temp file + rename).
     * Best-effort: transient failures are retried per the RetryPolicy;
     * returns false (and counts a store_failure) when every attempt
     * fails or @p cancel reports the caller gave up — the caller keeps
     * its in-memory artifact either way. Triggers an eviction sweep
     * when a max_bytes budget is configured.
     */
    bool store(uint64_t key, const lmdes::LowMdes &low,
               uint64_t config_fingerprint,
               const std::function<bool()> &cancel = {});

    /**
     * Evict least-recently-accessed artifacts (by meta-sidecar mtime;
     * entries without a sidecar evict first) until the store holds at
     * most @p max_bytes of artifacts. Quarantined files are always
     * removed.
     */
    PruneResult prune(uint64_t max_bytes);

    /** Every artifact currently in the store (including quarantined
     * ones), unordered. */
    std::vector<ArtifactInfo> list() const;

    StoreStats stats() const;

  private:
    struct Header;

    /** What one load attempt observed (drives the retry decision).
     * Stale = written by another format version: evict silently and
     * recompile, never quarantine. */
    enum class LoadOutcome { Hit, Miss, Corrupt, Stale, TransientIo };

    std::string pathFor(const std::string &name) const;
    LoadOutcome loadOnce(uint64_t key,
                         std::shared_ptr<const lmdes::LowMdes> *out);
    /** Verify the trailer and parse a complete in-memory artifact
     * (header + padding + v7 image). With @p backing the result
     * borrows @p data zero-copy; without it the pools are copied. */
    LoadOutcome parseArtifact(const char *data, size_t size, uint64_t key,
                              const std::shared_ptr<const void> &backing,
                              std::shared_ptr<const lmdes::LowMdes> *out,
                              Header *header_out);
    bool storeOnce(uint64_t key, const lmdes::LowMdes &low,
                   uint64_t config_fingerprint);
    /** Sleep the jittered exponential backoff before retry @p attempt;
     * throws CancelledError first when @p cancel says to give up. */
    void backoff(uint64_t key, uint32_t attempt,
                 const std::function<bool()> &cancel);
    void quarantine(uint64_t key);
    /** Remove a stale (old-format) artifact and its sidecar without
     * leaving .bad residue. */
    void removeStale(uint64_t key);
    void writeMeta(uint64_t key, const Header &header);
    /** Remove orphaned ".tmp-*" publish files; returns count removed. */
    uint64_t sweepResidue();

    StoreConfig config_;
    mutable std::mutex mu_;
    StoreStats stats_;
};

} // namespace mdes::store

#endif // MDES_STORE_STORE_H
