#ifndef MDES_WORKLOAD_SASM_H
#define MDES_WORKLOAD_SASM_H

/**
 * @file
 * The .sasm textual assembly-stream format.
 *
 * A machine-neutral way to hand the schedulers a concrete instruction
 * sequence (the role SPEC CINT92 assembly played in the paper's
 * experiments, for users who have real streams instead of the synthetic
 * generator). One instruction per line inside block/end groups:
 *
 *     # scalar product kernel for the SuperSPARC
 *     block
 *         LD     r10 <- r1
 *         LD     r11 <- r2
 *         ADD_R  r12 <- r10, r11    !cascade
 *         ST     <- r12, r3         # stores write no register
 *         BPCC   <- r12             !branch
 *     end
 *
 * Syntax per instruction:
 *     OPCODE [dst-regs] '<-' [src-regs] [!cascade] [!branch]
 * where registers are written r<N> and lists are comma-separated. The
 * opcode must name an operation class of the target machine; !cascade
 * marks the instruction as able to use its class's cascade reservation
 * table; !branch marks the block terminator (only valid on the last
 * instruction of a block). '#' and ';' start comments.
 */

#include <string_view>

#include "lmdes/low_mdes.h"
#include "sched/ir.h"
#include "support/diagnostics.h"

namespace mdes::workload {

/**
 * Parse @p text against machine @p low. Problems are reported to
 * @p diags with line/column locations; returns the program parsed so
 * far (callers should check diags.hasErrors()).
 */
sched::Program parseSasm(std::string_view text,
                         const lmdes::LowMdes &low,
                         DiagnosticEngine &diags);

/** Convenience: parse or throw MdesError with rendered diagnostics. */
sched::Program parseSasmOrThrow(std::string_view text,
                                const lmdes::LowMdes &low);

/** Render @p program back to .sasm text (round-trip aid and debugging). */
std::string formatSasm(const sched::Program &program,
                       const lmdes::LowMdes &low);

} // namespace mdes::workload

#endif // MDES_WORKLOAD_SASM_H
