#include "workload/sasm.h"

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

namespace mdes::workload {

namespace {

/** One whitespace-separated token with its column. */
struct Word
{
    std::string text;
    int column;
};

/** Split a line into words, stripping '#' and ';' comments. */
std::vector<Word>
splitLine(const std::string &line)
{
    std::vector<Word> words;
    size_t i = 0;
    while (i < line.size()) {
        char c = line[i];
        if (c == '#' || c == ';')
            break;
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        size_t start = i;
        // Commas separate register lists; keep them as their own words
        // so "r1,r2" and "r1, r2" parse alike.
        if (c == ',') {
            words.push_back({",", int(start) + 1});
            ++i;
            continue;
        }
        while (i < line.size() &&
               !std::isspace(static_cast<unsigned char>(line[i])) &&
               line[i] != ',' && line[i] != '#' && line[i] != ';') {
            ++i;
        }
        words.push_back({line.substr(start, i - start), int(start) + 1});
    }
    return words;
}

/** Parse r<N>; returns -1 on failure. */
int32_t
parseReg(const std::string &text)
{
    if (text.size() < 2 || (text[0] != 'r' && text[0] != 'R'))
        return -1;
    int32_t value = 0;
    for (size_t i = 1; i < text.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(text[i])))
            return -1;
        value = value * 10 + (text[i] - '0');
        if (value > 100000)
            return -1;
    }
    return value;
}

} // namespace

sched::Program
parseSasm(std::string_view text, const lmdes::LowMdes &low,
          DiagnosticEngine &diags)
{
    sched::Program program;
    sched::Block current;
    bool in_block = false;

    std::istringstream stream{std::string(text)};
    std::string line;
    int line_no = 0;
    while (std::getline(stream, line)) {
        ++line_no;
        auto words = splitLine(line);
        if (words.empty())
            continue;
        SourceLocation loc{line_no, words[0].column};

        if (words[0].text == "block") {
            if (in_block) {
                diags.error(loc, "nested 'block' (missing 'end'?)");
                continue;
            }
            if (words.size() > 1) {
                diags.error({line_no, words[1].column},
                            "unexpected text after 'block'");
            }
            in_block = true;
            current = {};
            continue;
        }
        if (words[0].text == "end") {
            if (!in_block) {
                diags.error(loc, "'end' without 'block'");
                continue;
            }
            if (current.instrs.empty())
                diags.error(loc, "empty block");
            else
                program.blocks.push_back(std::move(current));
            in_block = false;
            continue;
        }
        if (!in_block) {
            diags.error(loc, "instruction outside block/end");
            continue;
        }

        // OPCODE [dsts] '<-' [srcs] [!flags]
        sched::Instr instr;
        uint32_t cls = low.findOpClass(words[0].text);
        if (cls == kInvalidId) {
            diags.error(loc, "unknown operation '" + words[0].text +
                                 "' for machine '" + low.machineName() +
                                 "'");
            continue;
        }
        instr.op_class = cls;

        size_t w = 1;
        bool seen_arrow = false;
        bool bad = false;
        while (w < words.size() && !bad) {
            const Word &word = words[w];
            if (word.text == ",") {
                ++w;
                continue;
            }
            if (word.text == "<-") {
                if (seen_arrow) {
                    diags.error({line_no, word.column},
                                "duplicate '<-'");
                    bad = true;
                }
                seen_arrow = true;
                ++w;
                continue;
            }
            if (word.text == "!cascade") {
                instr.cascadable = true;
                ++w;
                continue;
            }
            if (word.text == "!branch") {
                instr.is_branch = true;
                ++w;
                continue;
            }
            int32_t reg = parseReg(word.text);
            if (reg < 0) {
                diags.error({line_no, word.column},
                            "expected register (r<N>), '<-' or flag, "
                            "found '" +
                                word.text + "'");
                bad = true;
                break;
            }
            (seen_arrow ? instr.srcs : instr.dsts).push_back(reg);
            ++w;
        }
        if (bad)
            continue;
        if (!seen_arrow) {
            diags.error(loc, "instruction is missing '<-'");
            continue;
        }
        if (instr.is_branch && !current.instrs.empty() &&
            current.instrs.back().is_branch) {
            diags.error(loc, "block already has a branch");
            continue;
        }
        if (instr.cascadable &&
            low.opClasses()[cls].cascade_tree == kInvalidId) {
            diags.warning(loc, "operation '" + words[0].text +
                                   "' has no cascade table; !cascade "
                                   "ignored");
            instr.cascadable = false;
        }
        current.instrs.push_back(std::move(instr));
    }
    if (in_block)
        diags.error({line_no, 1}, "unterminated block at end of file");

    // A branch anywhere except last-in-block is malformed.
    for (const auto &block : program.blocks) {
        for (size_t i = 0; i + 1 < block.instrs.size(); ++i) {
            if (block.instrs[i].is_branch) {
                diags.error({0, 0},
                            "branch before the end of its block");
            }
        }
    }
    return program;
}

sched::Program
parseSasmOrThrow(std::string_view text, const lmdes::LowMdes &low)
{
    DiagnosticEngine diags;
    sched::Program program = parseSasm(text, low, diags);
    if (diags.hasErrors())
        throw MdesError("sasm parse failed:\n" + diags.toString());
    return program;
}

std::string
formatSasm(const sched::Program &program, const lmdes::LowMdes &low)
{
    std::ostringstream os;
    for (const auto &block : program.blocks) {
        os << "block\n";
        for (const auto &instr : block.instrs) {
            os << "    " << low.opClasses()[instr.op_class].name << " ";
            for (size_t d = 0; d < instr.dsts.size(); ++d)
                os << (d ? ", " : "") << "r" << instr.dsts[d];
            os << (instr.dsts.empty() ? "<-" : " <-");
            for (size_t s = 0; s < instr.srcs.size(); ++s)
                os << (s ? "," : "") << " r" << instr.srcs[s];
            if (instr.cascadable)
                os << " !cascade";
            if (instr.is_branch)
                os << " !branch";
            os << "\n";
        }
        os << "end\n";
    }
    return os.str();
}

} // namespace mdes::workload
